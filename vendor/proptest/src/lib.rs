//! A tiny, dependency-free, *deterministic* stand-in for the `proptest`
//! crate, vendored so the workspace builds and tests without network
//! access to a registry.
//!
//! It implements exactly the subset of the proptest API this repository
//! uses: the [`Strategy`] trait with `prop_map` / `prop_recursive` /
//! `boxed`, range and [`Just`] strategies, tuples, `prop::collection::vec`,
//! `prop::array::uniform4`, [`any`] / [`Arbitrary`], `prop_oneof!`, the
//! `proptest!` macro (with optional `#![proptest_config(..)]`), and the
//! `prop_assert*` macros.
//!
//! Unlike upstream proptest there is **no shrinking** and **no
//! persistence**: every test function derives its RNG seed from its own
//! `module_path!()` + name plus the case index, so a failure reproduces
//! exactly on every run, on every machine. That trades minimal
//! counterexamples for perfect determinism, which suits this repo's
//! reproduction goals (tier-1 verify must behave identically offline and
//! in CI).

use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;
use std::rc::Rc;

/// Deterministic splitmix64 generator. Seeded per test case from the
/// test's fully qualified name, never from ambient entropy.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Seed for case number `case` of the named test (FNV-1a over the
    /// name, mixed with the case index).
    pub fn for_case(name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::new(h ^ (u64::from(case) + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; returns 0 for `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Run-count configuration; mirrors the upstream type's `cases` knob.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
    }

    /// Recursive strategy: `depth` levels of 50/50 leaf-vs-recurse
    /// choice. `_desired_size` and `_expected_branch` are accepted for
    /// upstream signature compatibility but unused — depth alone bounds
    /// generation here.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let rec = recurse(cur).boxed();
            let l = leaf.clone();
            cur = BoxedStrategy(Rc::new(move |rng| {
                if rng.next_u64() & 1 == 0 {
                    l.generate(rng)
                } else {
                    rec.generate(rng)
                }
            }));
        }
        cur
    }
}

/// Type-erased strategy handle (cheap to clone).
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed alternatives; built by `prop_oneof!`.
pub struct OneOf<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Clone for OneOf<T> {
    fn clone(&self) -> Self {
        OneOf {
            arms: self.arms.clone(),
        }
    }
}

impl<T> fmt::Debug for OneOf<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "OneOf({} arms)", self.arms.len())
    }
}

impl<T> OneOf<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let lo = self.start as i128;
                let span = (self.end as i128 - lo) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo + v as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// Types with a canonical "any value" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}

/// Strategy over every value of `A` (uniform over the bit pattern).
pub struct Any<A>(PhantomData<fn() -> A>);

impl<A> Clone for Any<A> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<A> fmt::Debug for Any<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Any")
    }
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

pub mod collection {
    //! `prop::collection` — vectors of strategy-generated elements.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Size specifications accepted by [`vec`]: an exact `usize` length
    /// or a half-open `Range<usize>`.
    pub trait SizeRange {
        /// `(min, max)` as a half-open interval.
        fn bounds(&self) -> (usize, usize);
    }

    impl SizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl SizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        min: usize,
        max: usize,
    }

    pub fn vec<S: Strategy>(elem: S, size: impl SizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        assert!(min < max, "empty vec size range");
        VecStrategy { elem, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.min + rng.below((self.max - self.min) as u64) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod array {
    //! `prop::array` — fixed-size arrays of strategy-generated elements.

    use super::{Strategy, TestRng};

    #[derive(Debug, Clone)]
    pub struct Uniform4<S>(S);

    pub fn uniform4<S: Strategy>(elem: S) -> Uniform4<S> {
        Uniform4(elem)
    }

    impl<S: Strategy> Strategy for Uniform4<S> {
        type Value = [S::Value; 4];
        fn generate(&self, rng: &mut TestRng) -> [S::Value; 4] {
            [
                self.0.generate(rng),
                self.0.generate(rng),
                self.0.generate(rng),
                self.0.generate(rng),
            ]
        }
    }
}

/// Prints context when a case body panics (there is no shrinking; the
/// case index plus the deterministic seed scheme fully reproduces it).
#[doc(hidden)]
pub struct CaseGuard<'a> {
    pub test: &'a str,
    pub case: u32,
    pub cases: u32,
}

impl Drop for CaseGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "proptest: {} failed at case {}/{} (deterministic seed; rerun reproduces it)",
                self.test, self.case, self.cases
            );
        }
    }
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $($(#[$meta:meta])*
        fn $name:ident( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block)*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __name = concat!(module_path!(), "::", stringify!($name));
            let __strats = ($($strat,)+);
            for __case in 0..__cfg.cases {
                let __guard = $crate::CaseGuard {
                    test: __name,
                    case: __case,
                    cases: __cfg.cases,
                };
                let mut __rng = $crate::TestRng::for_case(__name, __case);
                let ($($pat,)+) = $crate::Strategy::generate(&__strats, &mut __rng);
                $body
                drop(__guard);
            }
        }
    )*};
}

pub mod prelude {
    //! Everything the tests import via `use proptest::prelude::*;`.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, Arbitrary,
        BoxedStrategy, Just, OneOf, ProptestConfig, Strategy, TestRng,
    };

    pub mod prop {
        pub use crate::{array, collection};
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::for_case("x", 0);
        let mut b = TestRng::for_case("x", 0);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("x", 1);
        assert_ne!(TestRng::for_case("x", 0).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..1000 {
            let v = (-50i32..50).generate(&mut rng);
            assert!((-50..50).contains(&v));
            let u = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&u));
            let f = (0.0..100.0f64).generate(&mut rng);
            assert!((0.0..100.0).contains(&f));
        }
    }

    #[test]
    fn vec_and_oneof_and_map_compose() {
        let strat =
            prop::collection::vec(prop_oneof![Just(1u32), 10u32..20], 2..5).prop_map(|v| v.len());
        let mut rng = TestRng::new(1);
        for _ in 0..100 {
            let n = strat.generate(&mut rng);
            assert!((2..5).contains(&n));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_binds_multiple_args(a in 0u8..10, (b, c) in (0u8..10, any::<bool>())) {
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(c as u8 <= 1, true);
        }
    }
}
