//! A tiny, dependency-free stand-in for the `criterion` crate, vendored
//! so `cargo bench` works without network access to a registry.
//!
//! It implements the subset of the criterion API the `databp-bench`
//! crate uses: [`Criterion`], benchmark groups with `sample_size` /
//! `throughput`, `bench_function` / `bench_with_input`, [`Bencher::iter`],
//! [`BenchmarkId`], [`Throughput`], and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is deliberately simple: each benchmark is auto-calibrated
//! to run for a few milliseconds and the mean wall time per iteration is
//! printed, with elements/sec when a throughput is declared. There are no
//! statistical comparisons or HTML reports — the point is that the bench
//! targets compile, run, and print useful numbers offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Entry point handed to every benchmark target function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
            sample_size: 10,
            _parent: self,
        }
    }

    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(&id.to_string(), None, f);
        self
    }
}

/// Throughput declaration: lets the report derive a rate per second.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A `name/parameter` benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            full: format!("{name}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.full)
    }
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'c> {
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    _parent: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.throughput, f);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.throughput, |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

/// Timing harness passed to each benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `routine` repeatedly, auto-scaling the iteration count until
    /// the timed batch lasts at least a few milliseconds.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine());
        let mut n: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..n {
                std::hint::black_box(routine());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(5) || n >= (1 << 22) {
                self.iterations = n;
                self.elapsed = dt;
                return;
            }
            n = n.saturating_mul(8);
        }
    }
}

fn run_one(name: &str, throughput: Option<Throughput>, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher::default();
    f(&mut b);
    let iters = b.iterations.max(1);
    let per_ns = b.elapsed.as_nanos() as f64 / iters as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) if per_ns > 0.0 => {
            format!("  {:>12.0} elem/s", n as f64 / (per_ns / 1e9))
        }
        Some(Throughput::Bytes(n)) if per_ns > 0.0 => {
            format!("  {:>12.0} B/s", n as f64 / (per_ns / 1e9))
        }
        _ => String::new(),
    };
    println!("bench {name:<48} {per_ns:>14.1} ns/iter{rate}");
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::default();
        b.iter(|| std::hint::black_box(3u64).wrapping_mul(7));
        assert!(b.iterations >= 1);
        assert!(b.elapsed > Duration::ZERO);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(10).throughput(Throughput::Elements(4));
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("with_input", 4), &4u64, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
        c.bench_function("top", |b| b.iter(|| ()));
    }
}
