//! A tiny, dependency-free stand-in for the `rustc-hash` crate,
//! vendored so the workspace builds without network access to a
//! registry (see `vendor/README.md`).
//!
//! [`FxHasher`] is the multiply-and-rotate word hasher used throughout
//! rustc: not cryptographic, not DoS-resistant, but 3–5× faster than
//! SipHash on the small integer keys that dominate the simulator's hot
//! maps (page numbers, packed `(session, page)` pairs, object
//! descriptors). The API mirrors upstream — [`FxHashMap`],
//! [`FxHashSet`], [`FxBuildHasher`] — so the real crate drops in with a
//! one-line `Cargo.toml` change.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Odd multiplier with well-mixed bits (derived from the golden ratio,
/// as in upstream FxHash / splitmix).
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, non-cryptographic word-at-a-time hasher.
///
/// Each word folded in costs one rotate, one xor, and one multiply.
/// Collision quality is adequate for in-process hash maps keyed by
/// program data; never use it for untrusted input.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // One multiply propagates entropy low→high only, which would
        // leave bucket-selecting low bits blind to high key bits (e.g.
        // the session half of a packed (session, page) key). Fold the
        // high half back down and remix.
        (self.hash ^ (self.hash >> 32)).wrapping_mul(K)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut rest = bytes;
        while rest.len() >= 8 {
            let (chunk, tail) = rest.split_at(8);
            self.add_word(u64::from_le_bytes(chunk.try_into().expect("8 bytes")));
            rest = tail;
        }
        if !rest.is_empty() {
            let mut word = 0u64;
            for (i, &b) in rest.iter().enumerate() {
                word |= u64::from(b) << (8 * i);
            }
            // Fold the tail length in so "ab" + "" and "a" + "b" differ.
            self.add_word(word ^ ((rest.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_word(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_word(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_word(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_word(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_word(i as u64);
        self.add_word((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_word(i as u64);
    }

    #[inline]
    fn write_i8(&mut self, i: i8) {
        self.write_u8(i as u8);
    }

    #[inline]
    fn write_i16(&mut self, i: i16) {
        self.write_u16(i as u16);
    }

    #[inline]
    fn write_i32(&mut self, i: i32) {
        self.write_u32(i as u32);
    }

    #[inline]
    fn write_i64(&mut self, i: i64) {
        self.write_u64(i as u64);
    }

    #[inline]
    fn write_isize(&mut self, i: isize) {
        self.write_usize(i as usize);
    }
}

/// `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_of(f: impl Fn(&mut FxHasher)) -> u64 {
        let mut h = FxHasher::default();
        f(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_and_key_sensitive() {
        assert_eq!(
            hash_of(|h| h.write_u64(42)),
            hash_of(|h| h.write_u64(42)),
            "same input, same hash"
        );
        assert_ne!(hash_of(|h| h.write_u64(42)), hash_of(|h| h.write_u64(43)));
        assert_ne!(
            hash_of(|h| h.write_u32(7)),
            hash_of(|h| h.write_u32(7 << 16)),
            "high bits must affect the hash"
        );
    }

    #[test]
    fn byte_streams_distinguish_split_points() {
        assert_ne!(
            hash_of(|h| h.write(b"ab")),
            hash_of(|h| {
                h.write(b"a");
                h.write(b"b");
            })
        );
        assert_ne!(hash_of(|h| h.write(b"")), hash_of(|h| h.write(b"\0")));
        // Longer-than-a-word streams exercise the chunked path.
        assert_ne!(
            hash_of(|h| h.write(b"0123456789abcdef")),
            hash_of(|h| h.write(b"0123456789abcdeg")),
        );
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<(u32, u32), u32> = FxHashMap::default();
        for i in 0..1000 {
            m.insert((i, i * 2), i);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&(10, 20)), Some(&10));

        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.insert(3);
        assert!(s.contains(&3));
        assert!(!s.contains(&4));
    }

    #[test]
    fn packed_session_page_keys_spread() {
        // The simulator's hottest key shape: (session << 32) | page,
        // with small sessions and clustered pages. Make sure the low
        // bits of the hash actually vary (HashMap uses the low bits for
        // bucket selection after its own mixing, but a constant hash
        // would still degrade to a list).
        let mut low_bits: FxHashSet<u64> = FxHashSet::default();
        for s in 0..8u64 {
            for p in 0..64u64 {
                low_bits.insert(hash_of(|h| h.write_u64((s << 32) | p)) & 0xff);
            }
        }
        assert!(low_bits.len() > 128, "hash low bits collapse: {low_bits:?}");
    }
}
