//! Quickstart: set a data breakpoint on a global variable and see every
//! write to it, using the paper's recommended CodePatch strategy.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use databp::core::{CodePatch, RangePlan};
use databp::machine::Machine;
use databp::tinyc::{compile, Options};

const PROGRAM: &str = r#"
    int balance;

    void deposit(int amount) { balance = balance + amount; }
    void withdraw(int amount) { balance = balance - amount; }

    int main() {
        deposit(100);
        deposit(50);
        withdraw(30);
        print_int(balance);
        return 0;
    }
"#;

fn main() {
    // Compile with CodePatch instrumentation: every traced store is
    // preceded by an inline check of its target address.
    let compiled = compile(PROGRAM, &Options::codepatch()).expect("program compiles");

    // Watch the global `balance` (global id 0 — or look it up by name).
    let balance = compiled.debug.global("balance").expect("balance exists");
    println!(
        "watching '{}' at [{:#x}, {:#x})\n",
        balance.name, balance.ba, balance.ea
    );
    let plan = RangePlan {
        globals: vec![balance.id],
        ..RangePlan::default()
    };

    let mut machine = Machine::new();
    machine.load(&compiled.program);
    let report = CodePatch::default()
        .run(&mut machine, &compiled.debug, &plan, 10_000_000)
        .expect("program runs");

    println!(
        "program output: {}",
        String::from_utf8_lossy(machine.output()).trim()
    );
    println!(
        "\n{} writes to 'balance' were caught:",
        report.notification_count
    );
    for n in &report.notifications {
        println!("  {n}");
    }
    println!(
        "\nmonitoring cost {:.1} µs on a {:.1} µs run ({:.2}x relative overhead)",
        report.overhead.total_us(),
        report.base_us,
        report.relative_overhead(),
    );
}
