//! Monitoring "all heap objects allocated by a particular function" — the
//! paper's AllHeapInFunc session type and the case where hardware watch
//! registers fall over (thousands of concurrent monitors).
//!
//! ```sh
//! cargo run --release --example heap_monitoring
//! ```

use databp::core::{CodePatch, NativeHardware};
use databp::machine::Machine;
use databp::sessions::{enumerate_sessions, Session, SessionKind, SessionPlan};
use databp::workloads::{prepare, Workload};

fn main() {
    // The BPS analogue allocates a search node per expansion.
    let workload = Workload::by_name("bps").expect("bps exists").scaled_down();
    let prepared = prepare(&workload).expect("workload runs");
    let debug = &prepared.plain.debug;

    // Pick the AllHeapInFunc session rooted at the allocating function.
    let new_state = debug
        .func_id("new_state")
        .expect("allocator function exists");
    let session = enumerate_sessions(debug, &prepared.trace)
        .into_iter()
        .find(|s| *s == Session::AllHeapInFunc { func: new_state })
        .expect("bps allocates under new_state");
    assert_eq!(session.kind(), SessionKind::AllHeapInFunc);
    println!("session: {}\n", session.describe(debug));
    let plan = SessionPlan::new(session, debug);

    // CodePatch handles any number of simultaneous monitors.
    let cp_build = prepared.codepatch();
    let mut m = Machine::new();
    m.load(&cp_build.program);
    m.set_args(workload.args.clone());
    let cp = CodePatch::default()
        .run(&mut m, &cp_build.debug, &plan, workload.max_steps * 2)
        .expect("codepatch run");
    println!(
        "CodePatch: {} monitors installed over the run, {} writes caught, {:.2}x overhead",
        cp.counts.install,
        cp.notification_count,
        cp.relative_overhead()
    );
    println!("first few notifications:");
    for n in cp.notifications.iter().take(5) {
        println!("  {n}");
    }

    // Real hardware (4 registers) cannot even represent this session.
    let mut m = Machine::new();
    m.load(&prepared.plain.program);
    m.set_args(workload.args.clone());
    let nh = NativeHardware::realistic()
        .run(&mut m, debug, &plan, workload.max_steps * 2)
        .expect("nh run");
    println!(
        "\nNativeHardware with 4 registers: exhausted = {}, caught only {} of {} writes",
        nh.watch_exhausted, nh.notification_count, cp.notification_count
    );
    assert!(
        nh.watch_exhausted,
        "the session needs more than four registers"
    );
    assert!(nh.notification_count < cp.notification_count);
    println!(
        "\n\"Consider monitoring a large central data structure with thousands of\n\
         constituent elements. Recall that no existing processor could have\n\
         supported all of the monitor sessions used in our experiment.\" — Section 9"
    );
}
