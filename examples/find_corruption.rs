//! The paper's motivating scenario: "an example data breakpoint suspends
//! execution whenever a certain object is modified. Such a breakpoint
//! would help identify pointer uses that are inadvertently modifying an
//! otherwise unrelated data structure."
//!
//! The buggy program below walks one array with an off-by-one bound and
//! tramples the unrelated `checksum` global next to it. The data
//! breakpoint catches the rogue store and names the guilty source
//! construct via the disassembler.
//!
//! ```sh
//! cargo run --example find_corruption
//! ```

use databp::core::{NativeHardware, RangePlan};
use databp::machine::{disasm, Machine};
use databp::tinyc::{compile, Options};

const BUGGY_PROGRAM: &str = r#"
    int samples[8];
    int checksum;     // lives right after samples[] in the data segment

    void record(int i, int v) {
        samples[i] = v;               // BUG: called with i == 8
    }

    int main() {
        int i;
        checksum = 12345;
        for (i = 0; i <= 8; i = i + 1) {   // off-by-one bound
            record(i, i * 7);
        }
        print_str("checksum is now: ");
        print_int(checksum);               // corrupted!
        return 0;
    }
"#;

fn main() {
    let compiled = compile(BUGGY_PROGRAM, &Options::plain()).expect("compiles");
    let checksum = compiled.debug.global("checksum").expect("checksum exists");

    // A single scalar watch fits real hardware: use NativeHardware with
    // the era's four watch registers.
    let plan = RangePlan {
        globals: vec![checksum.id],
        ..RangePlan::default()
    };
    let mut machine = Machine::new();
    machine.load(&compiled.program);
    let report = NativeHardware::realistic()
        .run(&mut machine, &compiled.debug, &plan, 10_000_000)
        .expect("program runs");

    println!(
        "program output: {}",
        String::from_utf8_lossy(machine.output()).trim()
    );
    println!(
        "\nwrites to 'checksum' [{:#x}, {:#x}):",
        checksum.ba, checksum.ea
    );
    for (k, n) in report.notifications.iter().enumerate() {
        let idx = machine.pc_to_index(n.pc).expect("notification pc in code");
        let instr = machine.instr_at(idx).expect("decodable");
        let in_func = compiled
            .debug
            .functions
            .iter()
            .filter(|f| f.entry_pc <= n.pc)
            .max_by_key(|f| f.entry_pc)
            .map(|f| f.name.as_str())
            .unwrap_or("?");
        println!(
            "  #{k}: pc {:#010x} in {in_func}():  {}",
            n.pc,
            disasm::format_instr(&instr)
        );
    }
    println!(
        "\nthe first write is main() initializing checksum; the second is the \
         rogue store in record() — the off-by-one samples[8]."
    );
    assert_eq!(report.notification_count, 2);
}
