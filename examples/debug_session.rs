//! A scripted `qei` debugging session — the paper's QEI debugger brought
//! to life. Walks the same bug hunt as `find_corruption`, but through
//! debugger commands: conditional data breakpoints, backtraces, and
//! disassembly.
//!
//! ```sh
//! cargo run --example debug_session
//! ```

use databp::machine::Machine; // re-export check: the debuggee is a real machine
use databp_debugger::{Debugger, RunState};

const PROGRAM: &str = r#"
    int inventory[8];
    int audit_total;

    void restock(int slot, int amount) {
        inventory[slot] = inventory[slot] + amount;
    }

    int audit() {
        int i; int sum;
        sum = 0;
        for (i = 0; i < 8; i = i + 1) sum = sum + inventory[i];
        audit_total = sum;
        return sum;
    }

    int main() {
        int day;
        for (day = 0; day < 9; day = day + 1) {
            restock(day % 9, 10);     // BUG: slot 8 does not exist
        }
        print_int(audit());
        return 0;
    }
"#;

fn run(dbg: &mut Debugger, cmd: &str) -> String {
    let out = dbg.execute(cmd).unwrap_or_else(|e| format!("error: {e}"));
    println!("(qei) {cmd}");
    for line in out.lines() {
        println!("      {line}");
    }
    out
}

fn main() {
    let _ = std::mem::size_of::<Machine>(); // the umbrella crate is wired up
    let mut dbg = Debugger::launch(PROGRAM, &[]).expect("program compiles");
    println!("qei: loaded inventory program\n");

    // The symptom: the audit prints 80, not the expected 90. Something is
    // writing `audit_total` besides audit(). Pause only on the suspicious
    // value: a raw restock amount (10) is not a plausible running sum.
    run(&mut dbg, "watch audit_total if == 10");
    run(&mut dbg, "info watch");

    let mut out = run(&mut dbg, "run");
    let mut caught_rogue = false;
    while dbg.state() == RunState::Paused {
        if out.contains("in restock()") {
            // Caught red-handed: restock() has no business writing the
            // audit total. Inspect the crime scene.
            caught_rogue = true;
            run(&mut dbg, "backtrace");
            run(&mut dbg, "disasm 4");
        }
        out = run(&mut dbg, "continue");
    }
    assert!(caught_rogue, "the rogue write must be caught in restock()");

    run(&mut dbg, "output");
    run(&mut dbg, "info watch");

    println!(
        "\nNine restocks of 10 should audit to 90, but the program prints 80:\n\
         slot 8 is out of bounds, so one restock wrote `audit_total` instead of\n\
         the array. The conditional data breakpoint paused exactly once — on the\n\
         rogue store inside restock() — instead of on every legitimate write."
    );
}
