//! Runs one monitor session under all four WMS strategies and prints the
//! paper's comparison: who catches what, and at what cost.
//!
//! ```sh
//! cargo run --release --example strategy_comparison [workload] [session-index]
//! ```

use databp::core::{CodePatch, NativeHardware, StrategyReport, TrapPatch, VirtualMemory};
use databp::machine::Machine;
use databp::sessions::SessionPlan;
use databp::workloads::{prepare, Workload};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let name = args.first().map(String::as_str).unwrap_or("spice");
    let workload = Workload::by_name(name)
        .unwrap_or_else(|| panic!("unknown workload '{name}' (cc, tex, spice, qcd, bps)"))
        .scaled_down();
    println!("workload: {} ({})", workload.name, workload.paper_analogue);

    let prepared = prepare(&workload).expect("workload runs");
    let sessions = databp::sessions::enumerate_sessions(&prepared.plain.debug, &prepared.trace);
    let index: usize = args
        .get(1)
        .map(|s| s.parse().expect("session index"))
        .unwrap_or_else(|| sessions.len() / 2);
    let session = sessions[index.min(sessions.len() - 1)];
    println!(
        "session:  {} — {}\n",
        session,
        session.describe(&prepared.plain.debug)
    );
    let plan = SessionPlan::new(session, &prepared.plain.debug);

    let mut rows: Vec<(&str, StrategyReport)> = Vec::new();
    let steps = workload.max_steps * 2;

    let mut m = Machine::new();
    m.load(&prepared.plain.program);
    m.set_args(workload.args.clone());
    rows.push((
        "NativeHardware",
        NativeHardware::default()
            .run(&mut m, &prepared.plain.debug, &plan, steps)
            .unwrap(),
    ));

    let mut m = Machine::new();
    m.load(&prepared.plain.program);
    m.set_args(workload.args.clone());
    rows.push((
        "VirtualMemory-4K",
        VirtualMemory::k4()
            .run(&mut m, &prepared.plain.debug, &plan, steps)
            .unwrap(),
    ));

    let mut m = Machine::new();
    m.load(&prepared.plain.program);
    m.set_args(workload.args.clone());
    rows.push((
        "TrapPatch",
        TrapPatch::default()
            .run(&mut m, &prepared.plain.debug, &plan, steps)
            .unwrap(),
    ));

    let cp_build = prepared.codepatch();
    let mut m = Machine::new();
    m.load(&cp_build.program);
    m.set_args(workload.args.clone());
    rows.push((
        "CodePatch",
        CodePatch::default()
            .run(&mut m, &cp_build.debug, &plan, steps)
            .unwrap(),
    ));

    println!(
        "{:<18} {:>8} {:>10} {:>12} {:>14}",
        "strategy", "hits", "costed miss", "overhead µs", "rel. overhead"
    );
    for (name, r) in &rows {
        println!(
            "{:<18} {:>8} {:>10} {:>12.0} {:>13.2}x",
            name,
            r.counts.hit,
            // TP/CP pay for every checked miss; VM pays only for misses
            // that fault (active-page misses); NH pays for none.
            r.counts.miss + r.counts.vm_active_page_miss,
            r.overhead.total_us(),
            r.relative_overhead()
        );
    }

    let hits: Vec<u64> = rows.iter().map(|(_, r)| r.counts.hit).collect();
    assert!(
        hits.iter().all(|&h| h == hits[0]),
        "strategies must agree on hits"
    );
    println!(
        "\nall four strategies observed the same {} hits — they differ only in cost,\n\
         which is the paper's whole point.",
        hits[0]
    );
}
