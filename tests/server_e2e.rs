//! End-to-end test of the replay service against the one-shot pipeline.
//!
//! The service's contract is that being a *service* changes nothing
//! about the answers: a batch of mixed-strategy requests — duplicates
//! included — must produce responses byte-identical to running the
//! one-shot `--stream` pipeline per request, while the trace cache
//! ensures each distinct workload is traced exactly once.
//!
//! Everything lives in one `#[test]` because the phase-1 accounting
//! leans on the process-global telemetry registry: asserting "the
//! duplicate performed no new `harness.analyze` span" only works if no
//! concurrently running test is analyzing workloads of its own.

use databp::harness::{analyze_opts, AnalyzeOpts, Scale};
use databp::machine::PageSize;
use databp::models::Approach;
use databp::server::{body_for, CacheStatus, Request, Server, ServerConfig};

/// One-shot pipeline run shaped exactly like a service cache miss:
/// streamed phase-1/phase-2 overlap at the request's ladder.
fn one_shot_body(req: &Request) -> String {
    let workload = req.resolve_workload().expect("known workload");
    let results = analyze_opts(
        &workload,
        &AnalyzeOpts {
            stream: true,
            ladder: req.page_sizes.clone(),
            channel_batches: AnalyzeOpts::auto_channel_batches(),
            ..AnalyzeOpts::default()
        },
    );
    body_for(req, &results).to_json()
}

#[test]
fn batch_is_byte_identical_to_one_shot_and_caches_duplicates() {
    databp::telemetry::set_enabled(true);
    let span_count = |name: &str| {
        databp::telemetry::global()
            .snapshot()
            .span(name)
            .map_or(0, |s| s.count)
    };

    // A mixed-strategy batch over two distinct workloads, with
    // duplicates: `a`/`b`/`d` share the cc trace, `c` owns the tex
    // trace. `b` narrows to one strategy and asks for the full
    // overhead population; the rest take summary statistics only.
    let a = Request::simple("a", "cc", Scale::Small);
    let b = Request {
        id: "b".to_string(),
        workload: "cc".to_string(),
        scale: Scale::Small,
        strategies: vec![Approach::Cp],
        page_sizes: Vec::new(),
        overheads: true,
        query: None,
    };
    let c = Request {
        id: "c".to_string(),
        workload: "tex".to_string(),
        scale: Scale::Small,
        strategies: vec![Approach::Cp, Approach::Tp],
        page_sizes: Vec::new(),
        overheads: false,
        query: None,
    };
    let d = Request::simple("d", "cc", Scale::Small);
    let batch = vec![a.clone(), b.clone(), c.clone(), d.clone()];

    // Expected answers from the one-shot pipeline, computed before the
    // service starts so the analyze-span bookkeeping below is clean.
    let expected: Vec<String> = batch.iter().map(one_shot_body).collect();
    let analyze_before = span_count("harness.analyze");

    let server = Server::start(ServerConfig {
        workers: 3,
        ..ServerConfig::default()
    });
    let responses = server.submit_batch(batch);

    // Responses arrive in request order and every body matches the
    // one-shot pipeline byte for byte — hit or miss.
    assert_eq!(
        responses.iter().map(|r| r.id.as_str()).collect::<Vec<_>>(),
        vec!["a", "b", "c", "d"]
    );
    for (resp, want) in responses.iter().zip(&expected) {
        assert!(resp.ok, "{}: {:?}", resp.id, resp.error);
        assert_eq!(
            resp.body.as_ref().unwrap().to_json(),
            *want,
            "response {} must be byte-identical to the one-shot pipeline",
            resp.id
        );
    }

    // The cache collapsed the duplicates: two distinct workloads, two
    // phase-1 traces, two hits — regardless of worker scheduling
    // (concurrent duplicate misses wait on the in-flight build).
    let stats = server.stats();
    assert_eq!(stats.requests, 4);
    assert_eq!(stats.cache_misses, 2, "one trace per distinct workload");
    assert_eq!(stats.cache_hits, 2, "duplicates served from cache");
    assert_eq!(stats.cache_rewalks, 0);
    let analyze_after = span_count("harness.analyze");
    assert_eq!(
        analyze_after - analyze_before,
        2,
        "the service ran phase 1 exactly once per distinct workload"
    );

    // A wider ladder on a cached workload re-walks the cached trace
    // (phase 2 only): no new `harness.analyze` span, still
    // byte-identical to a one-shot run at that ladder.
    let mut e = Request::simple("e", "tex", Scale::Small);
    e.page_sizes = vec![PageSize::K16, PageSize::K32];
    let resp = server
        .submit(e.clone())
        .unwrap_or_else(|_| panic!("queue cannot be full"))
        .wait();
    assert!(resp.ok);
    assert_eq!(resp.cache, Some(CacheStatus::Rewalk));
    assert_eq!(
        span_count("harness.analyze") - analyze_before,
        2,
        "the rewalk ran phase 1 zero times"
    );
    assert!(span_count("harness.reanalyze") >= 1);
    assert_eq!(resp.body.as_ref().unwrap().to_json(), one_shot_body(&e));

    // And once widened, the wide ladder is a pure hit.
    let mut f = e.clone();
    f.id = "f".to_string();
    let resp_f = server
        .submit(f)
        .unwrap_or_else(|_| panic!("queue cannot be full"))
        .wait();
    assert_eq!(resp_f.cache, Some(CacheStatus::Hit));
    assert_eq!(
        resp_f.body.as_ref().unwrap().to_json(),
        resp.body.as_ref().unwrap().to_json()
    );

    // A trace query against a cached workload is answered from the
    // trace alone: no phase-1 run, no phase-2 rewalk — zero new
    // `harness.analyze` (and `harness.reanalyze`) spans.
    let analyze_q = span_count("harness.analyze");
    let reanalyze_q = span_count("harness.reanalyze");
    let rewalks_q = server.stats().cache_rewalks;
    let mut q1 = Request::simple("q1", "cc", Scale::Small);
    q1.query = Some("count if value > 0 && writer in main".to_string());
    let resp_q1 = server
        .submit(q1.clone())
        .unwrap_or_else(|_| panic!("queue cannot be full"))
        .wait();
    assert!(resp_q1.ok, "{:?}", resp_q1.error);
    assert_eq!(resp_q1.cache, Some(CacheStatus::Hit));
    let q1_body = resp_q1.body.as_ref().unwrap().to_json();
    assert!(q1_body.contains(r#""kind":"count""#), "{q1_body}");
    assert_eq!(
        span_count("harness.analyze"),
        analyze_q,
        "a cached-trace query ran phase 1 zero times"
    );
    assert_eq!(
        span_count("harness.reanalyze"),
        reanalyze_q,
        "a cached-trace query ran phase 2 zero times"
    );
    assert_eq!(server.stats().cache_rewalks, rewalks_q);

    // Resubmitting the same query yields byte-identical response
    // bodies: query answers are deterministic functions of the trace.
    let mut q2 = q1.clone();
    q2.id = "q2".to_string();
    let resp_q2 = server
        .submit(q2)
        .unwrap_or_else(|_| panic!("queue cannot be full"))
        .wait();
    assert!(resp_q2.ok);
    assert_eq!(resp_q2.body.as_ref().unwrap().to_json(), q1_body);

    let stats = server.stats();
    assert!(
        stats.cache_hits >= 3,
        "nonzero cache hit rate: {} hits / {} requests",
        stats.cache_hits,
        stats.requests
    );
    server.shutdown();
}
