//! The DESIGN.md fidelity targets: the paper's *qualitative* findings
//! must hold on our substituted workloads. Absolute values differ (our
//! substrate is a simulator); orderings and bands must not.

use databp::harness::{analyze, analyze_all, expansion, overheads_for, Scale};
use databp::models::{Approach, TimingVars};
use databp::stats::Summary;
use databp::workloads::Workload;

fn summaries(name: &str) -> Vec<(Approach, Summary)> {
    let r = analyze(&Workload::by_name(name).unwrap().scaled_down());
    Approach::ALL
        .iter()
        .map(|&a| (a, Summary::from_samples(&overheads_for(&r, a))))
        .collect()
}

fn get(s: &[(Approach, Summary)], a: Approach) -> Summary {
    s.iter().find(|(x, _)| *x == a).expect("approach present").1
}

#[test]
fn conclusion_ordering_nh_cp_vm_tp() {
    // Section 9: "NativeHardware delivered the best overall performance.
    // CodePatch was significantly more efficient than the other two
    // approaches." NH's per-program t-mean advantage depends on a long
    // tail of cold sessions, which only the session-rich programs have —
    // the paper's GCC and BPS analogues here (our tex/qcd substitutes are
    // much smaller than CommonTeX/QCD, so their few sessions are all
    // hot). CP ≪ TP and CP ≪ VM-max hold universally.
    for name in ["cc", "tex", "spice", "qcd", "bps"] {
        let s = summaries(name);
        let (vm, tp, cp) = (
            get(&s, Approach::Vm4k),
            get(&s, Approach::Tp),
            get(&s, Approach::Cp),
        );
        assert!(cp.t_mean < tp.t_mean / 10.0, "{name}: CP ≪ TP");
        assert!(cp.t_mean < vm.max, "{name}: VM's bad sessions dwarf CP");
        assert!(
            tp.t_mean > 20.0,
            "{name}: TP is unacceptably slow (t-mean {})",
            tp.t_mean
        );
    }
    for name in ["cc", "spice", "bps"] {
        let s = summaries(name);
        assert!(
            get(&s, Approach::Nh).t_mean < get(&s, Approach::Cp).t_mean,
            "{name}: NH t-mean beats CP on session-rich programs"
        );
    }
}

#[test]
fn cp_beats_nh_in_the_worst_case() {
    // Figure 7's punchline: "for the most demanding monitor sessions,
    // [CodePatch] provided better performance than even NativeHardware."
    for name in ["cc", "tex", "spice", "qcd", "bps"] {
        let s = summaries(name);
        assert!(
            get(&s, Approach::Cp).max < get(&s, Approach::Nh).max,
            "{name}: CP max should undercut NH max"
        );
    }
}

#[test]
fn cp_and_tp_have_low_variance_vm_and_nh_do_not() {
    for name in ["cc", "bps"] {
        let s = summaries(name);
        let cp = get(&s, Approach::Cp);
        let tp = get(&s, Approach::Tp);
        let vm = get(&s, Approach::Vm4k);
        let nh = get(&s, Approach::Nh);
        // "CodePatch exhibited extremely low variance" — max within a
        // small factor of the trimmed mean; same for TP.
        assert!(
            cp.max / cp.t_mean < 20.0,
            "{name}: CP spread {}",
            cp.max / cp.t_mean
        );
        assert!(
            tp.max / tp.t_mean < 1.5,
            "{name}: TP spread {}",
            tp.max / tp.t_mean
        );
        // VM and NH blow up on their worst sessions by more than an
        // order of magnitude over their typical ones.
        assert!(
            vm.max / vm.t_mean.max(0.01) > 10.0,
            "{name}: VM spread {} too small",
            vm.max / vm.t_mean.max(0.01)
        );
        assert!(
            nh.max / nh.t_mean.max(0.01) > 10.0,
            "{name}: NH spread {} too small",
            nh.max / nh.t_mean.max(0.01)
        );
    }
}

#[test]
fn vm_8k_never_cheaper_than_4k_on_average() {
    for name in ["cc", "tex", "bps"] {
        let r = analyze(&Workload::by_name(name).unwrap().scaled_down());
        let m4 = Summary::from_samples(&overheads_for(&r, Approach::Vm4k)).mean;
        let m8 = Summary::from_samples(&overheads_for(&r, Approach::Vm8k)).mean;
        assert!(m8 >= m4 * 0.999, "{name}: VM-8K mean {m8} below VM-4K {m4}");
    }
}

#[test]
fn code_expansion_lands_in_the_paper_band() {
    // "a modest increase of between 12% and 15%" at two words per check;
    // we accept a slightly wider band since the ISA differs.
    let results = analyze_all(Scale::Small);
    for r in &results {
        let (est, _) = expansion::expansion_row(r);
        assert!(
            est > 0.05 && est < 0.30,
            "{}: estimated expansion {est} outside plausible band",
            r.prepared.workload.name
        );
    }
}

#[test]
fn timing_defaults_are_the_paper_table_2() {
    let t = TimingVars::default();
    assert_eq!((t.software_update_us, t.software_lookup_us), (22.0, 2.75));
    assert_eq!(
        (t.nh_fault_us, t.vm_fault_us, t.tp_fault_us),
        (131.0, 561.0, 102.0)
    );
    assert_eq!((t.vm_protect_us, t.vm_unprotect_us), (80.0, 299.0));
}
