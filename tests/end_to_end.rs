//! Workspace-level integration: the full paper pipeline, exercised
//! across crates exactly as the `repro` binary drives it.

use databp::harness::{analyze, overheads_for};
use databp::models::Approach;
use databp::sessions::SessionKind;
use databp::stats::Summary;
use databp::workloads::Workload;

#[test]
fn pipeline_produces_table_rows_for_every_workload() {
    for w in Workload::all() {
        let w = w.scaled_down();
        let r = analyze(&w);
        assert!(!r.sessions.is_empty(), "{}: no surviving sessions", w.name);
        for a in Approach::ALL {
            let ovs = overheads_for(&r, a);
            assert_eq!(ovs.len(), r.sessions.len());
            let s = Summary::from_samples(&ovs);
            assert!(s.min >= 0.0, "{} {a}: negative overhead", w.name);
            assert!(s.max.is_finite());
            assert!(s.t_mean <= s.max + 1e-12);
        }
    }
}

#[test]
fn table_1_shape_matches_paper() {
    // The structural facts Table 1 shows: CTEX- and QCD-analogues have no
    // heap sessions; the BPS-analogue's OneHeap population dwarfs its
    // other session types.
    let tex = analyze(&Workload::by_name("tex").unwrap().scaled_down());
    let qcd = analyze(&Workload::by_name("qcd").unwrap().scaled_down());
    let bps = analyze(&Workload::by_name("bps").unwrap().scaled_down());
    for (name, r) in [("tex", &tex), ("qcd", &qcd)] {
        let kc = r.kind_counts();
        assert_eq!(kc[&SessionKind::OneHeap], 0, "{name}");
        assert_eq!(kc[&SessionKind::AllHeapInFunc], 0, "{name}");
    }
    let kc = bps.kind_counts();
    assert!(
        kc[&SessionKind::OneHeap] > kc[&SessionKind::OneLocalAuto],
        "bps: OneHeap {} should dominate locals {}",
        kc[&SessionKind::OneHeap],
        kc[&SessionKind::OneLocalAuto]
    );
}

#[test]
fn session_descriptions_are_human_readable() {
    let r = analyze(&Workload::by_name("cc").unwrap().scaled_down());
    for s in r.sessions.iter().take(50) {
        let d = s.describe(&r.prepared.plain.debug);
        assert!(d.contains("watch"), "{d}");
        assert!(!d.contains('?'), "unresolved symbol in {d}");
    }
}

#[test]
fn counts_are_internally_consistent() {
    let r = analyze(&Workload::by_name("spice").unwrap().scaled_down());
    let writes = r.prepared.trace.stats().writes;
    for (i, c) in r.counts4.iter().enumerate() {
        assert_eq!(
            c.hit + c.miss,
            writes,
            "session {i}: hit+miss covers all writes"
        );
        assert_eq!(c.install, c.remove, "session {i}: balanced install/remove");
        assert!(c.vm_protect >= c.vm_unprotect.saturating_sub(0));
        assert!(
            c.vm_active_page_miss <= c.miss,
            "session {i}: APM is a subset of misses"
        );
        // 8K pages see at least as many active-page misses as 4K.
        assert!(r.counts8[i].vm_active_page_miss >= c.vm_active_page_miss);
    }
}
