//! The `WmsCounters` migration contract: after a cross-strategy run
//! with telemetry enabled, the global registry's `wms.*` counters must
//! equal the sum of every strategy's legacy per-instance counters.
//!
//! Lives in its own test binary (single `#[test]`) because the global
//! registry is process-wide — nothing else may touch `wms.*` here.

use databp_core::{
    CodePatch, DynamicCodePatch, NativeHardware, RangePlan, TrapPatch, VirtualMemory, Wms,
    WmsCounters,
};
use databp_machine::Machine;
use databp_tinyc::{compile, Compiled, DebugInfo, Options};

const SRC: &str = r#"
    int total;
    int accumulate(int n) {
        int i; int sum;
        sum = 0;
        for (i = 0; i < n; i = i + 1) {
            total = total + i;
            sum = sum + total;
        }
        return sum;
    }
    int main() {
        print_int(accumulate(12));
        return 0;
    }
"#;

fn fresh(opts: &Options) -> (Machine, DebugInfo) {
    let Compiled { program, debug } = compile(SRC, opts).unwrap();
    let mut m = Machine::new();
    m.load(&program);
    (m, debug)
}

fn add(total: &mut WmsCounters, c: WmsCounters) {
    total.installs += c.installs;
    total.removes += c.removes;
    total.lookups += c.lookups;
    total.hits += c.hits;
}

#[test]
fn registry_mirrors_legacy_counters_across_strategies() {
    databp_telemetry::set_enabled(true);
    databp_telemetry::global().reset();

    let plan = RangePlan {
        globals: vec![0],
        ..RangePlan::default()
    };
    let mut legacy = WmsCounters::default();

    let (mut m, d) = fresh(&Options::plain());
    let r = NativeHardware::default()
        .run(&mut m, &d, &plan, 50_000_000)
        .unwrap();
    add(&mut legacy, r.wms_counters);

    let (mut m, d) = fresh(&Options::plain());
    let r = VirtualMemory::k4()
        .run(&mut m, &d, &plan, 50_000_000)
        .unwrap();
    add(&mut legacy, r.wms_counters);

    let (mut m, d) = fresh(&Options::plain());
    let r = VirtualMemory::k8()
        .run(&mut m, &d, &plan, 50_000_000)
        .unwrap();
    add(&mut legacy, r.wms_counters);

    let (mut m, d) = fresh(&Options::plain());
    let r = TrapPatch::default()
        .run(&mut m, &d, &plan, 50_000_000)
        .unwrap();
    add(&mut legacy, r.wms_counters);

    let (mut m, d) = fresh(&Options::codepatch());
    let r = CodePatch::default()
        .run(&mut m, &d, &plan, 50_000_000)
        .unwrap();
    add(&mut legacy, r.wms_counters);

    let (mut m, d) = fresh(&Options::nop_padding());
    let r = DynamicCodePatch::default()
        .run(&mut m, &d, &plan, 50_000_000)
        .unwrap();
    add(&mut legacy, r.wms_counters);

    // Plus one directly driven service instance, so the equality also
    // covers usage outside the strategy drivers.
    let mut w = Wms::new();
    let id = w.install(0x10_0000, 0x10_0010).unwrap();
    assert!(w.check_write(0x10_0000, 0x10_0004, 0));
    assert!(!w.check_write(0x20_0000, 0x20_0004, 4));
    w.remove(id).unwrap();
    add(&mut legacy, w.counters());

    databp_telemetry::set_enabled(false);
    let snap = databp_telemetry::global().snapshot();

    assert!(legacy.installs > 0, "the run must install monitors");
    assert!(legacy.lookups > 0, "the run must perform lookups");
    assert_eq!(snap.counter("wms.installs"), Some(legacy.installs));
    assert_eq!(snap.counter("wms.removes"), Some(legacy.removes));
    assert_eq!(snap.counter("wms.lookups"), Some(legacy.lookups));
    assert_eq!(snap.counter("wms.hits"), Some(legacy.hits));
    // Every strategy tears its monitors down at exit, so the active
    // gauge must balance back to installs − removes.
    assert_eq!(
        snap.gauge("wms.monitors.active"),
        Some(legacy.installs as i64 - legacy.removes as i64)
    );
}
