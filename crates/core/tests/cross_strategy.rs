//! Cross-strategy integration tests: the four executable WMS
//! implementations must agree on *what* they observe (hits,
//! notifications) while differing in *cost*, reproducing the paper's
//! qualitative ordering.

use databp_core::{
    CodePatch, DynamicCodePatch, MonitorPlan, NativeHardware, RangePlan, TrapPatch, VirtualMemory,
    VmContinuation,
};
use databp_machine::Machine;
use databp_tinyc::{compile, Compiled, DebugInfo, Options};

const SRC: &str = r#"
    struct Node { int val; struct Node *next; };
    int total;
    int build_and_sum(int n) {
        struct Node *head;
        struct Node *p;
        int i; int sum;
        head = (struct Node*)0;
        for (i = 0; i < n; i = i + 1) {
            p = (struct Node*)malloc(sizeof(struct Node));
            p->val = i;
            p->next = head;
            head = p;
        }
        sum = 0;
        p = head;
        while (p != (struct Node*)0) {
            sum = sum + p->val;
            head = p->next;
            free((char*)p);
            p = head;
        }
        return sum;
    }
    int main() {
        total = build_and_sum(20);
        print_int(total);
        return 0;
    }
"#;

fn fresh(opts: &Options) -> (Machine, DebugInfo) {
    let Compiled { program, debug } = compile(SRC, opts).unwrap();
    let mut m = Machine::new();
    m.load(&program);
    (m, debug)
}

fn run_all(plan: &dyn MonitorPlan) -> Vec<(String, u64, u64, f64)> {
    let mut out = Vec::new();
    {
        let (mut m, d) = fresh(&Options::plain());
        let r = NativeHardware::default()
            .run(&mut m, &d, plan, 50_000_000)
            .unwrap();
        out.push((
            "NH".into(),
            r.counts.hit,
            r.notification_count,
            r.relative_overhead(),
        ));
        assert_eq!(m.output(), b"190\n");
    }
    {
        let (mut m, d) = fresh(&Options::plain());
        let r = VirtualMemory::k4()
            .run(&mut m, &d, plan, 50_000_000)
            .unwrap();
        out.push((
            "VM-4K".into(),
            r.counts.hit,
            r.notification_count,
            r.relative_overhead(),
        ));
        assert_eq!(m.output(), b"190\n");
    }
    {
        let (mut m, d) = fresh(&Options::plain());
        let r = TrapPatch::default()
            .run(&mut m, &d, plan, 50_000_000)
            .unwrap();
        out.push((
            "TP".into(),
            r.counts.hit,
            r.notification_count,
            r.relative_overhead(),
        ));
        assert_eq!(m.output(), b"190\n");
    }
    {
        let (mut m, d) = fresh(&Options::codepatch());
        let r = CodePatch::default()
            .run(&mut m, &d, plan, 50_000_000)
            .unwrap();
        out.push((
            "CP".into(),
            r.counts.hit,
            r.notification_count,
            r.relative_overhead(),
        ));
        assert_eq!(m.output(), b"190\n");
    }
    {
        let (mut m, d) = fresh(&Options::nop_padding());
        let r = DynamicCodePatch::default()
            .run(&mut m, &d, plan, 50_000_000)
            .unwrap();
        out.push((
            "DynCP".into(),
            r.counts.hit,
            r.notification_count,
            r.relative_overhead(),
        ));
        assert_eq!(m.output(), b"190\n");
    }
    {
        let (mut m, d) = fresh(&Options::plain());
        let r = VirtualMemory::k4()
            .with_continuation(VmContinuation::StepReprotect)
            .run(&mut m, &d, plan, 50_000_000)
            .unwrap();
        out.push((
            "VM-step".into(),
            r.counts.hit,
            r.notification_count,
            r.relative_overhead(),
        ));
        assert_eq!(m.output(), b"190\n");
    }
    out
}

#[test]
fn all_strategies_agree_on_hits_for_global_monitor() {
    let plan = RangePlan {
        globals: vec![0],
        ..RangePlan::default()
    };
    let results = run_all(&plan);
    let hits: Vec<u64> = results.iter().map(|r| r.1).collect();
    assert!(
        hits.iter().all(|&h| h == hits[0]),
        "hit counts diverge: {results:?}"
    );
    assert_eq!(hits[0], 1, "one write to `total`");
    let notifs: Vec<u64> = results.iter().map(|r| r.2).collect();
    assert_eq!(notifs, hits);
}

#[test]
fn all_strategies_agree_on_hits_for_heap_monitor() {
    // Monitor the 3rd heap allocation.
    let plan = RangePlan {
        heap_seqs: vec![2],
        ..RangePlan::default()
    };
    let results = run_all(&plan);
    let hits: Vec<u64> = results.iter().map(|r| r.1).collect();
    assert!(
        hits.iter().all(|&h| h == hits[0]),
        "hit counts diverge: {results:?}"
    );
    // Each node gets val and next written once.
    assert_eq!(hits[0], 2);
}

#[test]
fn all_strategies_agree_on_hits_for_local_monitor() {
    // Monitor `sum` (local of build_and_sum).
    let (_, d) = fresh(&Options::plain());
    let fid = d.func_id("build_and_sum").unwrap();
    let var = d.functions[fid as usize]
        .locals
        .iter()
        .find(|l| l.name == "sum")
        .unwrap()
        .var;
    let plan = RangePlan {
        locals: vec![(fid, var)],
        ..RangePlan::default()
    };
    let results = run_all(&plan);
    let hits: Vec<u64> = results.iter().map(|r| r.1).collect();
    assert!(
        hits.iter().all(|&h| h == hits[0]),
        "hit counts diverge: {results:?}"
    );
    // sum = 0 plus 20 accumulations.
    assert_eq!(hits[0], 21);
}

#[test]
fn qualitative_cost_ordering_matches_paper() {
    // The paper's headline: for typical sessions NH is cheapest, CP is
    // close, and TP/VM are orders of magnitude slower; TP pays for every
    // write.
    let plan = RangePlan {
        globals: vec![0],
        ..RangePlan::default()
    };
    let results = run_all(&plan);
    let get = |name: &str| results.iter().find(|r| r.0 == name).unwrap().3;
    let (nh, vm, tp, cp) = (get("NH"), get("VM-4K"), get("TP"), get("CP"));
    assert!(
        nh < cp,
        "NH ({nh:.3}) should beat CP ({cp:.3}) on a quiet session"
    );
    assert!(
        cp < tp,
        "CP ({cp:.3}) must be far cheaper than TP ({tp:.3})"
    );
    assert!(
        cp < vm,
        "CP ({cp:.3}) must be cheaper than VM ({vm:.3}) here"
    );
    assert!(
        tp / cp > 10.0,
        "TP/CP ratio should be large, got {}",
        tp / cp
    );
}

#[test]
fn notifications_carry_pcs_inside_code_segment() {
    let plan = RangePlan {
        globals: vec![0],
        ..RangePlan::default()
    };
    let (mut m, d) = fresh(&Options::codepatch());
    let r = CodePatch::default()
        .run(&mut m, &d, &plan, 50_000_000)
        .unwrap();
    for n in &r.notifications {
        assert!(n.pc >= databp_machine::CODE_BASE);
        assert!(n.ba < n.ea);
    }
}
