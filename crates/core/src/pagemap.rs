//! The Appendix A.5 address→monitor mapping.
//!
//! "For each page that has an active write monitor we maintain a bitmap;
//! each bit corresponds to a word of memory. Using the page number as a
//! key, the bitmaps are stored in a hash table."
//!
//! The bitmap answers the *timed* question — does this address range
//! intersect any active monitor? — at word granularity (the paper's
//! footnote: monitors are word-aligned at this level; higher layers
//! compensate). Alongside each bitmap we keep the per-page monitor list,
//! which resolves byte-exact hits for notification counting.

use crate::monitor::{Monitor, MonitorId};
use std::collections::HashMap;

/// Bitmap page size in bytes. Fixed at 4 KiB — this is the granularity of
/// the *data structure*, independent of the VirtualMemory strategy's MMU
/// page size.
const PAGE: u32 = 4096;
const WORDS_PER_PAGE: usize = (PAGE / 4) as usize;
const U64S_PER_PAGE: usize = WORDS_PER_PAGE / 64;

#[derive(Debug, Clone, Default)]
struct Bucket {
    bits: [u64; U64S_PER_PAGE],
    entries: Vec<(MonitorId, Monitor)>,
}

impl Bucket {
    fn set_range(&mut self, first_word: usize, last_word: usize) {
        for w in first_word..=last_word {
            self.bits[w / 64] |= 1 << (w % 64);
        }
    }

    fn rebuild(&mut self, page: u32) {
        self.bits = [0; U64S_PER_PAGE];
        let page_base = page * PAGE;
        for i in 0..self.entries.len() {
            let (_, m) = self.entries[i];
            let lo = m.ba.max(page_base);
            let hi = m.ea.min(page_base + PAGE);
            let first = ((lo - page_base) / 4) as usize;
            let last = ((hi - 1 - page_base) / 4) as usize;
            self.set_range(first, last);
        }
    }

    fn any_bit(&self, first_word: usize, last_word: usize) -> bool {
        (first_word..=last_word).any(|w| self.bits[w / 64] & (1 << (w % 64)) != 0)
    }
}

/// The page-bitmap monitor index.
///
/// `lookup` is the operation the paper times as `SoftwareLookupτ`;
/// `install`/`remove` together are `SoftwareUpdateτ`.
#[derive(Debug, Clone, Default)]
pub struct PageMap {
    buckets: HashMap<u32, Bucket>,
    live: usize,
}

impl PageMap {
    /// An empty map.
    pub fn new() -> Self {
        PageMap::default()
    }

    /// Number of installed monitors.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no monitor is installed.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    fn pages(m: &Monitor) -> std::ops::RangeInclusive<u32> {
        (m.ba / PAGE)..=((m.ea - 1) / PAGE)
    }

    /// Installs monitor `m` under identity `id`.
    pub fn install(&mut self, id: MonitorId, m: Monitor) {
        for page in Self::pages(&m) {
            let bucket = self.buckets.entry(page).or_default();
            bucket.entries.push((id, m));
            let page_base = page * PAGE;
            let lo = m.ba.max(page_base);
            let hi = m.ea.min(page_base + PAGE);
            let first = ((lo - page_base) / 4) as usize;
            let last = ((hi - 1 - page_base) / 4) as usize;
            bucket.set_range(first, last);
        }
        self.live += 1;
    }

    /// Removes the monitor installed under `id`. Returns whether it was
    /// present. Bitmaps of affected pages are rebuilt so that overlapping
    /// surviving monitors keep their bits.
    pub fn remove(&mut self, id: MonitorId, m: Monitor) -> bool {
        let mut found = false;
        for page in Self::pages(&m) {
            if let Some(bucket) = self.buckets.get_mut(&page) {
                let before = bucket.entries.len();
                bucket.entries.retain(|(eid, _)| *eid != id);
                if bucket.entries.len() != before {
                    found = true;
                    if bucket.entries.is_empty() {
                        self.buckets.remove(&page);
                    } else {
                        bucket.rebuild(page);
                    }
                }
            }
        }
        if found {
            self.live -= 1;
        }
        found
    }

    /// Word-granular intersection test — the paper's timed
    /// `SoftwareLookup` operation. May report true for writes that touch
    /// a monitored *word* without touching monitored *bytes*.
    pub fn lookup(&self, ba: u32, ea: u32) -> bool {
        if self.live == 0 || ba >= ea {
            return false;
        }
        let mut probes = 0u64;
        let mut hit = false;
        for page in (ba / PAGE)..=((ea - 1) / PAGE) {
            probes += 1;
            if let Some(bucket) = self.buckets.get(&page) {
                let page_base = page * PAGE;
                let lo = ba.max(page_base);
                let hi = ea.min(page_base + PAGE);
                let first = ((lo - page_base) / 4) as usize;
                let last = ((hi - 1 - page_base) / 4) as usize;
                if bucket.any_bit(first, last) {
                    hit = true;
                    break;
                }
            }
        }
        databp_telemetry::observe!("wms.pagemap.probe_depth", &[1, 2, 4, 8, 16], probes);
        hit
    }

    /// Byte-exact hit test: true when the write `[ba, ea)` overlaps an
    /// installed monitor's actual byte range.
    pub fn hit_exact(&self, ba: u32, ea: u32) -> bool {
        self.first_hit(ba, ea).is_some()
    }

    /// Byte-exact resolution: the id of some monitor overlapping the
    /// write, if any.
    pub fn first_hit(&self, ba: u32, ea: u32) -> Option<MonitorId> {
        if self.live == 0 || ba >= ea {
            return None;
        }
        for page in (ba / PAGE)..=((ea - 1) / PAGE) {
            if let Some(bucket) = self.buckets.get(&page) {
                for &(id, m) in &bucket.entries {
                    if m.overlaps(ba, ea) {
                        return Some(id);
                    }
                }
            }
        }
        None
    }

    /// Collects every monitor id overlapping the write (deduplicated).
    pub fn hits(&self, ba: u32, ea: u32, out: &mut Vec<MonitorId>) {
        out.clear();
        if self.live == 0 || ba >= ea {
            return;
        }
        for page in (ba / PAGE)..=((ea - 1) / PAGE) {
            if let Some(bucket) = self.buckets.get(&page) {
                for &(id, m) in &bucket.entries {
                    if m.overlaps(ba, ea) && !out.contains(&id) {
                        out.push(id);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(ba: u32, ea: u32) -> Monitor {
        Monitor::new(ba, ea).unwrap()
    }

    #[test]
    fn install_lookup_remove() {
        let mut pm = PageMap::new();
        pm.install(MonitorId(1), m(0x1000, 0x1010));
        assert!(pm.lookup(0x1000, 0x1004));
        assert!(pm.lookup(0x100c, 0x1010));
        assert!(!pm.lookup(0x1010, 0x1014));
        assert!(!pm.lookup(0x0ff0, 0x0ff4));
        assert!(pm.remove(MonitorId(1), m(0x1000, 0x1010)));
        assert!(pm.is_empty());
        assert!(!pm.lookup(0x1000, 0x1004));
    }

    #[test]
    fn word_granularity_false_positive_documented() {
        let mut pm = PageMap::new();
        // Monitor a single byte in the middle of a word.
        pm.install(MonitorId(1), m(0x1001, 0x1002));
        // A write to the first byte of the same word: word-granular
        // lookup says true; byte-exact says false.
        assert!(pm.lookup(0x1000, 0x1001));
        assert!(!pm.hit_exact(0x1000, 0x1001));
        assert!(pm.hit_exact(0x1001, 0x1002));
    }

    #[test]
    fn monitor_spanning_pages() {
        let mut pm = PageMap::new();
        pm.install(MonitorId(9), m(0x0ffc, 0x2004)); // spans 3 pages
        assert!(pm.lookup(0x0ffc, 0x1000));
        assert!(pm.lookup(0x1800, 0x1804));
        assert!(pm.lookup(0x2000, 0x2004));
        assert!(!pm.lookup(0x2004, 0x2008));
        assert!(pm.remove(MonitorId(9), m(0x0ffc, 0x2004)));
        assert!(!pm.lookup(0x1800, 0x1804));
    }

    #[test]
    fn overlapping_monitors_survive_removal() {
        let mut pm = PageMap::new();
        pm.install(MonitorId(1), m(0x1000, 0x1020));
        pm.install(MonitorId(2), m(0x1010, 0x1030));
        assert!(pm.remove(MonitorId(1), m(0x1000, 0x1020)));
        // The overlap region must still be monitored by id 2.
        assert!(pm.lookup(0x1010, 0x1014));
        assert!(pm.hit_exact(0x1018, 0x101c));
        assert!(!pm.lookup(0x1000, 0x1004));
        assert_eq!(pm.len(), 1);
    }

    #[test]
    fn removing_unknown_id_is_false() {
        let mut pm = PageMap::new();
        pm.install(MonitorId(1), m(0, 4));
        assert!(!pm.remove(MonitorId(2), m(0, 4)));
        assert_eq!(pm.len(), 1);
    }

    #[test]
    fn hits_resolution_dedupes_across_pages() {
        let mut pm = PageMap::new();
        pm.install(MonitorId(5), m(0x0ff0, 0x1010)); // two pages
        let mut out = Vec::new();
        pm.hits(0x0ff0, 0x1010, &mut out);
        assert_eq!(out, vec![MonitorId(5)]);
    }

    #[test]
    fn multiple_hits_reported() {
        let mut pm = PageMap::new();
        pm.install(MonitorId(1), m(0x100, 0x108));
        pm.install(MonitorId(2), m(0x104, 0x10c));
        let mut out = Vec::new();
        pm.hits(0x104, 0x108, &mut out);
        out.sort();
        assert_eq!(out, vec![MonitorId(1), MonitorId(2)]);
        assert!(pm.first_hit(0x104, 0x108).is_some());
    }

    #[test]
    fn empty_range_never_hits() {
        let mut pm = PageMap::new();
        pm.install(MonitorId(1), m(0x100, 0x200));
        assert!(!pm.lookup(0x150, 0x150));
        assert!(!pm.hit_exact(0x150, 0x150));
    }
}
