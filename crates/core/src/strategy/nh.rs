//! NativeHardware: watchpoint registers in the processor (Section 3.1,
//! Figure 3).

use super::{drive, Mechanism};
use crate::plan::MonitorPlan;
use crate::strategy::report::StrategyReport;
use databp_machine::{
    Machine, MachineError, StopConfig, StopReason, WatchRegs, DEFAULT_WATCH_REGS,
};
use databp_models::{Approach, TimingVar, TimingVars};
use databp_tinyc::DebugInfo;

/// The NativeHardware strategy.
///
/// Installing or removing a monitor programs a watch register at
/// negligible cost ("the monitor hardware is accessible to user programs
/// and we assume the cost to update it can be safely ignored"); every hit
/// costs one `NHFaultHandlerτ`. Monitor misses are free — that is the
/// whole attraction.
///
/// The catch the paper emphasizes: real processors have at most
/// [`DEFAULT_WATCH_REGS`] registers. Construct with `regs: None` for the
/// paper's idealized unlimited bank, or `Some(n)` to study coverage
/// ([`StrategyReport::watch_exhausted`] reports sessions hardware could
/// not fully support).
#[derive(Debug, Clone, Copy, Default)]
pub struct NativeHardware {
    /// Watch-register capacity; `None` = unlimited (the paper's
    /// hypothetical SPARCstation extension).
    pub regs: Option<usize>,
    /// Primitive costs.
    pub timing: TimingVars,
}

impl NativeHardware {
    /// A bank with the era's realistic capacity (four registers).
    pub fn realistic() -> Self {
        NativeHardware {
            regs: Some(DEFAULT_WATCH_REGS),
            timing: TimingVars::default(),
        }
    }

    /// Runs a freshly loaded machine under this strategy.
    ///
    /// # Errors
    ///
    /// Any [`MachineError`] from the run.
    pub fn run(
        &self,
        machine: &mut Machine,
        debug: &DebugInfo,
        plan: &dyn MonitorPlan,
        max_steps: u64,
    ) -> Result<StrategyReport, MachineError> {
        let mut mech = NhMech { opts: *self };
        drive(
            &mut mech,
            machine,
            debug,
            plan,
            max_steps,
            StrategyReport::new(Approach::Nh),
        )
    }
}

struct NhMech {
    opts: NativeHardware,
}

impl Mechanism for NhMech {
    fn stop_config(&self) -> StopConfig {
        StopConfig::default()
    }

    fn prepare(&mut self, m: &mut Machine, _debug: &DebugInfo) -> Result<(), MachineError> {
        m.set_watch_regs(match self.opts.regs {
            None => WatchRegs::unlimited(),
            Some(n) => WatchRegs::new(n),
        });
        Ok(())
    }

    fn install(&mut self, m: &mut Machine, ba: u32, ea: u32, rep: &mut StrategyReport) {
        // Programming a register is free per the Figure 3 model.
        if m.watch_mut().install(ba, ea).is_none() {
            rep.watch_exhausted = true;
        }
    }

    fn remove(&mut self, m: &mut Machine, ba: u32, ea: u32, _rep: &mut StrategyReport) {
        // May be absent when install was refused at capacity.
        let _ = m.watch_mut().remove_range(ba, ea);
    }

    fn handle(
        &mut self,
        _m: &mut Machine,
        _debug: &DebugInfo,
        stop: StopReason,
        rep: &mut StrategyReport,
    ) -> Result<(), MachineError> {
        match stop {
            StopReason::WatchFault(f) => {
                // The write has committed; notify and continue.
                rep.counts.hit += 1;
                rep.overhead
                    .add(TimingVar::NhFaultHandler, self.opts.timing.nh_fault_us);
                rep.notify(crate::monitor::Notification {
                    ba: f.addr,
                    ea: f.addr + f.len,
                    pc: f.pc,
                });
                Ok(())
            }
            other => unreachable!("NativeHardware received unexpected stop {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::RangePlan;
    use databp_tinyc::{compile, Options};

    const SRC: &str = r#"
        int g;
        int h;
        int main() {
            int i;
            for (i = 0; i < 10; i = i + 1) g = g + 1;
            h = 5;
            return g;
        }
    "#;

    fn load(src: &str) -> (Machine, DebugInfo) {
        let c = compile(src, &Options::plain()).unwrap();
        let mut m = Machine::new();
        m.load(&c.program);
        (m, c.debug)
    }

    #[test]
    fn counts_hits_on_watched_global() {
        let (mut m, debug) = load(SRC);
        let plan = RangePlan {
            globals: vec![0],
            ..RangePlan::default()
        };
        let rep = NativeHardware::default()
            .run(&mut m, &debug, &plan, 1_000_000)
            .unwrap();
        assert_eq!(rep.counts.hit, 10, "ten writes to g");
        assert_eq!(rep.counts.miss, 0, "NH never sees misses");
        assert_eq!(rep.notification_count, 10);
        assert!(!rep.watch_exhausted);
        assert_eq!(rep.counts.install, 1);
        assert_eq!(rep.counts.remove, 1);
        let expected = 10.0 * TimingVars::default().nh_fault_us;
        assert!((rep.overhead.total_us() - expected).abs() < 1e-9);
        assert!(rep.base_us > 0.0);
    }

    #[test]
    fn program_behaviour_unchanged_by_monitoring() {
        let (mut m, debug) = load(SRC);
        let plan = RangePlan {
            globals: vec![0, 1],
            ..RangePlan::default()
        };
        NativeHardware::default()
            .run(&mut m, &debug, &plan, 1_000_000)
            .unwrap();
        assert_eq!(m.exit_code(), 10);
    }

    #[test]
    fn capacity_exhaustion_flagged() {
        // Monitor many locals of one function with only 1 register.
        let src = r#"
            int f() { int a; int b; int c; a = 1; b = 2; c = 3; return a + b + c; }
            int main() { return f(); }
        "#;
        let (mut m, debug) = load(src);
        let plan = RangePlan {
            locals: vec![(0, 0), (0, 1), (0, 2)],
            ..RangePlan::default()
        };
        let nh = NativeHardware {
            regs: Some(1),
            timing: TimingVars::default(),
        };
        let rep = nh.run(&mut m, &debug, &plan, 1_000_000).unwrap();
        assert!(
            rep.watch_exhausted,
            "three monitors cannot fit one register"
        );
        // Only the first local's write is caught.
        assert_eq!(rep.counts.hit, 1);
    }

    #[test]
    fn unlimited_bank_covers_everything() {
        let src = r#"
            int f() { int a; int b; int c; a = 1; b = 2; c = 3; return a + b + c; }
            int main() { return f(); }
        "#;
        let (mut m, debug) = load(src);
        let plan = RangePlan {
            locals: vec![(0, 0), (0, 1), (0, 2)],
            ..RangePlan::default()
        };
        let rep = NativeHardware::default()
            .run(&mut m, &debug, &plan, 1_000_000)
            .unwrap();
        assert!(!rep.watch_exhausted);
        assert_eq!(rep.counts.hit, 3);
    }
}
