//! TrapPatch: every write instruction replaced by a trap (Section 3.3,
//! Figure 5).

use super::{drive, Mechanism};
use crate::monitor::Notification;
use crate::plan::MonitorPlan;
use crate::service::Wms;
use crate::strategy::report::StrategyReport;
use databp_machine::{Instr, Machine, MachineError, NoHooks, StopConfig, StopReason, TP_TRAP_BASE};
use databp_models::{Approach, TimingVar, TimingVars};
use databp_tinyc::DebugInfo;
use std::collections::HashMap;

/// The TrapPatch strategy — how `gdb` and `dbx` of the era implemented
/// watchpoints in software.
///
/// At "compile time" (here: once, before the run) every traced write
/// instruction in the image is overwritten with a trap word. The trap
/// handler looks up the displaced store's target in the software map and
/// emulates the store out of line. Every checked write — hit *or* miss —
/// pays `TPFaultHandlerτ + SoftwareLookupτ`, which is why the paper finds
/// it "unacceptably slow for most debugging applications".
#[derive(Debug, Clone, Copy, Default)]
pub struct TrapPatch {
    /// Primitive costs.
    pub timing: TimingVars,
}

impl TrapPatch {
    /// Runs a freshly loaded machine under this strategy (the image is
    /// patched in place).
    ///
    /// # Errors
    ///
    /// Any [`MachineError`] from patching or the run.
    pub fn run(
        &self,
        machine: &mut Machine,
        debug: &DebugInfo,
        plan: &dyn MonitorPlan,
        max_steps: u64,
    ) -> Result<StrategyReport, MachineError> {
        let mut mech = TpMech {
            opts: *self,
            wms: Wms::new(),
            patches: HashMap::new(),
        };
        let mut rep = drive(
            &mut mech,
            machine,
            debug,
            plan,
            max_steps,
            StrategyReport::new(Approach::Tp),
        )?;
        rep.wms_counters = mech.wms.counters();
        Ok(rep)
    }
}

struct TpMech {
    opts: TrapPatch,
    wms: Wms,
    /// Displaced instructions by trap pc.
    patches: HashMap<u32, Instr>,
}

impl Mechanism for TpMech {
    fn stop_config(&self) -> StopConfig {
        StopConfig::default()
    }

    fn prepare(&mut self, m: &mut Machine, debug: &DebugInfo) -> Result<(), MachineError> {
        // Replace every traced store with a trap, remembering the
        // displaced word (the paper's compile-time patching).
        for idx in 0..m.code_len() {
            let instr = m.instr_at(idx)?;
            if instr.is_store() {
                let pc = databp_machine::CODE_BASE + 4 * idx as u32;
                if !debug.is_untraced_store(pc) {
                    let orig = m.patch_instr(idx, Instr::Trap(TP_TRAP_BASE))?;
                    self.patches.insert(pc, orig);
                }
            }
        }
        Ok(())
    }

    fn install(&mut self, _m: &mut Machine, ba: u32, ea: u32, rep: &mut StrategyReport) {
        self.wms
            .install(ba, ea)
            .expect("tracker ranges are non-empty");
        rep.overhead.add(
            TimingVar::SoftwareUpdate,
            self.opts.timing.software_update_us,
        );
    }

    fn remove(&mut self, _m: &mut Machine, ba: u32, ea: u32, rep: &mut StrategyReport) {
        self.wms
            .remove_range(ba, ea)
            .expect("removed monitor was installed");
        rep.overhead.add(
            TimingVar::SoftwareUpdate,
            self.opts.timing.software_update_us,
        );
    }

    fn handle(
        &mut self,
        m: &mut Machine,
        _debug: &DebugInfo,
        stop: StopReason,
        rep: &mut StrategyReport,
    ) -> Result<(), MachineError> {
        match stop {
            StopReason::Trap { code, pc } if code == TP_TRAP_BASE => {
                let orig = *self.patches.get(&pc).expect("trap at patched pc");
                // The handler decodes the displaced store to find its
                // effective address.
                let (addr, len) = match orig {
                    Instr::Sw(_, base, imm) => {
                        (m.cpu().read(base).wrapping_add(imm as i32 as u32), 4)
                    }
                    Instr::Sb(_, base, imm) => {
                        (m.cpu().read(base).wrapping_add(imm as i32 as u32), 1)
                    }
                    other => unreachable!("patched instruction was not a store: {other:?}"),
                };
                let t = &self.opts.timing;
                rep.overhead.add(TimingVar::TpFaultHandler, t.tp_fault_us);
                rep.overhead
                    .add(TimingVar::SoftwareLookup, t.software_lookup_us);
                if self.wms.check_write(addr, addr + len, pc) {
                    rep.counts.hit += 1;
                    rep.notify(Notification {
                        ba: addr,
                        ea: addr + len,
                        pc,
                    });
                } else {
                    rep.counts.miss += 1;
                }
                m.emulate_instr(orig, &mut NoHooks)?;
                Ok(())
            }
            other => unreachable!("TrapPatch received unexpected stop {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{NoMonitors, RangePlan};
    use databp_tinyc::{compile, Options};

    const SRC: &str = r#"
        int g;
        int h;
        int main() {
            int i;
            for (i = 0; i < 10; i = i + 1) g = g + 1;
            h = 3;
            return g + h;
        }
    "#;

    fn load(src: &str) -> (Machine, DebugInfo) {
        let c = compile(src, &Options::plain()).unwrap();
        let mut m = Machine::new();
        m.load(&c.program);
        (m, c.debug)
    }

    #[test]
    fn every_traced_write_is_checked() {
        let (mut m, debug) = load(SRC);
        let plan = RangePlan {
            globals: vec![0],
            ..RangePlan::default()
        };
        let rep = TrapPatch::default()
            .run(&mut m, &debug, &plan, 10_000_000)
            .unwrap();
        assert_eq!(rep.counts.hit, 10);
        // Every other traced store is a (costed) miss: i=0 + 10×(i=i+1)
        // + h=3 = 12.
        assert_eq!(rep.counts.miss, 12);
        assert_eq!(m.exit_code(), 13, "emulation preserves results");
        // Overhead matches the Figure 5 equation on the same counts.
        let model = databp_models::overhead(Approach::Tp, &rep.counts, &TimingVars::default());
        assert!((rep.overhead.total_us() - model.total_us()).abs() < 1e-6);
    }

    #[test]
    fn misses_cost_even_with_no_monitors() {
        let (mut m, debug) = load(SRC);
        let rep = TrapPatch::default()
            .run(&mut m, &debug, &NoMonitors, 10_000_000)
            .unwrap();
        assert_eq!(rep.counts.hit, 0);
        assert_eq!(rep.counts.miss, 22);
        assert!(
            rep.overhead.total_us() > 0.0,
            "TP pays for every write regardless"
        );
    }

    #[test]
    fn untraced_stores_not_patched() {
        let (mut m, debug) = load(SRC);
        let mut mech = TpMech {
            opts: TrapPatch::default(),
            wms: Wms::new(),
            patches: HashMap::new(),
        };
        mech.prepare(&mut m, &debug).unwrap();
        for &pc in &debug.untraced_store_pcs {
            assert!(!mech.patches.contains_key(&pc), "{pc:#x} must stay a store");
        }
        assert_eq!(mech.patches.len() as u32, debug.traced_store_count);
    }
}
