//! Executable WMS strategies.
//!
//! Each strategy drives a loaded program on the simulated machine,
//! maintains monitors according to a [`MonitorPlan`], counts the paper's
//! counting variables as they happen, and charges the Table 2 timing
//! costs *as it goes* — so an executable run and the analytical model
//! evaluated on the same counts must agree (a property the integration
//! tests verify).
//!
//! Strategy contract: the caller loads the right program variant into the
//! machine (plain code for NativeHardware/VirtualMemory/TrapPatch,
//! CodePatch-instrumented code for CodePatch), then calls `run` exactly
//! once per load.

mod cp;
mod dyncp;
mod nh;
mod report;
mod tp;
mod vm;

pub use cp::CodePatch;
pub use dyncp::{DynamicCodePatch, PATCH_SITE_US};
pub use nh::NativeHardware;
pub use report::{StrategyReport, MAX_CAPTURED_NOTIFICATIONS};
pub use tp::TrapPatch;
pub use vm::{VirtualMemory, VmContinuation};

use crate::plan::MonitorPlan;
use crate::tracker::SessionTracker;
use databp_machine::{Machine, MachineError, MarkKind, NoHooks, StopConfig, StopReason};
use databp_models::Approach;
use databp_tinyc::DebugInfo;

/// The strategy-specific half of the driver: how monitors are realized
/// and how strategy-owned stops are serviced.
trait Mechanism {
    /// Extra stop events this mechanism needs (beyond marks and heap).
    fn stop_config(&self) -> StopConfig;

    /// One-time setup: patch code, configure MMU/watch registers.
    fn prepare(&mut self, m: &mut Machine, debug: &DebugInfo) -> Result<(), MachineError>;

    /// Realize a monitor over `[ba, ea)`.
    fn install(&mut self, m: &mut Machine, ba: u32, ea: u32, rep: &mut StrategyReport);

    /// Tear down the monitor over `[ba, ea)`.
    fn remove(&mut self, m: &mut Machine, ba: u32, ea: u32, rep: &mut StrategyReport);

    /// Service a stop the shared driver does not understand
    /// (faults/traps/checks).
    fn handle(
        &mut self,
        m: &mut Machine,
        debug: &DebugInfo,
        stop: StopReason,
        rep: &mut StrategyReport,
    ) -> Result<(), MachineError>;
}

/// The shared driver loop: runs the program to completion, routing
/// object-lifetime stops through the [`SessionTracker`] and everything
/// else to the mechanism.
fn drive<M: Mechanism>(
    mech: &mut M,
    machine: &mut Machine,
    debug: &DebugInfo,
    plan: &dyn MonitorPlan,
    max_steps: u64,
    mut rep: StrategyReport,
) -> Result<StrategyReport, MachineError> {
    mech.prepare(machine, debug)?;
    let mut cfg = mech.stop_config();
    cfg.marks = true;
    cfg.heap = true;
    machine.set_stop_config(cfg);

    let mut tracker = SessionTracker::new(debug, plan);
    for (ba, ea) in tracker.initial_installs() {
        mech.install(machine, ba, ea, &mut rep);
        rep.counts.install += 1;
    }

    loop {
        let executed = machine.cost().instructions;
        if executed >= max_steps {
            return Err(MachineError::StepLimitExceeded { limit: max_steps });
        }
        match machine.run(&mut NoHooks, max_steps - executed)? {
            StopReason::Halted => break,
            StopReason::Mark {
                kind: MarkKind::Enter,
                fid,
                fp,
                ..
            } => {
                for (ba, ea) in tracker.enter(fid, fp) {
                    mech.install(machine, ba, ea, &mut rep);
                    rep.counts.install += 1;
                }
            }
            StopReason::Mark {
                kind: MarkKind::Exit,
                fid,
                ..
            } => {
                for (ba, ea) in tracker.exit(fid) {
                    mech.remove(machine, ba, ea, &mut rep);
                    rep.counts.remove += 1;
                }
            }
            StopReason::HeapAlloc { seq, ba, ea } => {
                if let Some((ba, ea)) = tracker.heap_alloc(plan, seq, ba, ea) {
                    mech.install(machine, ba, ea, &mut rep);
                    rep.counts.install += 1;
                }
            }
            StopReason::HeapFree { seq, .. } => {
                if let Some((ba, ea)) = tracker.heap_free(seq) {
                    mech.remove(machine, ba, ea, &mut rep);
                    rep.counts.remove += 1;
                }
            }
            StopReason::HeapRealloc {
                seq,
                new_ba,
                new_ea,
                ..
            } => {
                let (rem, ins) = tracker.heap_realloc(seq, new_ba, new_ea);
                if let Some((ba, ea)) = rem {
                    mech.remove(machine, ba, ea, &mut rep);
                    rep.counts.remove += 1;
                }
                if let Some((ba, ea)) = ins {
                    mech.install(machine, ba, ea, &mut rep);
                    rep.counts.install += 1;
                }
            }
            other => mech.handle(machine, debug, other, &mut rep)?,
        }
    }

    // Program over: the debugger removes whatever is still installed
    // (matching the tracer's finish() accounting, so executable counts
    // line up with trace-simulated counts).
    for (ba, ea) in tracker.outstanding() {
        mech.remove(machine, ba, ea, &mut rep);
        rep.counts.remove += 1;
    }

    rep.base_us = machine.cost().total_us(machine.cost_model());
    rep.instructions = machine.cost().instructions;
    record_strategy_telemetry(&rep);
    Ok(rep)
}

/// Per-strategy run and charged-cost counters (whole microseconds, as
/// charged against the Table 2 timing variables during the run).
fn record_strategy_telemetry(rep: &StrategyReport) {
    if !databp_telemetry::enabled() {
        return;
    }
    let Some(approach) = rep.approach else { return };
    let (runs, charged) = match approach {
        Approach::Nh => ("strategy.nh.runs", "strategy.nh.charged_us"),
        Approach::Vm4k => ("strategy.vm4k.runs", "strategy.vm4k.charged_us"),
        Approach::Vm8k => ("strategy.vm8k.runs", "strategy.vm8k.charged_us"),
        Approach::Tp => ("strategy.tp.runs", "strategy.tp.charged_us"),
        Approach::Cp => ("strategy.cp.runs", "strategy.cp.charged_us"),
    };
    let reg = databp_telemetry::global();
    reg.counter(runs).inc_always();
    reg.counter(charged)
        .add_always(rep.overhead.total_us() as u64);
    if matches!(approach, Approach::Cp) {
        reg.counter("cp.stores_elided")
            .add_always(rep.elided_lookups);
        reg.counter("cp.stores_hoisted")
            .add_always(rep.hoisted_lookups);
        let checked = rep
            .counts
            .writes()
            .saturating_sub(rep.skipped_lookups)
            .saturating_sub(rep.elided_lookups)
            .saturating_sub(rep.hoisted_lookups)
            .saturating_sub(rep.pred_dead_skips);
        reg.counter("cp.stores_checked").add_always(checked);
        if rep.pred_filtered > 0 || rep.pred_fired > 0 || rep.pred_dead_skips > 0 {
            // Predicate filtering totals (pred-dead skips are filtered
            // candidates the strategy never even looked up).
            reg.counter("cp.pred_filtered")
                .add_always(rep.pred_filtered + rep.pred_dead_skips);
            reg.counter("cp.pred_fired").add_always(rep.pred_fired);
        }
    }
}
