//! VirtualMemory: page protection + write-fault handler (Section 3.2,
//! Figure 4).

use super::{drive, Mechanism};
use crate::monitor::Notification;
use crate::plan::MonitorPlan;
use crate::predicate::{CompiledPredicate, PredEval, WriterMap};
use crate::service::Wms;
use crate::strategy::report::StrategyReport;
use databp_machine::{Machine, MachineError, NoHooks, PageSize, StopConfig, StopReason};
use databp_models::{Approach, TimingVar, TimingVars};
use databp_tinyc::DebugInfo;
use std::collections::HashMap;

/// How the VirtualMemory fault handler continues past the faulting store
/// (Section 3.2 describes both).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VmContinuation {
    /// "An alternative is for the WMS to emulate the faulting
    /// instruction." — perform the store in the handler, leaving the page
    /// protected throughout.
    #[default]
    Emulate,
    /// "This may be accomplished by unprotecting the necessary pages,
    /// single-stepping the program, and reprotecting the pages." — the
    /// control flow the paper's Appendix A.2 microbenchmark actually
    /// times.
    StepReprotect,
}

/// The VirtualMemory strategy.
///
/// Installing a monitor write-protects every page it touches; a store to
/// a protected page faults, the handler looks the address up in the
/// software map, notifies on a hit, and continues past the faulting
/// instruction by one of the two Section 3.2 mechanisms
/// ([`VmContinuation`]; both are folded into the measured
/// `VMFaultHandlerτ`, so they cost the same and must behave the same).
/// Writes that share a page with a monitor but miss it —
/// `VMActivePageMissσ` — pay the full fault cost anyway, which is where
/// this strategy's pathological sessions come from.
#[derive(Debug, Clone, Copy)]
pub struct VirtualMemory {
    /// MMU page size (the paper studies 4 KiB and 8 KiB).
    pub page_size: PageSize,
    /// Fault continuation mechanism.
    pub continuation: VmContinuation,
    /// Primitive costs.
    pub timing: TimingVars,
}

impl VirtualMemory {
    /// VM-4K.
    pub fn k4() -> Self {
        VirtualMemory {
            page_size: PageSize::K4,
            continuation: VmContinuation::default(),
            timing: TimingVars::default(),
        }
    }

    /// VM-8K.
    pub fn k8() -> Self {
        VirtualMemory {
            page_size: PageSize::K8,
            continuation: VmContinuation::default(),
            timing: TimingVars::default(),
        }
    }

    /// The same strategy using the unprotect/single-step/reprotect
    /// continuation.
    pub fn with_continuation(mut self, c: VmContinuation) -> Self {
        self.continuation = c;
        self
    }

    fn approach(&self) -> Approach {
        // The paper's analytical models only distinguish VM-4K and
        // VM-8K; executable runs at the ladder's coarser page sizes
        // report under the nearest modeled approach.
        match self.page_size {
            PageSize::K4 => Approach::Vm4k,
            _ => Approach::Vm8k,
        }
    }

    /// Runs a freshly loaded machine under this strategy.
    ///
    /// # Errors
    ///
    /// Any [`MachineError`] from the run.
    pub fn run(
        &self,
        machine: &mut Machine,
        debug: &DebugInfo,
        plan: &dyn MonitorPlan,
        max_steps: u64,
    ) -> Result<StrategyReport, MachineError> {
        self.run_with_predicate(machine, debug, plan, None, max_steps)
    }

    /// Like [`VirtualMemory::run`], with an optional monitor predicate:
    /// faulting writes that hit a monitor notify only when the predicate
    /// holds (the fault and lookup costs are paid either way — a page
    /// fault cannot be elided statically). The predicate must be
    /// compiled against the same program.
    ///
    /// # Errors
    ///
    /// Any [`MachineError`] from the run.
    pub fn run_with_predicate(
        &self,
        machine: &mut Machine,
        debug: &DebugInfo,
        plan: &dyn MonitorPlan,
        predicate: Option<CompiledPredicate>,
        max_steps: u64,
    ) -> Result<StrategyReport, MachineError> {
        let writers = WriterMap::new(
            debug
                .functions
                .iter()
                .enumerate()
                .map(|(id, f)| (f.entry_pc, id as u16)),
        );
        let mut mech = VmMech {
            opts: *self,
            wms: Wms::new(),
            page_counts: HashMap::new(),
            pred: predicate.map(PredEval::new),
            writers,
        };
        let mut rep = drive(
            &mut mech,
            machine,
            debug,
            plan,
            max_steps,
            StrategyReport::new(self.approach()),
        )?;
        rep.wms_counters = mech.wms.counters();
        Ok(rep)
    }
}

struct VmMech {
    opts: VirtualMemory,
    wms: Wms,
    /// Active monitor count per MMU page.
    page_counts: HashMap<u32, u32>,
    /// The session predicate's stateful evaluator.
    pred: Option<PredEval>,
    /// pc → owning function, for `writer in f` filters.
    writers: WriterMap,
}

impl Mechanism for VmMech {
    fn stop_config(&self) -> StopConfig {
        StopConfig::default()
    }

    fn prepare(&mut self, m: &mut Machine, _debug: &DebugInfo) -> Result<(), MachineError> {
        m.set_page_size(self.opts.page_size);
        Ok(())
    }

    fn install(&mut self, m: &mut Machine, ba: u32, ea: u32, rep: &mut StrategyReport) {
        let t = &self.opts.timing;
        self.wms
            .install(ba, ea)
            .expect("tracker ranges are non-empty");
        // Figure 4: toggling the (read-only) WMS data page around the
        // update, plus protecting pages that newly gained a monitor.
        rep.overhead.add(TimingVar::VmUnprotect, t.vm_unprotect_us);
        rep.overhead
            .add(TimingVar::SoftwareUpdate, t.software_update_us);
        rep.overhead.add(TimingVar::VmProtect, t.vm_protect_us);
        for page in self.opts.page_size.pages_of_range(ba, ea) {
            let cnt = self.page_counts.entry(page).or_insert(0);
            *cnt += 1;
            if *cnt == 1 {
                rep.counts.vm_protect += 1;
                rep.overhead.add(TimingVar::VmProtect, t.vm_protect_us);
                m.mmu_mut().protect_page(page);
            }
        }
    }

    fn remove(&mut self, m: &mut Machine, ba: u32, ea: u32, rep: &mut StrategyReport) {
        let t = &self.opts.timing;
        self.wms
            .remove_range(ba, ea)
            .expect("removed monitor was installed");
        rep.overhead.add(TimingVar::VmUnprotect, t.vm_unprotect_us);
        rep.overhead
            .add(TimingVar::SoftwareUpdate, t.software_update_us);
        rep.overhead.add(TimingVar::VmProtect, t.vm_protect_us);
        for page in self.opts.page_size.pages_of_range(ba, ea) {
            let cnt = self
                .page_counts
                .get_mut(&page)
                .expect("removal of monitor whose pages were counted");
            *cnt -= 1;
            if *cnt == 0 {
                self.page_counts.remove(&page);
                rep.counts.vm_unprotect += 1;
                rep.overhead.add(TimingVar::VmUnprotect, t.vm_unprotect_us);
                m.mmu_mut().unprotect_page(page);
            }
        }
    }

    fn handle(
        &mut self,
        m: &mut Machine,
        debug: &DebugInfo,
        stop: StopReason,
        rep: &mut StrategyReport,
    ) -> Result<(), MachineError> {
        match stop {
            StopReason::ProtFault(f) => {
                if !debug.is_untraced_store(f.pc) {
                    let t = &self.opts.timing;
                    rep.overhead.add(TimingVar::VmFaultHandler, t.vm_fault_us);
                    rep.overhead
                        .add(TimingVar::SoftwareLookup, t.software_lookup_us);
                    if self.wms.check_write(f.addr, f.addr + f.len, f.pc) {
                        rep.counts.hit += 1;
                        // The fault is pre-commit: the Fault's masked
                        // value/old pair is exactly what the write will
                        // make true, matching what CodePatch's check
                        // observes at its chk.
                        let ev = f.store_event();
                        let fire = match self.pred.as_mut() {
                            Some(pe) => {
                                let fire =
                                    pe.observe(ev.value, ev.old, self.writers.writer_of(f.pc));
                                if fire {
                                    rep.pred_fired += 1;
                                } else {
                                    rep.pred_filtered += 1;
                                }
                                fire
                            }
                            None => true,
                        };
                        if fire {
                            rep.notify(Notification {
                                ba: f.addr,
                                ea: f.addr + f.len,
                                pc: f.pc,
                            });
                        }
                    } else {
                        rep.counts.vm_active_page_miss += 1;
                    }
                }
                // Continue past the faulting store (implicit stores are
                // serviced for free, matching the paper's exclusion of
                // register spills from the study).
                match self.opts.continuation {
                    VmContinuation::Emulate => {
                        m.emulate_pending_store(&mut NoHooks)?;
                    }
                    VmContinuation::StepReprotect => {
                        let ps = self.opts.page_size;
                        let protected: Vec<u32> = ps
                            .pages_of_range(f.addr, f.addr + f.len)
                            .filter(|&p| m.mmu().is_protected(p))
                            .collect();
                        for &p in &protected {
                            m.mmu_mut().unprotect_page(p);
                        }
                        // Single step: re-executes the (now permitted)
                        // faulting store and advances past it.
                        let stop = m.step(&mut NoHooks)?;
                        debug_assert!(stop.is_none(), "single step must not re-fault: {stop:?}");
                        for &p in &protected {
                            m.mmu_mut().protect_page(p);
                        }
                    }
                }
                Ok(())
            }
            other => unreachable!("VirtualMemory received unexpected stop {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::RangePlan;
    use databp_tinyc::{compile, Options};

    const SRC: &str = r#"
        int g;
        int h;
        int main() {
            int i;
            for (i = 0; i < 10; i = i + 1) g = g + 1;
            for (i = 0; i < 5; i = i + 1) h = h + 1;
            return g + h;
        }
    "#;

    fn load(src: &str) -> (Machine, DebugInfo) {
        let c = compile(src, &Options::plain()).unwrap();
        let mut m = Machine::new();
        m.load(&c.program);
        (m, c.debug)
    }

    #[test]
    fn predicate_filters_vm_notifications_and_agrees_with_cp() {
        let plan = RangePlan {
            globals: vec![0],
            ..RangePlan::default()
        };
        let pred = |d: &DebugInfo| {
            crate::predicate::Predicate::parse("value > 5")
                .unwrap()
                .compile(|n| d.func_id(n))
                .unwrap()
        };
        let (mut m, debug) = load(SRC);
        let rep = VirtualMemory::k4()
            .run_with_predicate(&mut m, &debug, &plan, Some(pred(&debug)), 10_000_000)
            .unwrap();
        // g counts 1..=10; only 6..=10 pass. Filtered candidates still
        // count as WMS hits and still pay the fault + lookup.
        assert_eq!(rep.counts.hit, 10);
        assert_eq!(rep.pred_fired, 5);
        assert_eq!(rep.pred_filtered, 5);
        assert_eq!(rep.notification_count, 5);

        // CodePatch under the same predicate delivers the same
        // notification sequence (same addresses, same order) even
        // though its checks observe the value at the chk instead of at
        // a protection fault.
        let c = compile(SRC, &Options::codepatch()).unwrap();
        let mut m2 = Machine::new();
        m2.load(&c.program);
        let cp = crate::strategy::CodePatch::default()
            .with_predicate(pred(&c.debug))
            .run(&mut m2, &c.debug, &plan, 10_000_000)
            .unwrap();
        let vm_seq: Vec<(u32, u32)> = rep.notifications.iter().map(|n| (n.ba, n.ea)).collect();
        let cp_seq: Vec<(u32, u32)> = cp.notifications.iter().map(|n| (n.ba, n.ea)).collect();
        assert_eq!(vm_seq, cp_seq);
        assert_eq!(rep.pred_fired, cp.pred_fired);
        assert_eq!(rep.pred_filtered, cp.pred_filtered);
    }

    #[test]
    fn hits_and_active_page_misses() {
        let (mut m, debug) = load(SRC);
        // Monitor only g; h lives on the same data page, so its writes
        // are active-page misses.
        let plan = RangePlan {
            globals: vec![0],
            ..RangePlan::default()
        };
        let rep = VirtualMemory::k4()
            .run(&mut m, &debug, &plan, 10_000_000)
            .unwrap();
        assert_eq!(rep.counts.hit, 10);
        assert_eq!(
            rep.counts.vm_active_page_miss, 5,
            "writes to h share g's page"
        );
        assert_eq!(rep.counts.vm_protect, 1);
        assert_eq!(rep.counts.vm_unprotect, 1);
        assert_eq!(m.exit_code(), 15, "emulation preserves program results");
    }

    #[test]
    fn stack_writes_on_monitored_local_page() {
        // Monitoring a local write-protects its stack page; sibling
        // locals' writes become active-page misses.
        let src = r#"
            int main() {
                int watched; int other; int i;
                watched = 0; other = 0;
                for (i = 0; i < 8; i = i + 1) other = other + 1;
                watched = other;
                return watched;
            }
        "#;
        let (mut m, debug) = load(src);
        let plan = RangePlan {
            locals: vec![(0, 0)],
            ..RangePlan::default()
        };
        let rep = VirtualMemory::k4()
            .run(&mut m, &debug, &plan, 10_000_000)
            .unwrap();
        assert_eq!(rep.counts.hit, 2, "two writes to `watched`");
        // other=0, i=0, 8 increments of other, 8 of i => 18 misses on
        // the same stack page.
        assert_eq!(rep.counts.vm_active_page_miss, 18);
        assert_eq!(m.exit_code(), 8);
    }

    #[test]
    fn page_size_changes_active_page_misses() {
        // Two globals far apart: with 4K pages they are on different
        // pages; with 8K pages they share one.
        let src = r#"
            int g;
            int pad[1300];
            int h;
            int main() {
                int i;
                for (i = 0; i < 6; i = i + 1) h = h + 1;
                g = 1;
                return h;
            }
        "#;
        let (mut m4, debug) = load(src);
        let plan = RangePlan {
            globals: vec![0],
            ..RangePlan::default()
        };
        let r4 = VirtualMemory::k4()
            .run(&mut m4, &debug, &plan, 10_000_000)
            .unwrap();
        let (mut m8, _) = load(src);
        let r8 = VirtualMemory::k8()
            .run(&mut m8, &debug, &plan, 10_000_000)
            .unwrap();
        assert_eq!(r4.counts.hit, 1);
        assert_eq!(r8.counts.hit, 1);
        assert_eq!(
            r4.counts.vm_active_page_miss, 0,
            "h is ~5KB away: other 4K page"
        );
        assert_eq!(r8.counts.vm_active_page_miss, 6, "h shares g's 8K page");
    }

    #[test]
    fn both_continuations_agree_exactly() {
        // Section 3.2's two continuation mechanisms must produce the
        // same counts, the same charged overhead, and the same program
        // results; only the machinery differs.
        let plan = RangePlan {
            globals: vec![0],
            locals: vec![(0, 0)],
            ..RangePlan::default()
        };
        let (mut m1, debug) = load(SRC);
        let emu = VirtualMemory::k4()
            .run(&mut m1, &debug, &plan, 10_000_000)
            .unwrap();
        let (mut m2, _) = load(SRC);
        let step = VirtualMemory::k4()
            .with_continuation(VmContinuation::StepReprotect)
            .run(&mut m2, &debug, &plan, 10_000_000)
            .unwrap();
        assert_eq!(emu.counts, step.counts);
        assert_eq!(emu.notification_count, step.notification_count);
        assert!((emu.overhead.total_us() - step.overhead.total_us()).abs() < 1e-9);
        assert_eq!(m1.exit_code(), m2.exit_code());
        assert_eq!(m1.cpu().pc(), m2.cpu().pc());
        // After the run all protections were torn down symmetrically.
        assert!(m1.mmu().nothing_protected());
        assert!(m2.mmu().nothing_protected());
    }

    #[test]
    fn overhead_matches_figure_4_equation() {
        let (mut m, debug) = load(SRC);
        let plan = RangePlan {
            globals: vec![0],
            ..RangePlan::default()
        };
        let rep = VirtualMemory::k4()
            .run(&mut m, &debug, &plan, 10_000_000)
            .unwrap();
        let model = databp_models::overhead(Approach::Vm4k, &rep.counts, &TimingVars::default());
        assert!(
            (rep.overhead.total_us() - model.total_us()).abs() < 1e-6,
            "exec {} vs model {}",
            rep.overhead.total_us(),
            model.total_us()
        );
    }
}
