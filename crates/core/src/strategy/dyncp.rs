//! DynamicCodePatch: the Section 3.3 hybrid — nop padding patched into
//! checks at run time.
//!
//! "This may be done before execution begins, in a way that supports all
//! possible write monitors, or at runtime as write monitors are installed
//! and removed. A hybrid approach might be used, such as leaving space
//! between functions or strategically placing 'nop' instructions, to make
//! dynamic modification simpler."
//!
//! The program is compiled with
//! [`databp_tinyc::Options::nop_padding`]: a `nop` precedes every traced
//! store. While **no** monitor is installed, the pads stay `nop`s and the
//! program runs essentially free of monitoring overhead — the payoff over
//! static CodePatch, which pays a `SoftwareLookupτ` on every write
//! forever. When the first monitor is installed, every pad is overwritten
//! with the `chk` matching its store; from then on the strategy behaves
//! exactly like CodePatch. By default patching is *sticky* (pads are not
//! restored when the monitor count drops to zero), which avoids
//! pathological repatch storms for monitors that churn on every function
//! call; construct with [`DynamicCodePatch::unsticky`] to study the
//! restore-on-zero policy.

use super::{drive, Mechanism};
use crate::monitor::Notification;
use crate::plan::MonitorPlan;
use crate::service::Wms;
use crate::strategy::report::StrategyReport;
use databp_machine::{Instr, Machine, MachineError, StopConfig, StopReason};
use databp_models::{Approach, TimingVar, TimingVars};
use databp_tinyc::DebugInfo;

/// Host time to rewrite one instruction word at run time, microseconds.
/// Comparable to Kessler's fast-breakpoint patching on the era's
/// machines; charged (as `SoftwareUpdate`) once per pad per patch event.
pub const PATCH_SITE_US: f64 = 3.0;

/// The dynamic-patching hybrid of Section 3.3.
#[derive(Debug, Clone, Copy)]
pub struct DynamicCodePatch {
    /// When false, pads are restored to `nop` whenever the active monitor
    /// count returns to zero (and re-patched on the next install).
    pub sticky: bool,
    /// Primitive costs.
    pub timing: TimingVars,
}

impl Default for DynamicCodePatch {
    fn default() -> Self {
        DynamicCodePatch {
            sticky: true,
            timing: TimingVars::default(),
        }
    }
}

impl DynamicCodePatch {
    /// The restore-on-zero policy (repatches on every 0→1 transition).
    pub fn unsticky() -> Self {
        DynamicCodePatch {
            sticky: false,
            ..DynamicCodePatch::default()
        }
    }

    /// Runs a freshly loaded, nop-padded machine under this strategy.
    ///
    /// # Errors
    ///
    /// Any [`MachineError`] from the run.
    ///
    /// # Panics
    ///
    /// Panics if the program was not compiled with
    /// [`databp_tinyc::Options::nop_padding`] (no pads to patch).
    pub fn run(
        &self,
        machine: &mut Machine,
        debug: &DebugInfo,
        plan: &dyn MonitorPlan,
        max_steps: u64,
    ) -> Result<StrategyReport, MachineError> {
        let mut mech = DynMech {
            opts: *self,
            wms: Wms::new(),
            pads: Vec::new(),
            patched: false,
            active: 0,
        };
        let mut rep = drive(
            &mut mech,
            machine,
            debug,
            plan,
            max_steps,
            StrategyReport::new(Approach::Cp),
        )?;
        rep.wms_counters = mech.wms.counters();
        Ok(rep)
    }
}

struct DynMech {
    opts: DynamicCodePatch,
    wms: Wms,
    /// (pad word index, chk instruction to install there).
    pads: Vec<(usize, Instr)>,
    patched: bool,
    active: u64,
}

impl DynMech {
    fn patch_all(&mut self, m: &mut Machine, rep: &mut StrategyReport) {
        for &(idx, chk) in &self.pads {
            m.patch_instr(idx, chk).expect("pad index is valid");
        }
        rep.overhead.add(
            TimingVar::SoftwareUpdate,
            self.pads.len() as f64 * PATCH_SITE_US,
        );
        rep.patch_events += 1;
        self.patched = true;
    }

    fn unpatch_all(&mut self, m: &mut Machine, rep: &mut StrategyReport) {
        for &(idx, _) in &self.pads {
            m.patch_instr(idx, Instr::Nop).expect("pad index is valid");
        }
        rep.overhead.add(
            TimingVar::SoftwareUpdate,
            self.pads.len() as f64 * PATCH_SITE_US,
        );
        rep.patch_events += 1;
        self.patched = false;
    }
}

impl Mechanism for DynMech {
    fn stop_config(&self) -> StopConfig {
        StopConfig {
            chk: true,
            ..StopConfig::default()
        }
    }

    fn prepare(&mut self, m: &mut Machine, debug: &DebugInfo) -> Result<(), MachineError> {
        assert!(
            debug.traced_store_count == 0 || !debug.pad_pcs.is_empty(),
            "DynamicCodePatch requires a program compiled with Options::nop_padding"
        );
        for &pc in &debug.pad_pcs {
            let idx = m.pc_to_index(pc)?;
            let store = m.instr_at(idx + 1)?;
            let chk = match store {
                Instr::Sw(_, base, imm) => Instr::Chk(base, imm, 4),
                Instr::Sb(_, base, imm) => Instr::Chk(base, imm, 1),
                other => panic!("pad at {pc:#x} not followed by a store: {other:?}"),
            };
            self.pads.push((idx, chk));
        }
        Ok(())
    }

    fn install(&mut self, m: &mut Machine, ba: u32, ea: u32, rep: &mut StrategyReport) {
        self.wms
            .install(ba, ea)
            .expect("tracker ranges are non-empty");
        rep.overhead.add(
            TimingVar::SoftwareUpdate,
            self.opts.timing.software_update_us,
        );
        self.active += 1;
        if !self.patched {
            self.patch_all(m, rep);
        }
    }

    fn remove(&mut self, m: &mut Machine, ba: u32, ea: u32, rep: &mut StrategyReport) {
        self.wms
            .remove_range(ba, ea)
            .expect("removed monitor was installed");
        rep.overhead.add(
            TimingVar::SoftwareUpdate,
            self.opts.timing.software_update_us,
        );
        self.active -= 1;
        if self.active == 0 && self.patched && !self.opts.sticky {
            self.unpatch_all(m, rep);
        }
    }

    fn handle(
        &mut self,
        _m: &mut Machine,
        _debug: &DebugInfo,
        stop: StopReason,
        rep: &mut StrategyReport,
    ) -> Result<(), MachineError> {
        let StopReason::Chk(ev) = stop else {
            unreachable!("DynamicCodePatch received unexpected stop {stop:?}")
        };
        let t = &self.opts.timing;
        rep.overhead
            .add(TimingVar::SoftwareLookup, t.software_lookup_us);
        let (ba, ea) = (ev.addr, ev.addr + ev.len);
        if self.wms.check_write(ba, ea, ev.pc) {
            rep.counts.hit += 1;
            rep.notify(Notification { ba, ea, pc: ev.pc });
        } else {
            rep.counts.miss += 1;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{NoMonitors, RangePlan};
    use crate::strategy::CodePatch;
    use databp_tinyc::{compile, Options};

    const SRC: &str = r#"
        int g;
        int burn(int rounds) {
            int i; int acc;
            acc = 0;
            for (i = 0; i < rounds; i = i + 1) acc = acc + i * 3;
            return acc;
        }
        int main() {
            int warm;
            warm = burn(200);      // long monitor-free prefix
            g = warm;              // the single watched write
            return g & 255;
        }
    "#;

    fn load(opts: &Options) -> (Machine, DebugInfo) {
        let c = compile(SRC, opts).unwrap();
        let mut m = Machine::new();
        m.load(&c.program);
        (m, c.debug)
    }

    #[test]
    fn no_monitors_means_near_zero_overhead() {
        let (mut m, debug) = load(&Options::nop_padding());
        let rep = DynamicCodePatch::default()
            .run(&mut m, &debug, &NoMonitors, 10_000_000)
            .unwrap();
        assert_eq!(
            rep.overhead.total_us(),
            0.0,
            "no pads patched, no lookups charged"
        );
        assert_eq!(rep.counts.writes(), 0, "nothing is checked");
        assert_eq!(rep.patch_events, 0);
        // Static CodePatch pays for every write in the same situation.
        let (mut m, cdebug) = load(&Options::codepatch());
        let cp = CodePatch::default()
            .run(&mut m, &cdebug, &NoMonitors, 10_000_000)
            .unwrap();
        assert!(
            cp.overhead.total_us() > 1000.0,
            "CP pays {}",
            cp.overhead.total_us()
        );
    }

    #[test]
    fn behaves_like_codepatch_once_armed() {
        let plan = RangePlan {
            globals: vec![0],
            ..RangePlan::default()
        };
        let (mut m, debug) = load(&Options::nop_padding());
        let dyn_rep = DynamicCodePatch::default()
            .run(&mut m, &debug, &plan, 10_000_000)
            .unwrap();
        let exit_dyn = m.exit_code();
        let (mut m, cdebug) = load(&Options::codepatch());
        let cp_rep = CodePatch::default()
            .run(&mut m, &cdebug, &plan, 10_000_000)
            .unwrap();
        assert_eq!(m.exit_code(), exit_dyn, "semantics preserved");
        assert_eq!(dyn_rep.counts.hit, cp_rep.counts.hit);
        assert_eq!(dyn_rep.notification_count, 1, "the single write to g");
        assert_eq!(dyn_rep.patch_events, 1, "armed exactly once");
    }

    #[test]
    fn late_arming_checks_fewer_writes_than_static_cp() {
        // The global monitor installs at program start here, so use a
        // local watch of main to get a genuinely late install.
        let src = r#"
            int prefix(int n) {
                int i; int acc;
                acc = 0;
                for (i = 0; i < n; i = i + 1) acc = acc + i;
                return acc;
            }
            int tail(int seed) {
                int watched;
                watched = seed;
                watched = watched * 2;
                return watched;
            }
            int main() {
                int r;
                r = prefix(300);
                return tail(r) & 127;
            }
        "#;
        let c = compile(src, &Options::nop_padding()).unwrap();
        let tail = c.debug.func_id("tail").unwrap();
        let watched = c.debug.functions[tail as usize]
            .locals
            .iter()
            .find(|l| l.name == "watched")
            .unwrap()
            .var;
        let plan = RangePlan {
            locals: vec![(tail, watched)],
            ..RangePlan::default()
        };
        let mut m = Machine::new();
        m.load(&c.program);
        let dy = DynamicCodePatch::default()
            .run(&mut m, &c.debug, &plan, 10_000_000)
            .unwrap();

        let cc = compile(src, &Options::codepatch()).unwrap();
        let mut m = Machine::new();
        m.load(&cc.program);
        let cp = CodePatch::default()
            .run(&mut m, &cc.debug, &plan, 10_000_000)
            .unwrap();

        assert_eq!(dy.counts.hit, cp.counts.hit, "same hits");
        assert!(
            dy.counts.miss < cp.counts.miss / 2,
            "dynamic skipped the prefix: {} vs {} misses",
            dy.counts.miss,
            cp.counts.miss
        );
        assert!(dy.overhead.total_us() < cp.overhead.total_us());
    }

    #[test]
    fn unsticky_restores_pads_on_zero() {
        let src = r#"
            int poke() { int x; x = 1; return x; }
            int main() {
                int a; int b;
                a = poke();        // monitors 0 -> 1 -> 0
                b = poke();        // again
                return a + b;
            }
        "#;
        let c = compile(src, &Options::nop_padding()).unwrap();
        let poke = c.debug.func_id("poke").unwrap();
        let plan = RangePlan {
            locals: vec![(poke, 0)],
            ..RangePlan::default()
        };
        let mut m = Machine::new();
        m.load(&c.program);
        let rep = DynamicCodePatch::unsticky()
            .run(&mut m, &c.debug, &plan, 10_000_000)
            .unwrap();
        assert_eq!(rep.counts.hit, 2);
        // Two arming events and two restores (one per poke call).
        assert_eq!(rep.patch_events, 4, "{rep:?}");
        // Sticky arms once and never restores.
        let mut m = Machine::new();
        m.load(&c.program);
        let sticky = DynamicCodePatch::default()
            .run(&mut m, &c.debug, &plan, 10_000_000)
            .unwrap();
        assert_eq!(sticky.patch_events, 1);
        assert_eq!(sticky.counts.hit, 2);
    }

    #[test]
    #[should_panic(expected = "Options::nop_padding")]
    fn rejects_unpadded_program() {
        let (mut m, debug) = load(&Options::plain());
        let _ = DynamicCodePatch::default().run(&mut m, &debug, &NoMonitors, 10_000);
    }
}
