//! CodePatch: every write instruction preceded by an inline check
//! (Section 3.3, Figure 6) — the strategy the paper recommends.

use super::{drive, Mechanism};
use crate::monitor::Notification;
use crate::plan::MonitorPlan;
use crate::predicate::{CompiledPredicate, PredEval, WriterMap};
use crate::service::Wms;
use crate::strategy::report::StrategyReport;
use databp_analysis::WriteSafety;
use databp_machine::{Instr, Machine, MachineError, StopConfig, StopReason};
use databp_models::{Approach, TimingVar, TimingVars};
use databp_tinyc::DebugInfo;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// The CodePatch strategy.
///
/// The program must be compiled with
/// [`databp_tinyc::Options::codepatch`]: each traced store is preceded by
/// a `chk` of the same effective address ("the check is done in a
/// subroutine with the target address passed via an available register").
/// Every check costs one `SoftwareLookupτ`; no kernel transition ever
/// happens, which is the entire performance argument.
///
/// With [`CodePatch::loopopt`] (and a program compiled with
/// [`databp_tinyc::Options::codepatch_loopopt`]) the Section 9
/// optimization is active: a loop's *preliminary check* runs once in the
/// preheader; while it misses, body checks on the same loop-invariant
/// target skip their lookups ([`StrategyReport::skipped_lookups`]).
///
/// With [`CodePatch::with_staticopt`] the static write-safety pass from
/// `databp-analysis` is consulted instead: checks whose store provably
/// cannot hit the plan's address regions
/// ([`MonitorPlan::plan_class`]) skip their lookups entirely
/// ([`StrategyReport::elided_lookups`]). Elision is validated under
/// `debug_assertions`, and independently by the replay oracle in
/// `databp-sim`.
///
/// Programs compiled with [`databp_tinyc::Options::codepatch_ssa`]
/// additionally carry SSA-planned hoist groups ([`DebugInfo::hoists`]):
/// one preheader guard dominating a loop's invariant store targets —
/// including stores through never-reassigned pointers the Section 9
/// syntactic pass cannot see. These are honored whenever present
/// ([`StrategyReport::hoisted_lookups`]); monitor installs re-arm every
/// group so a mid-loop install is never missed.
#[derive(Debug, Clone, Default)]
pub struct CodePatch {
    /// Enable the Section 9 loop-invariant preliminary checks.
    pub loopopt: bool,
    /// Static write-safety elision: checks classified provably safe for
    /// the plan's class pay no lookup.
    pub staticopt: Option<Arc<WriteSafety>>,
    /// Monitor predicate: candidate writes (monitor-overlapping) notify
    /// only when the predicate holds. Checks whose predicate is
    /// *statically* false (constant stored value, writer filter, per
    /// [`CompiledPredicate::statically_false`]) skip their lookup
    /// entirely ([`StrategyReport::pred_dead_skips`]); such sites are
    /// excluded from elision/hoist accounting so each check is counted
    /// exactly once.
    pub predicate: Option<CompiledPredicate>,
    /// Primitive costs.
    pub timing: TimingVars,
}

impl CodePatch {
    /// CodePatch with the loop optimization enabled.
    pub fn with_loopopt() -> Self {
        CodePatch {
            loopopt: true,
            ..CodePatch::default()
        }
    }

    /// CodePatch with static write-safety elision. `safety` must be the
    /// analysis of the *same CodePatch build* this strategy will run
    /// (its `chk` pcs are matched against stops).
    pub fn with_staticopt(safety: Arc<WriteSafety>) -> Self {
        CodePatch {
            staticopt: Some(safety),
            ..CodePatch::default()
        }
    }

    /// Adds a monitor predicate (compiled against the same program this
    /// strategy will run). Composes with every other option.
    #[must_use]
    pub fn with_predicate(mut self, pred: CompiledPredicate) -> Self {
        self.predicate = Some(pred);
        self
    }

    /// Runs a freshly loaded, CodePatch-compiled machine under this
    /// strategy.
    ///
    /// # Errors
    ///
    /// Any [`MachineError`] from the run.
    ///
    /// # Panics
    ///
    /// Panics if the loaded image contains no `chk` instructions while
    /// the program has traced stores — i.e. it was not compiled with
    /// CodePatch instrumentation.
    pub fn run(
        &self,
        machine: &mut Machine,
        debug: &DebugInfo,
        plan: &dyn MonitorPlan,
        max_steps: u64,
    ) -> Result<StrategyReport, MachineError> {
        let mut elided: HashSet<u32> = match &self.staticopt {
            Some(ws) => ws.elided_chk_pcs(plan.plan_class()).into_iter().collect(),
            None => HashSet::new(),
        };
        // Predicate deadness: a check whose predicate is provably false
        // for every write its site can perform pays no lookup. Writer
        // identity comes from the site itself; the constant stored
        // value (when staticopt carries the SSA analysis of this build)
        // tightens the verdict. Decided before elision and removed from
        // the elided set, so every such check is accounted exactly once
        // — under `pred_dead_skips`, never `elided_lookups` or
        // `hoisted_lookups`.
        let mut pred_dead: HashSet<u32> = HashSet::new();
        if let Some(pred) = &self.predicate {
            let aligned = self
                .staticopt
                .as_ref()
                .filter(|ws| ws.len() == debug.store_sites.len());
            for (i, site) in debug.store_sites.iter().enumerate() {
                let Some(chk_pc) = site.chk_pc else { continue };
                let vc = aligned.and_then(|ws| ws.site_value_const(i));
                if pred.statically_false(vc, Some(site.func)) {
                    pred_dead.insert(chk_pc);
                    elided.remove(&chk_pc);
                }
            }
        }
        let writers = WriterMap::new(
            debug
                .functions
                .iter()
                .enumerate()
                .map(|(id, f)| (f.entry_pc, id as u16)),
        );
        let mut mech = CpMech {
            opts: self.clone(),
            wms: Wms::new(),
            preheader: HashMap::new(),
            body: HashMap::new(),
            armed: Vec::new(),
            hoist_base: 0,
            elided,
            pred_dead,
            pred: self.predicate.clone().map(PredEval::new),
            writers,
        };
        let mut rep = drive(
            &mut mech,
            machine,
            debug,
            plan,
            max_steps,
            StrategyReport::new(Approach::Cp),
        )?;
        rep.wms_counters = mech.wms.counters();
        Ok(rep)
    }
}

struct CpMech {
    opts: CodePatch,
    wms: Wms,
    /// Preheader check pc -> loop-group index.
    preheader: HashMap<u32, usize>,
    /// Body check pc -> loop-group index.
    body: HashMap<u32, usize>,
    /// Whether each loop group's preliminary check hit. Section 9
    /// (`loopopt`) groups first, then SSA hoist groups.
    armed: Vec<bool>,
    /// First SSA hoist group in `armed` (groups at or past this index
    /// count as [`StrategyReport::hoisted_lookups`] and re-arm on
    /// monitor installs).
    hoist_base: usize,
    /// `chk` pcs whose lookup the static write-safety pass elides for
    /// this run's plan class.
    elided: HashSet<u32>,
    /// `chk` pcs whose predicate is statically false (disjoint from
    /// `elided` by construction).
    pred_dead: HashSet<u32>,
    /// The session predicate's stateful evaluator.
    pred: Option<PredEval>,
    /// pc → owning function, for `writer in f` filters.
    writers: WriterMap,
}

impl Mechanism for CpMech {
    fn stop_config(&self) -> StopConfig {
        StopConfig {
            chk: true,
            ..StopConfig::default()
        }
    }

    fn prepare(&mut self, m: &mut Machine, debug: &DebugInfo) -> Result<(), MachineError> {
        if debug.traced_store_count > 0 {
            let has_chk = (0..m.code_len()).any(|i| matches!(m.instr_at(i), Ok(Instr::Chk(..))));
            assert!(
                has_chk,
                "CodePatch strategy requires a program compiled with Options::codepatch"
            );
        }
        let mut groups: Vec<&databp_tinyc::LoopOptInfo> = Vec::new();
        if self.opts.loopopt {
            groups.extend(debug.loopopts.iter());
        }
        // SSA hoist groups are honored whenever the build carries them:
        // the preheader guards are already in the code, so skipping the
        // dominated body checks is always licensed.
        self.hoist_base = groups.len();
        groups.extend(debug.hoists.iter());
        for (idx, l) in groups.iter().enumerate() {
            self.preheader.insert(l.preheader_pc, idx);
            for &pc in &l.body_pcs {
                self.body.insert(pc, idx);
            }
        }
        self.armed = vec![false; groups.len()];
        Ok(())
    }

    fn install(&mut self, _m: &mut Machine, ba: u32, ea: u32, rep: &mut StrategyReport) {
        self.wms
            .install(ba, ea)
            .expect("tracker ranges are non-empty");
        // A monitor installed after a preheader guard already missed
        // could be hit by the body stores that guard disarmed:
        // conservatively re-arm every SSA hoist group, so its body
        // checks pay the full lookup until the preheader next runs.
        for a in &mut self.armed[self.hoist_base..] {
            *a = true;
        }
        rep.overhead.add(
            TimingVar::SoftwareUpdate,
            self.opts.timing.software_update_us,
        );
    }

    fn remove(&mut self, _m: &mut Machine, ba: u32, ea: u32, rep: &mut StrategyReport) {
        self.wms
            .remove_range(ba, ea)
            .expect("removed monitor was installed");
        rep.overhead.add(
            TimingVar::SoftwareUpdate,
            self.opts.timing.software_update_us,
        );
    }

    fn handle(
        &mut self,
        _m: &mut Machine,
        _debug: &DebugInfo,
        stop: StopReason,
        rep: &mut StrategyReport,
    ) -> Result<(), MachineError> {
        let StopReason::Chk(ev) = stop else {
            unreachable!("CodePatch received unexpected stop {stop:?}")
        };
        let t = &self.opts.timing;
        let (ba, ea) = (ev.addr, ev.addr + ev.len);
        if self.pred_dead.contains(&ev.pc) {
            // The write may well overlap a monitor, but the predicate
            // is provably false for every value this site can store:
            // no notification is possible, so the lookup is never paid.
            // (Predicates reading `hits` are never in this set — their
            // counter would be perturbed for other sites.)
            debug_assert!(
                self.pred.as_ref().is_some_and(|p| !p.predicate().eval(
                    ev.value,
                    ev.old,
                    0,
                    self.writers.writer_of(ev.pc)
                )),
                "pred-dead check at pc {:#x} would have fired for value {:#x}: unsound static predicate evaluation",
                ev.pc,
                ev.value
            );
            rep.counts.miss += 1;
            rep.pred_dead_skips += 1;
            return Ok(());
        }
        if self.elided.contains(&ev.pc) {
            // Statically proven unable to hit this plan's regions: the
            // write happens (a model miss) but the lookup is never paid.
            // In a real deployment the check would not even be emitted.
            debug_assert!(
                !self.wms.would_hit(ba, ea),
                "statically elided check at pc {:#x} would have hit [{ba:#x}, {ea:#x}): unsound write-safety classification",
                ev.pc
            );
            rep.counts.miss += 1;
            rep.elided_lookups += 1;
            return Ok(());
        }
        if let Some(&idx) = self.preheader.get(&ev.pc) {
            // Preliminary check: pure lookup, arms or disarms the
            // loop's body checks. Not a write — no hit/miss counted.
            rep.overhead
                .add(TimingVar::SoftwareLookup, t.software_lookup_us);
            rep.preheader_lookups += 1;
            self.armed[idx] = self.wms.would_hit(ba, ea);
            return Ok(());
        }
        if let Some(&idx) = self.body.get(&ev.pc) {
            if !self.armed[idx] {
                // The write still happens and is still a (model)
                // miss; the lookup cost is elided — that is the
                // optimization.
                debug_assert!(
                    !self.wms.would_hit(ba, ea),
                    "disarmed loop check would have hit: unsound arming"
                );
                rep.counts.miss += 1;
                if idx >= self.hoist_base {
                    rep.hoisted_lookups += 1;
                } else {
                    rep.skipped_lookups += 1;
                }
                return Ok(());
            }
        }
        rep.overhead
            .add(TimingVar::SoftwareLookup, t.software_lookup_us);
        if self.wms.check_write(ba, ea, ev.pc) {
            rep.counts.hit += 1;
            match self.pred.as_mut() {
                Some(pe) => {
                    // A candidate write: the predicate decides whether
                    // the notification is delivered. Filtered writes
                    // cost only the check they already paid.
                    if pe.observe(ev.value, ev.old, self.writers.writer_of(ev.pc)) {
                        rep.pred_fired += 1;
                        rep.notify(Notification { ba, ea, pc: ev.pc });
                    } else {
                        rep.pred_filtered += 1;
                    }
                }
                None => rep.notify(Notification { ba, ea, pc: ev.pc }),
            }
        } else {
            rep.counts.miss += 1;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{NoMonitors, RangePlan};
    use databp_tinyc::{compile, Options};

    const SRC: &str = r#"
        int g;
        int h;
        int main() {
            int i;
            for (i = 0; i < 10; i = i + 1) g = g + 1;
            h = 3;
            return g + h;
        }
    "#;

    fn load(src: &str, opts: &Options) -> (Machine, DebugInfo) {
        let c = compile(src, opts).unwrap();
        let mut m = Machine::new();
        m.load(&c.program);
        (m, c.debug)
    }

    #[test]
    fn counts_match_trap_patch_semantics() {
        let (mut m, debug) = load(SRC, &Options::codepatch());
        let plan = RangePlan {
            globals: vec![0],
            ..RangePlan::default()
        };
        let rep = CodePatch::default()
            .run(&mut m, &debug, &plan, 10_000_000)
            .unwrap();
        assert_eq!(rep.counts.hit, 10);
        assert_eq!(rep.counts.miss, 12);
        assert_eq!(m.exit_code(), 13);
        let model = databp_models::overhead(Approach::Cp, &rep.counts, &TimingVars::default());
        assert!((rep.overhead.total_us() - model.total_us()).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "compiled with Options::codepatch")]
    fn rejects_uninstrumented_program() {
        let (mut m, debug) = load(SRC, &Options::plain());
        let _ = CodePatch::default().run(&mut m, &debug, &NoMonitors, 10_000_000);
    }

    #[test]
    fn loopopt_elides_lookups_for_unmonitored_invariant_targets() {
        let (mut m, debug) = load(SRC, &Options::codepatch_loopopt());
        // Monitor nothing: every loop body check on g and i is disarmed.
        let rep = CodePatch::with_loopopt()
            .run(&mut m, &debug, &NoMonitors, 10_000_000)
            .unwrap();
        assert!(
            rep.skipped_lookups > 0,
            "invariant-target checks were skipped"
        );
        assert!(rep.preheader_lookups > 0);
        assert_eq!(rep.counts.hit, 0);
        // Misses still counted (they are real writes).
        assert_eq!(rep.counts.miss, 22);
        // Charged lookups < total writes.
        let charged = rep.counts.writes() - rep.skipped_lookups + rep.preheader_lookups;
        let expected = charged as f64 * TimingVars::default().software_lookup_us;
        assert!((rep.overhead.total_us() - expected).abs() < 1e-6);
    }

    #[test]
    fn loopopt_still_notifies_when_monitored() {
        let (mut m, debug) = load(SRC, &Options::codepatch_loopopt());
        let plan = RangePlan {
            globals: vec![0],
            ..RangePlan::default()
        };
        let rep = CodePatch::with_loopopt()
            .run(&mut m, &debug, &plan, 10_000_000)
            .unwrap();
        // All ten writes to g must still notify: the preheader armed the
        // loop for g.
        assert_eq!(rep.counts.hit, 10);
        assert_eq!(rep.notification_count, 10);
        // Checks on i (unmonitored, invariant) were skipped.
        assert!(rep.skipped_lookups > 0);
    }

    #[test]
    fn loopopt_matches_model_adjustment() {
        let (mut m, debug) = load(SRC, &Options::codepatch_loopopt());
        let plan = RangePlan {
            globals: vec![0],
            ..RangePlan::default()
        };
        let rep = CodePatch::with_loopopt()
            .run(&mut m, &debug, &plan, 10_000_000)
            .unwrap();
        let model = databp_models::cp_loopopt_overhead(
            &rep.counts,
            rep.skipped_lookups,
            rep.preheader_lookups,
            &TimingVars::default(),
        );
        assert!((rep.overhead.total_us() - model.total_us()).abs() < 1e-6);
    }

    fn safety(src: &str, debug: &DebugInfo) -> Arc<WriteSafety> {
        let hir = databp_tinyc::lower(src).unwrap();
        Arc::new(databp_analysis::analyze_writes(&hir, debug))
    }

    #[test]
    fn staticopt_elides_stack_checks_under_global_plan() {
        let (mut m, debug) = load(SRC, &Options::codepatch());
        let ws = safety(SRC, &debug);
        let plan = RangePlan {
            globals: vec![0],
            ..RangePlan::default()
        };
        let rep = CodePatch::with_staticopt(ws)
            .run(&mut m, &debug, &plan, 10_000_000)
            .unwrap();
        // Notification behavior identical to plain CodePatch...
        assert_eq!(rep.counts.hit, 10);
        assert_eq!(rep.notification_count, 10);
        assert_eq!(rep.counts.miss, 12);
        // ...but the 11 stack stores (i = 0 and ten i = i + 1) pay no
        // lookup.
        assert_eq!(rep.elided_lookups, 11);
        let model = databp_models::cp_staticopt_overhead(
            &rep.counts,
            rep.elided_lookups,
            &TimingVars::default(),
        );
        assert!((rep.overhead.total_us() - model.total_us()).abs() < 1e-6);
    }

    #[test]
    fn staticopt_elides_everything_for_no_monitors() {
        let (mut m, debug) = load(SRC, &Options::codepatch());
        let ws = safety(SRC, &debug);
        let rep = CodePatch::with_staticopt(ws)
            .run(&mut m, &debug, &NoMonitors, 10_000_000)
            .unwrap();
        // Every store in SRC has a provable region, and NoMonitors
        // covers none of them.
        assert_eq!(rep.elided_lookups, rep.counts.writes());
        assert_eq!(rep.overhead.total_us(), 0.0);
    }

    #[test]
    fn staticopt_keeps_checks_the_plan_may_hit() {
        let (mut m, debug) = load(SRC, &Options::codepatch());
        let ws = safety(SRC, &debug);
        let plan = RangePlan {
            globals: vec![0],
            locals: vec![(0, 0)],
            ..RangePlan::default()
        };
        let rep = CodePatch::with_staticopt(ws)
            .run(&mut m, &debug, &plan, 10_000_000)
            .unwrap();
        // Plan covers stack and global regions: nothing elides.
        assert_eq!(rep.elided_lookups, 0);
        let baseline = {
            let (mut m2, d2) = load(SRC, &Options::codepatch());
            CodePatch::default()
                .run(&mut m2, &d2, &plan, 10_000_000)
                .unwrap()
        };
        assert_eq!(rep.counts.hit, baseline.counts.hit);
        assert_eq!(rep.notification_count, baseline.notification_count);
        assert!((rep.overhead.total_us() - baseline.overhead.total_us()).abs() < 1e-6);
    }

    const PTR_SRC: &str = r#"
        int g;
        int main() {
            int i; int s;
            int *p;
            int a[4];
            p = a;
            s = 0;
            for (i = 0; i < 10; i = i + 1) {
                *p = i;
                s = s + *p;
                g = s;
            }
            return s + g + a[0];
        }
    "#;

    #[test]
    fn ssa_hoists_skip_pointer_checks_when_unmonitored() {
        let (mut m, debug) = load(PTR_SRC, &Options::codepatch_ssa());
        assert!(!debug.hoists.is_empty());
        let rep = CodePatch::default()
            .run(&mut m, &debug, &NoMonitors, 10_000_000)
            .unwrap();
        assert!(rep.hoisted_lookups > 0, "hoisted body checks were skipped");
        assert!(rep.preheader_lookups > 0);
        assert_eq!(rep.skipped_lookups, 0, "no Section 9 groups in this build");
        assert_eq!(rep.counts.hit, 0);
        // Charged lookups match the loopopt-shaped model with the
        // hoisted count in the skipped slot.
        let model = databp_models::cp_loopopt_overhead(
            &rep.counts,
            rep.hoisted_lookups,
            rep.preheader_lookups,
            &TimingVars::default(),
        );
        assert!((rep.overhead.total_us() - model.total_us()).abs() < 1e-6);
    }

    #[test]
    fn ssa_hoists_still_notify_when_monitored() {
        let plan = RangePlan {
            globals: vec![0],
            ..RangePlan::default()
        };
        let (mut m, debug) = load(PTR_SRC, &Options::codepatch_ssa());
        let rep = CodePatch::default()
            .run(&mut m, &debug, &plan, 10_000_000)
            .unwrap();
        let baseline = {
            let (mut m2, d2) = load(PTR_SRC, &Options::codepatch());
            CodePatch::default()
                .run(&mut m2, &d2, &plan, 10_000_000)
                .unwrap()
        };
        // Monitor visibility identical to the unhoisted build...
        assert_eq!(rep.counts.hit, baseline.counts.hit);
        assert_eq!(rep.notification_count, baseline.notification_count);
        assert_eq!(
            rep.notifications
                .iter()
                .map(|n| (n.ba, n.ea))
                .collect::<Vec<_>>(),
            baseline
                .notifications
                .iter()
                .map(|n| (n.ba, n.ea))
                .collect::<Vec<_>>()
        );
        // ...while the unmonitored invariant targets skip lookups.
        assert!(rep.hoisted_lookups > 0);
    }

    #[test]
    fn ssa_hoists_compose_with_staticopt() {
        let (mut m, debug) = load(PTR_SRC, &Options::codepatch_ssa());
        let ws = safety(PTR_SRC, &debug);
        let plan = RangePlan {
            globals: vec![0],
            ..RangePlan::default()
        };
        let rep = CodePatch::with_staticopt(ws)
            .run(&mut m, &debug, &plan, 10_000_000)
            .unwrap();
        let baseline = {
            let (mut m2, d2) = load(PTR_SRC, &Options::codepatch());
            CodePatch::default()
                .run(&mut m2, &d2, &plan, 10_000_000)
                .unwrap()
        };
        assert_eq!(rep.counts.hit, baseline.counts.hit);
        assert_eq!(rep.notification_count, baseline.notification_count);
        // Static elision takes the stack stores; the hoist groups can
        // only skip what elision left behind.
        assert!(rep.elided_lookups > 0);
        let model = databp_models::cp_ssaopt_overhead(
            &rep.counts,
            rep.elided_lookups,
            rep.hoisted_lookups,
            rep.preheader_lookups,
            &TimingVars::default(),
        );
        assert!((rep.overhead.total_us() - model.total_us()).abs() < 1e-6);
    }

    fn pred(src: &str, debug: &DebugInfo) -> crate::predicate::CompiledPredicate {
        crate::predicate::Predicate::parse(src)
            .unwrap()
            .compile(|n| debug.func_id(n))
            .unwrap()
    }

    #[test]
    fn predicate_filters_notifications_by_value() {
        let (mut m, debug) = load(SRC, &Options::codepatch());
        let plan = RangePlan {
            globals: vec![0],
            ..RangePlan::default()
        };
        let rep = CodePatch::default()
            .with_predicate(pred("value > 5", &debug))
            .run(&mut m, &debug, &plan, 10_000_000)
            .unwrap();
        // g counts 1..=10; only 6..=10 pass the predicate.
        assert_eq!(rep.counts.hit, 10, "candidates are still WMS hits");
        assert_eq!(rep.notification_count, 5);
        assert_eq!(rep.pred_fired, 5);
        assert_eq!(rep.pred_filtered, 5);
        assert_eq!(rep.pred_dead_skips, 0);
        // Filtered writes still paid their lookup: overhead unchanged.
        let model = databp_models::overhead(Approach::Cp, &rep.counts, &TimingVars::default());
        assert!((rep.overhead.total_us() - model.total_us()).abs() < 1e-6);
    }

    #[test]
    fn hits_predicate_counts_candidates_in_order() {
        let (mut m, debug) = load(SRC, &Options::codepatch());
        let plan = RangePlan {
            globals: vec![0, 1],
            ..RangePlan::default()
        };
        let rep = CodePatch::default()
            .with_predicate(pred("hits % 2 == 0", &debug))
            .run(&mut m, &debug, &plan, 10_000_000)
            .unwrap();
        // 11 candidates (ten g writes + h = 3); the even ones fire.
        assert_eq!(rep.counts.hit, 11);
        assert_eq!(rep.pred_fired, 5);
        assert_eq!(rep.pred_filtered, 6);
    }

    #[test]
    fn old_predicate_sees_overwritten_values() {
        let (mut m, debug) = load(SRC, &Options::codepatch());
        let plan = RangePlan {
            globals: vec![0],
            ..RangePlan::default()
        };
        // g = g + 1 always satisfies value == old + 1; h = 3 over 0 does
        // not.
        let plan_all = RangePlan {
            globals: vec![0, 1],
            ..plan
        };
        let rep = CodePatch::default()
            .with_predicate(pred("value == old + 1", &debug))
            .run(&mut m, &debug, &plan_all, 10_000_000)
            .unwrap();
        assert_eq!(rep.counts.hit, 11);
        assert_eq!(rep.pred_fired, 10);
        assert_eq!(rep.pred_filtered, 1);
    }

    const WRITER_SRC: &str = r#"
        int g;
        int put(int k) { g = k; return 0; }
        int main() {
            int i;
            for (i = 0; i < 4; i = i + 1) g = i;
            put(9);
            put(11);
            return g;
        }
    "#;

    #[test]
    fn writer_filter_is_statically_dead_at_other_sites() {
        let (mut m, debug) = load(WRITER_SRC, &Options::codepatch());
        let plan = RangePlan {
            globals: vec![0],
            ..RangePlan::default()
        };
        let rep = CodePatch::default()
            .with_predicate(pred("writer in put", &debug))
            .run(&mut m, &debug, &plan, 10_000_000)
            .unwrap();
        // Only put's two stores notify; every main-side check is
        // statically dead for this predicate without any staticopt.
        assert_eq!(rep.notification_count, 2);
        assert_eq!(rep.pred_fired, 2);
        assert!(rep.pred_dead_skips > 0, "main's checks skip the lookup");
        assert_eq!(rep.pred_filtered, 0, "no dynamic filtering needed");
    }

    const PRED_DEAD_SRC: &str = r#"
        int g;
        int main() {
            int x;
            int i;
            for (i = 0; i < 5; i = i + 1) { g = 7; }
            x = 3;
            g = 20;
            return x;
        }
    "#;

    /// Satellite regression: a site that is both write-safety elidable
    /// and predicate-dead is accounted exactly once — under
    /// `pred_dead_skips`, never under `elided_lookups` (or
    /// `hoisted_lookups`).
    #[test]
    fn pred_dead_and_elision_count_each_check_exactly_once() {
        let plan = RangePlan {
            globals: vec![0],
            ..RangePlan::default()
        };
        let p = "value > 10";

        // Baseline: staticopt alone elides the three stack stores
        // (i = 0, five i = i + 1, x = 3 → 7 checks).
        let (mut m, debug) = load(PRED_DEAD_SRC, &Options::codepatch());
        let ws = safety(PRED_DEAD_SRC, &debug);
        let base = CodePatch::with_staticopt(Arc::clone(&ws))
            .run(&mut m, &debug, &plan, 10_000_000)
            .unwrap();
        assert_eq!(base.elided_lookups, 7);

        // staticopt + predicate: `x = 3` and `i = 0` (constant stores
        // that cannot satisfy value > 10) and the five `g = 7` stores
        // move to the pred-dead bucket; only the non-constant
        // `i = i + 1` checks stay classically elided.
        let (mut m2, d2) = load(PRED_DEAD_SRC, &Options::codepatch());
        let rep = CodePatch::with_staticopt(ws)
            .with_predicate(pred(p, &d2))
            .run(&mut m2, &d2, &plan, 10_000_000)
            .unwrap();
        assert_eq!(rep.pred_dead_skips, 7, "i=0, five g=7, x=3");
        assert_eq!(rep.elided_lookups, 5, "five i=i+1 checks");
        assert_eq!(rep.hoisted_lookups, 0);
        // Every traced store is in exactly one bucket: pred-dead (7),
        // elided (5), or looked up (1, the g = 20 store).
        assert_eq!(rep.counts.writes(), 13);
        assert_eq!(
            rep.counts.writes() - rep.pred_dead_skips - rep.elided_lookups,
            1
        );
        assert_eq!(rep.counts.hit, 1, "only g = 20 pays and hits the lookup");
        // And notification behavior is unchanged by the accounting:
        // only g = 20 fires.
        assert_eq!(rep.notification_count, 1);
        assert_eq!(rep.pred_fired, 1);

        // The same predicate without staticopt reaches the same
        // notifications dynamically (no value constants available).
        let (mut m3, d3) = load(PRED_DEAD_SRC, &Options::codepatch());
        let dynamic = CodePatch::default()
            .with_predicate(pred(p, &d3))
            .run(&mut m3, &d3, &plan, 10_000_000)
            .unwrap();
        assert_eq!(dynamic.notification_count, 1);
        assert_eq!(dynamic.pred_dead_skips, 0);
        assert_eq!(dynamic.pred_filtered, 5, "five g = 7 candidates");
    }

    #[test]
    fn hits_predicates_are_never_statically_dead() {
        let plan = RangePlan {
            globals: vec![0],
            ..RangePlan::default()
        };
        let (mut m, debug) = load(PRED_DEAD_SRC, &Options::codepatch());
        let ws = safety(PRED_DEAD_SRC, &debug);
        let rep = CodePatch::with_staticopt(ws)
            .with_predicate(pred("value > 10 && hits >= 1", &debug))
            .run(&mut m, &debug, &plan, 10_000_000)
            .unwrap();
        // The stack stores stay elided (write-safety is orthogonal),
        // but nothing is pred-dead: the hits counter must observe every
        // candidate.
        assert_eq!(rep.pred_dead_skips, 0);
        assert_eq!(rep.elided_lookups, 7);
        assert_eq!(rep.counts.hit, 6, "all six g writes are candidates");
        assert_eq!(rep.notification_count, 1);
    }

    #[test]
    fn zero_monitor_cp_still_pays_per_write() {
        let (mut m, debug) = load(SRC, &Options::codepatch());
        let rep = CodePatch::default()
            .run(&mut m, &debug, &NoMonitors, 10_000_000)
            .unwrap();
        assert_eq!(rep.counts.miss, 22);
        assert_eq!(
            rep.overhead.total_us(),
            22.0 * TimingVars::default().software_lookup_us
        );
    }
}
