//! The result of one executable strategy run.

use crate::monitor::Notification;
use crate::service::WmsCounters;
use databp_models::{Approach, Counts, Overhead};

/// Notifications retained verbatim per run; the count keeps increasing
/// past this.
pub const MAX_CAPTURED_NOTIFICATIONS: usize = 10_000;

/// Everything measured during one monitor session executed under one
/// strategy.
#[derive(Debug, Clone, Default)]
pub struct StrategyReport {
    /// Which strategy ran (None only during construction).
    pub approach: Option<Approach>,
    /// The paper's counting variables, measured live.
    pub counts: Counts,
    /// Overhead charged during the run, attributed per timing variable.
    pub overhead: Overhead,
    /// Base (unmonitored) execution time of the run, microseconds.
    pub base_us: f64,
    /// Instructions retired.
    pub instructions: u64,
    /// The first [`MAX_CAPTURED_NOTIFICATIONS`] notifications.
    pub notifications: Vec<Notification>,
    /// Total notifications delivered.
    pub notification_count: u64,
    /// NativeHardware only: the watch-register bank filled up and at
    /// least one monitor could not be realized (the paper's fundamental
    /// objection to hardware-only support).
    pub watch_exhausted: bool,
    /// CodePatch loop-optimization only: body checks whose lookup was
    /// elided.
    pub skipped_lookups: u64,
    /// CodePatch loop-optimization only: preliminary (preheader) checks
    /// executed.
    pub preheader_lookups: u64,
    /// CodePatch static write-safety optimization only: checks whose
    /// lookup was elided because the store provably cannot hit the
    /// plan's address regions.
    pub elided_lookups: u64,
    /// CodePatch SSA hoist optimization only: body checks whose lookup
    /// was skipped because a dominating preheader guard proved the
    /// loop-invariant target unmonitored.
    pub hoisted_lookups: u64,
    /// DynamicCodePatch only: pad patch/unpatch sweeps performed.
    pub patch_events: u64,
    /// Predicated runs only: candidate writes (monitor-overlapping) the
    /// predicate suppressed.
    pub pred_filtered: u64,
    /// Predicated runs only: candidate writes the predicate let through
    /// (== notifications delivered).
    pub pred_fired: u64,
    /// Predicated CodePatch runs only: checks skipped because the
    /// predicate is statically false at the site (never counted under
    /// [`StrategyReport::elided_lookups`] or
    /// [`StrategyReport::hoisted_lookups`]).
    pub pred_dead_skips: u64,
    /// Operation counters of the strategy's software WMS instance (all
    /// zeros for NativeHardware, which realizes monitors in watch
    /// registers without a software WMS).
    pub wms_counters: WmsCounters,
}

impl StrategyReport {
    /// A fresh report for `approach`.
    pub fn new(approach: Approach) -> Self {
        StrategyReport {
            approach: Some(approach),
            ..StrategyReport::default()
        }
    }

    /// Records a notification (capped buffer, unbounded count).
    pub fn notify(&mut self, n: Notification) {
        self.notification_count += 1;
        if self.notifications.len() < MAX_CAPTURED_NOTIFICATIONS {
            self.notifications.push(n);
        }
    }

    /// Relative overhead: charged overhead over base execution time.
    ///
    /// # Panics
    ///
    /// Panics if the run has not completed (`base_us == 0`).
    pub fn relative_overhead(&self) -> f64 {
        assert!(self.base_us > 0.0, "report from an unfinished run");
        self.overhead.total_us() / self.base_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn notify_caps_buffer_not_count() {
        let mut r = StrategyReport::new(Approach::Cp);
        for i in 0..(MAX_CAPTURED_NOTIFICATIONS as u32 + 10) {
            r.notify(Notification {
                ba: i,
                ea: i + 1,
                pc: 0,
            });
        }
        assert_eq!(r.notifications.len(), MAX_CAPTURED_NOTIFICATIONS);
        assert_eq!(r.notification_count, MAX_CAPTURED_NOTIFICATIONS as u64 + 10);
    }

    #[test]
    fn relative_overhead_requires_base() {
        let mut r = StrategyReport::new(Approach::Nh);
        r.base_us = 100.0;
        assert_eq!(r.relative_overhead(), 0.0);
    }

    #[test]
    #[should_panic(expected = "unfinished run")]
    fn relative_overhead_rejects_unfinished() {
        StrategyReport::new(Approach::Nh).relative_overhead();
    }
}
