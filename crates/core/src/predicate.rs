//! The monitor predicate language.
//!
//! A *predicated* breakpoint fires only when the write satisfies a small
//! boolean expression over the written value, the overwritten value, the
//! writing function, and the running hit count. Predicates are parsed
//! once into a tiny expression IR ([`Predicate`]), resolved against a
//! program's function table ([`CompiledPredicate`]), and then evaluated
//! by every layer that observes writes — the code-patch check sequence,
//! the virtual-memory fault handler, the replay engine, and the trace
//! query engine — so all of them agree event-for-event.
//!
//! # Grammar
//!
//! ```text
//! pred  := or
//! or    := and ("||" and)*
//! and   := cmp ("&&" cmp)*
//! cmp   := sum (("==" | "!=" | "<=" | ">=" | "<" | ">") sum)?
//! sum   := term (("+" | "-") term)*
//! term  := unary (("*" | "/" | "%") unary)*
//! unary := ("!" | "-") unary | atom
//! atom  := "value" | "old" | "hits" | "true" | "false"
//!        | INT | "(" or ")" | "writer" "in" IDENT
//! ```
//!
//! Integer literals are decimal or `0x` hexadecimal, up to `i64`.
//!
//! # Semantics
//!
//! All arithmetic is wrapping two's-complement `i64`; division and
//! remainder by zero evaluate to `0` (the language is total — a
//! predicate can never fault). Comparisons and the logical operators
//! produce `0` or `1`; any nonzero value is truthy. `value` and `old`
//! are the store's written/overwritten bytes masked to the store width:
//! word stores present the full 32-bit pattern zero-extended (so
//! `0xffff_ffff` compares as `4294967295`, not `-1`), byte stores
//! present `0..=255`. `hits` is the number of *candidate* writes — writes
//! that overlapped a live monitor of the session — observed so far,
//! counting the current one, *before* predicate filtering. `writer in f`
//! is true when the store instruction lies in function `f` (a static
//! property of the store site, not the dynamic call stack).
#![allow(clippy::type_complexity)]

use std::error::Error;
use std::fmt;

/// Nesting depth (parentheses plus unary operators) beyond which parsing
/// gives up with [`PredicateError::TooDeep`] instead of risking stack
/// overflow on adversarial input.
pub const MAX_PREDICATE_DEPTH: usize = 64;

/// Writer id reported for a pc that lies in no known function.
pub const NO_WRITER: u16 = u16::MAX;

/// Errors from parsing or compiling a predicate. Every malformed input
/// maps to one of these — the parser never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PredicateError {
    /// The source was empty (or all whitespace).
    Empty,
    /// A character that starts no token, e.g. a lone `&` or `@`.
    UnexpectedChar {
        /// Byte offset in the source.
        pos: usize,
        /// The offending character.
        ch: char,
    },
    /// A well-formed token in a position where it cannot appear.
    UnexpectedToken {
        /// Byte offset in the source.
        pos: usize,
        /// The token text.
        found: String,
        /// What the parser was looking for.
        expected: &'static str,
    },
    /// The source ended mid-expression.
    UnexpectedEnd {
        /// What the parser was looking for.
        expected: &'static str,
    },
    /// An identifier that is not `value`, `old`, `hits`, `true`,
    /// `false`, or the `writer in f` form.
    UnknownIdent {
        /// Byte offset in the source.
        pos: usize,
        /// The identifier.
        name: String,
    },
    /// An integer literal that does not fit in `i64`.
    LiteralOverflow {
        /// Byte offset in the source.
        pos: usize,
        /// The literal text.
        text: String,
    },
    /// Nesting exceeded [`MAX_PREDICATE_DEPTH`].
    TooDeep,
    /// A complete expression followed by more tokens.
    TrailingInput {
        /// Byte offset of the first extra token.
        pos: usize,
        /// The extra token's text.
        found: String,
    },
    /// `writer in f` named a function the program does not define
    /// (raised at compile time, when names are resolved).
    UnknownFunction {
        /// The unresolved function name.
        name: String,
    },
}

impl fmt::Display for PredicateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PredicateError::Empty => write!(f, "empty predicate"),
            PredicateError::UnexpectedChar { pos, ch } => {
                write!(f, "unexpected character {ch:?} at offset {pos}")
            }
            PredicateError::UnexpectedToken {
                pos,
                found,
                expected,
            } => write!(f, "expected {expected}, found `{found}` at offset {pos}"),
            PredicateError::UnexpectedEnd { expected } => {
                write!(f, "expected {expected}, found end of predicate")
            }
            PredicateError::UnknownIdent { pos, name } => write!(
                f,
                "unknown identifier `{name}` at offset {pos} \
                 (predicates know `value`, `old`, `hits`, and `writer in f`)"
            ),
            PredicateError::LiteralOverflow { pos, text } => {
                write!(f, "integer literal `{text}` at offset {pos} overflows i64")
            }
            PredicateError::TooDeep => write!(
                f,
                "predicate nesting exceeds the limit of {MAX_PREDICATE_DEPTH}"
            ),
            PredicateError::TrailingInput { pos, found } => {
                write!(f, "trailing input `{found}` at offset {pos}")
            }
            PredicateError::UnknownFunction { name } => {
                write!(
                    f,
                    "`writer in {name}`: program defines no function `{name}`"
                )
            }
        }
    }
}

impl Error for PredicateError {}

/// Binary operators of the predicate IR.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

/// The expression IR, generic over how `writer in f` names the function:
/// `String` before resolution ([`Predicate`]), `u16` after
/// ([`CompiledPredicate`]).
#[derive(Debug, Clone, PartialEq, Eq)]
enum Expr<W> {
    Value,
    Old,
    Hits,
    Lit(i64),
    WriterIn(W),
    Not(Box<Expr<W>>),
    Neg(Box<Expr<W>>),
    Bin(BinOp, Box<Expr<W>>, Box<Expr<W>>),
}

impl<W> Expr<W> {
    fn map_writer<V, E>(self, f: &mut impl FnMut(W) -> Result<V, E>) -> Result<Expr<V>, E> {
        Ok(match self {
            Expr::Value => Expr::Value,
            Expr::Old => Expr::Old,
            Expr::Hits => Expr::Hits,
            Expr::Lit(n) => Expr::Lit(n),
            Expr::WriterIn(w) => Expr::WriterIn(f(w)?),
            Expr::Not(e) => Expr::Not(Box::new(e.map_writer(f)?)),
            Expr::Neg(e) => Expr::Neg(Box::new(e.map_writer(f)?)),
            Expr::Bin(op, l, r) => {
                Expr::Bin(op, Box::new(l.map_writer(f)?), Box::new(r.map_writer(f)?))
            }
        })
    }

    fn uses_hits(&self) -> bool {
        match self {
            Expr::Hits => true,
            Expr::Value | Expr::Old | Expr::Lit(_) | Expr::WriterIn(_) => false,
            Expr::Not(e) | Expr::Neg(e) => e.uses_hits(),
            Expr::Bin(_, l, r) => l.uses_hits() || r.uses_hits(),
        }
    }
}

fn truthy(v: i64) -> i64 {
    i64::from(v != 0)
}

impl Expr<u16> {
    /// Concrete evaluation: total, deterministic, wrapping `i64`.
    fn eval(&self, value: i64, old: i64, hits: i64, writer: u16) -> i64 {
        match self {
            Expr::Value => value,
            Expr::Old => old,
            Expr::Hits => hits,
            Expr::Lit(n) => *n,
            Expr::WriterIn(f) => i64::from(writer == *f),
            Expr::Not(e) => i64::from(e.eval(value, old, hits, writer) == 0),
            Expr::Neg(e) => e.eval(value, old, hits, writer).wrapping_neg(),
            Expr::Bin(op, l, r) => {
                let a = l.eval(value, old, hits, writer);
                // && and || keep C short-circuit semantics (observable
                // only through hit-free subexpressions, but cheap).
                match op {
                    BinOp::And => {
                        return if a == 0 {
                            0
                        } else {
                            truthy(r.eval(value, old, hits, writer))
                        }
                    }
                    BinOp::Or => {
                        return if a != 0 {
                            1
                        } else {
                            truthy(r.eval(value, old, hits, writer))
                        }
                    }
                    _ => {}
                }
                let b = r.eval(value, old, hits, writer);
                match op {
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    BinOp::Mul => a.wrapping_mul(b),
                    BinOp::Div => {
                        if b == 0 {
                            0
                        } else {
                            a.wrapping_div(b)
                        }
                    }
                    BinOp::Rem => {
                        if b == 0 {
                            0
                        } else {
                            a.wrapping_rem(b)
                        }
                    }
                    BinOp::Eq => i64::from(a == b),
                    BinOp::Ne => i64::from(a != b),
                    BinOp::Lt => i64::from(a < b),
                    BinOp::Le => i64::from(a <= b),
                    BinOp::Gt => i64::from(a > b),
                    BinOp::Ge => i64::from(a >= b),
                    BinOp::And | BinOp::Or => unreachable!("handled above"),
                }
            }
        }
    }

    /// Three-valued abstract evaluation over a partially known
    /// environment: `Some(v)` when the subexpression's value is forced,
    /// `None` when it depends on something unknown. `old` and `hits` are
    /// always unknown.
    fn abstract_eval(&self, value: Option<i64>, writer: Option<u16>) -> Option<i64> {
        match self {
            Expr::Value => value,
            Expr::Old | Expr::Hits => None,
            Expr::Lit(n) => Some(*n),
            Expr::WriterIn(f) => writer.map(|w| i64::from(w == *f)),
            Expr::Not(e) => e.abstract_eval(value, writer).map(|v| i64::from(v == 0)),
            Expr::Neg(e) => e.abstract_eval(value, writer).map(i64::wrapping_neg),
            Expr::Bin(op, l, r) => {
                let a = l.abstract_eval(value, writer);
                let b = r.abstract_eval(value, writer);
                match op {
                    // Logical operators dominate on one known side.
                    BinOp::And => match (a, b) {
                        (Some(0), _) | (_, Some(0)) => Some(0),
                        (Some(_), Some(_)) => Some(1),
                        _ => None,
                    },
                    BinOp::Or => match (a, b) {
                        (Some(a), _) if a != 0 => Some(1),
                        (_, Some(b)) if b != 0 => Some(1),
                        (Some(0), Some(0)) => Some(0),
                        _ => None,
                    },
                    _ => {
                        let (a, b) = (a?, b?);
                        Some(match op {
                            BinOp::Add => a.wrapping_add(b),
                            BinOp::Sub => a.wrapping_sub(b),
                            BinOp::Mul => a.wrapping_mul(b),
                            BinOp::Div => {
                                if b == 0 {
                                    0
                                } else {
                                    a.wrapping_div(b)
                                }
                            }
                            BinOp::Rem => {
                                if b == 0 {
                                    0
                                } else {
                                    a.wrapping_rem(b)
                                }
                            }
                            BinOp::Eq => i64::from(a == b),
                            BinOp::Ne => i64::from(a != b),
                            BinOp::Lt => i64::from(a < b),
                            BinOp::Le => i64::from(a <= b),
                            BinOp::Gt => i64::from(a > b),
                            BinOp::Ge => i64::from(a >= b),
                            BinOp::And | BinOp::Or => unreachable!("handled above"),
                        })
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Interval abstract evaluation (block-level refutation)
// ---------------------------------------------------------------------

/// An inclusive `i64` interval — the abstract domain block-level
/// refutation evaluates predicates in. `TOP` is the full range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Iv {
    lo: i64,
    hi: i64,
}

const TOP: Iv = Iv {
    lo: i64::MIN,
    hi: i64::MAX,
};

impl Iv {
    fn point(v: i64) -> Iv {
        Iv { lo: v, hi: v }
    }

    fn bool_any() -> Iv {
        Iv { lo: 0, hi: 1 }
    }

    fn contains_zero(self) -> bool {
        self.lo <= 0 && 0 <= self.hi
    }

    fn is_zero(self) -> bool {
        self == Iv::point(0)
    }

    fn singleton(self) -> Option<i64> {
        (self.lo == self.hi).then_some(self.lo)
    }

    /// Tri-state boolean as an interval: definitely-false `[0,0]`,
    /// definitely-true `[1,1]`, unknown `[0,1]`.
    fn tri(t: Option<bool>) -> Iv {
        match t {
            Some(true) => Iv::point(1),
            Some(false) => Iv::point(0),
            None => Iv::bool_any(),
        }
    }

    fn add(self, b: Iv) -> Iv {
        match (self.lo.checked_add(b.lo), self.hi.checked_add(b.hi)) {
            (Some(lo), Some(hi)) => Iv { lo, hi },
            _ => TOP,
        }
    }

    fn sub(self, b: Iv) -> Iv {
        match (self.lo.checked_sub(b.hi), self.hi.checked_sub(b.lo)) {
            (Some(lo), Some(hi)) => Iv { lo, hi },
            _ => TOP,
        }
    }

    fn mul(self, b: Iv) -> Iv {
        // A product over a box attains its extremes at the corners; if
        // every corner is representable, so is every interior product.
        let corners = [
            self.lo.checked_mul(b.lo),
            self.lo.checked_mul(b.hi),
            self.hi.checked_mul(b.lo),
            self.hi.checked_mul(b.hi),
        ];
        let mut lo = i64::MAX;
        let mut hi = i64::MIN;
        for c in corners {
            match c {
                Some(v) => {
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
                None => return TOP,
            }
        }
        Iv { lo, hi }
    }

    fn div(self, b: Iv) -> Iv {
        // Exact only on singletons (matching the total `/`: b == 0 → 0);
        // anything wider is conservatively TOP.
        match (self.singleton(), b.singleton()) {
            (Some(_), Some(0)) => Iv::point(0),
            (Some(a), Some(b)) => Iv::point(a.wrapping_div(b)),
            _ => TOP,
        }
    }

    fn rem(self, b: Iv) -> Iv {
        match (self.singleton(), b.singleton()) {
            (Some(_), Some(0)) => Iv::point(0),
            (Some(a), Some(b)) => Iv::point(a.wrapping_rem(b)),
            _ if self.lo >= 0 && b.lo >= 1 => Iv {
                lo: 0,
                hi: b.hi - 1,
            },
            _ => TOP,
        }
    }

    fn neg(self) -> Iv {
        match (self.hi.checked_neg(), self.lo.checked_neg()) {
            (Some(lo), Some(hi)) => Iv { lo, hi },
            _ => TOP,
        }
    }

    fn lt(self, b: Iv) -> Iv {
        if self.hi < b.lo {
            Iv::point(1)
        } else if self.lo >= b.hi {
            Iv::point(0)
        } else {
            Iv::bool_any()
        }
    }

    fn le(self, b: Iv) -> Iv {
        if self.hi <= b.lo {
            Iv::point(1)
        } else if self.lo > b.hi {
            Iv::point(0)
        } else {
            Iv::bool_any()
        }
    }

    fn eq(self, b: Iv) -> Iv {
        if self.hi < b.lo || b.hi < self.lo {
            Iv::point(0)
        } else if let (Some(a), Some(b)) = (self.singleton(), b.singleton()) {
            Iv::point(i64::from(a == b))
        } else {
            Iv::bool_any()
        }
    }

    fn not(self) -> Iv {
        if self.is_zero() {
            Iv::point(1)
        } else if !self.contains_zero() {
            Iv::point(0)
        } else {
            Iv::bool_any()
        }
    }
}

/// Per-block write ranges a predicate is refuted against: inclusive
/// min/max of the written value, the overwritten value, and the `hits`
/// counter values the block's writes will observe. A query engine
/// derives `hits` from cumulative per-block write counts (zone maps),
/// so skipped blocks still advance the counter exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteSpan {
    /// Inclusive `(min, max)` of written values in the block.
    pub value: (u32, u32),
    /// Inclusive `(min, max)` of overwritten values in the block.
    pub old: (u32, u32),
    /// Inclusive `(min, max)` of the 1-based `hits` ordinal across the
    /// block's writes.
    pub hits: (u64, u64),
}

impl Expr<u16> {
    /// Interval abstract evaluation: returns an interval guaranteed to
    /// contain [`Expr::eval`]'s result for every concrete
    /// `(value, old, hits, writer)` consistent with `span` and
    /// `writer_in` — the soundness invariant block skipping rests on.
    fn range_eval(&self, span: &WriteSpan, writer_in: &mut dyn FnMut(u16) -> Option<bool>) -> Iv {
        match self {
            Expr::Value => Iv {
                lo: i64::from(span.value.0),
                hi: i64::from(span.value.1),
            },
            Expr::Old => Iv {
                lo: i64::from(span.old.0),
                hi: i64::from(span.old.1),
            },
            // Concrete eval clamps hits to i64::MAX, so saturating here
            // matches it exactly.
            Expr::Hits => Iv {
                lo: i64::try_from(span.hits.0).unwrap_or(i64::MAX),
                hi: i64::try_from(span.hits.1).unwrap_or(i64::MAX),
            },
            Expr::Lit(n) => Iv::point(*n),
            Expr::WriterIn(f) => Iv::tri(writer_in(*f)),
            Expr::Not(e) => e.range_eval(span, writer_in).not(),
            Expr::Neg(e) => e.range_eval(span, writer_in).neg(),
            Expr::Bin(op, l, r) => {
                let a = l.range_eval(span, writer_in);
                let b = r.range_eval(span, writer_in);
                match op {
                    BinOp::Add => a.add(b),
                    BinOp::Sub => a.sub(b),
                    BinOp::Mul => a.mul(b),
                    BinOp::Div => a.div(b),
                    BinOp::Rem => a.rem(b),
                    BinOp::Eq => a.eq(b),
                    BinOp::Ne => a.eq(b).not(),
                    BinOp::Lt => a.lt(b),
                    BinOp::Le => a.le(b),
                    BinOp::Gt => b.lt(a),
                    BinOp::Ge => b.le(a),
                    // Concrete `&&`/`||` return 0 or 1 with
                    // short-circuit; the abstraction only needs
                    // zero-membership of each side.
                    BinOp::And => {
                        if a.is_zero() || b.is_zero() {
                            Iv::point(0)
                        } else if !a.contains_zero() && !b.contains_zero() {
                            Iv::point(1)
                        } else {
                            Iv::bool_any()
                        }
                    }
                    BinOp::Or => {
                        if !a.contains_zero() || !b.contains_zero() {
                            Iv::point(1)
                        } else if a.is_zero() && b.is_zero() {
                            Iv::point(0)
                        } else {
                            Iv::bool_any()
                        }
                    }
                }
            }
        }
    }

    fn uses_value(&self) -> bool {
        match self {
            Expr::Value => true,
            Expr::Old | Expr::Hits | Expr::Lit(_) | Expr::WriterIn(_) => false,
            Expr::Not(e) | Expr::Neg(e) => e.uses_value(),
            Expr::Bin(_, l, r) => l.uses_value() || r.uses_value(),
        }
    }

    fn uses_old(&self) -> bool {
        match self {
            Expr::Old => true,
            Expr::Value | Expr::Hits | Expr::Lit(_) | Expr::WriterIn(_) => false,
            Expr::Not(e) | Expr::Neg(e) => e.uses_old(),
            Expr::Bin(_, l, r) => l.uses_old() || r.uses_old(),
        }
    }

    fn uses_writer(&self) -> bool {
        match self {
            Expr::WriterIn(_) => true,
            Expr::Value | Expr::Old | Expr::Hits | Expr::Lit(_) => false,
            Expr::Not(e) | Expr::Neg(e) => e.uses_writer(),
            Expr::Bin(_, l, r) => l.uses_writer() || r.uses_writer(),
        }
    }
}

// ---------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(i64),
    LParen,
    RParen,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Bang,
    AndAnd,
    OrOr,
    EqEq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl Tok {
    fn text(&self) -> String {
        match self {
            Tok::Ident(s) => s.clone(),
            Tok::Int(n) => n.to_string(),
            Tok::LParen => "(".into(),
            Tok::RParen => ")".into(),
            Tok::Plus => "+".into(),
            Tok::Minus => "-".into(),
            Tok::Star => "*".into(),
            Tok::Slash => "/".into(),
            Tok::Percent => "%".into(),
            Tok::Bang => "!".into(),
            Tok::AndAnd => "&&".into(),
            Tok::OrOr => "||".into(),
            Tok::EqEq => "==".into(),
            Tok::Ne => "!=".into(),
            Tok::Lt => "<".into(),
            Tok::Le => "<=".into(),
            Tok::Gt => ">".into(),
            Tok::Ge => ">=".into(),
        }
    }
}

fn tokenize(src: &str) -> Result<Vec<(Tok, usize)>, PredicateError> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                toks.push((Tok::LParen, i));
                i += 1;
            }
            ')' => {
                toks.push((Tok::RParen, i));
                i += 1;
            }
            '+' => {
                toks.push((Tok::Plus, i));
                i += 1;
            }
            '-' => {
                toks.push((Tok::Minus, i));
                i += 1;
            }
            '*' => {
                toks.push((Tok::Star, i));
                i += 1;
            }
            '/' => {
                toks.push((Tok::Slash, i));
                i += 1;
            }
            '%' => {
                toks.push((Tok::Percent, i));
                i += 1;
            }
            '&' => {
                if bytes.get(i + 1) == Some(&b'&') {
                    toks.push((Tok::AndAnd, i));
                    i += 2;
                } else {
                    return Err(PredicateError::UnexpectedChar { pos: i, ch: '&' });
                }
            }
            '|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    toks.push((Tok::OrOr, i));
                    i += 2;
                } else {
                    return Err(PredicateError::UnexpectedChar { pos: i, ch: '|' });
                }
            }
            '=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push((Tok::EqEq, i));
                    i += 2;
                } else {
                    return Err(PredicateError::UnexpectedChar { pos: i, ch: '=' });
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push((Tok::Ne, i));
                    i += 2;
                } else {
                    toks.push((Tok::Bang, i));
                    i += 1;
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push((Tok::Le, i));
                    i += 2;
                } else {
                    toks.push((Tok::Lt, i));
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push((Tok::Ge, i));
                    i += 2;
                } else {
                    toks.push((Tok::Gt, i));
                    i += 1;
                }
            }
            '0'..='9' => {
                let start = i;
                let (radix, digits_start) =
                    if c == '0' && matches!(bytes.get(i + 1), Some(b'x') | Some(b'X')) {
                        (16, i + 2)
                    } else {
                        (10, i)
                    };
                i = digits_start;
                let mut n: i64 = 0;
                let mut any = false;
                while i < bytes.len() {
                    let d = match (bytes[i] as char).to_digit(radix) {
                        Some(d) => d,
                        None => break,
                    };
                    any = true;
                    n = n
                        .checked_mul(radix as i64)
                        .and_then(|n| n.checked_add(d as i64))
                        .ok_or_else(|| {
                            // Consume the rest of the literal for the
                            // error message.
                            let mut j = i;
                            while j < bytes.len() && (bytes[j] as char).is_digit(radix) {
                                j += 1;
                            }
                            PredicateError::LiteralOverflow {
                                pos: start,
                                text: src[start..j].to_string(),
                            }
                        })?;
                    i += 1;
                }
                if !any {
                    return Err(PredicateError::UnexpectedChar {
                        pos: digits_start.min(bytes.len().saturating_sub(1)),
                        ch: bytes.get(digits_start).map_or('x', |&b| b as char),
                    });
                }
                toks.push((Tok::Int(n), start));
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len()
                    && matches!(bytes[i] as char, 'a'..='z' | 'A'..='Z' | '0'..='9' | '_')
                {
                    i += 1;
                }
                toks.push((Tok::Ident(src[start..i].to_string()), start));
            }
            _ => return Err(PredicateError::UnexpectedChar { pos: i, ch: c }),
        }
    }
    Ok(toks)
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    toks: &'a [(Tok, usize)],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn next(&mut self, expected: &'static str) -> Result<(Tok, usize), PredicateError> {
        let t = self
            .toks
            .get(self.pos)
            .cloned()
            .ok_or(PredicateError::UnexpectedEnd { expected })?;
        self.pos += 1;
        Ok(t)
    }

    fn or(&mut self, depth: usize) -> Result<Expr<String>, PredicateError> {
        let mut e = self.and(depth)?;
        while self.peek() == Some(&Tok::OrOr) {
            self.pos += 1;
            let r = self.and(depth)?;
            e = Expr::Bin(BinOp::Or, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn and(&mut self, depth: usize) -> Result<Expr<String>, PredicateError> {
        let mut e = self.cmp(depth)?;
        while self.peek() == Some(&Tok::AndAnd) {
            self.pos += 1;
            let r = self.cmp(depth)?;
            e = Expr::Bin(BinOp::And, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn cmp(&mut self, depth: usize) -> Result<Expr<String>, PredicateError> {
        let l = self.sum(depth)?;
        let op = match self.peek() {
            Some(Tok::EqEq) => BinOp::Eq,
            Some(Tok::Ne) => BinOp::Ne,
            Some(Tok::Lt) => BinOp::Lt,
            Some(Tok::Le) => BinOp::Le,
            Some(Tok::Gt) => BinOp::Gt,
            Some(Tok::Ge) => BinOp::Ge,
            _ => return Ok(l),
        };
        self.pos += 1;
        let r = self.sum(depth)?;
        // Comparison does not chain: `1 < value < 3` errors at the
        // second `<` rather than silently comparing a boolean.
        Ok(Expr::Bin(op, Box::new(l), Box::new(r)))
    }

    fn sum(&mut self, depth: usize) -> Result<Expr<String>, PredicateError> {
        let mut e = self.term(depth)?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => BinOp::Add,
                Some(Tok::Minus) => BinOp::Sub,
                _ => return Ok(e),
            };
            self.pos += 1;
            let r = self.term(depth)?;
            e = Expr::Bin(op, Box::new(e), Box::new(r));
        }
    }

    fn term(&mut self, depth: usize) -> Result<Expr<String>, PredicateError> {
        let mut e = self.unary(depth)?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => BinOp::Mul,
                Some(Tok::Slash) => BinOp::Div,
                Some(Tok::Percent) => BinOp::Rem,
                _ => return Ok(e),
            };
            self.pos += 1;
            let r = self.unary(depth)?;
            e = Expr::Bin(op, Box::new(e), Box::new(r));
        }
    }

    fn unary(&mut self, depth: usize) -> Result<Expr<String>, PredicateError> {
        if depth >= MAX_PREDICATE_DEPTH {
            return Err(PredicateError::TooDeep);
        }
        match self.peek() {
            Some(Tok::Bang) => {
                self.pos += 1;
                Ok(Expr::Not(Box::new(self.unary(depth + 1)?)))
            }
            Some(Tok::Minus) => {
                self.pos += 1;
                Ok(Expr::Neg(Box::new(self.unary(depth + 1)?)))
            }
            _ => self.atom(depth),
        }
    }

    fn atom(&mut self, depth: usize) -> Result<Expr<String>, PredicateError> {
        let (tok, pos) = self.next("a value, literal, or `(`")?;
        match tok {
            Tok::Int(n) => Ok(Expr::Lit(n)),
            Tok::LParen => {
                if depth >= MAX_PREDICATE_DEPTH {
                    return Err(PredicateError::TooDeep);
                }
                let e = self.or(depth + 1)?;
                match self.next("`)`")? {
                    (Tok::RParen, _) => Ok(e),
                    (t, pos) => Err(PredicateError::UnexpectedToken {
                        pos,
                        found: t.text(),
                        expected: "`)`",
                    }),
                }
            }
            Tok::Ident(name) => match name.as_str() {
                "value" => Ok(Expr::Value),
                "old" => Ok(Expr::Old),
                "hits" => Ok(Expr::Hits),
                "true" => Ok(Expr::Lit(1)),
                "false" => Ok(Expr::Lit(0)),
                "writer" => {
                    match self.next("`in`")? {
                        (Tok::Ident(kw), _) if kw == "in" => {}
                        (t, pos) => {
                            return Err(PredicateError::UnexpectedToken {
                                pos,
                                found: t.text(),
                                expected: "`in`",
                            })
                        }
                    }
                    match self.next("a function name")? {
                        (Tok::Ident(f), _) => Ok(Expr::WriterIn(f)),
                        (t, pos) => Err(PredicateError::UnexpectedToken {
                            pos,
                            found: t.text(),
                            expected: "a function name",
                        }),
                    }
                }
                _ => Err(PredicateError::UnknownIdent { pos, name }),
            },
            t => Err(PredicateError::UnexpectedToken {
                pos,
                found: t.text(),
                expected: "a value, literal, or `(`",
            }),
        }
    }
}

// ---------------------------------------------------------------------
// Public types
// ---------------------------------------------------------------------

/// A parsed predicate. Function names in `writer in f` filters are still
/// symbolic; [`Predicate::compile`] resolves them against a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Predicate {
    src: String,
    root: Expr<String>,
}

impl Predicate {
    /// Parses `src`.
    ///
    /// # Errors
    ///
    /// Any [`PredicateError`] except
    /// [`UnknownFunction`](PredicateError::UnknownFunction) (that one is
    /// a compile-time error). Never panics, for any input.
    pub fn parse(src: &str) -> Result<Predicate, PredicateError> {
        let toks = tokenize(src)?;
        if toks.is_empty() {
            return Err(PredicateError::Empty);
        }
        let mut p = Parser {
            toks: &toks,
            pos: 0,
        };
        let root = p.or(0)?;
        if let Some((t, pos)) = p.toks.get(p.pos) {
            return Err(PredicateError::TrailingInput {
                pos: *pos,
                found: t.text(),
            });
        }
        Ok(Predicate {
            src: src.trim().to_string(),
            root,
        })
    }

    /// The trimmed source text.
    pub fn src(&self) -> &str {
        &self.src
    }

    /// Function names referenced by `writer in f` filters, in source
    /// order (with duplicates).
    pub fn writer_names(&self) -> Vec<&str> {
        fn walk<'a>(e: &'a Expr<String>, out: &mut Vec<&'a str>) {
            match e {
                Expr::WriterIn(f) => out.push(f),
                Expr::Not(e) | Expr::Neg(e) => walk(e, out),
                Expr::Bin(_, l, r) => {
                    walk(l, out);
                    walk(r, out);
                }
                _ => {}
            }
        }
        let mut out = Vec::new();
        walk(&self.root, &mut out);
        out
    }

    /// Resolves `writer in f` names to function ids via `resolve` (e.g.
    /// `DebugInfo::func_id`).
    ///
    /// # Errors
    ///
    /// [`PredicateError::UnknownFunction`] for a name `resolve` rejects.
    pub fn compile(
        &self,
        mut resolve: impl FnMut(&str) -> Option<u16>,
    ) -> Result<CompiledPredicate, PredicateError> {
        let root = self.root.clone().map_writer(&mut |name: String| {
            resolve(&name).ok_or(PredicateError::UnknownFunction { name })
        })?;
        Ok(CompiledPredicate {
            src: self.src.clone(),
            uses_hits: root.uses_hits(),
            root,
        })
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.src)
    }
}

/// A predicate with `writer in f` filters resolved to function ids —
/// ready to evaluate against observed writes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledPredicate {
    src: String,
    root: Expr<u16>,
    uses_hits: bool,
}

impl CompiledPredicate {
    /// The trimmed source text.
    pub fn src(&self) -> &str {
        &self.src
    }

    /// True when the predicate reads `hits`. Such predicates are never
    /// statically dead: skipping a site's candidate writes would perturb
    /// the counter every *other* site observes.
    pub fn uses_hits(&self) -> bool {
        self.uses_hits
    }

    /// Evaluates against one candidate write. `value`/`old` are masked
    /// to the store width; `hits` counts candidate writes including this
    /// one; `writer` is the function containing the store ([`NO_WRITER`]
    /// when unknown).
    pub fn eval(&self, value: u32, old: u32, hits: u64, writer: u16) -> bool {
        let hits = i64::try_from(hits).unwrap_or(i64::MAX);
        self.root
            .eval(i64::from(value), i64::from(old), hits, writer)
            != 0
    }

    /// True when the predicate reads `value`.
    pub fn uses_value(&self) -> bool {
        self.root.uses_value()
    }

    /// True when the predicate reads `old`.
    pub fn uses_old(&self) -> bool {
        self.root.uses_old()
    }

    /// True when the predicate has any `writer in f` filter.
    pub fn uses_writer(&self) -> bool {
        self.root.uses_writer()
    }

    /// Decides the predicate over a whole *range* of writes at once —
    /// the block-level pushdown test. `span` bounds the written/old
    /// values and the `hits` ordinals the writes will observe;
    /// `writer_in(f)` answers whether the writes' writer can/must be
    /// `f`: `Some(true)` = every write's writer is `f`, `Some(false)` =
    /// no write's writer is `f`, `None` = mixed or unknown.
    ///
    /// Returns `Some(false)` when **no** write in the span can satisfy
    /// the predicate (the block is refutable and need not be decoded),
    /// `Some(true)` when **every** write must satisfy it, and `None`
    /// when the range is inconclusive. Sound by interval abstraction:
    /// each subexpression evaluates to an interval that contains its
    /// concrete value for every write consistent with the inputs, so a
    /// definite answer here can never disagree with per-event
    /// evaluation.
    pub fn decide_over(
        &self,
        span: &WriteSpan,
        writer_in: &mut dyn FnMut(u16) -> Option<bool>,
    ) -> Option<bool> {
        let iv = self.root.range_eval(span, writer_in);
        if iv.is_zero() {
            Some(false)
        } else if !iv.contains_zero() {
            Some(true)
        } else {
            None
        }
    }

    /// True when the predicate provably evaluates to false for *every*
    /// write a site can perform, given what is statically known:
    /// `value` when the stored value is a compile-time constant (already
    /// masked to the store width), `writer` when the owning function is
    /// known. Conservative — `None` inputs and `old`/`hits` are treated
    /// as unknown, and a predicate that reads `hits` is never statically
    /// false (see [`CompiledPredicate::uses_hits`]).
    pub fn statically_false(&self, value: Option<u32>, writer: Option<u16>) -> bool {
        !self.uses_hits && self.root.abstract_eval(value.map(i64::from), writer) == Some(0)
    }
}

impl fmt::Display for CompiledPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.src)
    }
}

/// Stateful per-session evaluator: owns the `hits` counter so every
/// observer of the same write stream (code-patch checks, the VM fault
/// handler, the replay engine, the query engine) agrees on it.
#[derive(Debug, Clone)]
pub struct PredEval {
    pred: CompiledPredicate,
    hits: u64,
}

impl PredEval {
    /// A fresh evaluator with `hits == 0`.
    pub fn new(pred: CompiledPredicate) -> Self {
        PredEval { pred, hits: 0 }
    }

    /// The predicate being evaluated.
    pub fn predicate(&self) -> &CompiledPredicate {
        &self.pred
    }

    /// Candidate writes observed so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Observes one candidate write (a write that overlapped a live
    /// monitor of the session) and decides whether the notification
    /// fires. The hit counter increments *before* evaluation, so the
    /// first candidate sees `hits == 1`.
    pub fn observe(&mut self, value: u32, old: u32, writer: u16) -> bool {
        self.hits += 1;
        self.pred.eval(value, old, self.hits, writer)
    }
}

/// Maps a program counter to the function containing it, for
/// `writer in f` filters. Built from `(entry_pc, func_id)` pairs; a pc
/// belongs to the function with the greatest entry at or below it
/// (tinyc lays functions out contiguously), and pcs below every entry
/// report [`NO_WRITER`].
#[derive(Debug, Clone, Default)]
pub struct WriterMap {
    starts: Vec<(u32, u16)>,
}

impl WriterMap {
    /// Builds the map; entries need not be sorted.
    pub fn new(entries: impl IntoIterator<Item = (u32, u16)>) -> Self {
        let mut starts: Vec<(u32, u16)> = entries.into_iter().collect();
        starts.sort_unstable();
        WriterMap { starts }
    }

    /// The function containing `pc`, or [`NO_WRITER`].
    pub fn writer_of(&self, pc: u32) -> u16 {
        let idx = self.starts.partition_point(|&(entry, _)| entry <= pc);
        if idx == 0 {
            NO_WRITER
        } else {
            self.starts[idx - 1].1
        }
    }

    /// The sorted `(entry_pc, func_id)` segments: pcs in
    /// `[entry_i, entry_{i+1})` belong to `func_id_i`. Block-level
    /// refutation walks these to bound which functions a pc *range* can
    /// touch.
    pub fn segments(&self) -> &[(u32, u16)] {
        &self.starts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compiled(src: &str) -> CompiledPredicate {
        Predicate::parse(src)
            .unwrap()
            .compile(|name| match name {
                "main" => Some(0),
                "put" => Some(1),
                _ => None,
            })
            .unwrap()
    }

    #[test]
    fn literal_value_comparisons() {
        let p = compiled("value > 10");
        assert!(p.eval(11, 0, 1, 0));
        assert!(!p.eval(10, 0, 1, 0));
        let p = compiled("value == old + 1");
        assert!(p.eval(5, 4, 1, 0));
        assert!(!p.eval(5, 5, 1, 0));
    }

    #[test]
    fn value_is_unsigned_32_bit() {
        let p = compiled("value == 0xffffffff");
        assert!(p.eval(u32::MAX, 0, 1, 0));
        let p = compiled("value > 0");
        assert!(p.eval(u32::MAX, 0, 1, 0), "no sign extension");
    }

    #[test]
    fn hits_conditions() {
        let p = compiled("hits % 3 == 0");
        let fires: Vec<bool> = (1..=7).map(|h| p.eval(0, 0, h, 0)).collect();
        assert_eq!(fires, [false, false, true, false, false, true, false]);
        let p = compiled("hits >= 3");
        assert!(!p.eval(0, 0, 2, 0));
        assert!(p.eval(0, 0, 3, 0));
    }

    #[test]
    fn writer_filters() {
        let p = compiled("writer in put");
        assert!(p.eval(0, 0, 1, 1));
        assert!(!p.eval(0, 0, 1, 0));
        assert!(!p.eval(0, 0, 1, NO_WRITER));
        let p = compiled("!(writer in main) && value != 0");
        assert!(p.eval(7, 0, 1, 1));
        assert!(!p.eval(7, 0, 1, 0));
        assert!(!p.eval(0, 0, 1, 1));
    }

    #[test]
    fn precedence_and_logic() {
        // * binds tighter than +, + tighter than ==, == tighter than &&.
        let p = compiled("value == 2 + 2 * 3 || old == 0");
        assert!(p.eval(8, 1, 1, 0));
        assert!(p.eval(9, 0, 1, 0));
        assert!(!p.eval(9, 1, 1, 0));
        let p = compiled("true && !false");
        assert!(p.eval(0, 0, 1, 0));
    }

    #[test]
    fn total_arithmetic_never_faults() {
        // Division and remainder by zero are 0, not a fault.
        assert!(!compiled("value / old > 0").eval(5, 0, 1, 0));
        assert!(compiled("value % old == 0").eval(5, 0, 1, 0));
        // Wrapping multiply, not overflow panic.
        let p = compiled("value * value * value * value * value >= 0");
        let _ = p.eval(u32::MAX, 0, 1, 0);
    }

    #[test]
    fn unary_minus_and_negative_literals() {
        let p = compiled("value - 5 == -2");
        assert!(p.eval(3, 0, 1, 0));
        assert!(compiled("-(1) == 0 - 1").eval(0, 0, 1, 0));
    }

    #[test]
    fn hits_counter_semantics() {
        let mut ev = PredEval::new(compiled("hits % 2 == 0"));
        // First candidate sees hits == 1.
        assert!(!ev.observe(0, 0, 0));
        assert!(ev.observe(0, 0, 0));
        assert!(!ev.observe(0, 0, 0));
        assert_eq!(ev.hits(), 3);
        // The counter advances even for filtered-out candidates.
        let mut ev = PredEval::new(compiled("value > 100 && hits >= 2"));
        assert!(!ev.observe(200, 0, 0), "hits == 1");
        assert!(ev.observe(200, 0, 0), "hits == 2");
    }

    #[test]
    fn compile_resolves_and_rejects_functions() {
        let p = Predicate::parse("writer in nosuch").unwrap();
        assert_eq!(p.writer_names(), ["nosuch"]);
        assert_eq!(
            p.compile(|_| None),
            Err(PredicateError::UnknownFunction {
                name: "nosuch".into()
            })
        );
    }

    #[test]
    fn static_deadness() {
        let p = compiled("value > 10");
        assert!(p.statically_false(Some(3), None));
        assert!(!p.statically_false(Some(11), None));
        assert!(!p.statically_false(None, None));

        let p = compiled("writer in put");
        assert!(p.statically_false(None, Some(0)));
        assert!(!p.statically_false(None, Some(1)));

        // Logical domination: one known-false conjunct kills the whole
        // predicate even when the other side is unknown.
        let p = compiled("value == 7 && old != 0");
        assert!(p.statically_false(Some(8), None));
        assert!(!p.statically_false(Some(7), None));
        let p = compiled("old != 0 || value == 7");
        assert!(!p.statically_false(Some(8), None), "old side unknown");

        // `old` is never statically known.
        assert!(!compiled("old > 10").statically_false(Some(3), Some(0)));

        // Predicates reading `hits` are never statically dead, even
        // when another conjunct is provably false — skipping the site
        // would perturb the counter other sites observe.
        let p = compiled("value > 10 && hits % 2 == 0");
        assert!(p.uses_hits());
        assert!(!p.statically_false(Some(3), Some(0)));
        assert!(!compiled("false && hits > 0").statically_false(None, None));
        assert!(compiled("false && old > 0").statically_false(None, None));
    }

    #[test]
    fn writer_map_ranges() {
        let wm = WriterMap::new([(0x100, 2), (0x40, 0), (0x80, 1)]);
        assert_eq!(wm.writer_of(0x3c), NO_WRITER);
        assert_eq!(wm.writer_of(0x40), 0);
        assert_eq!(wm.writer_of(0x7c), 0);
        assert_eq!(wm.writer_of(0x80), 1);
        assert_eq!(wm.writer_of(0xfc), 1);
        assert_eq!(wm.writer_of(0x100), 2);
        assert_eq!(wm.writer_of(0xffff_fffc), 2);
        assert_eq!(WriterMap::default().writer_of(0), NO_WRITER);
    }

    #[test]
    fn displays_round_trip_source() {
        let p = Predicate::parse("  value > 10 && hits % 2 == 0 ").unwrap();
        assert_eq!(p.to_string(), "value > 10 && hits % 2 == 0");
        assert_eq!(compiled("writer in put").to_string(), "writer in put");
    }

    /// Satellite: table-driven negative tests. Every malformed input
    /// must produce a clean [`PredicateError`] — never a panic — and
    /// the error kind must be the expected one.
    #[test]
    fn malformed_predicates_error_cleanly() {
        use PredicateError as E;
        fn kind(e: &E) -> &'static str {
            match e {
                E::Empty => "empty",
                E::UnexpectedChar { .. } => "char",
                E::UnexpectedToken { .. } => "token",
                E::UnexpectedEnd { .. } => "end",
                E::UnknownIdent { .. } => "ident",
                E::LiteralOverflow { .. } => "overflow",
                E::TooDeep => "deep",
                E::TrailingInput { .. } => "trailing",
                E::UnknownFunction { .. } => "function",
            }
        }
        let deep_parens = format!("{}1{}", "(".repeat(200), ")".repeat(200));
        let deep_bangs = format!("{}1", "!".repeat(200));
        let cases: &[(&str, &str)] = &[
            ("", "empty"),
            ("   \t\n", "empty"),
            ("(value > 1", "end"),
            ("value > 1)", "trailing"),
            ("((value) > (1)", "end"),
            ("value >", "end"),
            ("value > 1 value", "trailing"),
            ("1 < value < 3", "trailing"),
            ("value > 99999999999999999999999", "overflow"),
            ("0xffffffffffffffffff == value", "overflow"),
            ("valu > 3", "ident"),
            ("foo", "ident"),
            ("writer in", "end"),
            ("writer in 3", "token"),
            ("writer value", "token"),
            ("in main", "ident"),
            ("value & 1", "char"),
            ("value | 1", "char"),
            ("value = 1", "char"),
            ("value @ 1", "char"),
            ("value ># 1", "char"),
            ("&& value", "token"),
            ("value > > 1", "token"),
            ("()", "token"),
            ("0x", "char"),
            (&deep_parens, "deep"),
            (&deep_bangs, "deep"),
        ];
        for (src, want) in cases {
            let got = Predicate::parse(src).expect_err(&format!("`{src}` must not parse"));
            assert_eq!(
                kind(&got),
                *want,
                "`{src}` gave {got:?}, wanted kind {want}"
            );
            // Every error formats without panicking and nonempty.
            assert!(!got.to_string().is_empty());
        }
    }

    /// Deep-but-legal nesting just under the limit still parses.
    #[test]
    fn nesting_just_under_the_limit_parses() {
        let n = MAX_PREDICATE_DEPTH - 1;
        let src = format!("{}1{}", "(".repeat(n), ")".repeat(n));
        assert!(Predicate::parse(&src).is_ok());
    }

    /// Throwing arbitrary byte soup at the parser never panics (cheap
    /// deterministic fuzz — no generator dependency needed here).
    #[test]
    fn parser_survives_byte_soup() {
        let alphabet: Vec<char> = "value old hits writer in ()!&|=<>+-*/% 0123456789x\u{e9}"
            .chars()
            .collect();
        let mut state: u64 = 0x243f_6a88_85a3_08d3;
        for _ in 0..2000 {
            let mut src = String::new();
            for _ in 0..32 {
                // xorshift64* — deterministic, no RNG dependency.
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                let r = state.wrapping_mul(0x2545_f491_4f6c_dd1d);
                src.push(alphabet[(r % alphabet.len() as u64) as usize]);
            }
            let _ = Predicate::parse(&src); // must not panic
        }
    }

    #[test]
    fn decide_over_refutes_and_affirms_ranges() {
        let span = |vlo, vhi| WriteSpan {
            value: (vlo, vhi),
            old: (0, u32::MAX),
            hits: (1, 1000),
        };
        let p = compiled("value > 100");
        assert_eq!(p.decide_over(&span(0, 100), &mut |_| None), Some(false));
        assert_eq!(p.decide_over(&span(101, 500), &mut |_| None), Some(true));
        assert_eq!(p.decide_over(&span(50, 500), &mut |_| None), None);

        // Writer tri-state: `put` is id 1.
        let p = compiled("writer in put");
        assert_eq!(
            p.decide_over(&span(0, 0), &mut |f| Some(f == 1)),
            Some(true)
        );
        assert_eq!(
            p.decide_over(&span(0, 0), &mut |_| Some(false)),
            Some(false)
        );
        assert_eq!(p.decide_over(&span(0, 0), &mut |_| None), None);

        // hits bounds refute hits-only predicates per block.
        let p = compiled("hits > 5000");
        assert_eq!(p.decide_over(&span(0, 0), &mut |_| None), Some(false));
        let wide = WriteSpan {
            value: (0, 0),
            old: (0, 0),
            hits: (5001, 6000),
        };
        assert_eq!(p.decide_over(&wide, &mut |_| None), Some(true));

        // Conjunction: one refuted side kills the block even when the
        // other is unknown.
        let p = compiled("value > 100 && old == 3");
        assert_eq!(p.decide_over(&span(0, 90), &mut |_| None), Some(false));
        assert_eq!(p.decide_over(&span(101, 500), &mut |_| None), None);

        // Arithmetic stays sound under potential overflow: intervals
        // widen to TOP rather than pretending wrapping is monotonic.
        let p = compiled("value * value * value > 0");
        assert_eq!(p.decide_over(&span(0, u32::MAX), &mut |_| None), None);
    }

    #[test]
    fn column_introspection() {
        let p = compiled("value > 1 && writer in put");
        assert!(p.uses_value() && p.uses_writer());
        assert!(!p.uses_old() && !p.uses_hits());
        let p = compiled("old % 2 == hits % 2");
        assert!(p.uses_old() && p.uses_hits());
        assert!(!p.uses_value() && !p.uses_writer());
    }

    /// Interval soundness, sampled: for random predicates over random
    /// spans, a definite `decide_over` answer must agree with concrete
    /// evaluation at every sampled point inside the span.
    #[test]
    fn decide_over_agrees_with_concrete_eval() {
        let pool = [
            "value > 1000",
            "value + old > 1000",
            "value - old == 1",
            "value * 2 >= old",
            "value % 7 == 3",
            "value / 2 > old",
            "hits % 2 == 0",
            "hits > 10 && value < 50",
            "writer in put || value == 0",
            "!(value > 10) && old <= 5",
            "-value < -10",
            "value == old",
            "value != 0 || old != 0",
            "(value + 1) * (old + 1) > 100",
        ];
        let mut state: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut rng = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_f491_4f6c_dd1d)
        };
        for _ in 0..400 {
            let p = compiled(pool[(rng() % pool.len() as u64) as usize]);
            let a = (rng() % 2000) as u32;
            let b = (rng() % 2000) as u32;
            let (vlo, vhi) = (a.min(b), a.max(b));
            let a = (rng() % 2000) as u32;
            let b = (rng() % 2000) as u32;
            let (olo, ohi) = (a.min(b), a.max(b));
            let hlo = 1 + rng() % 100;
            let hhi = hlo + rng() % 100;
            let span = WriteSpan {
                value: (vlo, vhi),
                old: (olo, ohi),
                hits: (hlo, hhi),
            };
            // Writer is either pinned to one id or unknown.
            let pinned = (rng() % 2 == 0).then(|| (rng() % 3) as u16);
            let decided = p.decide_over(&span, &mut |f| pinned.map(|w| w == f));
            let Some(want) = decided else { continue };
            for _ in 0..64 {
                let value = vlo + (rng() % (u64::from(vhi - vlo) + 1)) as u32;
                let old = olo + (rng() % (u64::from(ohi - olo) + 1)) as u32;
                let hits = hlo + rng() % (hhi - hlo + 1);
                let writer = pinned.unwrap_or((rng() % 4) as u16);
                assert_eq!(
                    p.eval(value, old, hits, writer),
                    want,
                    "{} decided {want} over {span:?} but concrete \
                     (v={value}, o={old}, h={hits}, w={writer}) disagrees",
                    p.src()
                );
            }
        }
    }

    #[test]
    fn writer_map_segments_are_sorted() {
        let wm = WriterMap::new([(0x100, 2), (0x40, 0), (0x80, 1)]);
        assert_eq!(wm.segments(), &[(0x40, 0), (0x80, 1), (0x100, 2)]);
    }
}
