//! The write monitor service (WMS) — the primary contribution of
//! *Efficient Data Breakpoints* (Wahbe, ASPLOS 1992).
//!
//! A WMS notifies clients of every write to a *monitored* region of
//! memory; data breakpoints are built on top of it. This crate provides:
//!
//! * the WMS interface of the paper's Section 2 — install/remove
//!   monitors, receive [`Notification`]s — as the [`Wms`] facade;
//! * the address→monitor mapping of Appendix A.5 — a per-page,
//!   word-granular bitmap in a hash table ([`PageMap`]) — plus a naive
//!   [`IntervalSet`] used as an oracle and ablation baseline;
//! * **executable implementations of all four strategies** the paper
//!   studies, each driving a program on the simulated machine and
//!   charging the Table 2 primitive costs as it goes:
//!   [`NativeHardware`], [`VirtualMemory`], [`TrapPatch`], [`CodePatch`];
//! * [`MonitorPlan`] — the client's description of *what* to monitor
//!   (monitor sessions implement this), and [`SessionTracker`] — the
//!   bookkeeping that turns function boundaries and heap events into
//!   install/remove operations.
//!
//! # Examples
//!
//! Monitoring a global with the software WMS directly:
//!
//! ```
//! use databp_core::Wms;
//!
//! let mut wms = Wms::new();
//! let id = wms.install(0x10_0000, 0x10_0004).unwrap();
//! assert!(wms.check_write(0x10_0000, 0x10_0004, 0x1_0000)); // hit
//! assert!(!wms.check_write(0x10_0010, 0x10_0014, 0x1_0004)); // miss
//! assert_eq!(wms.notifications().len(), 1);
//! wms.remove(id).unwrap();
//! ```

mod intervals;
mod monitor;
mod pagemap;
mod plan;
mod predicate;
mod service;
mod strategy;
mod tracker;

pub use databp_analysis::{PlanClass, SiteClass, WriteSafety};
pub use intervals::IntervalSet;
pub use monitor::{Monitor, MonitorId, Notification, WmsError};
pub use pagemap::PageMap;
pub use plan::{MonitorEverything, MonitorPlan, NoMonitors, RangePlan};
pub use predicate::{
    CompiledPredicate, PredEval, Predicate, PredicateError, WriteSpan, WriterMap,
    MAX_PREDICATE_DEPTH, NO_WRITER,
};
pub use service::{Wms, WmsCounters};
pub use strategy::{
    CodePatch, DynamicCodePatch, NativeHardware, StrategyReport, TrapPatch, VirtualMemory,
    VmContinuation, MAX_CAPTURED_NOTIFICATIONS, PATCH_SITE_US,
};
pub use tracker::SessionTracker;
