//! Object-lifetime bookkeeping shared by all strategy drivers.
//!
//! [`SessionTracker`] converts run events (function enter/exit, heap
//! alloc/free/realloc) into concrete monitor ranges to install or remove,
//! consulting the session's [`MonitorPlan`]. It is strategy-agnostic: the
//! caller applies the returned ranges to its own mechanism (watch
//! registers, page protection, or the software map).

use crate::plan::MonitorPlan;
use databp_tinyc::DebugInfo;
use std::collections::HashMap;

/// One monitored range (beginning address, ending address).
pub type Range = (u32, u32);

/// Tracks which objects are live and monitored during a run.
#[derive(Debug)]
pub struct SessionTracker {
    /// Per function: the frame variables the plan wants monitored, as
    /// `(fp-relative offset, size)`.
    monitored_vars: Vec<Vec<(i32, u32)>>,
    /// Globals the plan wants monitored, as ranges.
    monitored_globals: Vec<Range>,
    /// Live call stack: `(fid, fp)`.
    stack: Vec<(u16, u32)>,
    /// Scratch of stack fids, kept in sync for `monitor_heap` queries.
    stack_fids: Vec<u16>,
    /// Ranges installed for each live frame.
    frame_ranges: Vec<Vec<Range>>,
    /// Ranges installed for live monitored heap objects.
    heap_ranges: HashMap<u32, Range>,
}

impl SessionTracker {
    /// Builds a tracker for `debug`'s program under `plan`.
    pub fn new(debug: &DebugInfo, plan: &dyn MonitorPlan) -> Self {
        let monitored_vars = debug
            .functions
            .iter()
            .enumerate()
            .map(|(fid, f)| {
                f.locals
                    .iter()
                    .filter(|l| plan.monitor_local(fid as u16, l.var))
                    .map(|l| (l.offset, l.size))
                    .collect()
            })
            .collect();
        let monitored_globals = debug
            .globals
            .iter()
            .filter(|g| !g.is_literal && plan.monitor_global(g.id))
            .map(|g| (g.ba, g.ea))
            .collect();
        SessionTracker {
            monitored_vars,
            monitored_globals,
            stack: Vec::new(),
            stack_fids: Vec::new(),
            frame_ranges: Vec::new(),
            heap_ranges: HashMap::new(),
        }
    }

    /// Ranges to install before the program starts (monitored globals).
    pub fn initial_installs(&self) -> Vec<Range> {
        self.monitored_globals.clone()
    }

    /// Records entry to `fid` with frame pointer `fp`; returns the local
    /// ranges to install.
    pub fn enter(&mut self, fid: u16, fp: u32) -> Vec<Range> {
        let ranges: Vec<Range> = self
            .monitored_vars
            .get(fid as usize)
            .map(|vars| {
                vars.iter()
                    .map(|&(off, size)| {
                        let ba = fp.wrapping_add(off as u32);
                        (ba, ba + size)
                    })
                    .collect()
            })
            .unwrap_or_default();
        self.stack.push((fid, fp));
        self.stack_fids.push(fid);
        self.frame_ranges.push(ranges.clone());
        ranges
    }

    /// Records exit from `fid`; returns the local ranges to remove.
    ///
    /// # Panics
    ///
    /// Panics on mismatched enter/exit nesting (a compiler bug).
    pub fn exit(&mut self, fid: u16) -> Vec<Range> {
        let (top, _) = self.stack.pop().expect("exit with empty stack");
        assert_eq!(top, fid, "mismatched function exit");
        self.stack_fids.pop();
        self.frame_ranges
            .pop()
            .expect("frame ranges in sync with stack")
    }

    /// Records a heap allocation; returns the range to install when the
    /// plan monitors this object.
    pub fn heap_alloc(
        &mut self,
        plan: &dyn MonitorPlan,
        seq: u32,
        ba: u32,
        ea: u32,
    ) -> Option<Range> {
        if plan.monitor_heap(seq, &self.stack_fids) {
            self.heap_ranges.insert(seq, (ba, ea));
            Some((ba, ea))
        } else {
            None
        }
    }

    /// Records a heap free; returns the range to remove when the object
    /// was monitored.
    pub fn heap_free(&mut self, seq: u32) -> Option<Range> {
        self.heap_ranges.remove(&seq)
    }

    /// Records a realloc move; returns `(remove, install)` ranges when
    /// the object was monitored (identity is preserved per the paper).
    pub fn heap_realloc(
        &mut self,
        seq: u32,
        new_ba: u32,
        new_ea: u32,
    ) -> (Option<Range>, Option<Range>) {
        match self.heap_ranges.get_mut(&seq) {
            Some(r) => {
                let old = *r;
                *r = (new_ba, new_ea);
                (Some(old), Some((new_ba, new_ea)))
            }
            None => (None, None),
        }
    }

    /// Ranges still installed (outstanding frames, live heap objects,
    /// globals) — removed by drivers when the program halts, matching the
    /// tracer's `finish()` accounting.
    pub fn outstanding(&self) -> Vec<Range> {
        let mut out: Vec<Range> = self.frame_ranges.iter().flatten().copied().collect();
        let mut heap: Vec<(u32, Range)> = self.heap_ranges.iter().map(|(s, r)| (*s, *r)).collect();
        heap.sort_unstable();
        out.extend(heap.into_iter().map(|(_, r)| r));
        out.extend(self.monitored_globals.iter().copied());
        out
    }

    /// The dynamic call stack as function ids (outermost first).
    pub fn stack_fids(&self) -> &[u16] {
        &self.stack_fids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{MonitorEverything, NoMonitors, RangePlan};
    use databp_tinyc::{compile, Options};

    fn debug_for(src: &str) -> DebugInfo {
        compile(src, &Options::plain()).unwrap().debug
    }

    const SRC: &str = r#"
        int g;
        int h;
        int f(int x) { int y; y = x; return y; }
        int main() { int a; a = f(1); return a; }
    "#;

    #[test]
    fn plan_filtering_at_construction() {
        let debug = debug_for(SRC);
        let all = SessionTracker::new(&debug, &MonitorEverything);
        assert_eq!(all.initial_installs().len(), 2);
        let none = SessionTracker::new(&debug, &NoMonitors);
        assert!(none.initial_installs().is_empty());
    }

    #[test]
    fn enter_exit_produces_matching_ranges() {
        let debug = debug_for(SRC);
        let mut t = SessionTracker::new(&debug, &MonitorEverything);
        let fp = 0x00F0_0000;
        let installed = t.enter(0, fp); // f has x (param) and y
        assert_eq!(installed.len(), 2);
        for &(ba, ea) in &installed {
            assert!(ba < ea && ea <= fp);
        }
        let removed = t.exit(0);
        assert_eq!(installed, removed);
    }

    #[test]
    fn recursion_distinguishes_instances_by_fp() {
        let debug = debug_for(SRC);
        let mut t = SessionTracker::new(&debug, &MonitorEverything);
        let a = t.enter(0, 0x00F0_0000);
        let b = t.enter(0, 0x00EF_FF00);
        assert_ne!(a, b);
        assert_eq!(t.exit(0), b);
        assert_eq!(t.exit(0), a);
    }

    #[test]
    fn heap_lifecycle_with_selective_plan() {
        let debug = debug_for(SRC);
        let plan = RangePlan {
            heap_seqs: vec![1],
            ..RangePlan::default()
        };
        let mut t = SessionTracker::new(&debug, &plan);
        assert_eq!(t.heap_alloc(&plan, 0, 0x40_0000, 0x40_0010), None);
        assert_eq!(
            t.heap_alloc(&plan, 1, 0x40_0010, 0x40_0020),
            Some((0x40_0010, 0x40_0020))
        );
        let (rem, ins) = t.heap_realloc(1, 0x40_0100, 0x40_0140);
        assert_eq!(rem, Some((0x40_0010, 0x40_0020)));
        assert_eq!(ins, Some((0x40_0100, 0x40_0140)));
        assert_eq!(t.heap_free(1), Some((0x40_0100, 0x40_0140)));
        assert_eq!(t.heap_free(1), None);
    }

    #[test]
    fn outstanding_reports_everything_live() {
        let debug = debug_for(SRC);
        let plan = MonitorEverything;
        let mut t = SessionTracker::new(&debug, &plan);
        t.enter(1, 0x00F0_0000);
        t.heap_alloc(&plan, 0, 0x40_0000, 0x40_0010);
        let out = t.outstanding();
        // main's local a + heap object + 2 globals.
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn stack_fids_reflect_call_context() {
        let debug = debug_for(SRC);
        let mut t = SessionTracker::new(&debug, &NoMonitors);
        t.enter(1, 0x00F0_0000);
        t.enter(0, 0x00EF_FF00);
        assert_eq!(t.stack_fids(), &[1, 0]);
        t.exit(0);
        assert_eq!(t.stack_fids(), &[1]);
    }

    #[test]
    #[should_panic(expected = "mismatched function exit")]
    fn mismatched_exit_panics() {
        let debug = debug_for(SRC);
        let mut t = SessionTracker::new(&debug, &NoMonitors);
        t.enter(0, 0x00F0_0000);
        t.exit(1);
    }
}
