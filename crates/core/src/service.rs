//! The [`Wms`] facade: the paper's Section 2 interface over the page-map
//! index.

use crate::monitor::{Monitor, MonitorId, Notification, WmsError};
use crate::pagemap::PageMap;
use databp_telemetry::Counter;
use std::collections::HashMap;

/// Maximum notifications retained in the buffer; the count keeps
/// incrementing past this (debugging sessions care about the first few
/// hits, statistics about the count).
const NOTIFICATION_CAP: usize = 10_000;

/// Operation counters, exposed for tests and the harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WmsCounters {
    /// `InstallMonitor` calls.
    pub installs: u64,
    /// `RemoveMonitor` calls.
    pub removes: u64,
    /// `check_write` calls (lookups).
    pub lookups: u64,
    /// Checks that hit at least one monitor.
    pub hits: u64,
}

/// Telemetry-counter storage backing [`WmsCounters`]. Per-instance and
/// always counting (the legacy `counters()` API works with telemetry
/// disabled); the `wms.*` global registry mirrors are updated alongside
/// via the gated macros.
#[derive(Debug, Default)]
struct WmsTelemetry {
    installs: Counter,
    removes: Counter,
    lookups: Counter,
    hits: Counter,
}

impl Clone for WmsTelemetry {
    fn clone(&self) -> Self {
        // Deep copy: a cloned Wms must not share counter state with its
        // source (the handles are Arc-backed; the pre-telemetry struct
        // was a plain Copy).
        WmsTelemetry {
            installs: Counter::detached_with(self.installs.get()),
            removes: Counter::detached_with(self.removes.get()),
            lookups: Counter::detached_with(self.lookups.get()),
            hits: Counter::detached_with(self.hits.get()),
        }
    }
}

impl WmsTelemetry {
    fn as_counters(&self) -> WmsCounters {
        WmsCounters {
            installs: self.installs.get(),
            removes: self.removes.get(),
            lookups: self.lookups.get(),
            hits: self.hits.get(),
        }
    }
}

/// The write monitor service: install/remove monitors, check writes,
/// collect notifications.
///
/// This is the software WMS used directly by the TrapPatch and CodePatch
/// strategies; NativeHardware and VirtualMemory consult it from their
/// fault handlers.
#[derive(Debug, Clone, Default)]
pub struct Wms {
    map: PageMap,
    live: HashMap<MonitorId, Monitor>,
    by_range: HashMap<(u32, u32), Vec<MonitorId>>,
    next: u64,
    counters: WmsTelemetry,
    notifications: Vec<Notification>,
    notification_count: u64,
}

impl Wms {
    /// An empty service.
    pub fn new() -> Self {
        Wms::default()
    }

    /// Installs a monitor over `[ba, ea)` — the paper's
    /// `InstallMonitor(BA, EA)`.
    ///
    /// # Errors
    ///
    /// [`WmsError::EmptyRange`] when `ba >= ea`.
    pub fn install(&mut self, ba: u32, ea: u32) -> Result<MonitorId, WmsError> {
        let m = Monitor::new(ba, ea)?;
        let id = MonitorId(self.next);
        self.next += 1;
        self.map.install(id, m);
        self.live.insert(id, m);
        self.by_range.entry((ba, ea)).or_default().push(id);
        self.counters.installs.inc_always();
        databp_telemetry::count!("wms.installs");
        databp_telemetry::gauge_add!("wms.monitors.active", 1);
        Ok(id)
    }

    /// Removes monitor `id`.
    ///
    /// # Errors
    ///
    /// [`WmsError::UnknownMonitor`] when `id` is not installed.
    pub fn remove(&mut self, id: MonitorId) -> Result<(), WmsError> {
        let m = self.live.remove(&id).ok_or(WmsError::UnknownMonitor(id))?;
        self.map.remove(id, m);
        if let Some(v) = self.by_range.get_mut(&(m.ba, m.ea)) {
            v.retain(|x| *x != id);
            if v.is_empty() {
                self.by_range.remove(&(m.ba, m.ea));
            }
        }
        self.counters.removes.inc_always();
        databp_telemetry::count!("wms.removes");
        databp_telemetry::gauge_add!("wms.monitors.active", -1);
        Ok(())
    }

    /// Removes one monitor installed with exactly the range `[ba, ea)` —
    /// the paper's `RemoveMonitor(BA, EA)`.
    ///
    /// # Errors
    ///
    /// [`WmsError::NoSuchRange`] when no installed monitor has that
    /// range.
    pub fn remove_range(&mut self, ba: u32, ea: u32) -> Result<(), WmsError> {
        let id = self
            .by_range
            .get(&(ba, ea))
            .and_then(|v| v.last().copied())
            .ok_or(WmsError::NoSuchRange { ba, ea })?;
        self.remove(id)
    }

    /// Checks a write against the active monitors; on a (byte-exact) hit,
    /// records a [`Notification`] and returns true.
    pub fn check_write(&mut self, ba: u32, ea: u32, pc: u32) -> bool {
        self.counters.lookups.inc_always();
        databp_telemetry::count!("wms.lookups");
        // Fast word-granular bitmap test first (the timed operation),
        // byte-exact confirmation second.
        if self.map.lookup(ba, ea) && self.map.hit_exact(ba, ea) {
            self.counters.hits.inc_always();
            databp_telemetry::count!("wms.hits");
            self.notification_count += 1;
            if self.notifications.len() < NOTIFICATION_CAP {
                self.notifications.push(Notification { ba, ea, pc });
            }
            return true;
        }
        false
    }

    /// Pure lookup without notification (used for preliminary checks).
    pub fn would_hit(&self, ba: u32, ea: u32) -> bool {
        self.map.lookup(ba, ea) && self.map.hit_exact(ba, ea)
    }

    /// Number of installed monitors.
    pub fn active_monitors(&self) -> usize {
        self.live.len()
    }

    /// Buffered notifications (the first 10 000 only; see
    /// [`Wms::notification_count`] for the true total).
    pub fn notifications(&self) -> &[Notification] {
        &self.notifications
    }

    /// Total notifications delivered, including any beyond the buffer
    /// cap.
    pub fn notification_count(&self) -> u64 {
        self.notification_count
    }

    /// Operation counters.
    pub fn counters(&self) -> WmsCounters {
        self.counters.as_counters()
    }

    /// Drains the notification buffer.
    pub fn take_notifications(&mut self) -> Vec<Notification> {
        std::mem::take(&mut self.notifications)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_check_remove_lifecycle() {
        let mut w = Wms::new();
        let id = w.install(0x100, 0x110).unwrap();
        assert_eq!(w.active_monitors(), 1);
        assert!(w.check_write(0x100, 0x104, 0x10));
        assert!(!w.check_write(0x110, 0x114, 0x14));
        w.remove(id).unwrap();
        assert!(!w.check_write(0x100, 0x104, 0x18));
        assert_eq!(w.counters().installs, 1);
        assert_eq!(w.counters().removes, 1);
        assert_eq!(w.counters().lookups, 3);
        assert_eq!(w.counters().hits, 1);
    }

    #[test]
    fn notifications_record_pc_and_range() {
        let mut w = Wms::new();
        w.install(0x100, 0x104).unwrap();
        w.check_write(0x100, 0x104, 0xabcd);
        assert_eq!(
            w.notifications(),
            &[Notification {
                ba: 0x100,
                ea: 0x104,
                pc: 0xabcd
            }]
        );
        assert_eq!(w.notification_count(), 1);
        let drained = w.take_notifications();
        assert_eq!(drained.len(), 1);
        assert!(w.notifications().is_empty());
        assert_eq!(w.notification_count(), 1);
    }

    #[test]
    fn remove_range_picks_matching_monitor() {
        let mut w = Wms::new();
        w.install(0x100, 0x110).unwrap();
        w.install(0x200, 0x210).unwrap();
        w.remove_range(0x100, 0x110).unwrap();
        assert!(!w.would_hit(0x100, 0x104));
        assert!(w.would_hit(0x200, 0x204));
        assert_eq!(
            w.remove_range(0x100, 0x110),
            Err(WmsError::NoSuchRange {
                ba: 0x100,
                ea: 0x110
            })
        );
    }

    #[test]
    fn duplicate_ranges_remove_one_at_a_time() {
        let mut w = Wms::new();
        w.install(0x100, 0x110).unwrap();
        w.install(0x100, 0x110).unwrap();
        w.remove_range(0x100, 0x110).unwrap();
        assert!(w.would_hit(0x100, 0x104), "one duplicate still active");
        w.remove_range(0x100, 0x110).unwrap();
        assert!(!w.would_hit(0x100, 0x104));
    }

    #[test]
    fn errors_for_bad_operations() {
        let mut w = Wms::new();
        assert!(w.install(8, 8).is_err());
        assert_eq!(
            w.remove(MonitorId(99)),
            Err(WmsError::UnknownMonitor(MonitorId(99)))
        );
    }

    #[test]
    fn would_hit_does_not_notify() {
        let mut w = Wms::new();
        w.install(0x100, 0x104).unwrap();
        assert!(w.would_hit(0x100, 0x104));
        assert_eq!(w.notification_count(), 0);
        assert_eq!(w.counters().lookups, 0);
    }

    #[test]
    fn notification_buffer_caps_but_count_continues() {
        let mut w = Wms::new();
        w.install(0x100, 0x104).unwrap();
        for i in 0..(NOTIFICATION_CAP as u64 + 50) {
            w.check_write(0x100, 0x104, i as u32);
        }
        assert_eq!(w.notifications().len(), NOTIFICATION_CAP);
        assert_eq!(w.notification_count(), NOTIFICATION_CAP as u64 + 50);
    }
}
