//! Monitor descriptors, notifications, and errors.

use std::error::Error;
use std::fmt;

/// Identifies an installed write monitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MonitorId(pub(crate) u64);

impl MonitorId {
    /// Creates an id from a raw number — for driving
    /// [`PageMap`](crate::PageMap) / [`IntervalSet`](crate::IntervalSet)
    /// directly (benchmarks, oracles). Ids used with
    /// [`Wms`](crate::Wms) are allocated by the service itself.
    pub fn from_raw(raw: u64) -> Self {
        MonitorId(raw)
    }

    /// The raw number.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for MonitorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// A write monitor: a contiguous region of memory `[ba, ea)` whose writes
/// must be reported (the paper's Section 2 descriptor).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Monitor {
    /// Beginning address.
    pub ba: u32,
    /// Ending address (exclusive).
    pub ea: u32,
}

impl Monitor {
    /// Creates a monitor over `[ba, ea)`.
    ///
    /// # Errors
    ///
    /// [`WmsError::EmptyRange`] when `ba >= ea`.
    pub fn new(ba: u32, ea: u32) -> Result<Monitor, WmsError> {
        if ba >= ea {
            return Err(WmsError::EmptyRange { ba, ea });
        }
        Ok(Monitor { ba, ea })
    }

    /// Length in bytes.
    pub fn len(&self) -> u32 {
        self.ea - self.ba
    }

    /// Monitors are never empty (enforced at construction); provided for
    /// API completeness.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// True if the write `[ba, ea)` overlaps this monitor.
    pub fn overlaps(&self, ba: u32, ea: u32) -> bool {
        ba < self.ea && self.ba < ea
    }
}

impl fmt::Display for Monitor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:#010x}, {:#010x})", self.ba, self.ea)
    }
}

/// A monitor notification — the paper's `MonitorNotification(BA, EA, PC)`
/// upcall, delivered once per monitor hit, after the write has succeeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Notification {
    /// Beginning address of the write.
    pub ba: u32,
    /// Ending address of the write (exclusive).
    pub ea: u32,
    /// Program counter of the writing instruction.
    pub pc: u32,
}

impl fmt::Display for Notification {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "write [{:#010x}, {:#010x}) at pc {:#010x}",
            self.ba, self.ea, self.pc
        )
    }
}

/// WMS errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WmsError {
    /// A monitor range with `ba >= ea`.
    EmptyRange {
        /// Beginning address.
        ba: u32,
        /// Ending address.
        ea: u32,
    },
    /// Removing a monitor id that is not installed.
    UnknownMonitor(MonitorId),
    /// Removing by range when no installed monitor has that exact range.
    NoSuchRange {
        /// Beginning address.
        ba: u32,
        /// Ending address.
        ea: u32,
    },
}

impl fmt::Display for WmsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            WmsError::EmptyRange { ba, ea } => {
                write!(f, "empty monitor range [{ba:#x}, {ea:#x})")
            }
            WmsError::UnknownMonitor(id) => write!(f, "unknown monitor {id}"),
            WmsError::NoSuchRange { ba, ea } => {
                write!(f, "no installed monitor with range [{ba:#x}, {ea:#x})")
            }
        }
    }
}

impl Error for WmsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monitor_construction_validates() {
        assert!(Monitor::new(0, 4).is_ok());
        assert_eq!(
            Monitor::new(4, 4),
            Err(WmsError::EmptyRange { ba: 4, ea: 4 })
        );
        assert_eq!(
            Monitor::new(8, 4),
            Err(WmsError::EmptyRange { ba: 8, ea: 4 })
        );
    }

    #[test]
    fn overlap_cases() {
        let m = Monitor::new(100, 108).unwrap();
        assert!(m.overlaps(100, 104));
        assert!(m.overlaps(107, 108));
        assert!(m.overlaps(96, 101));
        assert!(m.overlaps(96, 200));
        assert!(!m.overlaps(108, 112));
        assert!(!m.overlaps(96, 100));
        assert_eq!(m.len(), 8);
        assert!(!m.is_empty());
    }

    #[test]
    fn displays_are_informative() {
        assert!(Monitor::new(0, 4)
            .unwrap()
            .to_string()
            .contains("0x00000000"));
        assert!(MonitorId(3).to_string().contains('3'));
        let n = Notification {
            ba: 0,
            ea: 4,
            pc: 8,
        };
        assert!(n.to_string().contains("pc"));
        assert!(WmsError::UnknownMonitor(MonitorId(1))
            .to_string()
            .contains("m1"));
    }
}
