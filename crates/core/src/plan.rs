//! Monitor plans: *what* a client wants monitored.
//!
//! A monitor session (the paper's Section 5) is program-independent in
//! spirit: "monitor this local", "monitor all heap objects allocated by
//! f". [`MonitorPlan`] is the WMS-side abstraction of such a session —
//! the strategies consult it at every object-lifetime event to decide
//! whether to install a monitor. The `databp-sessions` crate implements
//! it for the paper's five session types.

use databp_analysis::PlanClass;

/// Decides which program objects a run should monitor.
pub trait MonitorPlan {
    /// Should global `id` be monitored (installed at program start)?
    fn monitor_global(&self, _id: u32) -> bool {
        false
    }

    /// Should local variable `var` of function `func` be monitored
    /// (installed at every instantiation)?
    fn monitor_local(&self, _func: u16, _var: u16) -> bool {
        false
    }

    /// Should the heap object with allocation number `seq` be monitored?
    /// `stack` is the dynamic call stack (function ids, outermost first)
    /// at allocation time — the context `AllHeapInFunc` needs.
    fn monitor_heap(&self, _seq: u32, _stack: &[u16]) -> bool {
        false
    }

    /// The address regions this plan can ever place a monitor in, for
    /// the static write-safety elision
    /// ([`CodePatch::with_staticopt`](crate::CodePatch::with_staticopt)).
    /// Must be an *over*-approximation: claiming a region the plan never
    /// monitors only costs checks; omitting one it does monitor is
    /// unsound (and caught by the replay oracle in `databp-sim`). The
    /// default is [`PlanClass::ALL`] — elide nothing.
    fn plan_class(&self) -> PlanClass {
        PlanClass::ALL
    }
}

/// Monitors nothing — the baseline plan (useful for measuring pure
/// instrumentation overhead, e.g. CodePatch with zero active monitors).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoMonitors;

impl MonitorPlan for NoMonitors {
    fn plan_class(&self) -> PlanClass {
        PlanClass::NONE
    }
}

/// Monitors every global, local, and heap object (stress testing).
#[derive(Debug, Clone, Copy, Default)]
pub struct MonitorEverything;

impl MonitorPlan for MonitorEverything {
    fn monitor_global(&self, _id: u32) -> bool {
        true
    }

    fn monitor_local(&self, _func: u16, _var: u16) -> bool {
        true
    }

    fn monitor_heap(&self, _seq: u32, _stack: &[u16]) -> bool {
        true
    }
}

/// A hand-built plan over explicit object lists — convenient in examples
/// and tests ("watch global 3 and local (2, 0)").
#[derive(Debug, Clone, Default)]
pub struct RangePlan {
    /// Global ids to monitor.
    pub globals: Vec<u32>,
    /// `(func, var)` locals to monitor.
    pub locals: Vec<(u16, u16)>,
    /// Heap allocation numbers to monitor.
    pub heap_seqs: Vec<u32>,
}

impl MonitorPlan for RangePlan {
    fn monitor_global(&self, id: u32) -> bool {
        self.globals.contains(&id)
    }

    fn monitor_local(&self, func: u16, var: u16) -> bool {
        self.locals.contains(&(func, var))
    }

    fn monitor_heap(&self, seq: u32, _stack: &[u16]) -> bool {
        self.heap_seqs.contains(&seq)
    }

    fn plan_class(&self) -> PlanClass {
        let mut c = PlanClass::NONE;
        if !self.locals.is_empty() {
            c = c.union(PlanClass::STACK);
        }
        if !self.globals.is_empty() {
            c = c.union(PlanClass::GLOBAL);
        }
        if !self.heap_seqs.is_empty() {
            c = c.union(PlanClass::HEAP);
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_monitors_declines_everything() {
        let p = NoMonitors;
        assert!(!p.monitor_global(0));
        assert!(!p.monitor_local(0, 0));
        assert!(!p.monitor_heap(0, &[]));
    }

    #[test]
    fn monitor_everything_accepts_everything() {
        let p = MonitorEverything;
        assert!(p.monitor_global(7));
        assert!(p.monitor_local(1, 2));
        assert!(p.monitor_heap(3, &[0, 1]));
    }

    #[test]
    fn plan_classes_reflect_coverage() {
        assert_eq!(NoMonitors.plan_class(), PlanClass::NONE);
        assert_eq!(MonitorEverything.plan_class(), PlanClass::ALL);
        let p = RangePlan {
            globals: vec![1],
            locals: vec![],
            heap_seqs: vec![2],
        };
        assert_eq!(p.plan_class(), PlanClass::GLOBAL.union(PlanClass::HEAP));
        assert_eq!(RangePlan::default().plan_class(), PlanClass::NONE);
    }

    #[test]
    fn range_plan_selects_listed_objects() {
        let p = RangePlan {
            globals: vec![2],
            locals: vec![(1, 0)],
            heap_seqs: vec![5],
        };
        assert!(p.monitor_global(2));
        assert!(!p.monitor_global(3));
        assert!(p.monitor_local(1, 0));
        assert!(!p.monitor_local(1, 1));
        assert!(p.monitor_heap(5, &[9]));
        assert!(!p.monitor_heap(6, &[9]));
    }
}
