//! A naive interval-list monitor index.
//!
//! Linear scan over all installed monitors. Used two ways:
//!
//! * as the **oracle** for property-testing [`PageMap`] — the two must
//!   agree on byte-exact hits for any operation sequence;
//! * as the **ablation baseline** for the lookup-structure benchmark
//!   (`bench/ablation_lookup.rs`): the paper's hash-table-of-bitmaps
//!   design exists because per-write lookups must be cheap even with
//!   hundreds of monitors installed.

use crate::monitor::{Monitor, MonitorId};

/// A flat list of installed monitors with linear-scan lookup.
#[derive(Debug, Clone, Default)]
pub struct IntervalSet {
    entries: Vec<(MonitorId, Monitor)>,
}

impl IntervalSet {
    /// An empty set.
    pub fn new() -> Self {
        IntervalSet::default()
    }

    /// Number of installed monitors.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Installs monitor `m` under identity `id`.
    pub fn install(&mut self, id: MonitorId, m: Monitor) {
        self.entries.push((id, m));
    }

    /// Removes the monitor installed under `id`; returns whether it was
    /// present.
    pub fn remove(&mut self, id: MonitorId) -> bool {
        let before = self.entries.len();
        self.entries.retain(|(eid, _)| *eid != id);
        self.entries.len() != before
    }

    /// Byte-exact hit test.
    pub fn hit_exact(&self, ba: u32, ea: u32) -> bool {
        ba < ea && self.entries.iter().any(|(_, m)| m.overlaps(ba, ea))
    }

    /// Collects every monitor id overlapping the write.
    pub fn hits(&self, ba: u32, ea: u32, out: &mut Vec<MonitorId>) {
        out.clear();
        if ba >= ea {
            return;
        }
        for &(id, m) in &self.entries {
            if m.overlaps(ba, ea) && !out.contains(&id) {
                out.push(id);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagemap::PageMap;
    use proptest::prelude::*;

    fn m(ba: u32, ea: u32) -> Monitor {
        Monitor::new(ba, ea).unwrap()
    }

    #[test]
    fn basic_install_remove_hit() {
        let mut s = IntervalSet::new();
        s.install(MonitorId(1), m(10, 20));
        assert!(s.hit_exact(15, 16));
        assert!(!s.hit_exact(20, 24));
        assert!(s.remove(MonitorId(1)));
        assert!(!s.remove(MonitorId(1)));
        assert!(s.is_empty());
    }

    #[derive(Debug, Clone)]
    enum Op {
        Install(u32, u32),
        RemoveNth(usize),
        Check(u32, u32),
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        // Small address space so operations collide often.
        let addr = 0u32..0x4000;
        prop_oneof![
            (addr.clone(), 1u32..64).prop_map(|(ba, len)| Op::Install(ba, ba + len)),
            (0usize..8).prop_map(Op::RemoveNth),
            (addr, 1u32..16).prop_map(|(ba, len)| Op::Check(ba, ba + len)),
        ]
    }

    proptest! {
        /// PageMap and IntervalSet agree on byte-exact hits under any
        /// interleaving of installs, removes, and checks.
        #[test]
        fn pagemap_matches_interval_oracle(ops in prop::collection::vec(arb_op(), 1..120)) {
            let mut pm = PageMap::new();
            let mut oracle = IntervalSet::new();
            let mut live: Vec<(MonitorId, Monitor)> = Vec::new();
            let mut next = 0u64;
            for op in ops {
                match op {
                    Op::Install(ba, ea) => {
                        let id = MonitorId(next);
                        next += 1;
                        let mon = m(ba, ea);
                        pm.install(id, mon);
                        oracle.install(id, mon);
                        live.push((id, mon));
                    }
                    Op::RemoveNth(n) => {
                        if !live.is_empty() {
                            let (id, mon) = live.remove(n % live.len());
                            prop_assert!(pm.remove(id, mon));
                            prop_assert!(oracle.remove(id));
                        }
                    }
                    Op::Check(ba, ea) => {
                        prop_assert_eq!(
                            pm.hit_exact(ba, ea),
                            oracle.hit_exact(ba, ea),
                            "exact hit mismatch for [{:#x},{:#x})", ba, ea
                        );
                        // The word-granular lookup may only err toward
                        // true (false positives), never toward false.
                        if oracle.hit_exact(ba, ea) {
                            prop_assert!(pm.lookup(ba, ea));
                        }
                        let mut a = Vec::new();
                        let mut b = Vec::new();
                        pm.hits(ba, ea, &mut a);
                        oracle.hits(ba, ea, &mut b);
                        a.sort();
                        b.sort();
                        prop_assert_eq!(a, b);
                    }
                }
                prop_assert_eq!(pm.len(), oracle.len());
            }
        }
    }
}
