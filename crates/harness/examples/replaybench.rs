//! Replay-only microbenchmark: prepare each workload once, then time
//! repeated phase-2 rewalks of the stored trace at the default ladder.
use databp_machine::PageSize;
use databp_sessions::{enumerate_sessions, SessionSet};
use databp_sim::simulate_sizes;
use databp_workloads::{prepare, Workload};
use std::time::Instant;

fn main() {
    let reps: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    let ladder = [PageSize::K4, PageSize::K8];
    let mut total_ns = 0u128;
    let mut total_events = 0u128;
    for w in Workload::all().into_iter().chain(Workload::bench()) {
        let w = w.scaled_down();
        let p = prepare(&w).expect("runs");
        let sessions = enumerate_sessions(&p.plain.debug, &p.trace);
        let set = SessionSet::new(sessions, &p.plain.debug, &p.trace);
        // Warm up once, then time.
        let warm = simulate_sizes(&p.trace, &set, &ladder);
        let t0 = Instant::now();
        for _ in 0..reps {
            let out = simulate_sizes(&p.trace, &set, &ladder);
            assert_eq!(out, warm);
        }
        let dt = t0.elapsed().as_nanos();
        let ev = p.trace.len() as u128 * reps as u128;
        total_ns += dt;
        total_events += ev;
        println!(
            "{:>14}: {:>8.1} ns/ev  ({} events x{} in {:.1} ms)",
            w.name,
            dt as f64 / ev as f64,
            p.trace.len(),
            reps,
            dt as f64 / 1e6
        );
    }
    println!(
        "{:>14}: {:>8.1} ns/ev  ({} events total)",
        "ALL",
        total_ns as f64 / total_events as f64,
        total_events
    );
}
