//! Property tests for the SSA middle end: random `tinyc` pointer
//! programs compiled with and without the SSA optimizer must be
//! indistinguishable.
//!
//! Two obligations, checked independently:
//!
//! 1. **Semantics** — the plain, CodePatch, and CodePatch+SSA builds all
//!    halt with the same exit code and output, and all three agree with
//!    the reference `tinyc` interpreter on the HIR. The SSA build
//!    inserts preheader `chk` guards and reorders nothing else; a `chk`
//!    never accesses memory, so even a guard hoisted above a
//!    possibly-uninitialized pointer must not change behavior.
//! 2. **Observability** — for the no-monitor plan and every enumerated
//!    session, running `CodePatch::with_staticopt` on the SSA build
//!    reports exactly the notifications (count *and* address sequence)
//!    of plain `CodePatch` on the unoptimized build. This exercises the
//!    dominator-hoisting groups dynamically: a preheader guard that
//!    wrongly licensed skipping a monitored store would drop a
//!    notification here.
//!
//! The generator leans on loops whose pointers are provably in bounds:
//! invariant pointers (hoistable) and stepped pointers (must not hoist).

use databp_analysis::analyze_writes;
use databp_core::{CodePatch, MonitorPlan, NoMonitors, StrategyReport};
use databp_machine::{Machine, NoHooks, StopReason};
use databp_sessions::{enumerate_sessions, SessionPlan};
use databp_tinyc::{compile, interpret, lower, Compiled, Options};
use databp_trace::{Trace, Tracer};
use proptest::prelude::*;
use std::sync::Arc;

/// One generated statement. Pointers demonstrably stay in bounds: `s`
/// aims at scalars, `p` aims at 4-element-or-larger blocks indexed with
/// 0..=3, and `q` is re-aimed at `garr` (8 elements) before any loop
/// that steps it at most 4 times.
#[derive(Debug, Clone)]
enum St {
    /// `x = c;`
    SetX(u8),
    /// `g0 = c;` / `g1 = c;`
    SetG(bool, u8),
    /// `s = &x | &y | &g0 | &g1;`
    AimS(u8),
    /// `*s = c;`
    StoreS(u8),
    /// `p = arr | garr | (int*)malloc(32);`
    AimP(u8),
    /// `p[k] = c;`
    StoreP(u8, u8),
    /// `put(s|&y|p, c);` — optionally capturing the returned pointer.
    Put(u8, u8, bool),
    /// `q = arr; for (...) { q[k] = i; x = x + 1; }` — the pointer is
    /// loop-invariant, so the SSA pass hoists its check.
    LoopInvariant(u8, u8),
    /// `q = garr; for (...) { *q = i; q = q + 1; }` — the pointer is
    /// reassigned in the body, so its check must NOT be hoisted.
    LoopStepped(u8),
    /// `for (...) { g0 = g0 + i; y = y + 2; }` — scalar global + local
    /// hoist targets.
    LoopScalar(u8),
}

fn render(stmts: &[St]) -> String {
    let mut body = String::new();
    for st in stmts {
        let line = match *st {
            St::SetX(c) => format!("x = {c};"),
            St::SetG(false, c) => format!("g0 = {c};"),
            St::SetG(true, c) => format!("g1 = {c};"),
            St::AimS(0) => "s = &x;".to_string(),
            St::AimS(1) => "s = &y;".to_string(),
            St::AimS(2) => "s = &g0;".to_string(),
            St::AimS(_) => "s = &g1;".to_string(),
            St::StoreS(c) => format!("*s = {c};"),
            St::AimP(0) => "p = arr;".to_string(),
            St::AimP(1) => "p = garr;".to_string(),
            St::AimP(_) => "p = (int*)malloc(32);".to_string(),
            St::StoreP(k, c) => format!("p[{}] = {c};", k % 4),
            St::Put(t, c, capture) => {
                let target = match t % 3 {
                    0 => "s",
                    1 => "&y",
                    _ => "p",
                };
                if capture {
                    format!("s = put({target}, {c});")
                } else {
                    format!("put({target}, {c});")
                }
            }
            St::LoopInvariant(n, k) => format!(
                "q = arr; for (i = 0; i < {}; i = i + 1) {{ q[{}] = i; x = x + 1; }}",
                1 + n % 4,
                k % 4
            ),
            St::LoopStepped(n) => format!(
                "q = garr; for (i = 0; i < {}; i = i + 1) {{ *q = i; q = q + 1; }}",
                1 + n % 4
            ),
            St::LoopScalar(n) => format!(
                "for (i = 0; i < {}; i = i + 1) {{ g0 = g0 + i; y = y + 2; }}",
                1 + n % 4
            ),
        };
        body.push_str("            ");
        body.push_str(&line);
        body.push('\n');
    }
    format!(
        r#"
        int g0;
        int g1;
        int garr[8];
        int *put(int *r, int v) {{ *r = v; return r; }}
        int main() {{
            int x;
            int y;
            int i;
            int arr[4];
            int *s;
            int *p;
            int *q;
            x = 0;
            y = 0;
            s = &x;
            p = arr;
            q = arr;
{body}            return x + y + g0 + g1 + arr[0] + garr[0] + *q;
        }}
    "#
    )
}

fn program() -> impl Strategy<Value = Vec<St>> {
    let st = prop_oneof![
        (0u8..9).prop_map(St::SetX),
        (any::<bool>(), 0u8..9).prop_map(|(g, c)| St::SetG(g, c)),
        (0u8..4).prop_map(St::AimS),
        (0u8..9).prop_map(St::StoreS),
        (0u8..3).prop_map(St::AimP),
        (0u8..4, 0u8..9).prop_map(|(k, c)| St::StoreP(k, c)),
        (0u8..3, 0u8..9, any::<bool>()).prop_map(|(t, c, cap)| St::Put(t, c, cap)),
        (0u8..4, 0u8..4).prop_map(|(n, k)| St::LoopInvariant(n, k)),
        (0u8..4).prop_map(St::LoopStepped),
        (0u8..4).prop_map(St::LoopScalar),
    ];
    prop::collection::vec(st, 1..24)
}

fn run_machine(build: &Compiled) -> (i32, Vec<u8>) {
    let mut m = Machine::new();
    m.load(&build.program);
    assert_eq!(m.run(&mut NoHooks, 10_000_000).unwrap(), StopReason::Halted);
    (m.exit_code(), m.output().to_vec())
}

fn trace_of(plain: &Compiled) -> Trace {
    let mut m = Machine::new();
    m.load(&plain.program);
    let mut tracer = Tracer::new(plain.debug.frame_map(), plain.debug.global_specs())
        .with_untraced(plain.debug.untraced_store_pcs.clone());
    tracer.begin();
    assert_eq!(m.run(&mut tracer, 10_000_000).unwrap(), StopReason::Halted);
    tracer.finish()
}

fn run_cp(build: &Compiled, plan: &dyn MonitorPlan, strat: CodePatch) -> StrategyReport {
    let mut m = Machine::new();
    m.load(&build.program);
    strat
        .run(&mut m, &build.debug, plan, 10_000_000)
        .expect("CodePatch run failed")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The SSA optimizer never changes what a program computes: plain,
    /// CodePatch, and CodePatch+SSA builds agree with each other and
    /// with the reference interpreter on exit code and output.
    #[test]
    fn ssa_codegen_preserves_semantics(stmts in program()) {
        let src = render(&stmts);
        let plain = compile(&src, &Options::plain()).expect("generated program compiles");
        let cp = compile(&src, &Options::codepatch()).expect("generated program compiles");
        let ssa = compile(&src, &Options::codepatch_ssa()).expect("generated program compiles");
        let hir = lower(&src).expect("generated program lowers");

        let reference = interpret(&hir, &[], 10_000_000).expect("interpreter runs");
        for (name, build) in [("plain", &plain), ("cp", &cp), ("cp+ssa", &ssa)] {
            let (exit, output) = run_machine(build);
            prop_assert_eq!(
                exit, reference.exit_code,
                "{} build exit code diverged from interpreter on:\n{}", name, &src);
            prop_assert_eq!(
                &output, &reference.output,
                "{} build output diverged from interpreter on:\n{}", name, &src);
        }
    }

    /// For the no-monitor plan and every enumerated session, CodePatch
    /// with SSA hoisting + static elision notifies exactly the same
    /// write sequence as plain CodePatch.
    #[test]
    fn ssa_hoisting_preserves_every_notification(stmts in program()) {
        let src = render(&stmts);
        let plain = compile(&src, &Options::plain()).expect("generated program compiles");
        let cp = compile(&src, &Options::codepatch()).expect("generated program compiles");
        let ssa = compile(&src, &Options::codepatch_ssa()).expect("generated program compiles");
        let trace = trace_of(&plain);
        let hir = lower(&src).expect("generated program lowers");
        let safety = Arc::new(analyze_writes(&hir, &ssa.debug));

        let mut plans: Vec<(Box<dyn MonitorPlan>, String)> =
            vec![(Box::new(NoMonitors), "(no monitors)".to_string())];
        for s in enumerate_sessions(&plain.debug, &trace) {
            plans.push((
                Box::new(SessionPlan::new(s, &plain.debug)),
                s.describe(&plain.debug),
            ));
        }
        for (plan, desc) in &plans {
            let base = run_cp(&cp, plan.as_ref(), CodePatch::default());
            let sopt = run_cp(
                &ssa,
                plan.as_ref(),
                CodePatch::with_staticopt(Arc::clone(&safety)),
            );
            prop_assert_eq!(
                base.notification_count, sopt.notification_count,
                "SSA optimization lost notifications under {} for:\n{}", desc, &src);
            // pcs differ across builds (preheader guards shift code);
            // the monitored write addresses must not.
            let base_addrs: Vec<(u32, u32)> =
                base.notifications.iter().map(|n| (n.ba, n.ea)).collect();
            let sopt_addrs: Vec<(u32, u32)> =
                sopt.notifications.iter().map(|n| (n.ba, n.ea)).collect();
            prop_assert_eq!(
                base_addrs, sopt_addrs,
                "SSA optimization changed the notified writes under {} for:\n{}", desc, &src);
            prop_assert_eq!(base.counts.writes(), sopt.counts.writes());
        }
    }
}
