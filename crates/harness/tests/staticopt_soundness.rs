//! Property test for the static write-safety pass: random `tinyc`
//! programs exercising stack, global, and heap stores through pointers,
//! parameters, and return values — for *every* enumerated monitor
//! session, every store the analysis elides must never overlap that
//! session's live monitors in the replayed trace, and executing
//! `CodePatch::with_staticopt` must report exactly the notifications of
//! plain CodePatch.
//!
//! The deliberately-unsound regression case (the oracle must object when
//! fed a wrong elision list) lives next to the harness table in
//! `src/staticopt.rs`.

use databp_analysis::analyze_writes;
use databp_core::{CodePatch, MonitorPlan, NoMonitors, StrategyReport};
use databp_machine::{Machine, StopReason};
use databp_sessions::{enumerate_sessions, SessionPlan, SessionSet};
use databp_sim::verify_elided_stores;
use databp_tinyc::{compile, lower, Compiled, Options};
use databp_trace::{Trace, Tracer};
use proptest::prelude::*;
use std::sync::Arc;

/// One generated statement. The generator only produces programs whose
/// pointers demonstrably stay in bounds: `s` aims at scalars, `p` aims
/// at 4-element-or-larger blocks and is indexed with 0..=3.
#[derive(Debug, Clone)]
enum St {
    /// `x = c;`
    SetX(u8),
    /// `g0 = c;` / `g1 = c;`
    SetG(bool, u8),
    /// `s = &x | &y | &g0 | &g1;`
    AimS(u8),
    /// `*s = c;`
    StoreS(u8),
    /// `p = arr | garr | (int*)malloc(32);`
    AimP(u8),
    /// `p[k] = c;`
    StoreP(u8, u8),
    /// `put(s|&y|p, c);` — optionally capturing the returned pointer
    /// back into `s`, exercising parameter and return-value flow.
    Put(u8, u8, bool),
    /// `for (i = 0; i < n; i = i + 1) { p[k] = i; x = x + 1; }`
    Loop(u8, u8),
}

fn render(stmts: &[St]) -> String {
    let mut body = String::new();
    for st in stmts {
        let line = match *st {
            St::SetX(c) => format!("x = {c};"),
            St::SetG(false, c) => format!("g0 = {c};"),
            St::SetG(true, c) => format!("g1 = {c};"),
            St::AimS(0) => "s = &x;".to_string(),
            St::AimS(1) => "s = &y;".to_string(),
            St::AimS(2) => "s = &g0;".to_string(),
            St::AimS(_) => "s = &g1;".to_string(),
            St::StoreS(c) => format!("*s = {c};"),
            St::AimP(0) => "p = arr;".to_string(),
            St::AimP(1) => "p = garr;".to_string(),
            St::AimP(_) => "p = (int*)malloc(32);".to_string(),
            St::StoreP(k, c) => format!("p[{}] = {c};", k % 4),
            St::Put(t, c, capture) => {
                let target = match t % 3 {
                    0 => "s",
                    1 => "&y",
                    _ => "p",
                };
                if capture {
                    format!("s = put({target}, {c});")
                } else {
                    format!("put({target}, {c});")
                }
            }
            St::Loop(n, k) => format!(
                "for (i = 0; i < {}; i = i + 1) {{ p[{}] = i; x = x + 1; }}",
                1 + n % 4,
                k % 4
            ),
        };
        body.push_str("            ");
        body.push_str(&line);
        body.push('\n');
    }
    format!(
        r#"
        int g0;
        int g1;
        int garr[8];
        int *put(int *r, int v) {{ *r = v; return r; }}
        int main() {{
            int x;
            int y;
            int i;
            int arr[4];
            int *s;
            int *p;
            x = 0;
            y = 0;
            s = &x;
            p = arr;
{body}            return x + y + g0 + g1 + arr[0] + garr[0];
        }}
    "#
    )
}

fn program() -> impl Strategy<Value = Vec<St>> {
    let st = prop_oneof![
        (0u8..9).prop_map(St::SetX),
        (any::<bool>(), 0u8..9).prop_map(|(g, c)| St::SetG(g, c)),
        (0u8..4).prop_map(St::AimS),
        (0u8..9).prop_map(St::StoreS),
        (0u8..3).prop_map(St::AimP),
        (0u8..4, 0u8..9).prop_map(|(k, c)| St::StoreP(k, c)),
        (0u8..3, 0u8..9, any::<bool>()).prop_map(|(t, c, cap)| St::Put(t, c, cap)),
        (0u8..4, 0u8..4).prop_map(|(n, k)| St::Loop(n, k)),
    ];
    prop::collection::vec(st, 1..24)
}

fn trace_of(plain: &Compiled) -> Trace {
    let mut m = Machine::new();
    m.load(&plain.program);
    let mut tracer = Tracer::new(plain.debug.frame_map(), plain.debug.global_specs())
        .with_untraced(plain.debug.untraced_store_pcs.clone());
    tracer.begin();
    assert_eq!(m.run(&mut tracer, 10_000_000).unwrap(), StopReason::Halted);
    tracer.finish()
}

fn run_cp(build: &Compiled, plan: &dyn MonitorPlan, strat: CodePatch) -> StrategyReport {
    let mut m = Machine::new();
    m.load(&build.program);
    strat
        .run(&mut m, &build.debug, plan, 10_000_000)
        .expect("CodePatch run failed")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For every enumerated session of a random program, replaying the
    /// full trace confirms that no store elided under that session's
    /// plan class ever overlapped one of its live monitors.
    #[test]
    fn random_programs_never_elide_a_monitored_store(stmts in program()) {
        let src = render(&stmts);
        let plain = compile(&src, &Options::plain()).expect("generated program compiles");
        let trace = trace_of(&plain);
        let hir = lower(&src).expect("generated program lowers");
        let safety = analyze_writes(&hir, &plain.debug);

        let sessions = enumerate_sessions(&plain.debug, &trace);
        let set = SessionSet::new(sessions, &plain.debug, &trace);
        let elided: Vec<Vec<u32>> = set
            .sessions()
            .iter()
            .map(|&s| safety.elided_store_pcs(SessionPlan::new(s, &plain.debug).plan_class()))
            .collect();
        prop_assert!(elided.iter().any(|e| !e.is_empty()),
            "analysis proved nothing on:\n{src}");
        let verdict = verify_elided_stores(&trace, &set, &elided);
        prop_assert!(verdict.is_ok(), "unsound elision: {:?}\nprogram:\n{src}", verdict);
    }

    /// Executing CodePatch with static elision reports exactly the
    /// notifications of plain CodePatch, for the no-monitor plan and for
    /// every enumerated session. (The elision branch also carries a
    /// debug assertion that the WMS would not have hit — active here.)
    #[test]
    fn staticopt_execution_matches_plain_codepatch(stmts in program()) {
        let src = render(&stmts);
        let plain = compile(&src, &Options::plain()).expect("generated program compiles");
        let cp = compile(&src, &Options::codepatch()).expect("generated program compiles");
        let trace = trace_of(&plain);
        let hir = lower(&src).expect("generated program lowers");
        let safety = Arc::new(analyze_writes(&hir, &cp.debug));

        let mut plans: Vec<(Box<dyn MonitorPlan>, String)> =
            vec![(Box::new(NoMonitors), "(no monitors)".to_string())];
        for s in enumerate_sessions(&plain.debug, &trace) {
            plans.push((
                Box::new(SessionPlan::new(s, &plain.debug)),
                s.describe(&plain.debug),
            ));
        }
        for (plan, desc) in &plans {
            let base = run_cp(&cp, plan.as_ref(), CodePatch::default());
            let sopt = run_cp(
                &cp,
                plan.as_ref(),
                CodePatch::with_staticopt(Arc::clone(&safety)),
            );
            prop_assert_eq!(
                base.notification_count, sopt.notification_count,
                "elision lost notifications under {} for:\n{}", desc, src);
            prop_assert_eq!(base.counts.writes(), sopt.counts.writes());
            prop_assert!(sopt.elided_lookups <= base.counts.writes());
        }
    }
}
