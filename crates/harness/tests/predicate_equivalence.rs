//! Differential predicate-semantics suite: random predicates × random
//! `tinyc` pointer programs, four independent evaluators, one answer.
//!
//! Two obligations:
//!
//! 1. **Notification equivalence** — for an all-globals monitor plan,
//!    the reference interpreter (via [`InterpObserver`]), the
//!    VirtualMemory strategy, plain CodePatch, and CodePatch+SSA
//!    (static elision + dominator hoisting) must fire the predicate on
//!    exactly the same write sequence. The interpreter never sees
//!    machine pcs — its writer identity comes from the dynamic call
//!    stack — so agreement here pins the *semantics* of `value`,
//!    `old`, `hits`, and `writer in f` rather than any one
//!    implementation's bookkeeping. The SSA leg additionally checks
//!    that predicate-deadness and check elision never eat a firing
//!    write.
//! 2. **Query equivalence** — every aggregation over the phase-1 trace
//!    answers identically whether the events arrive in one replayed
//!    slab or drip-fed through the online engine in small batches
//!    (the server's cached-trace path vs its streaming path).
//!
//! The program generator is the pointer-heavy one from the SSA
//! equivalence suite: invariant pointers (hoistable), stepped pointers
//! (not hoistable), and a `put()` helper so writer-site filters have a
//! second function to distinguish.

use databp_analysis::analyze_writes;
use databp_core::{
    CodePatch, MonitorPlan, PlanClass, PredEval, Predicate, VirtualMemory, WriterMap, NO_WRITER,
};
use databp_machine::{Machine, StopReason};
use databp_sim::{Query, QueryEngine, QueryResult};
use databp_tinyc::{
    compile, interpret_observed, lower, Compiled, DebugInfo, InterpObserver, Options,
};
use databp_trace::{Trace, Tracer};
use proptest::prelude::*;
use std::sync::Arc;

/// One generated statement (see the SSA equivalence suite for the
/// in-bounds argument: `s` aims at scalars, `p` at 4-element-or-larger
/// blocks indexed 0..=3, `q` is re-aimed before any stepping loop).
#[derive(Debug, Clone)]
enum St {
    SetX(u8),
    SetG(bool, u8),
    AimS(u8),
    StoreS(u8),
    AimP(u8),
    StoreP(u8, u8),
    Put(u8, u8, bool),
    LoopInvariant(u8, u8),
    LoopStepped(u8),
    LoopScalar(u8),
    /// `g0 = g0 + 1;` — feeds `value == old + 1` predicates.
    BumpG,
}

fn render(stmts: &[St]) -> String {
    let mut body = String::new();
    for st in stmts {
        let line = match *st {
            St::SetX(c) => format!("x = {c};"),
            St::SetG(false, c) => format!("g0 = {c};"),
            St::SetG(true, c) => format!("g1 = {c};"),
            St::AimS(0) => "s = &x;".to_string(),
            St::AimS(1) => "s = &y;".to_string(),
            St::AimS(2) => "s = &g0;".to_string(),
            St::AimS(_) => "s = &g1;".to_string(),
            St::StoreS(c) => format!("*s = {c};"),
            St::AimP(0) => "p = arr;".to_string(),
            St::AimP(1) => "p = garr;".to_string(),
            St::AimP(_) => "p = (int*)malloc(32);".to_string(),
            St::StoreP(k, c) => format!("p[{}] = {c};", k % 4),
            St::Put(t, c, capture) => {
                let target = match t % 3 {
                    0 => "s",
                    1 => "&y",
                    _ => "p",
                };
                if capture {
                    format!("s = put({target}, {c});")
                } else {
                    format!("put({target}, {c});")
                }
            }
            St::LoopInvariant(n, k) => format!(
                "q = arr; for (i = 0; i < {}; i = i + 1) {{ q[{}] = i; x = x + 1; }}",
                1 + n % 4,
                k % 4
            ),
            St::LoopStepped(n) => format!(
                "q = garr; for (i = 0; i < {}; i = i + 1) {{ *q = i; q = q + 1; }}",
                1 + n % 4
            ),
            St::LoopScalar(n) => format!(
                "for (i = 0; i < {}; i = i + 1) {{ g0 = g0 + i; y = y + 2; }}",
                1 + n % 4
            ),
            St::BumpG => "g0 = g0 + 1;".to_string(),
        };
        body.push_str("            ");
        body.push_str(&line);
        body.push('\n');
    }
    format!(
        r#"
        int g0;
        int g1;
        int garr[8];
        int *put(int *r, int v) {{ *r = v; return r; }}
        int main() {{
            int x;
            int y;
            int i;
            int arr[4];
            int *s;
            int *p;
            int *q;
            x = 0;
            y = 0;
            s = &x;
            p = arr;
            q = arr;
{body}            return x + y + g0 + g1 + arr[0] + garr[0] + *q;
        }}
    "#
    )
}

fn program() -> impl Strategy<Value = Vec<St>> {
    let st = prop_oneof![
        (0u8..9).prop_map(St::SetX),
        (any::<bool>(), 0u8..9).prop_map(|(g, c)| St::SetG(g, c)),
        (0u8..4).prop_map(St::AimS),
        (0u8..9).prop_map(St::StoreS),
        (0u8..3).prop_map(St::AimP),
        (0u8..4, 0u8..9).prop_map(|(k, c)| St::StoreP(k, c)),
        (0u8..3, 0u8..9, any::<bool>()).prop_map(|(t, c, cap)| St::Put(t, c, cap)),
        (0u8..4, 0u8..4).prop_map(|(n, k)| St::LoopInvariant(n, k)),
        (0u8..4).prop_map(St::LoopStepped),
        (0u8..4).prop_map(St::LoopScalar),
        Just(St::BumpG),
    ];
    prop::collection::vec(st, 1..24)
}

/// One generated predicate, spanning every variable of the language.
#[derive(Debug, Clone)]
enum Pr {
    ValueGt(u8),
    ValueEven,
    Increment,
    OldZero,
    HitsMod(u8),
    HitsGe(u8),
    WriterPut,
    WriterMain,
    GtAndWriter(u8),
    GtOrOddHit(u8),
    NotGt(u8),
}

fn render_pred(p: &Pr) -> String {
    match *p {
        Pr::ValueGt(c) => format!("value > {c}"),
        Pr::ValueEven => "value % 2 == 0".to_string(),
        Pr::Increment => "value == old + 1".to_string(),
        Pr::OldZero => "old == 0".to_string(),
        Pr::HitsMod(k) => format!("hits % {} == 0", 2 + k % 4),
        Pr::HitsGe(n) => format!("hits >= {}", 1 + n % 6),
        Pr::WriterPut => "writer in put".to_string(),
        Pr::WriterMain => "writer in main".to_string(),
        Pr::GtAndWriter(c) => format!("value > {c} && writer in put"),
        Pr::GtOrOddHit(c) => format!("value > {c} || hits % 2 == 1"),
        Pr::NotGt(c) => format!("!(value > {c})"),
    }
}

fn predicate() -> impl Strategy<Value = Pr> {
    prop_oneof![
        (0u8..9).prop_map(Pr::ValueGt),
        Just(Pr::ValueEven),
        Just(Pr::Increment),
        Just(Pr::OldZero),
        (0u8..4).prop_map(Pr::HitsMod),
        (0u8..6).prop_map(Pr::HitsGe),
        Just(Pr::WriterPut),
        Just(Pr::WriterMain),
        (0u8..9).prop_map(Pr::GtAndWriter),
        (0u8..9).prop_map(Pr::GtOrOddHit),
        (0u8..9).prop_map(Pr::NotGt),
    ]
}

/// Monitor every global, nothing else. The class is the globals
/// region, so CodePatch+SSA may elide provably-stack/heap checks.
struct AllGlobals;

impl MonitorPlan for AllGlobals {
    fn monitor_global(&self, _id: u32) -> bool {
        true
    }

    fn plan_class(&self) -> PlanClass {
        PlanClass::GLOBAL
    }
}

/// The interpreter-side evaluator: candidate writes are stores
/// overlapping a monitored global (the interpreter shares the
/// machine's address-space layout, so `DebugInfo` ranges apply
/// directly); writer identity is the innermost live function.
struct Oracle {
    monitors: Vec<(u32, u32)>,
    stack: Vec<u16>,
    pred: PredEval,
    fired: Vec<(u32, u32)>,
}

impl InterpObserver for Oracle {
    fn enter(&mut self, func: u16, _fp: u32) {
        self.stack.push(func);
    }

    fn exit(&mut self, _func: u16, _fp: u32) {
        self.stack.pop();
    }

    fn store(&mut self, addr: u32, len: u32, value: u32, old: u32) {
        let (ba, ea) = (addr, addr + len);
        if self.monitors.iter().any(|&(mba, mea)| ba < mea && mba < ea) {
            let writer = self.stack.last().copied().unwrap_or(NO_WRITER);
            if self.pred.observe(value, old, writer) {
                self.fired.push((ba, ea));
            }
        }
    }
}

fn compile_pred(src: &str, debug: &DebugInfo) -> databp_core::CompiledPredicate {
    Predicate::parse(src)
        .expect("generated predicate parses")
        .compile(|n| debug.func_id(n))
        .expect("generated predicate compiles")
}

fn trace_of(plain: &Compiled) -> Trace {
    let mut m = Machine::new();
    m.load(&plain.program);
    let mut tracer = Tracer::new(plain.debug.frame_map(), plain.debug.global_specs())
        .with_untraced(plain.debug.untraced_store_pcs.clone());
    tracer.begin();
    assert_eq!(m.run(&mut tracer, 10_000_000).unwrap(), StopReason::Halted);
    tracer.finish()
}

fn writer_map(debug: &DebugInfo) -> WriterMap {
    WriterMap::new(
        debug
            .functions
            .iter()
            .enumerate()
            .map(|(id, f)| (f.entry_pc, id as u16)),
    )
}

fn addrs(rep: &databp_core::StrategyReport) -> Vec<(u32, u32)> {
    rep.notifications.iter().map(|n| (n.ba, n.ea)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Interpreter, VirtualMemory, plain CodePatch, and CodePatch+SSA
    /// fire the predicate on exactly the same writes, in the same
    /// order.
    #[test]
    fn predicate_notifications_agree_across_all_evaluators(
        stmts in program(),
        pr in predicate(),
    ) {
        let src = render(&stmts);
        let psrc = render_pred(&pr);
        let plain = compile(&src, &Options::plain()).expect("generated program compiles");
        let cp = compile(&src, &Options::codepatch()).expect("generated program compiles");
        let ssa = compile(&src, &Options::codepatch_ssa()).expect("generated program compiles");
        let hir = lower(&src).expect("generated program lowers");
        let safety = Arc::new(analyze_writes(&hir, &ssa.debug));
        let plan = AllGlobals;

        // Interpreter oracle: no machine, no trace, no pcs.
        let mut oracle = Oracle {
            monitors: plain.debug.globals.iter().map(|g| (g.ba, g.ea)).collect(),
            stack: Vec::new(),
            pred: PredEval::new(compile_pred(&psrc, &plain.debug)),
            fired: Vec::new(),
        };
        interpret_observed(&hir, &[], 10_000_000, &mut oracle).expect("interpreter runs");
        let want = oracle.fired;

        // VirtualMemory on the plain build.
        let vm_rep = {
            let mut m = Machine::new();
            m.load(&plain.program);
            VirtualMemory::k4()
                .run_with_predicate(
                    &mut m,
                    &plain.debug,
                    &plan,
                    Some(compile_pred(&psrc, &plain.debug)),
                    10_000_000,
                )
                .expect("VM run failed")
        };
        prop_assert_eq!(
            addrs(&vm_rep), want.clone(),
            "VM diverged from the interpreter for `{}` on:\n{}", &psrc, &src);

        // Plain CodePatch.
        let cp_rep = {
            let mut m = Machine::new();
            m.load(&cp.program);
            CodePatch::default()
                .with_predicate(compile_pred(&psrc, &cp.debug))
                .run(&mut m, &cp.debug, &plan, 10_000_000)
                .expect("CP run failed")
        };
        prop_assert_eq!(
            addrs(&cp_rep), want.clone(),
            "CP diverged from the interpreter for `{}` on:\n{}", &psrc, &src);

        // CodePatch + static elision + dominator hoisting +
        // predicate-deadness, all composed.
        let ssa_rep = {
            let mut m = Machine::new();
            m.load(&ssa.program);
            CodePatch::with_staticopt(Arc::clone(&safety))
                .with_predicate(compile_pred(&psrc, &ssa.debug))
                .run(&mut m, &ssa.debug, &plan, 10_000_000)
                .expect("CP+SSA run failed")
        };
        prop_assert_eq!(
            addrs(&ssa_rep), want.clone(),
            "CP+SSA diverged from the interpreter for `{}` on:\n{}", &psrc, &src);

        // Firing counts line up with the shared sequence. Filtered
        // counts are only boundable, not equal: CP diverts candidates
        // at statically-dead sites into `pred_dead_skips` (and a dead
        // check skips the lookup, so its skips also count
        // non-candidate executions), whereas the VM filters every
        // candidate dynamically.
        let n = want.len() as u64;
        prop_assert_eq!(vm_rep.pred_fired, n);
        prop_assert_eq!(cp_rep.pred_fired, n);
        prop_assert_eq!(ssa_rep.pred_fired, n);
        prop_assert!(vm_rep.pred_filtered >= cp_rep.pred_filtered);
        prop_assert!(vm_rep.pred_filtered <= cp_rep.pred_filtered + cp_rep.pred_dead_skips);
    }

    /// Every aggregation answers identically over one replayed slab of
    /// events and over the online engine fed in small batches.
    #[test]
    fn queries_agree_online_and_replayed(
        stmts in program(),
        pr in predicate(),
        agg in 0usize..5,
        batch in 1usize..9,
    ) {
        let src = render(&stmts);
        let agg_kw = ["count", "first", "last", "hist", "watch"][agg];
        let q = format!("{agg_kw} if {}", render_pred(&pr));
        let plain = compile(&src, &Options::plain()).expect("generated program compiles");
        let trace = trace_of(&plain);
        let debug = &plain.debug;

        let replayed = databp_sim::run_query(
            &q,
            trace.events(),
            |n| debug.func_id(n),
            writer_map(debug),
        )
        .expect("query runs");

        let compiled = Query::parse(&q)
            .expect("query parses")
            .compile(|n| debug.func_id(n))
            .expect("query compiles");
        let mut online = QueryEngine::new(compiled, writer_map(debug));
        for chunk in trace.events().chunks(batch) {
            online.feed(chunk);
        }
        prop_assert_eq!(
            online.result(), replayed.clone(),
            "online result diverged from replayed for `{}` on:\n{}", &q, &src);

        // A `count` aggregation's write total is the trace's write
        // count — `hits` in queries ranges over every traced write.
        if let QueryResult::Count { writes, .. } = replayed {
            let traced = trace
                .events()
                .iter()
                .filter(|e| matches!(e, databp_trace::Event::Write { .. }))
                .count() as u64;
            prop_assert_eq!(writes, traced);
        }
    }
}
