//! Pins the lane-packed replay engine against the naive per-session
//! oracle on **every bundled workload** — the Table 1 set and the
//! benchmark corpus — not just on synthetic property-test traces. The
//! oracle is O(sessions × trace), so each workload checks a spread of
//! session indices (first, last, and a deterministic stride between)
//! rather than all of them; the full cross-product is covered by the
//! property tests in `databp-sim`.

use databp_machine::PageSize;
use databp_sessions::{enumerate_sessions, SessionSet};
use databp_sim::{simulate_naive, simulate_sizes, Membership};
use databp_workloads::{prepare, Workload};

#[test]
fn vectorized_replay_matches_oracle_on_all_bundled_workloads() {
    let ladder = [PageSize::K4, PageSize::K8, PageSize::K16];
    for w in Workload::all().into_iter().chain(Workload::bench()) {
        let w = w.scaled_down();
        let p = prepare(&w).expect("workload runs");
        let sessions = enumerate_sessions(&p.plain.debug, &p.trace);
        let set = SessionSet::new(sessions, &p.plain.debug, &p.trace);
        let n = set.count();
        assert!(n > 0, "{}: no sessions enumerated", w.name);

        let fast = simulate_sizes(&p.trace, &set, &ladder);

        // First, last, and every ceil(n/17)-th session in between: the
        // spread crosses 64-bit lane-word boundaries once n > 64.
        let stride = n.div_ceil(17).max(1);
        let mut picked: Vec<u32> = (0..n).step_by(stride).map(|s| s as u32).collect();
        picked.push((n - 1) as u32);
        picked.dedup();
        for (k, &ps) in ladder.iter().enumerate() {
            for &s in &picked {
                let slow = simulate_naive(&p.trace, &set, ps, s);
                assert_eq!(
                    fast[k][s as usize], slow,
                    "{}: session {s} diverges from the oracle at {ps}",
                    w.name
                );
            }
        }
    }
}
