//! The parallel pipeline must be invisible in the results: workloads
//! come back in `Workload::all()` order and every derived table/CSV is
//! byte-identical run to run, whatever the thread scheduling.

use databp_harness::figures::{figure, Figure};
use databp_harness::{analyze_all, analyze_all_jobs, tables, Scale, WorkloadResults};
use databp_workloads::Workload;

/// Every CSV the pipeline feeds, rendered from one result set.
fn all_csvs(results: &[WorkloadResults]) -> Vec<(&'static str, String)> {
    vec![
        ("table1", tables::table1(results).render_csv()),
        ("table3", tables::table3(results).render_csv()),
        ("table4", tables::table4(results).render_csv()),
        ("fig7", figure(results, Figure::Max).render_csv()),
        ("fig8", figure(results, Figure::P90).render_csv()),
        ("fig9", figure(results, Figure::TMean).render_csv()),
    ]
}

#[test]
fn parallel_analyze_all_is_deterministic() {
    // Sequential reference, then two parallel runs with different
    // worker counts (2 interleaves the five workloads; default uses
    // every core).
    let sequential = analyze_all_jobs(Scale::Small, 1);
    let parallel2 = analyze_all_jobs(Scale::Small, 2);
    let parallel_default = analyze_all(Scale::Small);

    let expected_order: Vec<String> = Workload::all()
        .into_iter()
        .map(|w| w.name.to_string())
        .collect();
    for (label, results) in [
        ("jobs=1", &sequential),
        ("jobs=2", &parallel2),
        ("default jobs", &parallel_default),
    ] {
        let order: Vec<String> = results
            .iter()
            .map(|r| r.prepared.workload.name.to_string())
            .collect();
        assert_eq!(order, expected_order, "{label} workload order");
    }

    let reference = all_csvs(&sequential);
    for (label, results) in [("jobs=2", &parallel2), ("default jobs", &parallel_default)] {
        for ((slug, expect), (_, got)) in reference.iter().zip(all_csvs(results)) {
            assert_eq!(
                *expect, got,
                "{label}: {slug}.csv must be byte-identical to the sequential run"
            );
        }
    }
}
