//! The parallel pipeline must be invisible in the results: workloads
//! come back in `Workload::all()` order and every derived table/CSV is
//! byte-identical run to run, whatever the thread scheduling.

use databp_harness::figures::{figure, Figure};
use databp_harness::{
    analyze_all, analyze_all_jobs, analyze_all_opts, tables, AnalyzeOpts, Scale, WorkloadResults,
};
use databp_workloads::Workload;

/// Every CSV the pipeline feeds, rendered from one result set.
fn all_csvs(results: &[WorkloadResults]) -> Vec<(&'static str, String)> {
    vec![
        ("table1", tables::table1(results).render_csv()),
        ("table3", tables::table3(results).render_csv()),
        ("table4", tables::table4(results).render_csv()),
        ("fig7", figure(results, Figure::Max).render_csv()),
        ("fig8", figure(results, Figure::P90).render_csv()),
        ("fig9", figure(results, Figure::TMean).render_csv()),
    ]
}

#[test]
fn parallel_analyze_all_is_deterministic() {
    // Sequential reference, then two parallel runs with different
    // worker counts (2 interleaves the five workloads; default uses
    // every core).
    let sequential = analyze_all_jobs(Scale::Small, 1);
    let parallel2 = analyze_all_jobs(Scale::Small, 2);
    let parallel_default = analyze_all(Scale::Small);

    let expected_order: Vec<String> = Workload::all()
        .into_iter()
        .map(|w| w.name.to_string())
        .collect();
    for (label, results) in [
        ("jobs=1", &sequential),
        ("jobs=2", &parallel2),
        ("default jobs", &parallel_default),
    ] {
        let order: Vec<String> = results
            .iter()
            .map(|r| r.prepared.workload.name.to_string())
            .collect();
        assert_eq!(order, expected_order, "{label} workload order");
    }

    let reference = all_csvs(&sequential);
    for (label, results) in [("jobs=2", &parallel2), ("default jobs", &parallel_default)] {
        for ((slug, expect), (_, got)) in reference.iter().zip(all_csvs(results)) {
            assert_eq!(
                *expect, got,
                "{label}: {slug}.csv must be byte-identical to the sequential run"
            );
        }
    }
}

#[test]
fn streamed_pipeline_is_csv_identical() {
    // The streaming pipeline overlaps trace generation with replay and
    // discovers heap sessions online — none of that may show in any CSV,
    // at any worker count.
    let sequential = analyze_all_jobs(Scale::Small, 1);
    let streamed = AnalyzeOpts {
        stream: true,
        ..AnalyzeOpts::default()
    };
    let stream_seq = analyze_all_opts(Scale::Small, 1, &streamed);
    let stream_par = analyze_all_opts(Scale::Small, 3, &streamed);

    let reference = all_csvs(&sequential);
    for (label, results) in [
        ("stream jobs=1", &stream_seq),
        ("stream jobs=3", &stream_par),
    ] {
        for ((slug, expect), (_, got)) in reference.iter().zip(all_csvs(results)) {
            assert_eq!(
                *expect, got,
                "{label}: {slug}.csv must be byte-identical to the materialized run"
            );
        }
    }
}
