//! Differential query-pushdown suite: random queries × random traces ×
//! random block boundaries, three independent answer paths, one result.
//!
//! For every generated (trace, query, block size) triple, the
//! event-at-a-time engine ([`databp_sim::run_query`]) is the oracle and
//! the zone-mapped pushdown scan ([`databp_sim::scan_query`]) must
//! reproduce its `QueryResult` exactly — sequentially (`jobs = 1`) and
//! with a parallel block fan-out (`jobs = 4`), over trailered files,
//! trailer-less files, and files whose zone-map trailer has been
//! corrupted (which must degrade to a full scan, never a wrong
//! answer). Accounting invariants ride along: every block is either
//! scanned or skipped, and the write total matches the trace.

use databp_core::WriterMap;
use databp_sim::{run_query, scan_query};
use databp_trace::{write_columnar_with, Event, ObjectDesc, Trace, WriteOpts};
use proptest::prelude::*;

fn arb_event() -> impl Strategy<Value = Event> {
    let write =
        (0u32..0x400, 0u32..0x8000, any::<u32>(), any::<u32>()).prop_map(|(pc, ba, value, old)| {
            Event::Write {
                pc: 0x1000 + pc * 4,
                ba: 0x10_0000 + ba * 4,
                ea: 0x10_0000 + ba * 4 + 4,
                value,
                old,
            }
        });
    prop_oneof![
        // Writes dominate real traces and are all a query inspects:
        // repeating the strategy weights the choice toward them.
        write.clone(),
        write.clone(),
        write.clone(),
        write.clone(),
        write,
        (1u32..64, 0u32..0x100).prop_map(|(id, ba)| Event::Install {
            obj: ObjectDesc::Global { id },
            ba: 0x20_0000 + ba * 16,
            ea: 0x20_0000 + ba * 16 + 16,
        }),
        (1u32..64, 0u32..0x100).prop_map(|(id, ba)| Event::Remove {
            obj: ObjectDesc::Global { id },
            ba: 0x20_0000 + ba * 16,
            ea: 0x20_0000 + ba * 16 + 16,
        }),
        (0u16..8).prop_map(|f| Event::Enter { func: f }),
        (0u16..8).prop_map(|f| Event::Exit { func: f }),
    ]
}

fn arb_trace() -> impl Strategy<Value = Trace> {
    prop::collection::vec(arb_event(), 0..600).prop_map(Trace::from_events)
}

/// Query pool: every aggregation, predicates over every term the zone
/// maps bound (`value`, `old`, `hits`, `writer`), plus arithmetic the
/// interval evaluator must stay conservative on.
fn arb_query() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("count".to_string()),
        Just("first".to_string()),
        Just("last".to_string()),
        Just("hist".to_string()),
        Just("watch".to_string()),
        (0usize..5, any::<u32>()).prop_map(|(agg, k)| {
            let agg = ["count", "first", "last", "hist", "watch"][agg];
            format!("{agg} if value > {k}")
        }),
        (0u32..0x100).prop_map(|k| format!("count if old < {k}")),
        (0u64..3000).prop_map(|k| format!("count if hits > {k}")),
        (0u64..3000).prop_map(|k| format!("first if hits > {k}")),
        (0u16..8).prop_map(|f| format!("count if writer in f{f}")),
        (0u16..8, any::<u32>())
            .prop_map(|(f, k)| format!("last if writer in f{f} && value <= {k}")),
        (any::<u32>()).prop_map(|k| format!("hist if value - old > {k}")),
        (1u32..64).prop_map(|k| format!("count if value % {k} == 0")),
        Just("count if value == old + 1".to_string()),
        (any::<u32>(), any::<u32>()).prop_map(|(a, b)| format!(
            "watch if value > {} && old < {}",
            a.min(b),
            a.max(b)
        )),
    ]
}

/// Function entries spread across the generated pc range so `writer in`
/// predicates see below-first-entry pcs, interior segments, and a
/// duplicate entry (last id wins).
fn writer_map() -> WriterMap {
    WriterMap::new([
        (0x1100, 0u16),
        (0x1300, 1u16),
        (0x1300, 2u16),
        (0x1500, 3u16),
        (0x1900, 4u16),
        (0x2000, 5u16),
    ])
}

fn resolve(name: &str) -> Option<u16> {
    name.strip_prefix('f').and_then(|s| s.parse().ok())
}

fn encoded(trace: &Trace, block_events: usize, zone_maps: bool) -> Vec<u8> {
    let mut buf = Vec::new();
    write_columnar_with(
        trace,
        b"pushdown-suite",
        &mut buf,
        WriteOpts {
            block_events,
            zone_maps,
        },
    )
    .expect("in-memory encode");
    buf
}

fn check_all_paths(trace: &Trace, bytes: &[u8], query: &str, ctx: &str) {
    let writers = writer_map();
    let want = run_query(query, trace.events(), resolve, writers.clone())
        .expect("oracle accepts every generated query");
    let n_writes = trace
        .events()
        .iter()
        .filter(|e| matches!(e, Event::Write { .. }))
        .count() as u64;
    for jobs in [1usize, 4] {
        let (got, stats) = scan_query(bytes, query, resolve, &writers, jobs)
            .expect("pushdown accepts every generated query");
        assert_eq!(got, want, "{ctx}: `{query}` diverged with jobs={jobs}");
        assert_eq!(
            stats.writes, n_writes,
            "{ctx}: `{query}` write accounting diverged with jobs={jobs}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole equality: full scan == pushdown == parallel merge,
    /// under random block boundaries.
    #[test]
    fn pushdown_matches_full_scan(
        trace in arb_trace(),
        query in arb_query(),
        block_events in 1usize..96,
    ) {
        let bytes = encoded(&trace, block_events, true);
        check_all_paths(&trace, &bytes, &query, "trailered");
    }

    /// Files written without zone maps answer identically (every block
    /// scanned — old-writer/new-reader compatibility).
    #[test]
    fn trailerless_file_matches_full_scan(
        trace in arb_trace(),
        query in arb_query(),
        block_events in 1usize..96,
    ) {
        let bytes = encoded(&trace, block_events, false);
        check_all_paths(&trace, &bytes, &query, "trailer-less");
        let (_, stats) =
            scan_query(&bytes, &query, resolve, &writer_map(), 1).unwrap();
        let n_blocks = (trace.len() as u64).div_ceil(block_events as u64);
        prop_assert_eq!(stats.blocks_scanned + stats.blocks_skipped, n_blocks);
        // Without zone maps nothing can be *refuted*; only the
        // `first`/`last` short-circuit may leave blocks undecoded.
        if !query.starts_with("first") && !query.starts_with("last") {
            prop_assert_eq!(stats.blocks_skipped, 0, "no zones, nothing may be skipped");
        }
    }

    /// Corrupting any single byte of the zone-map trailer never changes
    /// an answer: the reader either keeps a checksum-valid trailer or
    /// falls back to scanning every block.
    #[test]
    fn trailer_corruption_never_changes_an_answer(
        trace in arb_trace(),
        query in arb_query(),
        block_events in 1usize..96,
        flip in any::<u8>(),
        at in any::<u16>(),
    ) {
        let plain = encoded(&trace, block_events, false);
        let mut bytes = encoded(&trace, block_events, true);
        // The trailer is always emitted (even for an empty trace).
        let trailer_len = bytes.len() - plain.len();
        prop_assert!(trailer_len > 0);
        let at = bytes.len() - 1 - (usize::from(at) % trailer_len);
        bytes[at] ^= flip | 1; // always a real flip
        check_all_paths(&trace, &bytes, &query, "corrupted trailer");
    }

    /// Truncating the trailer (still a decodable event section) also
    /// degrades to a correct full scan.
    #[test]
    fn trailer_truncation_never_changes_an_answer(
        trace in arb_trace(),
        query in arb_query(),
        block_events in 1usize..96,
        keep in any::<u16>(),
    ) {
        let plain = encoded(&trace, block_events, true);
        let trailer_start = encoded(&trace, block_events, false).len();
        let trailer_len = plain.len() - trailer_start;
        prop_assert!(trailer_len > 1);
        // Keep a strict, nonzero prefix of the trailer.
        let keep = 1 + usize::from(keep) % (trailer_len - 1);
        let bytes = &plain[..trailer_start + keep];
        check_all_paths(&trace, bytes, &query, "truncated trailer");
    }
}

/// Deterministic spot-check that skipping actually happens on the kind
/// of selective query the CI smoke step sends — the differential
/// properties above prove equality, this proves the "push" in pushdown.
#[test]
fn selective_query_skips_blocks() {
    let mut evs = Vec::new();
    for i in 0u32..1000 {
        evs.push(Event::Write {
            pc: 0x1000 + (i % 7) * 4,
            ba: 0x10_0000 + i * 4,
            ea: 0x10_0000 + i * 4 + 4,
            value: i,
            old: 0,
        });
    }
    let trace = Trace::from_events(evs);
    let bytes = encoded(&trace, 64, true);
    let writers = writer_map();
    let (result, stats) = scan_query(&bytes, "count if value > 950", resolve, &writers, 4).unwrap();
    let want = run_query("count if value > 950", trace.events(), resolve, writers).unwrap();
    assert_eq!(result, want);
    assert!(
        stats.blocks_skipped >= 14,
        "a selective query over 16 blocks must skip most of them, skipped {}",
        stats.blocks_skipped
    );
}
