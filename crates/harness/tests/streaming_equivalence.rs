//! The streaming pipeline must be invisible in the results: for every
//! workload, batch size, channel depth, and ladder, `--stream` produces
//! exactly the sessions, counts, trace, and base timing of the
//! materialized two-phase run.

use databp_harness::{analyze_opts, AnalyzeOpts, WorkloadResults};
use databp_machine::PageSize;
use databp_workloads::Workload;

fn materialized(w: &Workload, ladder: &[PageSize]) -> WorkloadResults {
    analyze_opts(
        w,
        &AnalyzeOpts {
            ladder: ladder.to_vec(),
            ..AnalyzeOpts::default()
        },
    )
}

fn assert_equivalent(label: &str, st: &WorkloadResults, mat: &WorkloadResults) {
    assert_eq!(st.sessions, mat.sessions, "{label}: sessions");
    assert_eq!(st.candidates, mat.candidates, "{label}: candidates");
    assert_eq!(st.ladder, mat.ladder, "{label}: ladder");
    assert_eq!(st.counts4, mat.counts4, "{label}: counts4");
    assert_eq!(st.counts8, mat.counts8, "{label}: counts8");
    assert_eq!(
        st.ladder_counts, mat.ladder_counts,
        "{label}: ladder_counts"
    );
    assert_eq!(
        st.prepared.base_us, mat.prepared.base_us,
        "{label}: base_us"
    );
}

#[test]
fn streamed_matches_materialized_per_workload() {
    for name in ["cc", "bps", "tex"] {
        let w = Workload::by_name(name).unwrap().scaled_down();
        let mat = materialized(&w, &[PageSize::K4, PageSize::K8]);
        let st = analyze_opts(
            &w,
            &AnalyzeOpts {
                stream: true,
                ..AnalyzeOpts::default()
            },
        );
        assert_equivalent(name, &st, &mat);
        assert_eq!(
            st.prepared.trace.events(),
            mat.prepared.trace.events(),
            "{name}: teed trace"
        );
    }
}

#[test]
fn tiny_batches_and_minimal_channel_still_agree() {
    // Worst-case backpressure: three-event batches through a one-batch
    // channel force constant producer/consumer blocking.
    let w = Workload::by_name("qcd").unwrap().scaled_down();
    let mat = materialized(&w, &[PageSize::K4, PageSize::K8]);
    let st = analyze_opts(
        &w,
        &AnalyzeOpts {
            stream: true,
            batch_events: 3,
            channel_batches: 1,
            ..AnalyzeOpts::default()
        },
    );
    assert_equivalent("qcd tiny batches", &st, &mat);
}

#[test]
fn four_size_ladder_streams_identically() {
    let ladder = [PageSize::K4, PageSize::K8, PageSize::K16, PageSize::K32];
    let w = Workload::by_name("spice").unwrap().scaled_down();
    let mat = materialized(&w, &ladder);
    let st = analyze_opts(
        &w,
        &AnalyzeOpts {
            stream: true,
            ladder: ladder.to_vec(),
            ..AnalyzeOpts::default()
        },
    );
    assert_equivalent("spice 4-size ladder", &st, &mat);
    assert_eq!(st.ladder.len(), 4);
}

#[test]
fn inline_streaming_matches_materialized() {
    // `channel_batches: 0` replays on the tracing thread itself — no
    // channel, no consumer thread — and must still be invisible in the
    // results, tee included, even with a tiny batch size.
    let w = Workload::by_name("tex").unwrap().scaled_down();
    let mat = materialized(&w, &[PageSize::K4, PageSize::K8]);
    for batch_events in [5usize, 16 * 1024] {
        let st = analyze_opts(
            &w,
            &AnalyzeOpts {
                stream: true,
                batch_events,
                channel_batches: 0,
                ..AnalyzeOpts::default()
            },
        );
        assert_equivalent(&format!("tex inline batch={batch_events}"), &st, &mat);
        assert_eq!(
            st.prepared.trace.events(),
            mat.prepared.trace.events(),
            "tex inline batch={batch_events}: teed trace"
        );
    }
}

#[test]
fn streaming_without_tee_drops_the_trace_but_not_the_counts() {
    let w = Workload::by_name("cc").unwrap().scaled_down();
    let mat = materialized(&w, &[PageSize::K4, PageSize::K8]);
    let st = analyze_opts(
        &w,
        &AnalyzeOpts {
            stream: true,
            keep_trace: false,
            ..AnalyzeOpts::default()
        },
    );
    assert_equivalent("cc no tee", &st, &mat);
    assert!(st.prepared.trace.events().is_empty());
}
