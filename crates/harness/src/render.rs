//! Plain-text table and CSV rendering.

/// A simple column-aligned text table with a title.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// A table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        TextTable {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    ///
    /// # Panics
    ///
    /// Panics on column-count mismatch.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders with aligned columns (first column left, others right).
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&self.title);
            out.push('\n');
            out.push_str(&"=".repeat(self.title.len()));
            out.push('\n');
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i == 0 {
                    line.push_str(&format!("{:<width$}", c, width = widths[0]));
                } else {
                    line.push_str(&format!("  {:>width$}", c, width = widths[i]));
                }
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header));
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        out
    }

    /// Renders as CSV (RFC-4180-ish; quotes cells containing commas).
    pub fn render_csv(&self) -> String {
        let esc = |c: &str| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a relative overhead like the paper's Table 4 (two decimals,
/// `0` for exact zero).
pub fn fmt_rel(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else {
        format!("{x:.2}")
    }
}

/// Formats a percentage with one decimal.
pub fn fmt_pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new("T", &["name", "n"]);
        t.row(vec!["longer-name".into(), "1".into()]);
        t.row(vec!["x".into(), "12345".into()]);
        let s = t.render();
        assert!(s.contains("T\n=\n"));
        let lines: Vec<&str> = s.lines().collect();
        // All data lines equal length.
        assert_eq!(lines[2].len(), lines[4].len().max(lines[3].len()));
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = TextTable::new("", &["a", "b"]);
        t.row(vec!["x,y".into(), "say \"hi\"".into()]);
        let csv = t.render_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        TextTable::new("", &["a"]).row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn rel_formatting() {
        assert_eq!(fmt_rel(0.0), "0");
        assert_eq!(fmt_rel(85.614), "85.61");
        assert_eq!(fmt_pct(0.973), "97.3%");
    }
}
