//! Section 8's overhead breakdown: "for each program we calculated the
//! mean, over all monitor sessions, of the percentage of time taken by
//! each of the operations corresponding to our timing variables."

use crate::pipeline::WorkloadResults;
use crate::render::{fmt_pct, TextTable};
use databp_models::{overhead, Approach, TimingVar, TimingVars};

/// Mean fraction of modeled overhead attributed to `var` under
/// `approach`, over all sessions of one workload. Sessions with zero
/// total overhead are skipped.
pub fn mean_fraction(r: &WorkloadResults, approach: Approach, var: TimingVar) -> f64 {
    let timing = TimingVars::default();
    let counts = if approach == Approach::Vm8k {
        &r.counts8
    } else {
        &r.counts4
    };
    let mut total = 0.0;
    let mut n = 0usize;
    for c in counts {
        let ov = overhead(approach, c, &timing);
        if ov.total_us() > 0.0 {
            total += ov.fraction(var);
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        total / n as f64
    }
}

/// The dominant timing variable per approach (what Section 8 reports).
fn headline_var(a: Approach) -> TimingVar {
    match a {
        Approach::Nh => TimingVar::NhFaultHandler,
        Approach::Vm4k | Approach::Vm8k => TimingVar::VmFaultHandler,
        Approach::Tp => TimingVar::TpFaultHandler,
        Approach::Cp => TimingVar::SoftwareLookup,
    }
}

/// The breakdown table: per program, the mean share of the dominant
/// timing variable for each approach. Section 8 expects ~100% for NH,
/// 86–97% for VM, ~97% for TP, and 98–99% for CP.
pub fn breakdown_table(results: &[WorkloadResults]) -> TextTable {
    let _span = databp_telemetry::time!("harness.breakdown");
    let mut t = TextTable::new(
        "Section 8 breakdown: mean share of the dominant timing variable",
        &[
            "Program",
            "NH: NHFaultHandler",
            "VM-4K: VMFaultHandler",
            "VM-8K: VMFaultHandler",
            "TP: TPFaultHandler",
            "CP: SoftwareLookup",
        ],
    );
    for r in results {
        let mut row = vec![r.prepared.workload.name.to_string()];
        for a in Approach::ALL {
            row.push(fmt_pct(mean_fraction(r, a, headline_var(a))));
        }
        t.row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::analyze;
    use databp_workloads::Workload;

    #[test]
    fn dominant_shares_match_section_8_bands() {
        let r = analyze(&Workload::by_name("cc").unwrap().scaled_down());
        // NH: all overhead is the fault handler.
        let nh = mean_fraction(&r, Approach::Nh, TimingVar::NhFaultHandler);
        assert!((nh - 1.0).abs() < 1e-9, "NH share {nh}");
        // TP: 102/(102+2.75) per checked write, plus small update term.
        let tp = mean_fraction(&r, Approach::Tp, TimingVar::TpFaultHandler);
        assert!(tp > 0.95 && tp < 0.99, "TP share {tp}");
        // CP: lookup dominates.
        let cp = mean_fraction(&r, Approach::Cp, TimingVar::SoftwareLookup);
        assert!(cp > 0.90, "CP share {cp}");
        // VM: fault handler dominates.
        let vm = mean_fraction(&r, Approach::Vm4k, TimingVar::VmFaultHandler);
        assert!(vm > 0.5, "VM share {vm}");
    }

    #[test]
    fn table_renders_percentages() {
        let r = vec![analyze(&Workload::by_name("tex").unwrap().scaled_down())];
        let text = breakdown_table(&r).render();
        assert!(text.contains('%'));
        assert!(text.contains("tex"));
    }
}
