//! Section 9's loop-invariant preliminary-check optimization, measured
//! by executing CodePatch with and without it.
//!
//! The paper only sketches this optimization ("our expectation is that
//! this and other optimizations will significantly reduce the overhead of
//! code patching"); here it is implemented and measured. Executable runs
//! are expensive, so each workload is sampled: the no-monitor case (pure
//! instrumentation overhead — where the optimization matters most for an
//! idle debugger) plus the sessions with the most hits.

use crate::pipeline::WorkloadResults;
use crate::render::{fmt_pct, fmt_rel, TextTable};
use databp_core::{CodePatch, MonitorPlan, NoMonitors};
use databp_machine::Machine;
use databp_sessions::SessionPlan;

/// One measured comparison row.
#[derive(Debug, Clone)]
pub struct LoopOptRow {
    /// Workload name.
    pub workload: String,
    /// Session description (or "(no monitors)").
    pub session: String,
    /// Plain CodePatch relative overhead.
    pub cp: f64,
    /// Optimized CodePatch relative overhead.
    pub cp_opt: f64,
    /// Body-check lookups elided.
    pub skipped: u64,
    /// Preliminary checks executed.
    pub preheader: u64,
    /// Notifications under both runs (must agree — soundness).
    pub notifications: u64,
}

fn run_cp(
    r: &WorkloadResults,
    plan: &dyn MonitorPlan,
    optimized: bool,
) -> databp_core::StrategyReport {
    let build = if optimized {
        r.prepared.codepatch_loopopt()
    } else {
        r.prepared.codepatch()
    };
    let mut m = Machine::new();
    m.load(&build.program);
    m.set_args(r.prepared.workload.args.clone());
    let strat = if optimized {
        CodePatch::with_loopopt()
    } else {
        CodePatch::default()
    };
    strat
        .run(
            &mut m,
            &build.debug,
            plan,
            r.prepared.workload.max_steps * 2,
        )
        .expect("CodePatch run failed")
}

/// Measures CP vs CP-opt for one workload: the no-monitor case plus the
/// `samples` highest-hit sessions.
pub fn measure(r: &WorkloadResults, samples: usize) -> Vec<LoopOptRow> {
    let mut rows = Vec::new();

    let base = run_cp(r, &NoMonitors, false);
    let opt = run_cp(r, &NoMonitors, true);
    assert_eq!(base.notification_count, opt.notification_count);
    rows.push(LoopOptRow {
        workload: r.prepared.workload.name.to_string(),
        session: "(no monitors)".to_string(),
        cp: base.relative_overhead(),
        cp_opt: opt.relative_overhead(),
        skipped: opt.skipped_lookups,
        preheader: opt.preheader_lookups,
        notifications: opt.notification_count,
    });

    // Highest-hit sessions.
    let mut order: Vec<usize> = (0..r.sessions.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(r.counts4[i].hit));
    for &i in order.iter().take(samples) {
        let session = r.sessions[i];
        let plan = SessionPlan::new(session, &r.prepared.plain.debug);
        let base = run_cp(r, &plan, false);
        let opt = run_cp(r, &plan, true);
        assert_eq!(
            base.notification_count, opt.notification_count,
            "loop optimization must not lose notifications for {session}"
        );
        rows.push(LoopOptRow {
            workload: r.prepared.workload.name.to_string(),
            session: session.describe(&r.prepared.plain.debug),
            cp: base.relative_overhead(),
            cp_opt: opt.relative_overhead(),
            skipped: opt.skipped_lookups,
            preheader: opt.preheader_lookups,
            notifications: opt.notification_count,
        });
    }
    rows
}

/// The Section 9 table over all workloads.
pub fn loopopt_table(results: &[WorkloadResults], samples: usize) -> TextTable {
    let _span = databp_telemetry::time!("harness.loopopt");
    let mut t = TextTable::new(
        "Section 9: CodePatch loop-invariant preliminary checks (executed)",
        &[
            "Program",
            "Session",
            "CP",
            "CP+loopopt",
            "saved",
            "skipped lookups",
            "preheader",
        ],
    );
    for r in results {
        for row in measure(r, samples) {
            let saved = if row.cp > 0.0 {
                1.0 - row.cp_opt / row.cp
            } else {
                0.0
            };
            t.row(vec![
                row.workload,
                row.session,
                fmt_rel(row.cp),
                fmt_rel(row.cp_opt),
                fmt_pct(saved),
                row.skipped.to_string(),
                row.preheader.to_string(),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::analyze;
    use databp_workloads::Workload;

    #[test]
    fn loopopt_reduces_overhead_and_preserves_notifications() {
        let r = analyze(&Workload::by_name("qcd").unwrap().scaled_down());
        let rows = measure(&r, 2);
        assert_eq!(rows.len(), 3);
        // The no-monitor case must improve (qcd's lattice loops have
        // invariant scalar accumulators).
        let none = &rows[0];
        assert!(none.skipped > 0, "no lookups skipped: {none:?}");
        assert!(none.cp_opt < none.cp, "no improvement: {none:?}");
        // Monitored sessions keep every notification (asserted inside
        // measure) and never get more expensive than ~CP.
        for row in &rows[1..] {
            assert!(
                row.cp_opt <= row.cp * 1.05,
                "optimized run should not cost more: {row:?}"
            );
        }
    }
}
