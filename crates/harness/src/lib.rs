//! The experiment harness: regenerates every table and figure of the
//! paper's evaluation (Section 8) from the substituted workloads.
//!
//! | Paper artifact | Function | `repro` subcommand |
//! |---|---|---|
//! | Table 1 (sessions & base time) | [`tables::table1`] | `repro table1` |
//! | Table 2 (timing variables) | [`tables::table2`] | `repro table2` |
//! | Table 3 (mean counting variables) | [`tables::table3`] | `repro table3` |
//! | Table 4 (relative overhead statistics) | [`tables::table4`] | `repro table4` |
//! | Figure 7 (max overhead) | [`figures::figure`] | `repro fig7` |
//! | Figure 8 (90th percentile) | [`figures::figure`] | `repro fig8` |
//! | Figure 9 (10–90% trimmed mean) | [`figures::figure`] | `repro fig9` |
//! | §8 breakdown percentages | [`breakdown::breakdown_table`] | `repro breakdown` |
//! | §8 CodePatch code expansion | [`expansion::expansion_table`] | `repro expansion` |
//! | §9 loop-check optimization | [`loopopt::loopopt_table`] | `repro loopopt` |
//! | static write-safety elision | [`staticopt::staticopt_table`] | `repro staticopt` |
//! | §3.3 dynamic-patching hybrid | [`dyncp::dyncp_table`] | `repro dyncp` |
//! | §9 watch-register coverage | [`nhcoverage::coverage_table`] | `repro nhcoverage` |
//!
//! The pipeline ([`analyze_all`]) is the paper's two phases: run each
//! workload once under the tracer, enumerate all candidate monitor
//! sessions, simulate the trace once per page size, discard zero-hit
//! sessions, and evaluate the analytical models per session.

pub mod breakdown;
pub mod dyncp;
pub mod expansion;
pub mod figures;
pub mod loopopt;
pub mod microbench;
pub mod nhcoverage;
pub mod pipeline;
pub mod render;
pub mod staticopt;
pub mod tables;
pub mod verify;

pub use pipeline::{
    analyze, analyze_all, analyze_all_jobs, analyze_all_opts, analyze_opts, default_jobs,
    overheads_for, reanalyze, AnalyzeOpts, Scale, WorkloadResults,
};
