//! Watch-register coverage — quantifying the paper's core objection to
//! NativeHardware: "no widely-used chip today supports more than four
//! concurrent write monitors", yet "no existing processor could have
//! supported all of the monitor sessions used in our experiment".
//!
//! For every surviving session we compute the *maximum number of
//! simultaneously active monitors* from the trace; a session is
//! hardware-feasible only if that maximum fits the register bank.

use crate::pipeline::WorkloadResults;
use crate::render::{fmt_pct, TextTable};
use databp_machine::DEFAULT_WATCH_REGS;
use databp_sessions::SessionSet;
use databp_sim::Membership;
use databp_trace::Event;

/// Per-session maximum concurrent active monitors over one trace.
pub fn max_concurrent(r: &WorkloadResults) -> Vec<u32> {
    let set = SessionSet::new(
        r.sessions.clone(),
        &r.prepared.plain.debug,
        &r.prepared.trace,
    );
    let n = set.count();
    let mut cur = vec![0u32; n];
    let mut max = vec![0u32; n];
    let mut scratch = Vec::new();
    for ev in r.prepared.trace.events() {
        match ev {
            Event::Install { obj, .. } => {
                set.sessions_of(obj, &mut scratch);
                for &s in &scratch {
                    cur[s as usize] += 1;
                    max[s as usize] = max[s as usize].max(cur[s as usize]);
                }
            }
            Event::Remove { obj, .. } => {
                set.sessions_of(obj, &mut scratch);
                for &s in &scratch {
                    // Objects that were never installed under this
                    // session cannot be removed from it; membership is
                    // static, so this decrement always has a matching
                    // increment.
                    cur[s as usize] -= 1;
                }
            }
            _ => {}
        }
    }
    max
}

/// The coverage table: how many sessions fit 1/2/4 registers, and the
/// largest demand seen.
pub fn coverage_table(results: &[WorkloadResults]) -> TextTable {
    let _span = databp_telemetry::time!("harness.nhcoverage");
    let mut t = TextTable::new(
        "NativeHardware coverage: sessions supportable with N watch registers",
        &[
            "Program",
            "Sessions",
            "fit 1 reg",
            "fit 4 regs (real HW)",
            "need >4 regs",
            "max concurrent",
        ],
    );
    for r in results {
        let maxes = max_concurrent(r);
        let n = maxes.len().max(1);
        let fit = |k: u32| maxes.iter().filter(|&&m| m <= k).count();
        let over = maxes
            .iter()
            .filter(|&&m| m > DEFAULT_WATCH_REGS as u32)
            .count();
        t.row(vec![
            r.prepared.workload.name.to_string(),
            maxes.len().to_string(),
            fmt_pct(fit(1) as f64 / n as f64),
            fmt_pct(fit(DEFAULT_WATCH_REGS as u32) as f64 / n as f64),
            fmt_pct(over as f64 / n as f64),
            maxes.iter().max().copied().unwrap_or(0).to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::analyze;
    use databp_sessions::SessionKind;
    use databp_workloads::Workload;

    #[test]
    fn heap_rich_workload_needs_more_than_real_hardware() {
        let r = analyze(&Workload::by_name("bps").unwrap().scaled_down());
        let maxes = max_concurrent(&r);
        assert_eq!(maxes.len(), r.sessions.len());
        // Every session needs at least one register.
        assert!(maxes.iter().all(|&m| m >= 1));
        // AllHeapInFunc over the whole search must exceed 4 concurrent
        // monitors — the paper's "consider monitoring a large central
        // data structure".
        let over: Vec<_> = r
            .sessions
            .iter()
            .zip(&maxes)
            .filter(|(s, &m)| s.kind() == SessionKind::AllHeapInFunc && m > 4)
            .collect();
        assert!(
            !over.is_empty(),
            "expected a heap-wide session to exceed 4 registers"
        );
    }

    #[test]
    fn single_object_sessions_fit_one_register() {
        let r = analyze(&Workload::by_name("tex").unwrap().scaled_down());
        let maxes = max_concurrent(&r);
        for (s, &m) in r.sessions.iter().zip(&maxes) {
            if s.kind() == SessionKind::OneGlobalStatic {
                assert_eq!(m, 1, "{s}");
            }
        }
    }

    #[test]
    fn table_renders() {
        let r = vec![analyze(&Workload::by_name("tex").unwrap().scaled_down())];
        let text = coverage_table(&r).render();
        assert!(text.contains("max concurrent"));
    }
}
