//! Appendix A.5's software microbenchmarks, run for real on this host.
//!
//! The paper measured `SoftwareUpdateτ`/`SoftwareLookupτ` by installing
//! and probing a *WorkingMonitorSet*: "100 non-overlapping write monitors
//! with random size and location allocated from a 2 megabyte contiguous
//! memory region". We reproduce the procedure against our
//! [`databp_core::PageMap`] and report wall-clock microseconds — the
//! host-native column of our Table 2 (the model keeps using the paper's
//! SPARC values so overheads stay comparable).

use databp_core::{Monitor, MonitorId, PageMap};
use std::time::Instant;

/// Results of the Appendix A.5 benchmarks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SoftwareBench {
    /// Mean install+remove cost per monitor, microseconds.
    pub update_us: f64,
    /// Mean lookup cost per probe, microseconds.
    pub lookup_us: f64,
    /// Probes performed.
    pub probes: u64,
}

/// Deterministic 64-bit LCG (no external RNG dependency; the paper
/// precomputed its random sequences too).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self, limit: u32) -> u32 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((self.0 >> 33) as u32) % limit
    }
}

const REGION_BASE: u32 = 0x0040_0000;
const REGION_SIZE: u32 = 2 * 1024 * 1024;
const MONITORS: usize = 100;

/// Builds the paper's WorkingMonitorSet: 100 non-overlapping monitors of
/// random size and location in a 2 MiB region.
pub fn working_monitor_set() -> Vec<Monitor> {
    let mut rng = Lcg(0x5EED_1992);
    // Partition the region into 100 chunks and place one monitor at a
    // random offset/size within each — non-overlapping by construction.
    let chunk = (REGION_SIZE / MONITORS as u32) & !3; // word-aligned chunks
    (0..MONITORS as u32)
        .map(|i| {
            let base = REGION_BASE + i * chunk;
            let size = 4 + rng.next(chunk / 2 / 4) * 4;
            let off = rng.next((chunk - size) / 4) * 4;
            Monitor::new(base + off, base + off + size).expect("non-empty by construction")
        })
        .collect()
}

/// Runs the `SoftwareUpdate` / `SoftwareLookup` benchmarks.
pub fn software_microbenchmarks() -> SoftwareBench {
    let set = working_monitor_set();
    // SoftwareUpdate: repeated install+remove of the whole set.
    let update_rounds = 200u64;
    let start = Instant::now();
    for _ in 0..update_rounds {
        let mut pm = PageMap::new();
        for (i, m) in set.iter().enumerate() {
            pm.install(MonitorId::from_raw(i as u64), *m);
        }
        for (i, m) in set.iter().enumerate() {
            pm.remove(MonitorId::from_raw(i as u64), *m);
        }
    }
    let update_us =
        start.elapsed().as_secs_f64() * 1e6 / (update_rounds * 2 * MONITORS as u64) as f64;

    // SoftwareLookup: random 4-byte probes over the region with the set
    // installed.
    let mut pm = PageMap::new();
    for (i, m) in set.iter().enumerate() {
        pm.install(MonitorId::from_raw(i as u64), *m);
    }
    let mut rng = Lcg(0xCAFE_1992);
    let probes = 2_000_000u64;
    let mut hits = 0u64;
    let start = Instant::now();
    for _ in 0..probes {
        let a = REGION_BASE + rng.next(REGION_SIZE - 4);
        if pm.lookup(a, a + 4) {
            hits += 1;
        }
    }
    let lookup_us = start.elapsed().as_secs_f64() * 1e6 / probes as f64;
    // Keep the hit count live so the loop cannot be optimized away.
    assert!(hits > 0, "some probes must hit the working set");
    SoftwareBench {
        update_us,
        lookup_us,
        probes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn working_set_is_non_overlapping_and_in_region() {
        let set = working_monitor_set();
        assert_eq!(set.len(), 100);
        for m in &set {
            assert!(m.ba >= REGION_BASE);
            assert!(m.ea <= REGION_BASE + REGION_SIZE);
            assert_eq!(m.ba % 4, 0, "word-aligned per Appendix A.5");
        }
        let mut sorted = set.clone();
        sorted.sort_by_key(|m| m.ba);
        for w in sorted.windows(2) {
            assert!(w[0].ea <= w[1].ba, "overlap between {} and {}", w[0], w[1]);
        }
    }

    #[test]
    fn working_set_is_deterministic() {
        assert_eq!(working_monitor_set(), working_monitor_set());
    }

    #[test]
    fn microbenchmarks_produce_sane_magnitudes() {
        let b = software_microbenchmarks();
        // Host-native operations are sub-microsecond on any modern
        // machine but must be nonzero.
        assert!(b.lookup_us > 0.0 && b.lookup_us < 100.0, "{b:?}");
        assert!(b.update_us > 0.0 && b.update_us < 1000.0, "{b:?}");
    }
}
