//! Section 8's CodePatch space overhead: "we estimated the code
//! expansion for CodePatch … a modest increase of between 12% and 15%" —
//! extended with the static write-safety variants: the loop optimization
//! *adds* preheader checks, while static elision *removes* the checks a
//! debugger committed to a plan class will never need.

use crate::pipeline::WorkloadResults;
use crate::render::{fmt_pct, TextTable};
use databp_analysis::{analyze_writes, PlanClass};
use databp_models::code_expansion;
use databp_tinyc::lower;

/// Static code expansion of CodePatch for one workload: checked stores ×
/// 2 words over the uninstrumented image size, plus the *measured*
/// expansion (instrumented image vs. plain image).
pub fn expansion_row(r: &WorkloadResults) -> (f64, f64) {
    let plain_words = r.prepared.plain.program.len() as u32;
    let estimated = code_expansion(r.prepared.plain.debug.traced_store_count, plain_words);
    let cp_words = r.prepared.codepatch().program.len() as u32;
    let measured = (cp_words - plain_words) as f64 / plain_words as f64;
    (estimated, measured)
}

/// Expansion of the three CodePatch variants plus the elided-site count:
/// `(cp, cp_loopopt, cp_staticopt, elided_sites)`, each an image-growth
/// fraction over the plain build. The staticopt figure assumes a
/// debugger committed to global+heap monitoring (the class under which
/// stack-only stores need no check) and removes one `chk` word per
/// elided site from the CodePatch image.
pub fn variant_expansion(r: &WorkloadResults) -> (f64, f64, f64, u32) {
    let plain_words = r.prepared.plain.program.len() as u32;
    let cp_words = r.prepared.codepatch().program.len() as u32;
    let lo_words = r.prepared.codepatch_loopopt().program.len() as u32;
    let hir = lower(r.prepared.workload.source).expect("workload compiles");
    let safety = analyze_writes(&hir, &r.prepared.codepatch().debug);
    let elided = safety.elided_count(PlanClass::GLOBAL.union(PlanClass::HEAP));
    let grow = |words: u32| (words as f64 - plain_words as f64) / plain_words as f64;
    (
        grow(cp_words),
        grow(lo_words),
        grow(cp_words - elided),
        elided,
    )
}

/// The expansion table across all workloads.
pub fn expansion_table(results: &[WorkloadResults]) -> TextTable {
    let _span = databp_telemetry::time!("harness.expansion");
    let mut t = TextTable::new(
        "Section 8: CodePatch static code expansion (staticopt under a global+heap plan)",
        &[
            "Program",
            "Code words",
            "Traced stores",
            "Estimated (2 words/check)",
            "CP (measured)",
            "CP+loopopt",
            "CP+staticopt",
            "Elided sites",
        ],
    );
    for r in results {
        let (est, _) = expansion_row(r);
        let (cp, lo, so, elided) = variant_expansion(r);
        t.row(vec![
            r.prepared.workload.name.to_string(),
            r.prepared.plain.program.len().to_string(),
            r.prepared.plain.debug.traced_store_count.to_string(),
            fmt_pct(est),
            fmt_pct(cp),
            fmt_pct(lo),
            fmt_pct(so),
            elided.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::analyze;
    use databp_workloads::Workload;

    #[test]
    fn expansion_in_a_plausible_band() {
        // Our chk is one word, the paper costs two; the measured image
        // growth is therefore about half the estimate. Both should land
        // in the paper's neighbourhood (single-digit to ~20%).
        let r = analyze(&Workload::by_name("cc").unwrap().scaled_down());
        let (est, meas) = expansion_row(&r);
        assert!(est > 0.04 && est < 0.30, "estimated {est}");
        assert!(meas > 0.02 && meas < 0.20, "measured {meas}");
        assert!((est / 2.0 - meas).abs() < 0.02, "measured ≈ estimate/2");
    }

    #[test]
    fn variants_order_as_expected() {
        let r = analyze(&Workload::by_name("cc").unwrap().scaled_down());
        let (cp, lo, so, elided) = variant_expansion(&r);
        // Loop preheaders add code; static elision removes it.
        assert!(lo >= cp, "loopopt adds preheader checks: {lo} vs {cp}");
        assert!(so <= cp, "staticopt removes checks: {so} vs {cp}");
        assert!(elided > 0, "cc has provably stack-only stores");
        // Consistency: exactly one word per elided site.
        let plain_words = r.prepared.plain.program.len() as f64;
        let diff = (cp - so) * plain_words;
        assert!((diff - elided as f64).abs() < 1e-6);
    }

    #[test]
    fn table_renders() {
        let r = vec![analyze(&Workload::by_name("spice").unwrap().scaled_down())];
        let text = expansion_table(&r).render();
        assert!(text.contains("Traced stores"));
        assert!(text.contains("CP+staticopt"));
        assert!(text.contains('%'));
    }
}
