//! Section 8's CodePatch space overhead: "we estimated the code
//! expansion for CodePatch … a modest increase of between 12% and 15%."

use crate::pipeline::WorkloadResults;
use crate::render::{fmt_pct, TextTable};
use databp_models::code_expansion;

/// Static code expansion of CodePatch for one workload: checked stores ×
/// 2 words over the uninstrumented image size, plus the *measured*
/// expansion (instrumented image vs. plain image).
pub fn expansion_row(r: &WorkloadResults) -> (f64, f64) {
    let plain_words = r.prepared.plain.program.len() as u32;
    let estimated = code_expansion(r.prepared.plain.debug.traced_store_count, plain_words);
    let cp_words = r.prepared.codepatch().program.len() as u32;
    let measured = (cp_words - plain_words) as f64 / plain_words as f64;
    (estimated, measured)
}

/// The expansion table across all workloads.
pub fn expansion_table(results: &[WorkloadResults]) -> TextTable {
    let _span = databp_telemetry::time!("harness.expansion");
    let mut t = TextTable::new(
        "Section 8: CodePatch static code expansion",
        &[
            "Program",
            "Code words",
            "Traced stores",
            "Estimated (2 words/check)",
            "Measured (image growth)",
        ],
    );
    for r in results {
        let (est, meas) = expansion_row(r);
        t.row(vec![
            r.prepared.workload.name.to_string(),
            r.prepared.plain.program.len().to_string(),
            r.prepared.plain.debug.traced_store_count.to_string(),
            fmt_pct(est),
            fmt_pct(meas),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::analyze;
    use databp_workloads::Workload;

    #[test]
    fn expansion_in_a_plausible_band() {
        // Our chk is one word, the paper costs two; the measured image
        // growth is therefore about half the estimate. Both should land
        // in the paper's neighbourhood (single-digit to ~20%).
        let r = analyze(&Workload::by_name("cc").unwrap().scaled_down());
        let (est, meas) = expansion_row(&r);
        assert!(est > 0.04 && est < 0.30, "estimated {est}");
        assert!(meas > 0.02 && meas < 0.20, "measured {meas}");
        assert!((est / 2.0 - meas).abs() < 0.02, "measured ≈ estimate/2");
    }

    #[test]
    fn table_renders() {
        let r = vec![analyze(&Workload::by_name("spice").unwrap().scaled_down())];
        let text = expansion_table(&r).render();
        assert!(text.contains("Traced stores"));
        assert!(text.contains('%'));
    }
}
