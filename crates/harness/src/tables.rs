//! Tables 1–4.

use crate::pipeline::{overheads_for, WorkloadResults};
use crate::render::{fmt_rel, TextTable};
use databp_models::{Approach, TimingVars};
use databp_sessions::SessionKind;
use databp_stats::Summary;

/// Table 1: type and number of monitor sessions studied (zero-hit
/// sessions excluded) plus base execution time in milliseconds.
pub fn table1(results: &[WorkloadResults]) -> TextTable {
    let _span = databp_telemetry::time!("harness.table1");
    let mut t = TextTable::new(
        "Table 1: monitor sessions studied and base execution time",
        &[
            "Program",
            "OneLocalAuto",
            "AllLocalInFunc",
            "OneGlobalStatic",
            "OneHeap",
            "AllHeapInFunc",
            "Execution Time (ms)",
        ],
    );
    for r in results {
        let kc = r.kind_counts();
        t.row(vec![
            r.prepared.workload.name.to_string(),
            kc[&SessionKind::OneLocalAuto].to_string(),
            kc[&SessionKind::AllLocalInFunc].to_string(),
            kc[&SessionKind::OneGlobalStatic].to_string(),
            kc[&SessionKind::OneHeap].to_string(),
            kc[&SessionKind::AllHeapInFunc].to_string(),
            format!("{:.0}", r.base_ms()),
        ]);
    }
    t
}

/// Table 2: timing variable data in microseconds. The model values are
/// the paper's SPARCstation 2 measurements (our simulated machine adopts
/// them); the `host-measured` column reports this machine actually
/// executing the Appendix A.5 software benchmarks against the real
/// [`databp_core::PageMap`].
pub fn table2() -> TextTable {
    let _span = databp_telemetry::time!("harness.table2");
    let t = TimingVars::default();
    let measured = crate::microbench::software_microbenchmarks();
    let mut out = TextTable::new(
        "Table 2: timing variables (µs)",
        &[
            "Timing Variable",
            "Paper (SPARCstation 2)",
            "Host-measured (this machine)",
        ],
    );
    for (var, us) in t.entries() {
        let host = match var {
            databp_models::TimingVar::SoftwareUpdate => format!("{:.3}", measured.update_us),
            databp_models::TimingVar::SoftwareLookup => format!("{:.3}", measured.lookup_us),
            _ => "(adopted from paper)".to_string(),
        };
        out.row(vec![var.to_string(), format!("{us}"), host]);
    }
    out
}

/// Table 3: mean counting-variable data over all studied sessions of
/// each program.
pub fn table3(results: &[WorkloadResults]) -> TextTable {
    let _span = databp_telemetry::time!("harness.table3");
    let mut t = TextTable::new(
        "Table 3: mean counting variables over all monitor sessions",
        &[
            "Program",
            "Install/Remove",
            "MonitorHit",
            "MonitorMiss",
            "VM4K Prot/Unprot",
            "VM4K ActivePageMiss",
            "VM8K Prot/Unprot",
            "VM8K ActivePageMiss",
        ],
    );
    for r in results {
        let n = r.counts4.len().max(1) as f64;
        let mean = |f: &dyn Fn(usize) -> u64| -> f64 {
            (0..r.counts4.len()).map(f).sum::<u64>() as f64 / n
        };
        t.row(vec![
            r.prepared.workload.name.to_string(),
            format!("{:.0}", mean(&|i| r.counts4[i].install)),
            format!("{:.0}", mean(&|i| r.counts4[i].hit)),
            format!("{:.0}", mean(&|i| r.counts4[i].miss)),
            format!("{:.0}", mean(&|i| r.counts4[i].vm_protect)),
            format!("{:.0}", mean(&|i| r.counts4[i].vm_active_page_miss)),
            format!("{:.0}", mean(&|i| r.counts8[i].vm_protect)),
            format!("{:.0}", mean(&|i| r.counts8[i].vm_active_page_miss)),
        ]);
    }
    t
}

/// Table 4: relative overhead statistics. Rows per program: Min/Max,
/// T-Mean/Mean, 90%/98% — exactly the paper's layout.
pub fn table4(results: &[WorkloadResults]) -> TextTable {
    let _span = databp_telemetry::time!("harness.table4");
    let mut t = TextTable::new(
        "Table 4: relative overhead statistics",
        &["Program", "Statistic", "NH", "VM-4K", "VM-8K", "TP", "CP"],
    );
    for r in results {
        let summaries: Vec<Summary> = Approach::ALL
            .iter()
            .map(|&a| Summary::from_samples(&overheads_for(r, a)))
            .collect();
        let name = r.prepared.workload.name;
        let cell = |f: &dyn Fn(&Summary) -> f64| -> Vec<String> {
            summaries.iter().map(|s| fmt_rel(f(s))).collect()
        };
        let mut push = |stat: &str, vals: Vec<String>| {
            let mut row = vec![name.to_string(), stat.to_string()];
            row.extend(vals);
            t.row(row);
        };
        push("Min", cell(&|s| s.min));
        push("Max", cell(&|s| s.max));
        push("T-Mean", cell(&|s| s.t_mean));
        push("Mean", cell(&|s| s.mean));
        push("90%", cell(&|s| s.p90));
        push("98%", cell(&|s| s.p98));
    }
    t
}

/// One program × approach Table 4 cell-group as a [`Summary`] (shared by
/// the figures and the EXPERIMENTS report).
pub fn summary_for(r: &WorkloadResults, a: Approach) -> Summary {
    Summary::from_samples(&overheads_for(r, a))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{analyze, Scale};
    use databp_workloads::Workload;

    fn one_result() -> Vec<WorkloadResults> {
        vec![analyze(&Workload::by_name("tex").unwrap().scaled_down())]
    }

    #[test]
    fn table1_has_row_per_workload() {
        let res = one_result();
        let t = table1(&res);
        let text = t.render();
        assert!(text.contains("tex"));
        assert!(text.contains("Execution Time"));
        let csv = t.render_csv();
        assert_eq!(csv.lines().count(), 2);
    }

    #[test]
    fn table2_contains_paper_values() {
        let text = table2().render();
        assert!(text.contains("561"));
        assert!(text.contains("2.75"));
        assert!(text.contains("NHFaultHandler"));
    }

    #[test]
    fn table3_and_table4_render() {
        let res = one_result();
        assert!(table3(&res).render().contains("MonitorHit"));
        let t4 = table4(&res).render();
        assert!(t4.contains("T-Mean"));
        assert!(t4.contains("VM-8K"));
        // Table 4 has 6 statistic rows for the single program.
        assert_eq!(table4(&res).render_csv().lines().count(), 7);
    }

    #[test]
    fn scale_enum_is_usable() {
        assert_eq!(Scale::default(), Scale::Full);
    }
}
