//! The phase-1 + phase-2 pipeline shared by every experiment.
//!
//! Phase 2 is the whole cost of the reproduction, so the pipeline is
//! built to spend it once: [`analyze`] uses the simulator's **fused**
//! dual-page-size replay (one trace walk yields both the 4K and 8K
//! counts), and [`analyze_all`] fans the five workloads out across
//! worker threads ([`analyze_all_jobs`]). Results always come back in
//! [`Workload::all()`] order, independent of thread scheduling, so
//! every derived table and CSV is byte-identical to a sequential run.

use databp_models::{overhead, Approach, Counts};
use databp_sessions::{enumerate_sessions, Session, SessionKind, SessionSet};
use databp_sim::simulate_fused;
use databp_workloads::{prepare, Prepared, Workload};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Which workload scale to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// The full Table-1-like configuration (seconds per workload).
    #[default]
    Full,
    /// Scaled-down inputs for quick runs and tests.
    Small,
}

/// Everything the experiments need for one workload: trace, sessions
/// (zero-hit filtered, as in the paper), and per-session counting
/// variables at both page sizes.
#[derive(Debug)]
pub struct WorkloadResults {
    /// Compiled builds, trace, and base timing.
    pub prepared: Prepared,
    /// Sessions with at least one monitor hit, aligned with the counts
    /// vectors.
    pub sessions: Vec<Session>,
    /// Counting variables at 4 KiB pages.
    pub counts4: Vec<Counts>,
    /// Counting variables at 8 KiB pages.
    pub counts8: Vec<Counts>,
    /// Number of enumerated sessions before zero-hit filtering.
    pub candidates: usize,
}

impl WorkloadResults {
    /// Surviving sessions per kind (Table 1's columns).
    pub fn kind_counts(&self) -> BTreeMap<SessionKind, usize> {
        let mut m = BTreeMap::new();
        for k in SessionKind::ALL {
            m.insert(k, 0usize);
        }
        for s in &self.sessions {
            *m.get_mut(&s.kind()).expect("all kinds pre-inserted") += 1;
        }
        m
    }

    /// Base execution time in milliseconds (Table 1's last column).
    pub fn base_ms(&self) -> f64 {
        self.prepared.base_us / 1000.0
    }
}

/// Runs phase 1 and phase 2 for one workload.
///
/// # Panics
///
/// Panics if the workload fails to run (covered by workload tests).
pub fn analyze(workload: &Workload) -> WorkloadResults {
    let _span = databp_telemetry::time!("harness.analyze");
    let prepared = {
        let _t = databp_telemetry::time!("harness.prepare");
        prepare(workload).unwrap_or_else(|e| panic!("workload {} failed: {e}", workload.name))
    };
    let (all, candidates, set) = {
        let _t = databp_telemetry::time!("harness.sessions");
        let all = enumerate_sessions(&prepared.plain.debug, &prepared.trace);
        let candidates = all.len();
        let set = SessionSet::new(all.clone(), &prepared.plain.debug, &prepared.trace);
        (all, candidates, set)
    };
    // One fused trace walk yields both page sizes' counts.
    let (c4, c8) = simulate_fused(&prepared.trace, &set);

    // "Monitor sessions that had no monitor hits were discarded under the
    // assumption that they are unlikely candidates during debugging."
    let mut sessions = Vec::new();
    let mut counts4 = Vec::new();
    let mut counts8 = Vec::new();
    for (i, s) in all.into_iter().enumerate() {
        if c4[i].hit > 0 {
            sessions.push(s);
            counts4.push(c4[i]);
            counts8.push(c8[i]);
        }
    }
    WorkloadResults {
        prepared,
        sessions,
        counts4,
        counts8,
        candidates,
    }
}

/// Default worker count for [`analyze_all`]: one thread per available
/// core, capped by the workload count inside [`analyze_all_jobs`].
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Runs the pipeline for all five workloads at the given scale, using
/// [`default_jobs`] worker threads.
pub fn analyze_all(scale: Scale) -> Vec<WorkloadResults> {
    analyze_all_jobs(scale, default_jobs())
}

/// Runs the pipeline for all five workloads at the given scale across
/// up to `jobs` worker threads.
///
/// Workloads are claimed from a shared queue, but results are returned
/// in [`Workload::all()`] order regardless of which thread finishes
/// when — downstream tables and CSVs are byte-identical to a
/// sequential (`jobs == 1`) run.
///
/// # Panics
///
/// Panics if any workload fails to run (propagated from [`analyze`]).
pub fn analyze_all_jobs(scale: Scale, jobs: usize) -> Vec<WorkloadResults> {
    // Wall-clock over the whole fan-out; individual `harness.analyze`
    // spans sum per-workload time across threads, this one shows what
    // the user actually waits.
    let _span = databp_telemetry::time!("harness.analyze_all");
    let workloads: Vec<Workload> = Workload::all()
        .into_iter()
        .map(|w| match scale {
            Scale::Full => w,
            Scale::Small => w.scaled_down(),
        })
        .collect();
    let jobs = jobs.clamp(1, workloads.len());
    if jobs == 1 {
        return workloads.iter().map(analyze).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<WorkloadResults>>> =
        workloads.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(w) = workloads.get(i) else {
                    break;
                };
                let r = analyze(w);
                *slots[i].lock().expect("result slot lock") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("no worker panicked")
                .expect("every workload slot filled")
        })
        .collect()
}

/// Per-session relative overheads for one approach — the population each
/// Table 4 cell and each figure summarizes.
pub fn overheads_for(res: &WorkloadResults, approach: Approach) -> Vec<f64> {
    let timing = databp_models::TimingVars::default();
    let counts = if approach == Approach::Vm8k {
        &res.counts8
    } else {
        &res.counts4
    };
    counts
        .iter()
        .map(|c| overhead(approach, c, &timing).relative(res.prepared.base_us))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(name: &str) -> WorkloadResults {
        analyze(&Workload::by_name(name).unwrap().scaled_down())
    }

    #[test]
    fn zero_hit_sessions_filtered() {
        let r = small("cc");
        assert!(
            r.sessions.len() < r.candidates,
            "some candidates never get written"
        );
        assert!(r.counts4.iter().all(|c| c.hit > 0));
        assert_eq!(r.sessions.len(), r.counts4.len());
        assert_eq!(r.sessions.len(), r.counts8.len());
    }

    #[test]
    fn tex_and_qcd_have_no_heap_sessions() {
        for name in ["tex", "qcd"] {
            let r = small(name);
            let kc = r.kind_counts();
            assert_eq!(kc[&SessionKind::OneHeap], 0, "{name}");
            assert_eq!(kc[&SessionKind::AllHeapInFunc], 0, "{name}");
            assert!(kc[&SessionKind::OneLocalAuto] > 0, "{name}");
        }
    }

    #[test]
    fn overhead_populations_are_positive_and_ordered() {
        let r = small("cc");
        let tp = overheads_for(&r, Approach::Tp);
        let cp = overheads_for(&r, Approach::Cp);
        assert_eq!(tp.len(), r.sessions.len());
        for (t, c) in tp.iter().zip(&cp) {
            assert!(t > c, "TP must dominate CP per session");
            assert!(*c > 0.0);
        }
    }

    #[test]
    fn vm8k_uses_8k_counts() {
        let r = small("tex");
        let v4 = overheads_for(&r, Approach::Vm4k);
        let v8 = overheads_for(&r, Approach::Vm8k);
        // 8K pages can only see equal-or-more active-page misses.
        let mean4: f64 = v4.iter().sum::<f64>() / v4.len() as f64;
        let mean8: f64 = v8.iter().sum::<f64>() / v8.len() as f64;
        assert!(mean8 >= mean4 * 0.999, "mean4={mean4} mean8={mean8}");
    }
}
