//! The phase-1 + phase-2 pipeline shared by every experiment.
//!
//! Phase 2 is the whole cost of the reproduction, so the pipeline is
//! built to spend it once — and, since the streaming path landed, to
//! *overlap* it with phase 1:
//!
//! * [`analyze`] replays the trace through the simulator's fused
//!   page-size ladder (one trace walk yields the counts for every
//!   requested size — the 4K/8K pair by default, any ladder via
//!   [`AnalyzeOpts::ladder`]);
//! * with [`AnalyzeOpts::stream`], the traced machine run feeds event
//!   batches through a bounded channel to a concurrent replay engine,
//!   so phase 2 finishes moments after phase 1 halts instead of
//!   starting there — with byte-identical results (session discovery is
//!   canonicalized to the materialized enumeration order);
//! * [`analyze_all`] fans the five workloads out across worker threads
//!   ([`analyze_all_jobs`]). Results always come back in
//!   [`Workload::all()`] order, independent of thread scheduling, so
//!   every derived table and CSV is byte-identical to a sequential run.

use databp_machine::PageSize;
use databp_models::{overhead, Approach, Counts};
use databp_sessions::{enumerate_sessions, Session, SessionKind, SessionSet, StreamSessionSet};
use databp_sim::{simulate_sizes, StreamingReplay};
use databp_trace::{batch_channel, Event, EventSink, StreamSink, Trace};
use databp_workloads::{compile_plain, run_traced, Prepared, Workload};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Which workload scale to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// The full Table-1-like configuration (seconds per workload).
    #[default]
    Full,
    /// Scaled-down inputs for quick runs and tests.
    Small,
}

/// Pipeline configuration for [`analyze_opts`] / [`analyze_all_opts`].
#[derive(Debug, Clone)]
pub struct AnalyzeOpts {
    /// Overlap phase 2 with phase 1 through the streaming channel.
    pub stream: bool,
    /// Keep a materialized copy of the trace in
    /// [`Prepared::trace`](databp_workloads::Prepared) even when
    /// streaming (needed by the static-elision check and the `trace`
    /// command; tables don't use it). Ignored — always true — on the
    /// materialized path.
    pub keep_trace: bool,
    /// Page sizes to count at. 4 KiB and 8 KiB are always included (the
    /// models need them); extra sizes ride along in the same trace
    /// walk.
    pub ladder: Vec<PageSize>,
    /// Events per streamed batch.
    pub batch_events: usize,
    /// Bounded channel capacity, in batches. `0` selects *inline*
    /// streaming: each batch is replayed on the tracing thread itself —
    /// still no materialized trace on the hot path, but no consumer
    /// thread either, which is the right shape on a single-core host
    /// where a second thread only adds context switches.
    pub channel_batches: usize,
}

impl Default for AnalyzeOpts {
    fn default() -> Self {
        AnalyzeOpts {
            stream: false,
            keep_trace: true,
            ladder: vec![PageSize::K4, PageSize::K8],
            // Sized so the producer rarely blocks: sixteen batches of
            // 16K events absorb a whole scaled-down trace, and ~6 MiB
            // of buffering is still far below materializing a full
            // trace.
            batch_events: 16 * 1024,
            channel_batches: 16,
        }
    }
}

impl AnalyzeOpts {
    /// The channel depth streaming callers should use when they have no
    /// reason to pick one: the default bounded channel on multicore
    /// hosts, inline replay (`0`) when only one CPU is available.
    pub fn auto_channel_batches() -> usize {
        if std::thread::available_parallelism().map_or(1, |n| n.get()) > 1 {
            AnalyzeOpts::default().channel_batches
        } else {
            0
        }
    }

    /// The effective ladder: requested sizes plus the mandatory 4K/8K
    /// pair, ascending and deduplicated. Public because the replay
    /// service's trace cache compares request ladders against cached
    /// ones in exactly this normalized form.
    pub fn normalized_ladder(&self) -> Vec<PageSize> {
        let mut ladder = self.ladder.clone();
        ladder.push(PageSize::K4);
        ladder.push(PageSize::K8);
        ladder.sort_unstable_by_key(|ps| ps.shift());
        ladder.dedup();
        ladder
    }
}

/// Everything the experiments need for one workload: trace, sessions
/// (zero-hit filtered, as in the paper), and per-session counting
/// variables at every ladder page size.
#[derive(Debug)]
pub struct WorkloadResults {
    /// Compiled builds, trace, and base timing.
    pub prepared: Prepared,
    /// Sessions with at least one monitor hit, aligned with the counts
    /// vectors.
    pub sessions: Vec<Session>,
    /// Counting variables at 4 KiB pages.
    pub counts4: Vec<Counts>,
    /// Counting variables at 8 KiB pages.
    pub counts8: Vec<Counts>,
    /// The page-size ladder, ascending (always contains 4K and 8K).
    pub ladder: Vec<PageSize>,
    /// Counting variables per ladder size (`[k][s]` = `ladder[k]`,
    /// session `s`); `counts4`/`counts8` are the 4K/8K rows of this.
    pub ladder_counts: Vec<Vec<Counts>>,
    /// Number of enumerated sessions before zero-hit filtering.
    pub candidates: usize,
}

impl WorkloadResults {
    /// Surviving sessions per kind (Table 1's columns).
    pub fn kind_counts(&self) -> BTreeMap<SessionKind, usize> {
        let mut m = BTreeMap::new();
        for k in SessionKind::ALL {
            m.insert(k, 0usize);
        }
        for s in &self.sessions {
            *m.get_mut(&s.kind()).expect("all kinds pre-inserted") += 1;
        }
        m
    }

    /// Base execution time in milliseconds (Table 1's last column).
    pub fn base_ms(&self) -> f64 {
        self.prepared.base_us / 1000.0
    }
}

/// Runs phase 1 and phase 2 for one workload with default options
/// (materialized trace, 4K/8K ladder).
///
/// # Panics
///
/// Panics if the workload fails to run (covered by workload tests).
pub fn analyze(workload: &Workload) -> WorkloadResults {
    analyze_opts(workload, &AnalyzeOpts::default())
}

/// Runs phase 1 and phase 2 for one workload under `opts`.
///
/// # Panics
///
/// Panics if the workload fails to run (covered by workload tests).
pub fn analyze_opts(workload: &Workload, opts: &AnalyzeOpts) -> WorkloadResults {
    let _span = databp_telemetry::time!("harness.analyze");
    let ladder = opts.normalized_ladder();
    let (prepared, all, candidates, per_size) = if opts.stream {
        analyze_streamed(workload, opts, &ladder)
    } else {
        analyze_materialized(workload, &ladder)
    };
    finish_results(prepared, all, candidates, per_size, ladder)
}

/// Re-runs phase 2 only, against the materialized trace already inside
/// `prepared`, at a possibly different page-size ladder. No workload is
/// compiled or traced and no `harness.analyze` span is recorded — this
/// is the replay service's cache-hit path for a ladder the cached
/// results don't cover yet (one fresh trace walk, zero phase-1 work).
///
/// For the same trace and ladder the results are byte-identical to
/// [`analyze_opts`] (the materialized and streamed paths already are,
/// by test).
///
/// # Panics
///
/// Panics if `prepared.trace` is empty — the caller cached a trace-less
/// build, which is a bug.
pub fn reanalyze(prepared: &Prepared, ladder: &[PageSize]) -> WorkloadResults {
    let _span = databp_telemetry::time!("harness.reanalyze");
    assert!(
        !prepared.trace.is_empty(),
        "reanalyze needs a materialized trace (workload {})",
        prepared.workload.name
    );
    let ladder = AnalyzeOpts {
        ladder: ladder.to_vec(),
        ..AnalyzeOpts::default()
    }
    .normalized_ladder();
    let (all, candidates, set) = {
        let _t = databp_telemetry::time!("harness.sessions");
        let all = enumerate_sessions(&prepared.plain.debug, &prepared.trace);
        let candidates = all.len();
        let set = SessionSet::new(all.clone(), &prepared.plain.debug, &prepared.trace);
        (all, candidates, set)
    };
    let per_size = simulate_sizes(&prepared.trace, &set, &ladder);
    finish_results(prepared.clone(), all, candidates, per_size, ladder)
}

/// The shared tail of every analysis path: zero-hit session filtering
/// and the 4K/8K row extraction.
fn finish_results(
    prepared: Prepared,
    all: Vec<Session>,
    candidates: usize,
    per_size: Vec<Vec<Counts>>,
    ladder: Vec<PageSize>,
) -> WorkloadResults {
    // "Monitor sessions that had no monitor hits were discarded under the
    // assumption that they are unlikely candidates during debugging."
    // Hits are page-size-independent, so filtering on any row is
    // filtering on all of them.
    let keep: Vec<usize> = (0..all.len()).filter(|&i| per_size[0][i].hit > 0).collect();
    let sessions: Vec<Session> = keep.iter().map(|&i| all[i]).collect();
    let ladder_counts: Vec<Vec<Counts>> = per_size
        .iter()
        .map(|row| keep.iter().map(|&i| row[i]).collect())
        .collect();
    let p4 = ladder
        .iter()
        .position(|&ps| ps == PageSize::K4)
        .expect("4K is always in the ladder");
    let p8 = ladder
        .iter()
        .position(|&ps| ps == PageSize::K8)
        .expect("8K is always in the ladder");
    WorkloadResults {
        prepared,
        sessions,
        counts4: ladder_counts[p4].clone(),
        counts8: ladder_counts[p8].clone(),
        ladder,
        ladder_counts,
        candidates,
    }
}

/// The classic two-phase path: trace fully materialized, then replayed.
fn analyze_materialized(
    workload: &Workload,
    ladder: &[PageSize],
) -> (Prepared, Vec<Session>, usize, Vec<Vec<Counts>>) {
    let prepared = {
        let _t = databp_telemetry::time!("harness.prepare");
        databp_workloads::prepare(workload)
            .unwrap_or_else(|e| panic!("workload {} failed: {e}", workload.name))
    };
    let (all, candidates, set) = {
        let _t = databp_telemetry::time!("harness.sessions");
        let all = enumerate_sessions(&prepared.plain.debug, &prepared.trace);
        let candidates = all.len();
        let set = SessionSet::new(all.clone(), &prepared.plain.debug, &prepared.trace);
        (all, candidates, set)
    };
    let per_size = simulate_sizes(&prepared.trace, &set, ladder);
    (prepared, all, candidates, per_size)
}

/// An [`EventSink`] that replays each full batch *inline*, on the
/// tracing thread itself. This is the single-threaded streaming mode
/// (`channel_batches == 0`): the trace is still never materialized on
/// the hot path, but there is no channel and no consumer thread — the
/// right shape on a one-core host, where a second thread only turns
/// overlap into context switching.
struct InlineReplaySink {
    replay: StreamingReplay<StreamSessionSet>,
    batch: Vec<Event>,
    capacity: usize,
    tee: Option<Trace>,
}

impl InlineReplaySink {
    fn flush(&mut self) {
        if self.batch.is_empty() {
            return;
        }
        databp_telemetry::count!("pipeline.batches");
        databp_telemetry::count!("pipeline.events.streamed", self.batch.len() as u64);
        // Depth is identically zero inline — the batch is consumed the
        // moment it fills — but sampling it keeps the snapshot schema
        // the same in both streaming modes.
        databp_telemetry::observe!("pipeline.channel.depth", &[1, 2, 4, 8, 16, 32, 64], 0);
        self.replay.feed(&self.batch);
        self.batch.clear();
    }
}

impl EventSink for InlineReplaySink {
    fn emit(&mut self, ev: Event) {
        if let Some(t) = &mut self.tee {
            t.push(ev);
        }
        self.batch.push(ev);
        if self.batch.len() >= self.capacity {
            self.flush();
        }
    }
}

/// The streaming path: the traced run produces event batches that are
/// replayed as they fill — through a bounded channel to a consumer
/// thread (`channel_batches >= 1`), or inline on the tracing thread
/// (`channel_batches == 0`) — discovering heap sessions online either
/// way. Results are canonicalized to match the materialized path
/// exactly.
fn analyze_streamed(
    workload: &Workload,
    opts: &AnalyzeOpts,
    ladder: &[PageSize],
) -> (Prepared, Vec<Session>, usize, Vec<Vec<Counts>>) {
    let plain = compile_plain(workload);
    let membership = StreamSessionSet::new(&plain.debug);

    let (mut prepared, tee, set, per_size_discovered) = if opts.channel_batches == 0 {
        // Inline mode. Neither side of the channel exists, so neither
        // side ever waits; count the zeros so the backpressure counters
        // are present (and truthful) in every streaming snapshot.
        databp_telemetry::count!("pipeline.backpressure.producer_waits", 0);
        databp_telemetry::count!("pipeline.backpressure.consumer_waits", 0);
        let capacity = opts.batch_events.max(1);
        let sink = InlineReplaySink {
            replay: StreamingReplay::new(membership, ladder),
            batch: Vec::with_capacity(capacity),
            capacity,
            tee: opts.keep_trace.then(Trace::new),
        };
        let (prepared, mut sink) = {
            // Here `harness.prepare` covers the fused phase-1 + phase-2
            // work — replay happens inside the traced run.
            let _t = databp_telemetry::time!("harness.prepare");
            run_traced(workload, plain, sink)
                .unwrap_or_else(|e| panic!("workload {} failed: {e}", workload.name))
        };
        sink.flush();
        let (set, counts) = sink.replay.finish();
        (prepared, sink.tee, set, counts)
    } else {
        let (tx, rx) = batch_channel(opts.channel_batches);
        let sink = StreamSink::new(tx, opts.batch_events.max(1), opts.keep_trace);
        std::thread::scope(|s| {
            let producer = s.spawn(move || {
                // The producer half of the `harness.prepare` work: the
                // traced machine run. Closing the sink here (not on the
                // consumer side) flushes the tail batch and ends the
                // stream even if the consumer is slow.
                let _t = databp_telemetry::time!("harness.prepare");
                let (prepared, sink) = run_traced(workload, plain, sink)
                    .unwrap_or_else(|e| panic!("workload {} failed: {e}", workload.name));
                let tee = sink.close();
                (prepared, tee)
            });
            let mut replay = StreamingReplay::new(membership, ladder);
            while let Some(batch) = rx.recv() {
                replay.feed(batch.events());
                rx.recycle(batch);
            }
            let (set, counts) = replay.finish();
            let (prepared, tee) = match producer.join() {
                Ok(r) => r,
                Err(panic) => std::panic::resume_unwind(panic),
            };
            (prepared, tee, set, counts)
        })
    };
    prepared.trace = tee.unwrap_or_default();
    let (all, candidates, per_size) = {
        let _t = databp_telemetry::time!("harness.sessions");
        let (all, perm) = set.into_canonical();
        let candidates = all.len();
        // Re-index per-session counts from discovery order to the
        // canonical enumeration order.
        let per_size: Vec<Vec<Counts>> = per_size_discovered
            .iter()
            .map(|row| {
                let mut out = vec![Counts::default(); row.len()];
                for (i, c) in row.iter().enumerate() {
                    out[perm[i] as usize] = *c;
                }
                out
            })
            .collect();
        (all, candidates, per_size)
    };
    (prepared, all, candidates, per_size)
}

/// Default worker count for [`analyze_all`]: one thread per available
/// core, capped by the workload count inside [`analyze_all_jobs`].
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Runs the pipeline for all five workloads at the given scale, using
/// [`default_jobs`] worker threads.
pub fn analyze_all(scale: Scale) -> Vec<WorkloadResults> {
    analyze_all_jobs(scale, default_jobs())
}

/// Runs the pipeline for all five workloads at the given scale across
/// up to `jobs` worker threads.
pub fn analyze_all_jobs(scale: Scale, jobs: usize) -> Vec<WorkloadResults> {
    analyze_all_opts(scale, jobs, &AnalyzeOpts::default())
}

/// Runs the pipeline for all five workloads at the given scale across
/// up to `jobs` worker threads, each workload under `opts`.
///
/// Workloads are claimed from a shared queue, but results are returned
/// in [`Workload::all()`] order regardless of which thread finishes
/// when — downstream tables and CSVs are byte-identical to a
/// sequential (`jobs == 1`) run, and to a run with different `opts.stream`.
///
/// # Panics
///
/// Panics if any workload fails to run (propagated from [`analyze`]).
pub fn analyze_all_opts(scale: Scale, jobs: usize, opts: &AnalyzeOpts) -> Vec<WorkloadResults> {
    // Wall-clock over the whole fan-out; individual `harness.analyze`
    // spans sum per-workload time across threads, this one shows what
    // the user actually waits.
    let _span = databp_telemetry::time!("harness.analyze_all");
    let workloads: Vec<Workload> = Workload::all()
        .into_iter()
        .map(|w| match scale {
            Scale::Full => w,
            Scale::Small => w.scaled_down(),
        })
        .collect();
    let jobs = jobs.clamp(1, workloads.len());
    if jobs == 1 {
        return workloads.iter().map(|w| analyze_opts(w, opts)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<WorkloadResults>>> =
        workloads.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(w) = workloads.get(i) else {
                    break;
                };
                let r = analyze_opts(w, opts);
                *slots[i].lock().expect("result slot lock") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("no worker panicked")
                .expect("every workload slot filled")
        })
        .collect()
}

/// Per-session relative overheads for one approach — the population each
/// Table 4 cell and each figure summarizes.
pub fn overheads_for(res: &WorkloadResults, approach: Approach) -> Vec<f64> {
    let timing = databp_models::TimingVars::default();
    let counts = if approach == Approach::Vm8k {
        &res.counts8
    } else {
        &res.counts4
    };
    counts
        .iter()
        .map(|c| overhead(approach, c, &timing).relative(res.prepared.base_us))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(name: &str) -> WorkloadResults {
        analyze(&Workload::by_name(name).unwrap().scaled_down())
    }

    #[test]
    fn zero_hit_sessions_filtered() {
        let r = small("cc");
        assert!(
            r.sessions.len() < r.candidates,
            "some candidates never get written"
        );
        assert!(r.counts4.iter().all(|c| c.hit > 0));
        assert_eq!(r.sessions.len(), r.counts4.len());
        assert_eq!(r.sessions.len(), r.counts8.len());
    }

    #[test]
    fn tex_and_qcd_have_no_heap_sessions() {
        for name in ["tex", "qcd"] {
            let r = small(name);
            let kc = r.kind_counts();
            assert_eq!(kc[&SessionKind::OneHeap], 0, "{name}");
            assert_eq!(kc[&SessionKind::AllHeapInFunc], 0, "{name}");
            assert!(kc[&SessionKind::OneLocalAuto] > 0, "{name}");
        }
    }

    #[test]
    fn overhead_populations_are_positive_and_ordered() {
        let r = small("cc");
        let tp = overheads_for(&r, Approach::Tp);
        let cp = overheads_for(&r, Approach::Cp);
        assert_eq!(tp.len(), r.sessions.len());
        for (t, c) in tp.iter().zip(&cp) {
            assert!(t > c, "TP must dominate CP per session");
            assert!(*c > 0.0);
        }
    }

    #[test]
    fn vm8k_uses_8k_counts() {
        let r = small("tex");
        let v4 = overheads_for(&r, Approach::Vm4k);
        let v8 = overheads_for(&r, Approach::Vm8k);
        // 8K pages can only see equal-or-more active-page misses.
        let mean4: f64 = v4.iter().sum::<f64>() / v4.len() as f64;
        let mean8: f64 = v8.iter().sum::<f64>() / v8.len() as f64;
        assert!(mean8 >= mean4 * 0.999, "mean4={mean4} mean8={mean8}");
    }

    #[test]
    fn default_ladder_rows_match_counts_fields() {
        let r = small("qcd");
        assert_eq!(r.ladder, vec![PageSize::K4, PageSize::K8]);
        assert_eq!(r.ladder_counts[0], r.counts4);
        assert_eq!(r.ladder_counts[1], r.counts8);
    }

    #[test]
    fn reanalyze_matches_analyze_at_same_and_wider_ladders() {
        let w = Workload::by_name("tex").unwrap().scaled_down();
        let base = analyze(&w);
        // Same ladder: identical counts, sessions, and candidate totals.
        let again = reanalyze(&base.prepared, &base.ladder);
        assert_eq!(again.sessions, base.sessions);
        assert_eq!(again.candidates, base.candidates);
        assert_eq!(again.ladder_counts, base.ladder_counts);
        // Wider ladder: the 4K/8K rows still match a direct analysis.
        let wide = reanalyze(&base.prepared, &[PageSize::K16]);
        assert_eq!(wide.ladder, vec![PageSize::K4, PageSize::K8, PageSize::K16]);
        assert_eq!(wide.counts4, base.counts4);
        assert_eq!(wide.counts8, base.counts8);
        let direct = analyze_opts(
            &w,
            &AnalyzeOpts {
                ladder: vec![PageSize::K16],
                ..AnalyzeOpts::default()
            },
        );
        assert_eq!(wide.ladder_counts, direct.ladder_counts);
    }

    #[test]
    fn ladder_always_includes_the_modeled_pair() {
        let opts = AnalyzeOpts {
            ladder: vec![PageSize::K16],
            ..AnalyzeOpts::default()
        };
        assert_eq!(
            opts.normalized_ladder(),
            vec![PageSize::K4, PageSize::K8, PageSize::K16]
        );
    }
}
