//! Static write-safety check elision, measured by executing CodePatch
//! plain, with the Section 9 loop optimization, and with the
//! `databp-analysis` static pass — and *verified* by the replay oracle.
//!
//! The paper stops at the loop optimization sketch; modern
//! instrumentation systems (Whamm, non-intrusive Wasm instrumentation)
//! go further and specialize probes from a static analysis of the
//! program. This table reports what that buys on the paper's workloads:
//! per workload × session, how many stores each variant actually checks
//! and the modeled relative overhead. Every staticopt run is
//! cross-checked: the elided store set is replayed against the full
//! trace for *all* enumerated sessions, and any elided store that
//! overlaps a live monitor aborts the harness.

use crate::pipeline::WorkloadResults;
use crate::render::{fmt_pct, fmt_rel, TextTable};
use databp_analysis::{analyze_writes, WriteSafety};
use databp_core::{CodePatch, MonitorPlan, NoMonitors};
use databp_machine::Machine;
use databp_sessions::{SessionPlan, SessionSet};
use databp_sim::verify_elided_stores;
use databp_tinyc::lower;
use std::sync::Arc;

/// One measured comparison row.
#[derive(Debug, Clone)]
pub struct StaticOptRow {
    /// Workload name.
    pub workload: String,
    /// Session description (or "(no monitors)").
    pub session: String,
    /// Plain CodePatch relative overhead.
    pub cp: f64,
    /// CodePatch + Section 9 loop optimization relative overhead.
    pub cp_loopopt: f64,
    /// CodePatch + static write-safety elision relative overhead.
    pub cp_staticopt: f64,
    /// Dynamic stores checked by plain CodePatch (every traced write).
    pub checked_cp: u64,
    /// Dynamic stores checked with the loop optimization.
    pub checked_loopopt: u64,
    /// Dynamic stores checked with static elision + SSA hoisting.
    pub checked_staticopt: u64,
    /// Dynamic store checks elided by the static pass.
    pub elided: u64,
    /// Dynamic store checks skipped by a dominating preheader guard
    /// (SSA hoist groups).
    pub hoisted: u64,
    /// Notifications (identical across all three variants — soundness).
    pub notifications: u64,
}

impl StaticOptRow {
    /// Fraction of plain-CP checks the optimized variant never pays:
    /// statically elided plus dominator-hoisted, over every traced
    /// write.
    pub fn elision_rate(&self) -> f64 {
        if self.checked_cp == 0 {
            0.0
        } else {
            (self.elided + self.hoisted) as f64 / self.checked_cp as f64
        }
    }
}

/// Which CodePatch variant to run.
#[derive(Debug, Clone, Copy)]
enum Variant {
    Plain,
    LoopOpt,
    StaticOpt,
}

fn run_cp(
    r: &WorkloadResults,
    plan: &dyn MonitorPlan,
    variant: Variant,
    safety: &Arc<WriteSafety>,
) -> databp_core::StrategyReport {
    let build = match variant {
        Variant::LoopOpt => r.prepared.codepatch_loopopt(),
        // The static variant runs the SSA build: its preheader guards
        // carry the dominator-hoisting groups the plan exploits.
        Variant::StaticOpt => r.prepared.codepatch_ssa(),
        Variant::Plain => r.prepared.codepatch(),
    };
    let mut m = Machine::new();
    m.load(&build.program);
    m.set_args(r.prepared.workload.args.clone());
    let strat = match variant {
        Variant::Plain => CodePatch::default(),
        Variant::LoopOpt => CodePatch::with_loopopt(),
        Variant::StaticOpt => CodePatch::with_staticopt(Arc::clone(safety)),
    };
    strat
        .run(
            &mut m,
            &build.debug,
            plan,
            r.prepared.workload.max_steps * 2,
        )
        .expect("CodePatch run failed")
}

/// Replays the workload trace and asserts that every store the static
/// pass elides for any enumerated session never overlapped that
/// session's live monitors.
///
/// # Panics
///
/// Panics with the oracle's [`databp_sim::ElisionViolation`] if any
/// elision was unsound — a wrong classification is a hard failure, not a
/// silently wrong table.
fn verify_soundness(r: &WorkloadResults, plain_safety: &WriteSafety) {
    let debug = &r.prepared.plain.debug;
    let set = SessionSet::new(r.sessions.clone(), debug, &r.prepared.trace);
    let elided: Vec<Vec<u32>> = set
        .sessions()
        .iter()
        .map(|&s| plain_safety.elided_store_pcs(SessionPlan::new(s, debug).plan_class()))
        .collect();
    if let Err(v) = verify_elided_stores(&r.prepared.trace, &set, &elided) {
        panic!(
            "write-safety soundness violation in workload {}: {v}",
            r.prepared.workload.name
        );
    }
}

/// Measures CP vs CP+loopopt vs CP+staticopt for one workload: the
/// no-monitor case plus the `samples` highest-hit sessions. Runs the
/// replay soundness oracle over every enumerated session first.
pub fn measure(r: &WorkloadResults, samples: usize) -> Vec<StaticOptRow> {
    let hir = lower(r.prepared.workload.source).expect("workload compiles");
    // The same sites in the same order across builds: the plain build's
    // analysis feeds the trace-pc oracle, the SSA build's feeds the
    // strategy (its chk pcs account for the inserted preheader guards).
    let plain_safety = analyze_writes(&hir, &r.prepared.plain.debug);
    let ssa_safety = Arc::new(analyze_writes(&hir, &r.prepared.codepatch_ssa().debug));
    verify_soundness(r, &plain_safety);

    let mut rows = Vec::new();
    let mut push_row = |plan: &dyn MonitorPlan, session: String| {
        let base = run_cp(r, plan, Variant::Plain, &ssa_safety);
        let lopt = run_cp(r, plan, Variant::LoopOpt, &ssa_safety);
        let sopt = run_cp(r, plan, Variant::StaticOpt, &ssa_safety);
        assert_eq!(
            base.notification_count, sopt.notification_count,
            "static elision must not lose notifications for {session}"
        );
        // The address sequences must agree too (pcs differ across
        // builds; the monitored writes do not) — this dynamically
        // validates every hoist group the run exercised.
        assert_eq!(
            base.notifications
                .iter()
                .map(|n| (n.ba, n.ea))
                .collect::<Vec<_>>(),
            sopt.notifications
                .iter()
                .map(|n| (n.ba, n.ea))
                .collect::<Vec<_>>(),
            "static elision must notify the same writes for {session}"
        );
        assert_eq!(
            base.notification_count, lopt.notification_count,
            "loop optimization must not lose notifications for {session}"
        );
        // Corpus-level effectiveness counters: each traced store counts
        // once (the plain-CP run), against what the optimized variant
        // removed. `repro perf` derives `cp.elision_rate` from these —
        // the `cp.stores_*` counters also absorb the comparison's
        // baseline runs, which by construction elide nothing.
        let reg = databp_telemetry::global();
        reg.counter("staticopt.stores_base")
            .add_always(base.counts.writes());
        reg.counter("staticopt.stores_elided")
            .add_always(sopt.elided_lookups);
        reg.counter("staticopt.stores_hoisted")
            .add_always(sopt.hoisted_lookups);
        rows.push(StaticOptRow {
            workload: r.prepared.workload.name.to_string(),
            session,
            cp: base.relative_overhead(),
            cp_loopopt: lopt.relative_overhead(),
            cp_staticopt: sopt.relative_overhead(),
            checked_cp: base.counts.writes(),
            checked_loopopt: lopt.counts.writes() - lopt.skipped_lookups,
            checked_staticopt: sopt.counts.writes() - sopt.elided_lookups - sopt.hoisted_lookups,
            elided: sopt.elided_lookups,
            hoisted: sopt.hoisted_lookups,
            notifications: sopt.notification_count,
        });
    };

    push_row(&NoMonitors, "(no monitors)".to_string());
    let mut order: Vec<usize> = (0..r.sessions.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(r.counts4[i].hit));
    for &i in order.iter().take(samples) {
        let session = r.sessions[i];
        let plan = SessionPlan::new(session, &r.prepared.plain.debug);
        push_row(&plan, session.describe(&r.prepared.plain.debug));
    }
    rows
}

/// Sessions sampled per workload in the staticopt comparison (the
/// no-monitor row is always included on top of these).
pub const SESSION_SAMPLES: usize = 2;

/// The static write-safety table over all workloads.
pub fn staticopt_table(results: &[WorkloadResults], samples: usize) -> TextTable {
    let _span = databp_telemetry::time!("harness.staticopt");
    let mut t = TextTable::new(
        "Static write-safety elision: checked stores and modeled overhead (executed + verified)",
        &[
            "Program",
            "Session",
            "CP",
            "CP+loopopt",
            "CP+staticopt",
            "checked CP",
            "checked +loopopt",
            "checked +staticopt",
            "elided",
            "hoisted",
            "rate",
            "saved",
        ],
    );
    let (mut tot_cp, mut tot_lopt, mut tot_sopt) = (0u64, 0u64, 0u64);
    let (mut tot_elided, mut tot_hoisted) = (0u64, 0u64);
    for r in results {
        for row in measure(r, samples) {
            let saved = if row.cp > 0.0 {
                1.0 - row.cp_staticopt / row.cp
            } else {
                0.0
            };
            tot_cp += row.checked_cp;
            tot_lopt += row.checked_loopopt;
            tot_sopt += row.checked_staticopt;
            tot_elided += row.elided;
            tot_hoisted += row.hoisted;
            t.row(vec![
                row.workload.clone(),
                row.session.clone(),
                fmt_rel(row.cp),
                fmt_rel(row.cp_loopopt),
                fmt_rel(row.cp_staticopt),
                row.checked_cp.to_string(),
                row.checked_loopopt.to_string(),
                row.checked_staticopt.to_string(),
                row.elided.to_string(),
                row.hoisted.to_string(),
                fmt_pct(row.elision_rate()),
                fmt_pct(saved),
            ]);
        }
    }
    let tot_rate = if tot_cp == 0 {
        0.0
    } else {
        (tot_elided + tot_hoisted) as f64 / tot_cp as f64
    };
    t.row(vec![
        "TOTAL".to_string(),
        String::new(),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
        tot_cp.to_string(),
        tot_lopt.to_string(),
        tot_sopt.to_string(),
        tot_elided.to_string(),
        tot_hoisted.to_string(),
        fmt_pct(tot_rate),
        "-".to_string(),
    ]);
    t
}

/// The staticopt table at the standard sample depth — the single entry
/// point the `repro` binary uses, so every surface reports the same
/// comparison.
pub fn staticopt_report(results: &[WorkloadResults]) -> TextTable {
    staticopt_table(results, SESSION_SAMPLES)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::analyze;
    use databp_workloads::Workload;

    #[test]
    fn staticopt_elides_checks_and_preserves_notifications() {
        let r = analyze(&Workload::by_name("qcd").unwrap().scaled_down());
        let rows = measure(&r, 2);
        assert_eq!(rows.len(), 3);
        // With no monitors every provably-regioned store is elided; the
        // variant must check strictly fewer stores than plain CP.
        let none = &rows[0];
        assert!(none.elided > 0, "nothing elided: {none:?}");
        assert!(
            none.checked_staticopt < none.checked_cp,
            "no reduction: {none:?}"
        );
        assert!(none.cp_staticopt < none.cp, "no improvement: {none:?}");
        // Monitored sessions: identical notifications (asserted inside
        // measure), never more expensive than plain CP.
        for row in &rows[1..] {
            assert!(
                row.cp_staticopt <= row.cp * 1.05,
                "staticopt should not cost more: {row:?}"
            );
            assert!(row.checked_staticopt <= row.checked_cp);
        }
    }

    #[test]
    fn oracle_catches_deliberately_unsound_elision() {
        // Regression guard for the verification plumbing itself: feed
        // the oracle an elision list that is wrong by construction (all
        // store pcs elided for every session) and demand it objects.
        let r = analyze(&Workload::by_name("cc").unwrap().scaled_down());
        let debug = &r.prepared.plain.debug;
        let all_pcs: Vec<u32> = debug.store_sites.iter().map(|s| s.pc).collect();
        let set = SessionSet::new(r.sessions.clone(), debug, &r.prepared.trace);
        let elided: Vec<Vec<u32>> = set.sessions().iter().map(|_| all_pcs.clone()).collect();
        let err = verify_elided_stores(&r.prepared.trace, &set, &elided);
        assert!(
            err.is_err(),
            "eliding every store for every session must be flagged"
        );
    }
}
