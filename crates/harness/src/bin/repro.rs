//! `repro` — regenerates every table and figure of *Efficient Data
//! Breakpoints* (Wahbe, ASPLOS 1992) from the substituted workloads.
//!
//! ```text
//! usage: repro [--small] [--csv DIR] <command>
//!
//! commands:
//!   all          every experiment, in paper order
//!   table1       session counts and base execution times
//!   table2       timing variables (paper + host-measured)
//!   table3       mean counting variables
//!   table4       relative overhead statistics
//!   fig7         maximum relative overhead (chart + values)
//!   fig8         90th-percentile relative overhead
//!   fig9         10–90% trimmed-mean relative overhead
//!   breakdown    Section 8 time-spent breakdown
//!   expansion    Section 8 CodePatch code expansion
//!   loopopt      Section 9 loop-check optimization (executes CodePatch)
//!   dyncp        Section 3.3 dynamic-patching hybrid (executes CodePatch)
//!   nhcoverage   watch-register coverage analysis
//!   verify       run the DESIGN.md fidelity checklist (exit 1 on failure)
//!   sessions W   list surviving sessions of workload W
//!   dist W A     histogram of per-session overheads for workload W under
//!                approach A (nh, vm4k, vm8k, tp, cp)
//!   trace W F    run workload W and save its phase-1 trace to file F
//!                (binary when F ends in .bin, text otherwise)
//!
//! options:
//!   --small      run scaled-down workloads (fast; for smoke tests)
//!   --csv DIR    also write each table as CSV into DIR
//! ```

use databp_harness::figures::{figure, figure_ascii, Figure};
use databp_harness::overheads_for;
use databp_harness::render::TextTable;
use databp_harness::{analyze, analyze_all, Scale};
use databp_harness::{breakdown, dyncp, expansion, loopopt, nhcoverage, tables};
use databp_workloads::Workload;
use std::path::PathBuf;
use std::process::ExitCode;

struct Opts {
    scale: Scale,
    csv_dir: Option<PathBuf>,
}

fn emit(opts: &Opts, slug: &str, table: &TextTable) {
    println!("{}", table.render());
    if let Some(dir) = &opts.csv_dir {
        std::fs::create_dir_all(dir).expect("create csv dir");
        let path = dir.join(format!("{slug}.csv"));
        std::fs::write(&path, table.render_csv()).expect("write csv");
        println!("(csv written to {})\n", path.display());
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1).collect::<Vec<_>>();
    let mut opts = Opts { scale: Scale::Full, csv_dir: None };
    if let Some(pos) = args.iter().position(|a| a == "--small") {
        args.remove(pos);
        opts.scale = Scale::Small;
    }
    if let Some(pos) = args.iter().position(|a| a == "--csv") {
        args.remove(pos);
        if pos >= args.len() {
            eprintln!("--csv needs a directory");
            return ExitCode::FAILURE;
        }
        opts.csv_dir = Some(PathBuf::from(args.remove(pos)));
    }
    let Some(cmd) = args.first().map(String::as_str) else {
        eprintln!("usage: repro [--small] [--csv DIR] <command>; see source header");
        return ExitCode::FAILURE;
    };

    match cmd {
        "table2" => {
            // No workload runs needed.
            emit(&opts, "table2", &tables::table2());
            return ExitCode::SUCCESS;
        }
        "dist" => {
            let (Some(name), Some(approach)) = (args.get(1), args.get(2)) else {
                eprintln!("usage: repro dist <workload> <nh|vm4k|vm8k|tp|cp>");
                return ExitCode::FAILURE;
            };
            let approach = match approach.as_str() {
                "nh" => databp_models::Approach::Nh,
                "vm4k" => databp_models::Approach::Vm4k,
                "vm8k" => databp_models::Approach::Vm8k,
                "tp" => databp_models::Approach::Tp,
                "cp" => databp_models::Approach::Cp,
                other => {
                    eprintln!("unknown approach '{other}'");
                    return ExitCode::FAILURE;
                }
            };
            let Some(w) = Workload::by_name(name) else {
                eprintln!("unknown workload '{name}'");
                return ExitCode::FAILURE;
            };
            let w = match opts.scale {
                Scale::Full => w,
                Scale::Small => w.scaled_down(),
            };
            let r = analyze(&w);
            let ovs = overheads_for(&r, approach);
            let h = databp_stats::Histogram::from_samples(&ovs, 16);
            println!(
                "{name} under {approach}: {} sessions, relative overhead distribution",
                ovs.len()
            );
            print!("{}", h.render_ascii(48));
            let s = databp_stats::Summary::from_samples(&ovs);
            println!(
                "min={:.2} t-mean={:.2} mean={:.2} p90={:.2} p98={:.2} max={:.2}",
                s.min, s.t_mean, s.mean, s.p90, s.p98, s.max
            );
            return ExitCode::SUCCESS;
        }
        "trace" => {
            let (Some(name), Some(path)) = (args.get(1), args.get(2)) else {
                eprintln!("usage: repro trace <workload> <file>");
                return ExitCode::FAILURE;
            };
            let Some(w) = Workload::by_name(name) else {
                eprintln!("unknown workload '{name}'");
                return ExitCode::FAILURE;
            };
            let w = match opts.scale {
                Scale::Full => w,
                Scale::Small => w.scaled_down(),
            };
            let p = databp_workloads::prepare(&w).expect("workload runs");
            let mut buf = Vec::new();
            if path.ends_with(".bin") {
                databp_trace::write_binary(&p.trace, &mut buf).expect("encode");
            } else {
                databp_trace::write_text(&p.trace, &mut buf).expect("encode");
            }
            std::fs::write(path, &buf).expect("write trace file");
            let st = p.trace.stats();
            println!(
                "{}: {} events ({} writes, {} installs) -> {} ({} bytes)",
                name,
                p.trace.len(),
                st.writes,
                st.installs,
                path,
                buf.len()
            );
            return ExitCode::SUCCESS;
        }
        "sessions" => {
            let Some(name) = args.get(1) else {
                eprintln!("usage: repro sessions <workload>");
                return ExitCode::FAILURE;
            };
            let Some(w) = Workload::by_name(name) else {
                eprintln!("unknown workload '{name}' (cc, tex, spice, qcd, bps)");
                return ExitCode::FAILURE;
            };
            let w = match opts.scale {
                Scale::Full => w,
                Scale::Small => w.scaled_down(),
            };
            let r = analyze(&w);
            println!(
                "{}: {} candidate sessions, {} with hits",
                name,
                r.candidates,
                r.sessions.len()
            );
            for (i, s) in r.sessions.iter().enumerate() {
                println!(
                    "  [{i:4}] {:+30} hits={:8} misses={:9}  {}",
                    s.to_string(),
                    r.counts4[i].hit,
                    r.counts4[i].miss,
                    s.describe(&r.prepared.plain.debug)
                );
            }
            return ExitCode::SUCCESS;
        }
        _ => {}
    }

    eprintln!(
        "running {} workloads (this regenerates the paper's traces)...",
        match opts.scale {
            Scale::Full => "full-scale",
            Scale::Small => "scaled-down",
        }
    );
    let results = analyze_all(opts.scale);
    eprintln!("workloads done.\n");

    let run_figures = |opts: &Opts, fig: Figure, slug: &str| {
        println!("{}", figure_ascii(&results, fig, 48));
        emit(opts, slug, &figure(&results, fig));
    };

    match cmd {
        "all" => {
            emit(&opts, "table1", &tables::table1(&results));
            emit(&opts, "table2", &tables::table2());
            emit(&opts, "table3", &tables::table3(&results));
            emit(&opts, "table4", &tables::table4(&results));
            run_figures(&opts, Figure::Max, "fig7");
            run_figures(&opts, Figure::P90, "fig8");
            run_figures(&opts, Figure::TMean, "fig9");
            emit(&opts, "breakdown", &breakdown::breakdown_table(&results));
            emit(&opts, "expansion", &expansion::expansion_table(&results));
            emit(&opts, "nhcoverage", &nhcoverage::coverage_table(&results));
            emit(&opts, "loopopt", &loopopt::loopopt_table(&results, 3));
            emit(&opts, "dyncp", &dyncp::dyncp_table(&results));
        }
        "table1" => emit(&opts, "table1", &tables::table1(&results)),
        "table3" => emit(&opts, "table3", &tables::table3(&results)),
        "table4" => emit(&opts, "table4", &tables::table4(&results)),
        "fig7" => run_figures(&opts, Figure::Max, "fig7"),
        "fig8" => run_figures(&opts, Figure::P90, "fig8"),
        "fig9" => run_figures(&opts, Figure::TMean, "fig9"),
        "breakdown" => emit(&opts, "breakdown", &breakdown::breakdown_table(&results)),
        "expansion" => emit(&opts, "expansion", &expansion::expansion_table(&results)),
        "nhcoverage" => emit(&opts, "nhcoverage", &nhcoverage::coverage_table(&results)),
        "loopopt" => emit(&opts, "loopopt", &loopopt::loopopt_table(&results, 3)),
        "dyncp" => emit(&opts, "dyncp", &dyncp::dyncp_table(&results)),
        "verify" => {
            let checks = databp_harness::verify::verify(&results);
            let (text, all) = databp_harness::verify::render(&checks);
            println!("{text}");
            if !all {
                return ExitCode::FAILURE;
            }
        }
        other => {
            eprintln!("unknown command '{other}'");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
