//! Figures 7–9: per-program, per-approach relative-overhead charts.
//!
//! The paper plots grouped bars (log-scaled by eye); we render the same
//! series as an aligned value table plus a log-scale ASCII bar chart, and
//! export CSV for external plotting.

use crate::pipeline::{overheads_for, WorkloadResults};
use crate::render::TextTable;
use databp_models::Approach;
use databp_stats::Summary;

/// Which figure to render.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Figure {
    /// Figure 7: maximum relative overhead over all sessions.
    Max,
    /// Figure 8: 90th-percentile relative overhead.
    P90,
    /// Figure 9: mean of sessions between the 10th and 90th percentiles.
    TMean,
}

impl Figure {
    /// The paper's caption.
    pub fn title(self) -> &'static str {
        match self {
            Figure::Max => "Figure 7: maximum relative overhead over all monitor sessions",
            Figure::P90 => "Figure 8: 90th percentile relative overhead",
            Figure::TMean => {
                "Figure 9: mean relative overhead, sessions between 10th and 90th percentiles"
            }
        }
    }

    fn statistic(self, s: &Summary) -> f64 {
        match self {
            Figure::Max => s.max,
            Figure::P90 => s.p90,
            Figure::TMean => s.t_mean,
        }
    }
}

/// The figure's data series: `(program, [value per approach])` in
/// [`Approach::ALL`] order.
pub fn figure_series(results: &[WorkloadResults], fig: Figure) -> Vec<(String, Vec<f64>)> {
    results
        .iter()
        .map(|r| {
            let vals = Approach::ALL
                .iter()
                .map(|&a| fig.statistic(&Summary::from_samples(&overheads_for(r, a))))
                .collect();
            (r.prepared.workload.name.to_string(), vals)
        })
        .collect()
}

/// Renders the figure as a value table.
pub fn figure(results: &[WorkloadResults], fig: Figure) -> TextTable {
    let _span = databp_telemetry::time!("harness.figures");
    let mut t = TextTable::new(
        fig.title(),
        &["Program", "NH", "VM-4K", "VM-8K", "TP", "CP"],
    );
    for (name, vals) in figure_series(results, fig) {
        let mut row = vec![name];
        row.extend(vals.iter().map(|v| crate::render::fmt_rel(*v)));
        t.row(row);
    }
    t
}

/// Renders the figure as a log-scale ASCII bar chart (bars scaled to
/// `width` characters at the series maximum).
pub fn figure_ascii(results: &[WorkloadResults], fig: Figure, width: usize) -> String {
    let series = figure_series(results, fig);
    let maxv = series
        .iter()
        .flat_map(|(_, v)| v.iter().copied())
        .fold(0.0_f64, f64::max)
        .max(1e-9);
    let log_max = (1.0 + maxv).ln();
    let mut out = String::new();
    out.push_str(fig.title());
    out.push('\n');
    for (name, vals) in &series {
        out.push_str(&format!("{name}\n"));
        for (a, v) in Approach::ALL.iter().zip(vals) {
            let bar = if log_max > 0.0 {
                (((1.0 + v).ln() / log_max) * width as f64).round() as usize
            } else {
                0
            };
            out.push_str(&format!(
                "  {:>5} {:>10.2} |{}\n",
                a.abbrev(),
                v,
                "#".repeat(bar)
            ));
        }
    }
    out.push_str("(bar length is log-scaled)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::analyze;
    use databp_workloads::Workload;

    fn res() -> Vec<WorkloadResults> {
        vec![analyze(&Workload::by_name("qcd").unwrap().scaled_down())]
    }

    #[test]
    fn series_has_five_approaches_per_program() {
        let r = res();
        for fig in [Figure::Max, Figure::P90, Figure::TMean] {
            let s = figure_series(&r, fig);
            assert_eq!(s.len(), 1);
            assert_eq!(s[0].1.len(), 5);
        }
    }

    #[test]
    fn tmean_below_max_for_every_approach() {
        let r = res();
        let maxs = &figure_series(&r, Figure::Max)[0].1;
        let tmeans = &figure_series(&r, Figure::TMean)[0].1;
        for (m, t) in maxs.iter().zip(tmeans) {
            assert!(t <= m, "t-mean {t} above max {m}");
        }
    }

    #[test]
    fn ascii_chart_renders_bars() {
        let r = res();
        let chart = figure_ascii(&r, Figure::Max, 40);
        assert!(chart.contains("qcd"));
        assert!(chart.contains('#'));
        assert!(chart.contains("log-scaled"));
    }

    #[test]
    fn figure_table_renders() {
        let r = res();
        let t = figure(&r, Figure::P90);
        assert!(t.render().contains("Figure 8"));
    }
}
