//! `repro verify`: the DESIGN.md §5 fidelity targets as an executable
//! checklist.
//!
//! Runs the full pipeline and asserts the paper's *qualitative* findings
//! hold on the substituted workloads. This is the same set of claims the
//! workspace-level `paper_shape` tests pin down, but runnable at full
//! scale from the CLI and reported as a PASS/FAIL table.

use crate::expansion::expansion_row;
use crate::pipeline::{overheads_for, WorkloadResults};
use databp_models::Approach;
use databp_sessions::SessionKind;
use databp_stats::Summary;

/// One fidelity check's outcome.
#[derive(Debug, Clone)]
pub struct Check {
    /// Short name of the claim.
    pub name: String,
    /// Whether it held.
    pub passed: bool,
    /// Supporting numbers.
    pub detail: String,
}

fn check(name: &str, passed: bool, detail: String) -> Check {
    Check {
        name: name.to_string(),
        passed,
        detail,
    }
}

fn summary(r: &WorkloadResults, a: Approach) -> Summary {
    Summary::from_samples(&overheads_for(r, a))
}

/// Runs every fidelity check against analyzed workloads.
pub fn verify(results: &[WorkloadResults]) -> Vec<Check> {
    let mut out = Vec::new();

    for r in results {
        let name = r.prepared.workload.name;
        let cp = summary(r, Approach::Cp);
        let tp = summary(r, Approach::Tp);
        let nh = summary(r, Approach::Nh);
        let vm = summary(r, Approach::Vm4k);
        let vm8 = summary(r, Approach::Vm8k);

        out.push(check(
            &format!("{name}: CP t-mean ≪ TP t-mean (>10x)"),
            cp.t_mean * 10.0 < tp.t_mean,
            format!("CP {:.2} vs TP {:.2}", cp.t_mean, tp.t_mean),
        ));
        out.push(check(
            &format!("{name}: TP unacceptably slow (t-mean > 20x)"),
            tp.t_mean > 20.0,
            format!("TP t-mean {:.2}", tp.t_mean),
        ));
        out.push(check(
            &format!("{name}: CP max beats NH max (Figure 7)"),
            cp.max < nh.max,
            format!("CP {:.2} vs NH {:.2}", cp.max, nh.max),
        ));
        out.push(check(
            &format!("{name}: CP low variance (max < 10x t-mean)"),
            cp.max < cp.t_mean * 10.0,
            format!("max {:.2}, t-mean {:.2}", cp.max, cp.t_mean),
        ));
        out.push(check(
            &format!("{name}: TP low variance (max < 1.5x t-mean)"),
            tp.max < tp.t_mean * 1.5,
            format!("max {:.2}, t-mean {:.2}", tp.max, tp.t_mean),
        ));
        out.push(check(
            &format!("{name}: VM catastrophic worst case (max > 10x CP max)"),
            vm.max > cp.max * 10.0,
            format!("VM max {:.2} vs CP max {:.2}", vm.max, cp.max),
        ));
        out.push(check(
            &format!("{name}: VM-8K mean ≥ VM-4K mean"),
            vm8.mean >= vm.mean * 0.999,
            format!("8K {:.2} vs 4K {:.2}", vm8.mean, vm.mean),
        ));
        let (est, _) = expansion_row(r);
        out.push(check(
            &format!("{name}: CP expansion in band (5–30%)"),
            est > 0.05 && est < 0.30,
            format!("estimated {:.1}%", est * 100.0),
        ));
    }

    // Table 1 structural facts.
    for name in ["tex", "qcd"] {
        if let Some(r) = results.iter().find(|r| r.prepared.workload.name == name) {
            let kc = r.kind_counts();
            out.push(check(
                &format!("{name}: zero heap sessions (CTEX/QCD analogue)"),
                kc[&SessionKind::OneHeap] == 0 && kc[&SessionKind::AllHeapInFunc] == 0,
                format!(
                    "OneHeap {}, AllHeapInFunc {}",
                    kc[&SessionKind::OneHeap],
                    kc[&SessionKind::AllHeapInFunc]
                ),
            ));
        }
    }
    for name in ["cc", "bps"] {
        if let Some(r) = results.iter().find(|r| r.prepared.workload.name == name) {
            let kc = r.kind_counts();
            out.push(check(
                &format!("{name}: heap sessions dominate (BPS/GCC analogue)"),
                kc[&SessionKind::OneHeap] > 100,
                format!("OneHeap {}", kc[&SessionKind::OneHeap]),
            ));
            // NH/VM t-means collapse on session-rich programs.
            let nh = summary(r, Approach::Nh);
            out.push(check(
                &format!("{name}: NH t-mean near zero on session-rich program"),
                nh.t_mean < 1.0,
                format!("NH t-mean {:.3}", nh.t_mean),
            ));
        }
    }

    out
}

/// Renders the checklist; returns `(text, all_passed)`.
pub fn render(checks: &[Check]) -> (String, bool) {
    let mut out = String::new();
    let mut all = true;
    for c in checks {
        let mark = if c.passed { "PASS" } else { "FAIL" };
        all &= c.passed;
        out.push_str(&format!("[{mark}] {:<58} {}\n", c.name, c.detail));
    }
    let (npass, ntotal) = (checks.iter().filter(|c| c.passed).count(), checks.len());
    out.push_str(&format!("\n{npass}/{ntotal} fidelity checks passed\n"));
    (out, all)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{analyze_all, Scale};

    #[test]
    fn all_checks_pass_at_small_scale() {
        let results = analyze_all(Scale::Small);
        let checks = verify(&results);
        assert!(
            checks.len() > 30,
            "substantial checklist, got {}",
            checks.len()
        );
        let (text, all) = render(&checks);
        assert!(all, "failing fidelity checks:\n{text}");
        assert!(text.contains("PASS"));
    }
}
