//! Section 3.3's dynamic-patching hybrid, measured: static CodePatch vs.
//! nop-padding patched on demand.
//!
//! "Which approach one employs depends on the language being monitored
//! and the performance penalty of executing unused monitor code." This
//! experiment quantifies both sides: the *idle* cost (no monitors ever
//! installed — the price a user pays for merely running under a
//! watchpoint-capable debugger) and the *armed* cost (a typical session,
//! where the hybrid converges to static CodePatch plus one patch sweep).

use crate::pipeline::WorkloadResults;
use crate::render::{fmt_pct, fmt_rel, TextTable};
use databp_core::{CodePatch, DynamicCodePatch, MonitorPlan, NoMonitors};
use databp_machine::Machine;
use databp_sessions::SessionPlan;

/// One measured comparison.
#[derive(Debug, Clone)]
pub struct DynCpRow {
    /// Workload name.
    pub workload: String,
    /// Session description (or "(no monitors)").
    pub session: String,
    /// Static CodePatch relative overhead.
    pub cp: f64,
    /// Dynamic-patching relative overhead.
    pub dyn_cp: f64,
    /// Pad patch/unpatch sweeps performed by the dynamic run.
    pub patch_events: u64,
}

fn run_static(r: &WorkloadResults, plan: &dyn MonitorPlan) -> f64 {
    let cp = r.prepared.codepatch();
    let mut m = Machine::new();
    m.load(&cp.program);
    m.set_args(r.prepared.workload.args.clone());
    CodePatch::default()
        .run(&mut m, &cp.debug, plan, r.prepared.workload.max_steps * 2)
        .expect("CodePatch run")
        .relative_overhead()
}

fn run_dynamic(r: &WorkloadResults, plan: &dyn MonitorPlan) -> (f64, u64, u64) {
    let padded = r.prepared.nop_padded();
    let mut m = Machine::new();
    m.load(&padded.program);
    m.set_args(r.prepared.workload.args.clone());
    let rep = DynamicCodePatch::default()
        .run(
            &mut m,
            &padded.debug,
            plan,
            r.prepared.workload.max_steps * 2,
        )
        .expect("DynamicCodePatch run");
    (rep.relative_overhead(), rep.patch_events, rep.counts.hit)
}

/// Measures the hybrid for one workload: idle plus the busiest session.
pub fn measure(r: &WorkloadResults) -> Vec<DynCpRow> {
    let mut rows = Vec::new();
    let (dyn_idle, patches, _) = run_dynamic(r, &NoMonitors);
    rows.push(DynCpRow {
        workload: r.prepared.workload.name.to_string(),
        session: "(no monitors)".to_string(),
        cp: run_static(r, &NoMonitors),
        dyn_cp: dyn_idle,
        patch_events: patches,
    });
    if let Some((i, _)) = r.counts4.iter().enumerate().max_by_key(|(_, c)| c.hit) {
        let session = r.sessions[i];
        let plan = SessionPlan::new(session, &r.prepared.plain.debug);
        let cp = run_static(r, &plan);
        let (dyn_cp, patch_events, hits) = run_dynamic(r, &plan);
        assert_eq!(
            hits, r.counts4[i].hit,
            "dynamic patching must not lose hits"
        );
        rows.push(DynCpRow {
            workload: r.prepared.workload.name.to_string(),
            session: session.describe(&r.prepared.plain.debug),
            cp,
            dyn_cp,
            patch_events,
        });
    }
    rows
}

/// The dynamic-patching table over all workloads.
pub fn dyncp_table(results: &[WorkloadResults]) -> TextTable {
    let _span = databp_telemetry::time!("harness.dyncp");
    let mut t = TextTable::new(
        "Section 3.3 hybrid: static CodePatch vs dynamic nop-patching (executed)",
        &["Program", "Session", "CP", "DynCP", "saved", "patch sweeps"],
    );
    for r in results {
        for row in measure(r) {
            let saved = if row.cp > 0.0 {
                1.0 - row.dyn_cp / row.cp
            } else {
                0.0
            };
            t.row(vec![
                row.workload,
                row.session,
                fmt_rel(row.cp),
                fmt_rel(row.dyn_cp),
                fmt_pct(saved),
                row.patch_events.to_string(),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::analyze;
    use databp_workloads::Workload;

    #[test]
    fn idle_hybrid_is_free_and_armed_hybrid_matches_cp() {
        let r = analyze(&Workload::by_name("tex").unwrap().scaled_down());
        let rows = measure(&r);
        assert_eq!(rows.len(), 2);
        let idle = &rows[0];
        assert_eq!(idle.dyn_cp, 0.0, "idle hybrid charges nothing: {idle:?}");
        assert!(idle.cp > 1.0, "static CP pays while idle: {idle:?}");
        assert_eq!(idle.patch_events, 0);
        let armed = &rows[1];
        // Once armed the hybrid costs at most ~CP plus the patch sweep.
        assert!(
            armed.dyn_cp <= armed.cp * 1.10 + 0.5,
            "armed hybrid should track CP: {armed:?}"
        );
        assert!(armed.patch_events >= 1);
    }
}
