//! Instrument semantics: counters, gauges, histograms, spans, registry
//! get-or-create behavior, reset, and the enable gate.

use databp_telemetry::{global, set_enabled, Counter, Registry};
use std::sync::Mutex;

/// Tests that flip the process-wide enable flag serialize on this lock
/// (integration tests in one binary run multi-threaded).
static FLAG_LOCK: Mutex<()> = Mutex::new(());

fn with_enabled<R>(f: impl FnOnce() -> R) -> R {
    let _g = FLAG_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    set_enabled(true);
    let r = f();
    set_enabled(false);
    r
}

#[test]
fn counter_counts_and_resets() {
    let reg = Registry::new();
    let c = reg.counter("test.counter");
    c.inc_always();
    c.add_always(4);
    assert_eq!(c.get(), 5);
    // Same name returns the same underlying instrument.
    assert_eq!(reg.counter("test.counter").get(), 5);
    reg.reset();
    assert_eq!(c.get(), 0);
}

#[test]
fn gauge_goes_up_and_down() {
    let reg = Registry::new();
    let g = reg.gauge("test.gauge");
    g.add_always(10);
    g.add_always(-3);
    assert_eq!(g.get(), 7);
    reg.reset();
    assert_eq!(g.get(), 0);
}

#[test]
fn histogram_buckets_values_by_upper_bound() {
    let reg = Registry::new();
    let h = reg.histogram("test.hist", &[1, 4, 16]);
    for v in [0, 1, 2, 4, 5, 100] {
        h.record_always(v);
    }
    assert_eq!(h.count(), 6);
    assert_eq!(h.sum(), 112);
    let buckets = h.buckets();
    // le=1 gets {0,1}; le=4 gets {2,4}; le=16 gets {5}; +inf gets {100}.
    assert_eq!(buckets[0], (Some(1), 2));
    assert_eq!(buckets[1], (Some(4), 2));
    assert_eq!(buckets[2], (Some(16), 1));
    assert_eq!(buckets[3], (None, 1));
}

#[test]
fn span_accumulates_count_and_time() {
    let reg = Registry::new();
    let s = reg.span("test.span");
    s.record_ns(120);
    s.record_ns(80);
    assert_eq!(s.count(), 2);
    assert_eq!(s.total_ns(), 200);
    with_enabled(|| {
        let guard = s.start();
        std::hint::black_box(17u64 * 3);
        drop(guard);
    });
    assert_eq!(s.count(), 3);
    assert!(s.total_ns() >= 200);
}

#[test]
fn disabled_gated_ops_record_nothing() {
    // The default state is disabled; gated operations are no-ops.
    let reg = Registry::new();
    let _g = FLAG_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    set_enabled(false);
    let c = reg.counter("test.gated.counter");
    let g = reg.gauge("test.gated.gauge");
    let h = reg.histogram("test.gated.hist", &[10]);
    let s = reg.span("test.gated.span");
    c.inc();
    c.add(100);
    g.add(5);
    g.set(9);
    h.record(3);
    drop(s.start());
    assert_eq!(c.get(), 0);
    assert_eq!(g.get(), 0);
    assert_eq!(h.count(), 0);
    assert_eq!(s.count(), 0);
}

#[test]
fn enabled_gated_ops_record() {
    let reg = Registry::new();
    let c = reg.counter("test.enabled.counter");
    let h = reg.histogram("test.enabled.hist", &[10]);
    with_enabled(|| {
        c.inc();
        c.add(2);
        h.record(7);
    });
    assert_eq!(c.get(), 3);
    assert_eq!(h.count(), 1);
    assert_eq!(h.sum(), 7);
}

#[test]
fn snapshot_is_sorted_and_complete() {
    let reg = Registry::new();
    reg.counter("zeta").add_always(1);
    reg.counter("alpha").add_always(2);
    reg.gauge("mid").add_always(-4);
    reg.histogram("h", &[2]).record_always(1);
    reg.span("s").record_ns(10);
    let snap = reg.snapshot();
    let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(names, ["alpha", "zeta"]);
    assert_eq!(snap.counter("alpha"), Some(2));
    assert_eq!(snap.gauge("mid"), Some(-4));
    assert_eq!(snap.histogram("h").expect("h").count, 1);
    assert_eq!(snap.span("s").expect("s").total_ns, 10);
    assert_eq!(snap.counter("missing"), None);
}

#[test]
fn macros_register_in_global_registry() {
    with_enabled(|| {
        databp_telemetry::count!("test.macro.counter");
        databp_telemetry::count!("test.macro.counter", 9);
        databp_telemetry::gauge_add!("test.macro.gauge", -2);
        databp_telemetry::observe!("test.macro.hist", &[8, 64], 5);
        {
            let _t = databp_telemetry::time!("test.macro.span");
            std::hint::black_box(1 + 1);
        }
    });
    let snap = global().snapshot();
    assert_eq!(snap.counter("test.macro.counter"), Some(10));
    assert_eq!(snap.gauge("test.macro.gauge"), Some(-2));
    assert_eq!(snap.histogram("test.macro.hist").expect("hist").count, 1);
    let span = snap.span("test.macro.span").expect("span");
    assert_eq!(span.count, 1);
}

#[test]
fn clones_share_state() {
    let a = Counter::detached();
    let b = a.clone();
    a.inc_always();
    b.inc_always();
    assert_eq!(a.get(), 2);
    let c = Counter::detached_with(40);
    assert_eq!(c.get(), 40);
}
