//! Pins the disabled-mode overhead policy: with the global flag off,
//! gated hot-path operations record nothing and perform **zero heap
//! allocations**. Lives in its own test binary because it installs a
//! counting global allocator.

use databp_telemetry::{global, set_enabled};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn disabled_hot_path_records_nothing_and_never_allocates() {
    set_enabled(false);

    // Handle registration may allocate — do it up front.
    let counter = global().counter("noalloc.counter");
    let gauge = global().gauge("noalloc.gauge");
    let hist = global().histogram("noalloc.hist", &[1, 8, 64]);
    let span = global().span("noalloc.span");

    let before = ALLOCS.load(Ordering::SeqCst);
    for i in 0..10_000u64 {
        counter.inc();
        counter.add(i);
        gauge.add(1);
        hist.record(i);
        drop(span.start());
        // The macro forms gate before touching their OnceLock handles.
        databp_telemetry::count!("noalloc.macro.counter");
        databp_telemetry::observe!("noalloc.macro.hist", &[4], i);
        let _t = databp_telemetry::time!("noalloc.macro.span");
    }
    let after = ALLOCS.load(Ordering::SeqCst);

    assert_eq!(after - before, 0, "disabled hot path must not allocate");
    assert_eq!(counter.get(), 0);
    assert_eq!(gauge.get(), 0);
    assert_eq!(hist.count(), 0);
    assert_eq!(span.count(), 0);

    // The disabled macros must not even have registered their names.
    let snap = global().snapshot();
    assert_eq!(snap.counter("noalloc.macro.counter"), None);
    assert!(snap.histogram("noalloc.macro.hist").is_none());
    assert!(snap.span("noalloc.macro.span").is_none());
}
