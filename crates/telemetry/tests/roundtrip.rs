//! Exporter round-trips: JSON and CSV output must parse back into an
//! identical [`Snapshot`]. Also sanity-checks the text exporter and the
//! parsers' error paths.

use databp_telemetry::{Registry, Snapshot};

fn sample_snapshot() -> Snapshot {
    let reg = Registry::new();
    reg.counter("machine.instructions.retired")
        .add_always(1234567);
    reg.counter("wms.lookups").add_always(42);
    reg.gauge("wms.monitors.active").add_always(-3);
    let h = reg.histogram("wms.pagemap.probe_depth", &[1, 2, 4, 8]);
    for v in [1, 1, 2, 3, 9, 40] {
        h.record_always(v);
    }
    let s = reg.span("harness.table4");
    s.record_ns(1_500_000);
    s.record_ns(2_500_000);
    let mut snap = reg.snapshot();
    snap.push_derived("events_per_sec", 123456.789);
    snap.push_derived("instructions_per_sec", 9.875e8);
    snap
}

#[test]
fn json_round_trips() {
    let snap = sample_snapshot();
    let json = snap.to_json();
    let back = Snapshot::from_json(&json).expect("parse back");
    assert_eq!(snap, back);
}

#[test]
fn csv_round_trips() {
    let snap = sample_snapshot();
    let csv = snap.to_csv();
    let back = Snapshot::from_csv(&csv).expect("parse back");
    assert_eq!(snap, back);
}

#[test]
fn empty_snapshot_round_trips() {
    let snap = Snapshot::default();
    assert_eq!(Snapshot::from_json(&snap.to_json()).expect("json"), snap);
    assert_eq!(Snapshot::from_csv(&snap.to_csv()).expect("csv"), snap);
}

#[test]
fn large_u64_counters_survive_json() {
    // Values beyond f64's 2^53 integer precision must not be mangled.
    let reg = Registry::new();
    reg.counter("big").add_always(u64::MAX - 1);
    let snap = reg.snapshot();
    let back = Snapshot::from_json(&snap.to_json()).expect("parse");
    assert_eq!(back.counter("big"), Some(u64::MAX - 1));
}

#[test]
fn json_escapes_are_handled() {
    let parsed = Snapshot::from_json("{\"counters\": {\"weird\\\"name\\n\": 7}, \"gauges\": {}}")
        .expect("parse");
    assert_eq!(parsed.counter("weird\"name\n"), Some(7));
}

#[test]
fn text_exporter_mentions_every_section() {
    let text = sample_snapshot().to_text();
    assert!(text.contains("counters:"));
    assert!(text.contains("machine.instructions.retired"));
    assert!(text.contains("gauges:"));
    assert!(text.contains("histograms:"));
    assert!(text.contains("le +inf"));
    assert!(text.contains("spans:"));
    assert!(text.contains("harness.table4"));
    assert!(text.contains("derived:"));
}

#[test]
fn malformed_inputs_error_cleanly() {
    assert!(Snapshot::from_json("{").is_err());
    assert!(Snapshot::from_json("{\"counters\": [1]}").is_err());
    assert!(Snapshot::from_json("{\"counters\": {\"x\": -1}}").is_err());
    assert!(Snapshot::from_json("{\"bogus\": {}}").is_err());
    assert!(Snapshot::from_csv("kind,name,field,value\nbogus,x,value,1").is_err());
    assert!(Snapshot::from_csv("kind,name,field,value\ncounter,x,value,notanum").is_err());
}

#[test]
fn non_finite_derived_values_are_dropped() {
    let mut snap = Snapshot::default();
    snap.push_derived("ok", 1.5);
    snap.push_derived("bad", f64::INFINITY);
    snap.push_derived("worse", f64::NAN);
    assert_eq!(snap.derived.len(), 1);
}
