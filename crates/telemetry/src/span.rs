//! Scoped wall-time spans: a [`Span`] accumulates invocation count and
//! total nanoseconds; [`Span::start`] returns a guard that records on
//! drop. When telemetry is disabled the guard is inert and the clock is
//! never read.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

#[derive(Debug, Default)]
struct SpanCore {
    count: AtomicU64,
    total_ns: AtomicU64,
}

/// A named wall-time accumulator.
#[derive(Debug, Clone, Default)]
pub struct Span(Arc<SpanCore>);

impl Span {
    pub fn detached() -> Self {
        Span::default()
    }

    /// Begin a timed region; the returned guard records its elapsed
    /// wall time into this span when dropped. If telemetry is disabled
    /// at start, the guard is inert (no clock read, nothing recorded).
    pub fn start(&self) -> SpanGuard {
        SpanGuard {
            span: self.clone(),
            start: if crate::enabled() {
                Some(Instant::now())
            } else {
                None
            },
        }
    }

    /// Record an externally measured duration.
    pub fn record_ns(&self, ns: u64) {
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.total_ns.fetch_add(ns, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    pub fn total_ns(&self) -> u64 {
        self.0.total_ns.load(Ordering::Relaxed)
    }

    pub(crate) fn reset(&self) {
        self.0.count.store(0, Ordering::Relaxed);
        self.0.total_ns.store(0, Ordering::Relaxed);
    }
}

/// RAII guard for a timed region (see [`Span::start`]).
#[derive(Debug)]
pub struct SpanGuard {
    span: Span,
    start: Option<Instant>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(t0) = self.start {
            self.span.record_ns(t0.elapsed().as_nanos() as u64);
        }
    }
}
