//! The instrument registry: `&'static str`-keyed, get-or-create handle
//! lookup behind a mutex. The lock is held only during registration and
//! snapshotting — recording happens lock-free on the returned handles.

use crate::metric::{Counter, Gauge, Histogram};
use crate::snapshot::{BucketSnapshot, HistogramSnapshot, Snapshot, SpanSnapshot};
use crate::span::Span;
use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard};

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<&'static str, Counter>,
    gauges: BTreeMap<&'static str, Gauge>,
    histograms: BTreeMap<&'static str, Histogram>,
    spans: BTreeMap<&'static str, Span>,
}

/// A collection of named instruments. Most code uses the process-wide
/// [`crate::global`] registry; tests can build private ones.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        // Instruments are plain atomics, so a panic mid-update cannot
        // leave them inconsistent; recover from poisoning.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Get or create the counter with this name.
    pub fn counter(&self, name: &'static str) -> Counter {
        self.lock().counters.entry(name).or_default().clone()
    }

    /// Get or create the gauge with this name.
    pub fn gauge(&self, name: &'static str) -> Gauge {
        self.lock().gauges.entry(name).or_default().clone()
    }

    /// Get or create the histogram with this name. `bounds` (strictly
    /// increasing inclusive upper bounds) apply only on first creation.
    pub fn histogram(&self, name: &'static str, bounds: &[u64]) -> Histogram {
        self.lock()
            .histograms
            .entry(name)
            .or_insert_with(|| Histogram::new(bounds))
            .clone()
    }

    /// Get or create the span with this name.
    pub fn span(&self, name: &'static str) -> Span {
        self.lock().spans.entry(name).or_default().clone()
    }

    /// Point-in-time copy of every registered instrument, sorted by
    /// name (deterministic across runs).
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.lock();
        Snapshot {
            counters: inner
                .counters
                .iter()
                .map(|(n, c)| (n.to_string(), c.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(n, g)| (n.to_string(), g.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(n, h)| HistogramSnapshot {
                    name: n.to_string(),
                    count: h.count(),
                    sum: h.sum(),
                    buckets: h
                        .buckets()
                        .into_iter()
                        .map(|(le, count)| BucketSnapshot { le, count })
                        .collect(),
                })
                .collect(),
            spans: inner
                .spans
                .iter()
                .map(|(n, s)| SpanSnapshot {
                    name: n.to_string(),
                    count: s.count(),
                    total_ns: s.total_ns(),
                })
                .collect(),
            derived: Vec::new(),
        }
    }

    /// Zero every instrument's value, keeping registrations (and any
    /// handles instrumented code already holds) valid.
    pub fn reset(&self) {
        let inner = self.lock();
        for c in inner.counters.values() {
            c.reset();
        }
        for g in inner.gauges.values() {
            g.reset();
        }
        for h in inner.histograms.values() {
            h.reset();
        }
        for s in inner.spans.values() {
            s.reset();
        }
    }
}
