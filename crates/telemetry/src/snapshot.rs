//! Point-in-time snapshots and their exporters. Text is for humans;
//! CSV and JSON are machine-readable and parse back losslessly (the
//! round-trip is pinned by tests), which is what lets `results/perf.json`
//! serve as a benchmark trajectory across PRs without any serde
//! dependency.

use std::fmt;

/// One histogram bucket: inclusive upper bound (`None` = `+inf`) and
/// the number of recorded values that landed in it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BucketSnapshot {
    pub le: Option<u64>,
    pub count: u64,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub name: String,
    pub count: u64,
    pub sum: u64,
    pub buckets: Vec<BucketSnapshot>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanSnapshot {
    pub name: String,
    pub count: u64,
    pub total_ns: u64,
}

/// A point-in-time copy of a [`crate::Registry`], plus optional derived
/// rates (e.g. events/sec) attached by the caller before export.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, i64)>,
    pub histograms: Vec<HistogramSnapshot>,
    pub spans: Vec<SpanSnapshot>,
    pub derived: Vec<(String, f64)>,
}

impl Snapshot {
    /// Value of a named counter, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Value of a named gauge, if present.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// A named span snapshot, if present.
    pub fn span(&self, name: &str) -> Option<&SpanSnapshot> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// A named histogram snapshot, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Attach a derived metric. Non-finite values are dropped (they
    /// cannot round-trip through JSON).
    pub fn push_derived(&mut self, name: &str, value: f64) {
        if value.is_finite() {
            self.derived.push((name.to_string(), value));
        }
    }

    // ------------------------------------------------------------------
    // Text
    // ------------------------------------------------------------------

    /// Human-readable report.
    pub fn to_text(&self) -> String {
        let mut out = String::from("== telemetry snapshot ==\n");
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (n, v) in &self.counters {
                out.push_str(&format!("  {n:<44} {v}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (n, v) in &self.gauges {
                out.push_str(&format!("  {n:<44} {v}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for h in &self.histograms {
                out.push_str(&format!(
                    "  {:<44} count={} sum={}\n",
                    h.name, h.count, h.sum
                ));
                for b in &h.buckets {
                    match b.le {
                        Some(le) => out.push_str(&format!("    le {le:<10} {}\n", b.count)),
                        None => out.push_str(&format!("    le +inf      {}\n", b.count)),
                    }
                }
            }
        }
        if !self.spans.is_empty() {
            out.push_str("spans:\n");
            for s in &self.spans {
                out.push_str(&format!(
                    "  {:<44} count={} total={:.3}ms\n",
                    s.name,
                    s.count,
                    s.total_ns as f64 / 1e6
                ));
            }
        }
        if !self.derived.is_empty() {
            out.push_str("derived:\n");
            for (n, v) in &self.derived {
                out.push_str(&format!("  {n:<44} {v:.3}\n"));
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // CSV
    // ------------------------------------------------------------------

    /// `kind,name,field,value` rows (instrument names never contain
    /// commas; they are `&'static str` identifiers chosen in-tree).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("kind,name,field,value\n");
        for (n, v) in &self.counters {
            out.push_str(&format!("counter,{n},value,{v}\n"));
        }
        for (n, v) in &self.gauges {
            out.push_str(&format!("gauge,{n},value,{v}\n"));
        }
        for h in &self.histograms {
            out.push_str(&format!("histogram,{},count,{}\n", h.name, h.count));
            out.push_str(&format!("histogram,{},sum,{}\n", h.name, h.sum));
            for b in &h.buckets {
                match b.le {
                    Some(le) => {
                        out.push_str(&format!("histogram,{},le:{le},{}\n", h.name, b.count))
                    }
                    None => out.push_str(&format!("histogram,{},le:inf,{}\n", h.name, b.count)),
                }
            }
        }
        for s in &self.spans {
            out.push_str(&format!("span,{},count,{}\n", s.name, s.count));
            out.push_str(&format!("span,{},total_ns,{}\n", s.name, s.total_ns));
        }
        for (n, v) in &self.derived {
            out.push_str(&format!("derived,{n},value,{v}\n"));
        }
        out
    }

    /// Parse a snapshot back from [`Snapshot::to_csv`] output.
    pub fn from_csv(text: &str) -> Result<Snapshot, ParseError> {
        let mut snap = Snapshot::default();
        for (i, line) in text.lines().enumerate() {
            if i == 0 || line.is_empty() {
                continue;
            }
            let err = |msg: &str| ParseError::new(format!("csv line {}: {msg}", i + 1));
            let mut parts = line.splitn(4, ',');
            let (kind, name, field, value) =
                match (parts.next(), parts.next(), parts.next(), parts.next()) {
                    (Some(k), Some(n), Some(f), Some(v)) => (k, n, f, v),
                    _ => return Err(err("expected kind,name,field,value")),
                };
            let as_u64 =
                |v: &str| -> Result<u64, ParseError> { v.parse().map_err(|_| err("bad u64")) };
            match (kind, field) {
                ("counter", "value") => snap.counters.push((name.to_string(), as_u64(value)?)),
                ("gauge", "value") => snap
                    .gauges
                    .push((name.to_string(), value.parse().map_err(|_| err("bad i64"))?)),
                ("derived", "value") => snap
                    .derived
                    .push((name.to_string(), value.parse().map_err(|_| err("bad f64"))?)),
                ("histogram", _) => {
                    if snap.histograms.last().map(|h| h.name.as_str()) != Some(name) {
                        snap.histograms.push(HistogramSnapshot {
                            name: name.to_string(),
                            count: 0,
                            sum: 0,
                            buckets: Vec::new(),
                        });
                    }
                    let h = snap.histograms.last_mut().expect("just pushed");
                    match field {
                        "count" => h.count = as_u64(value)?,
                        "sum" => h.sum = as_u64(value)?,
                        _ => {
                            let le = field
                                .strip_prefix("le:")
                                .ok_or_else(|| err("unknown histogram field"))?;
                            let le = if le == "inf" {
                                None
                            } else {
                                Some(le.parse().map_err(|_| err("bad bucket bound"))?)
                            };
                            h.buckets.push(BucketSnapshot {
                                le,
                                count: as_u64(value)?,
                            });
                        }
                    }
                }
                ("span", _) => {
                    if snap.spans.last().map(|s| s.name.as_str()) != Some(name) {
                        snap.spans.push(SpanSnapshot {
                            name: name.to_string(),
                            count: 0,
                            total_ns: 0,
                        });
                    }
                    let s = snap.spans.last_mut().expect("just pushed");
                    match field {
                        "count" => s.count = as_u64(value)?,
                        "total_ns" => s.total_ns = as_u64(value)?,
                        _ => return Err(err("unknown span field")),
                    }
                }
                _ => return Err(err("unknown kind/field")),
            }
        }
        Ok(snap)
    }

    // ------------------------------------------------------------------
    // JSON
    // ------------------------------------------------------------------

    /// JSON object with `counters` / `gauges` / `histograms` / `spans` /
    /// `derived` sections. Histogram buckets are `[le, count]` pairs
    /// with `null` as the `+inf` bound.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        push_json_map(&mut out, &self.counters, |v| v.to_string());
        out.push_str("},\n  \"gauges\": {");
        push_json_map(&mut out, &self.gauges, |v| v.to_string());
        out.push_str("},\n  \"histograms\": {");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {}: {{\"count\": {}, \"sum\": {}, \"buckets\": [",
                json_string(&h.name),
                h.count,
                h.sum
            ));
            for (j, b) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                match b.le {
                    Some(le) => out.push_str(&format!("[{le}, {}]", b.count)),
                    None => out.push_str(&format!("[null, {}]", b.count)),
                }
            }
            out.push_str("]}");
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"spans\": {");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {}: {{\"count\": {}, \"total_ns\": {}}}",
                json_string(&s.name),
                s.count,
                s.total_ns
            ));
        }
        if !self.spans.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"derived\": {");
        push_json_map(&mut out, &self.derived, |v| {
            debug_assert!(v.is_finite());
            format!("{v}")
        });
        out.push_str("}\n}\n");
        out
    }

    /// Parse a snapshot back from [`Snapshot::to_json`] output (accepts
    /// any standard JSON with the same shape).
    pub fn from_json(text: &str) -> Result<Snapshot, ParseError> {
        let value = json::parse(text)?;
        let root = value.as_object("top level")?;
        let mut snap = Snapshot::default();
        for (key, section) in root {
            match key.as_str() {
                "counters" => {
                    for (n, v) in section.as_object("counters")? {
                        snap.counters.push((n.clone(), v.as_u64("counter value")?));
                    }
                }
                "gauges" => {
                    for (n, v) in section.as_object("gauges")? {
                        snap.gauges.push((n.clone(), v.as_i64("gauge value")?));
                    }
                }
                "histograms" => {
                    for (n, v) in section.as_object("histograms")? {
                        let fields = v.as_object("histogram")?;
                        let mut h = HistogramSnapshot {
                            name: n.clone(),
                            count: 0,
                            sum: 0,
                            buckets: Vec::new(),
                        };
                        for (f, fv) in fields {
                            match f.as_str() {
                                "count" => h.count = fv.as_u64("histogram count")?,
                                "sum" => h.sum = fv.as_u64("histogram sum")?,
                                "buckets" => {
                                    for pair in fv.as_array("buckets")? {
                                        let pair = pair.as_array("bucket pair")?;
                                        if pair.len() != 2 {
                                            return Err(ParseError::new(
                                                "bucket pair must have 2 elements",
                                            ));
                                        }
                                        let le = if pair[0].is_null() {
                                            None
                                        } else {
                                            Some(pair[0].as_u64("bucket bound")?)
                                        };
                                        h.buckets.push(BucketSnapshot {
                                            le,
                                            count: pair[1].as_u64("bucket count")?,
                                        });
                                    }
                                }
                                other => {
                                    return Err(ParseError::new(format!(
                                        "unknown histogram field {other:?}"
                                    )))
                                }
                            }
                        }
                        snap.histograms.push(h);
                    }
                }
                "spans" => {
                    for (n, v) in section.as_object("spans")? {
                        let fields = v.as_object("span")?;
                        let mut s = SpanSnapshot {
                            name: n.clone(),
                            count: 0,
                            total_ns: 0,
                        };
                        for (f, fv) in fields {
                            match f.as_str() {
                                "count" => s.count = fv.as_u64("span count")?,
                                "total_ns" => s.total_ns = fv.as_u64("span total_ns")?,
                                other => {
                                    return Err(ParseError::new(format!(
                                        "unknown span field {other:?}"
                                    )))
                                }
                            }
                        }
                        snap.spans.push(s);
                    }
                }
                "derived" => {
                    for (n, v) in section.as_object("derived")? {
                        snap.derived.push((n.clone(), v.as_f64("derived value")?));
                    }
                }
                other => return Err(ParseError::new(format!("unknown section {other:?}"))),
            }
        }
        Ok(snap)
    }
}

fn push_json_map<V: Copy>(out: &mut String, entries: &[(String, V)], fmt: impl Fn(V) -> String) {
    for (i, (n, v)) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n    {}: {}", json_string(n), fmt(*v)));
    }
    if !entries.is_empty() {
        out.push_str("\n  ");
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Error from [`Snapshot::from_json`] / [`Snapshot::from_csv`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    message: String,
}

impl ParseError {
    fn new(message: impl Into<String>) -> Self {
        ParseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "telemetry parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

/// Minimal recursive-descent JSON reader. Numbers keep their raw text
/// so `u64`s round-trip without `f64` precision loss.
mod json {
    use super::ParseError;

    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        Num(String),
        Str(String),
        Arr(Vec<Value>),
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        pub fn is_null(&self) -> bool {
            matches!(self, Value::Null)
        }

        pub fn as_object(&self, what: &str) -> Result<&[(String, Value)], ParseError> {
            match self {
                Value::Obj(entries) => Ok(entries),
                _ => Err(err(format!("{what}: expected object"))),
            }
        }

        pub fn as_array(&self, what: &str) -> Result<&[Value], ParseError> {
            match self {
                Value::Arr(items) => Ok(items),
                _ => Err(err(format!("{what}: expected array"))),
            }
        }

        pub fn as_u64(&self, what: &str) -> Result<u64, ParseError> {
            match self {
                Value::Num(raw) => raw
                    .parse()
                    .map_err(|_| err(format!("{what}: expected u64, got {raw}"))),
                _ => Err(err(format!("{what}: expected number"))),
            }
        }

        pub fn as_i64(&self, what: &str) -> Result<i64, ParseError> {
            match self {
                Value::Num(raw) => raw
                    .parse()
                    .map_err(|_| err(format!("{what}: expected i64, got {raw}"))),
                _ => Err(err(format!("{what}: expected number"))),
            }
        }

        pub fn as_f64(&self, what: &str) -> Result<f64, ParseError> {
            match self {
                Value::Num(raw) => raw
                    .parse()
                    .map_err(|_| err(format!("{what}: expected f64, got {raw}"))),
                _ => Err(err(format!("{what}: expected number"))),
            }
        }
    }

    fn err(message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
        }
    }

    pub fn parse(text: &str) -> Result<Value, ParseError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(err(format!("trailing data at byte {pos}")));
        }
        Ok(value)
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), ParseError> {
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&c) {
            *pos += 1;
            Ok(())
        } else {
            Err(err(format!("expected {:?} at byte {}", c as char, *pos)))
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b'{') => parse_object(bytes, pos),
            Some(b'[') => parse_array(bytes, pos),
            Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
            Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
            Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
            Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
            Some(_) => parse_number(bytes, pos),
            None => Err(err("unexpected end of input")),
        }
    }

    fn parse_keyword(
        bytes: &[u8],
        pos: &mut usize,
        word: &str,
        value: Value,
    ) -> Result<Value, ParseError> {
        if bytes[*pos..].starts_with(word.as_bytes()) {
            *pos += word.len();
            Ok(value)
        } else {
            Err(err(format!("bad keyword at byte {}", *pos)))
        }
    }

    fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
        let start = *pos;
        while *pos < bytes.len()
            && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            *pos += 1;
        }
        if start == *pos {
            return Err(err(format!("expected value at byte {start}")));
        }
        let raw = std::str::from_utf8(&bytes[start..*pos]).expect("ascii");
        raw.parse::<f64>()
            .map_err(|_| err(format!("bad number {raw:?}")))?;
        Ok(Value::Num(raw.to_string()))
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
        expect(bytes, pos, b'"')?;
        let mut out = String::new();
        loop {
            match bytes.get(*pos) {
                None => return Err(err("unterminated string")),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match bytes.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = bytes
                                .get(*pos + 1..*pos + 5)
                                .ok_or_else(|| err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code).ok_or_else(|| err("bad \\u code point"))?,
                            );
                            *pos += 4;
                        }
                        _ => return Err(err("bad escape")),
                    }
                    *pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&bytes[*pos..])
                        .map_err(|_| err("invalid utf-8 in string"))?;
                    let c = rest.chars().next().expect("nonempty");
                    out.push(c);
                    *pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
        expect(bytes, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(parse_value(bytes, pos)?);
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(err(format!("expected ',' or ']' at byte {}", *pos))),
            }
        }
    }

    fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
        expect(bytes, pos, b'{')?;
        let mut entries = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            skip_ws(bytes, pos);
            let key = parse_string(bytes, pos)?;
            expect(bytes, pos, b':')?;
            let value = parse_value(bytes, pos)?;
            entries.push((key, value));
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Obj(entries));
                }
                _ => return Err(err(format!("expected ',' or '}}' at byte {}", *pos))),
            }
        }
    }
}
