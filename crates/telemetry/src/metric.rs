//! Counter, gauge, and histogram instruments. All handles are cheap
//! `Arc` clones over atomics; gated operations check [`crate::enabled`]
//! first, `*_always` variants skip the check (for callers that already
//! checked, or for per-instance bookkeeping that must count regardless
//! of the global flag, e.g. the WMS legacy counters).

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Monotonically increasing `u64`.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not registered anywhere (per-instance bookkeeping).
    pub fn detached() -> Self {
        Counter::default()
    }

    /// A detached counter starting at `v` (used by deep-copy clones).
    pub fn detached_with(v: u64) -> Self {
        Counter(Arc::new(AtomicU64::new(v)))
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Increment regardless of the global enable flag.
    #[inline]
    pub fn inc_always(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add regardless of the global enable flag.
    #[inline]
    pub fn add_always(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    pub(crate) fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Signed up/down value.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    pub fn detached() -> Self {
        Gauge::default()
    }

    #[inline]
    pub fn set(&self, v: i64) {
        if crate::enabled() {
            self.0.store(v, Ordering::Relaxed);
        }
    }

    #[inline]
    pub fn add(&self, delta: i64) {
        if crate::enabled() {
            self.0.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Add regardless of the global enable flag.
    #[inline]
    pub fn add_always(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }

    pub(crate) fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

#[derive(Debug)]
struct HistCore {
    /// Strictly increasing inclusive upper bounds; an implicit `+inf`
    /// bucket follows the last bound.
    bounds: Vec<u64>,
    /// `bounds.len() + 1` buckets.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

/// Fixed-bucket histogram: `bounds` are inclusive upper bounds, plus an
/// implicit `+inf` overflow bucket.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistCore>);

impl Histogram {
    pub(crate) fn new(bounds: &[u64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram(Arc::new(HistCore {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }))
    }

    #[inline]
    pub fn record(&self, v: u64) {
        if crate::enabled() {
            self.record_always(v);
        }
    }

    /// Record regardless of the global enable flag.
    pub fn record_always(&self, v: u64) {
        let c = &self.0;
        let i = c
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(c.bounds.len());
        c.buckets[i].fetch_add(1, Ordering::Relaxed);
        c.count.fetch_add(1, Ordering::Relaxed);
        c.sum.fetch_add(v, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Bucket upper bounds (`None` = the `+inf` overflow bucket) with
    /// their counts, in order.
    pub fn buckets(&self) -> Vec<(Option<u64>, u64)> {
        let c = &self.0;
        c.buckets
            .iter()
            .enumerate()
            .map(|(i, b)| (c.bounds.get(i).copied(), b.load(Ordering::Relaxed)))
            .collect()
    }

    pub(crate) fn reset(&self) {
        for b in &self.0.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.0.count.store(0, Ordering::Relaxed);
        self.0.sum.store(0, Ordering::Relaxed);
    }
}
