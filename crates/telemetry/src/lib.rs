//! `databp-telemetry` — a zero-dependency observability substrate for
//! the databp workspace.
//!
//! The paper's argument ("Efficient Data Breakpoints", Wahbe, ASPLOS
//! 1992) rests entirely on counting and timing variables; this crate
//! gives the reproduction one uniform way to count and time its own hot
//! paths. It provides four instrument kinds —
//!
//! * [`Counter`] — monotonic `u64`;
//! * [`Gauge`] — signed up/down value;
//! * [`Histogram`] — fixed upper-bound buckets plus count and sum;
//! * [`Span`] — scoped wall-time timer (count + total nanoseconds);
//!
//! — registered by `&'static str` name in a [`Registry`], with a process
//! [`global()`] registry, and [`Snapshot`] export to text, CSV, and JSON
//! (the latter two parse back for round-trip tests).
//!
//! # Overhead policy
//!
//! Telemetry is **off by default** and gated by one process-wide flag
//! ([`set_enabled`]). Every gated operation (`Counter::add`,
//! `Histogram::record`, `Span::start`, the `count!`/`observe!`/`time!`
//! macros) starts with a single relaxed atomic load; when the flag is
//! off nothing else happens — no locks, no allocation, no `Instant::now`.
//! The disabled-mode integration test pins this with a counting global
//! allocator. When enabled, hot-path cost is one relaxed `fetch_add`
//! (plus one `OnceLock` load for the macros' cached handles); handle
//! registration is the only operation that takes the registry lock.
//!
//! Handles are cheap `Arc` clones, so instrumented code can cache them
//! in structs, while one-line callsites use the macros:
//!
//! ```
//! databp_telemetry::set_enabled(true);
//! databp_telemetry::count!("doc.example.events");
//! databp_telemetry::count!("doc.example.bytes", 128);
//! databp_telemetry::observe!("doc.example.depth", &[1, 2, 4, 8], 3);
//! {
//!     let _t = databp_telemetry::time!("doc.example.phase");
//!     // ... timed region ...
//! }
//! let snap = databp_telemetry::global().snapshot();
//! assert_eq!(snap.counter("doc.example.events"), Some(1));
//! databp_telemetry::set_enabled(false);
//! ```

mod metric;
mod registry;
mod snapshot;
mod span;

pub use metric::{Counter, Gauge, Histogram};
pub use registry::Registry;
pub use snapshot::{BucketSnapshot, HistogramSnapshot, ParseError, Snapshot, SpanSnapshot};
pub use span::{Span, SpanGuard};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turn recording on or off process-wide. Off by default.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Is recording currently enabled?
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry used by the `count!` / `observe!` /
/// `time!` macros and the cross-crate instrumentation.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

/// Increment a named global counter (by 1 or by an explicit amount).
/// The handle is resolved once per callsite and cached in a `OnceLock`.
#[macro_export]
macro_rules! count {
    ($name:literal) => {
        $crate::count!($name, 1u64)
    };
    ($name:literal, $n:expr) => {{
        if $crate::enabled() {
            static HANDLE: ::std::sync::OnceLock<$crate::Counter> = ::std::sync::OnceLock::new();
            HANDLE
                .get_or_init(|| $crate::global().counter($name))
                .add_always($n as u64);
        }
    }};
}

/// Add a (possibly negative) delta to a named global gauge.
#[macro_export]
macro_rules! gauge_add {
    ($name:literal, $n:expr) => {{
        if $crate::enabled() {
            static HANDLE: ::std::sync::OnceLock<$crate::Gauge> = ::std::sync::OnceLock::new();
            HANDLE
                .get_or_init(|| $crate::global().gauge($name))
                .add_always($n as i64);
        }
    }};
}

/// Record a value into a named global histogram with the given fixed
/// bucket upper bounds (`&[u64]`, strictly increasing).
#[macro_export]
macro_rules! observe {
    ($name:literal, $bounds:expr, $v:expr) => {{
        if $crate::enabled() {
            static HANDLE: ::std::sync::OnceLock<$crate::Histogram> = ::std::sync::OnceLock::new();
            HANDLE
                .get_or_init(|| $crate::global().histogram($name, $bounds))
                .record_always($v as u64);
        }
    }};
}

/// Start a scoped wall-time span; bind the result to keep it alive:
/// `let _t = databp_telemetry::time!("phase.name");`. Evaluates to
/// `Option<SpanGuard>` — `None` (and no clock read) when disabled.
#[macro_export]
macro_rules! time {
    ($name:literal) => {{
        if $crate::enabled() {
            static HANDLE: ::std::sync::OnceLock<$crate::Span> = ::std::sync::OnceLock::new();
            Some(HANDLE.get_or_init(|| $crate::global().span($name)).start())
        } else {
            None
        }
    }};
}
