//! End-to-end pin of the persistent trace store: a server that saved
//! its traces answers the first repeat request after a restart as a
//! pure cache **hit**, with byte-identical bytes and **zero phase-1
//! work** — no `harness.analyze` span is recorded in the restarted
//! process's lifetime.
//!
//! One test function: the telemetry registry is process-global, and the
//! "restart" is modeled as a registry reset between the cold and warm
//! server (integration tests run in their own process, so nothing else
//! writes to the registry).

use databp_server::{CacheStatus, Request, Server, ServerConfig};
use std::path::Path;

fn store_server(dir: &Path) -> Server {
    Server::start(ServerConfig {
        workers: 2,
        queue_depth: 16,
        cache_bytes: 512 << 20,
        stream: true,
        store: Some(dir.to_path_buf()),
    })
}

#[test]
fn restarted_server_serves_repeat_requests_without_phase_1() {
    let dir = std::env::temp_dir().join(format!("databp-warmstart-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Cold server: two workloads miss (phase 1 runs) and persist.
    let cold = store_server(&dir);
    let fib = Request::simple("c1", "fib", databp_harness::Scale::Small);
    let bitwise = Request::simple("c2", "bitwise", databp_harness::Scale::Small);
    let cold_fib = cold.submit(fib.clone()).unwrap().wait();
    let cold_bitwise = cold.submit(bitwise.clone()).unwrap().wait();
    assert_eq!(cold_fib.cache, Some(CacheStatus::Miss));
    assert_eq!(cold_bitwise.cache, Some(CacheStatus::Miss));
    cold.shutdown();
    let entries = std::fs::read_dir(&dir)
        .expect("store dir exists")
        .filter_map(Result::ok)
        .filter(|e| e.file_name().to_string_lossy().ends_with(".dbpt"))
        .count();
    assert_eq!(entries, 2, "both traces persisted");

    // "Restart": fresh registry, fresh server over the same directory.
    databp_telemetry::set_enabled(true);
    databp_telemetry::global().reset();
    let warm = store_server(&dir);
    assert_eq!(warm.stats().cache_entries, 2, "warm start loaded the store");

    let mut again = fib;
    again.id = "w1".to_string();
    let warm_fib = warm.submit(again).unwrap().wait();
    assert_eq!(
        warm_fib.cache,
        Some(CacheStatus::Hit),
        "first repeat request after restart is a pure hit"
    );
    assert_eq!(
        cold_fib.body.as_ref().unwrap().to_json(),
        warm_fib.body.as_ref().unwrap().to_json(),
        "warm answer is byte-identical to the cold one"
    );

    // A wider ladder still needs no phase 1 — only a phase-2 rewalk of
    // the restored trace.
    let mut wide = bitwise;
    wide.id = "w2".to_string();
    wide.page_sizes = vec![databp_machine::PageSize::K16];
    let warm_wide = warm.submit(wide).unwrap().wait();
    assert_eq!(warm_wide.cache, Some(CacheStatus::Rewalk));

    let stats = warm.stats();
    assert_eq!(stats.cache_misses, 0, "no miss after restart");
    warm.shutdown();

    let snap = databp_telemetry::global().snapshot();
    assert!(
        snap.span("harness.analyze").is_none(),
        "phase 1 ran in the restarted process: {:?}",
        snap.span("harness.analyze")
    );
    assert!(
        snap.span("harness.reanalyze").is_some(),
        "warm start rebuilds entries via phase-2 reanalyze"
    );
    assert!(
        snap.counter("trace.store.loads").unwrap_or(0) >= 2,
        "warm start reads the store"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
