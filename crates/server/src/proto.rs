//! Line-delimited JSON protocol over arbitrary byte streams.
//!
//! One request per input line, one response per output line, responses
//! in *input order* regardless of which worker finishes first — the
//! protocol is the ordering boundary, the scheduler underneath is
//! free-running. The driver is generic over `BufRead`/`Write` so the
//! same loop serves `repro serve` on stdin/stdout and the in-process
//! end-to-end tests on byte buffers.
//!
//! Three line forms:
//!
//! * a query object (see [`Request::parse_line`]) → answered with a
//!   result line;
//! * `{"stats": true}` → answered with the service counters, computed
//!   only after every earlier request has been answered, so a trailing
//!   probe observes the whole session;
//! * unparseable input → an immediate `ok: false` line (the service
//!   keeps going; one bad line must not poison a pipe).
//!
//! Responses are written eagerly: as soon as the front of the pending
//! queue is ready it is flushed, so a slow request delays its
//! successors' *output* but not their *processing*.

use std::io::{BufRead, Write};

use crate::request::{Request, RequestLine, Response};
use crate::server::{Server, ServerStats, Ticket};

/// One enqueued output slot, in input order.
enum Pending {
    /// A submitted query waiting on its worker.
    Ticket(Ticket),
    /// An already-final response (parse error, rejection).
    Immediate(Box<Response>),
    /// A stats probe, resolved when it reaches the front.
    Stats,
}

/// Runs the serve loop until `input` is exhausted, writing one response
/// line per request line to `out`. Returns the number of request lines
/// handled.
///
/// # Errors
///
/// Returns any I/O error from `input` or `out` (the service itself
/// never errors the stream — bad requests become `ok: false` lines).
pub fn serve<R: BufRead, W: Write>(
    server: &Server,
    input: R,
    out: &mut W,
) -> std::io::Result<usize> {
    let mut pending: std::collections::VecDeque<Pending> = std::collections::VecDeque::new();
    let mut handled = 0usize;
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        handled += 1;
        let slot = match Request::parse_line(&line) {
            Ok(RequestLine::Stats) => Pending::Stats,
            Ok(RequestLine::Query(req)) => match server.submit(req) {
                Ok(ticket) => Pending::Ticket(ticket),
                Err(req) => {
                    Pending::Immediate(Box::new(Response::failure(&req.id, "rejected: queue full")))
                }
            },
            Err(msg) => Pending::Immediate(Box::new(Response::failure("", msg))),
        };
        pending.push_back(slot);
        drain(server, &mut pending, out, false)?;
    }
    drain(server, &mut pending, out, true)?;
    Ok(handled)
}

/// Writes ready responses from the front of the queue; when `block` is
/// set, waits each slot out until the queue is empty.
fn drain<W: Write>(
    server: &Server,
    pending: &mut std::collections::VecDeque<Pending>,
    out: &mut W,
    block: bool,
) -> std::io::Result<()> {
    while let Some(front) = pending.front() {
        let resp = match front {
            Pending::Immediate(_) => {
                let Some(Pending::Immediate(resp)) = pending.pop_front() else {
                    unreachable!()
                };
                *resp
            }
            Pending::Stats => {
                pending.pop_front();
                stats_response(&server.stats())
            }
            Pending::Ticket(ticket) => {
                let ready = if block {
                    Some(ticket.wait())
                } else {
                    ticket.try_take()
                };
                match ready {
                    Some(resp) => {
                        pending.pop_front();
                        resp
                    }
                    None => return Ok(()), // front still cooking
                }
            }
        };
        writeln!(out, "{}", resp.to_json_line())?;
        out.flush()?;
    }
    Ok(())
}

/// Renders the stats probe answer. Key names match the telemetry
/// counters so `grep server.cache.hits` works on either surface.
fn stats_response(stats: &ServerStats) -> Response {
    use crate::json::Value;
    let mut body = Value::obj();
    body.set("server.requests", Value::u64(stats.requests));
    body.set("server.cache.hits", Value::u64(stats.cache_hits));
    body.set("server.cache.misses", Value::u64(stats.cache_misses));
    body.set("server.cache.rewalks", Value::u64(stats.cache_rewalks));
    body.set("server.cache.bytes", Value::u64(stats.cache_bytes));
    body.set("server.cache.entries", Value::u64(stats.cache_entries));
    body.set("server.queue.rejected", Value::u64(stats.rejected));
    body.set("server.errors", Value::u64(stats.errors));
    Response {
        id: "stats".to_string(),
        ok: true,
        cache: None,
        error: None,
        body: Some(crate::request::raw_body(body)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::server::ServerConfig;
    use std::io::Cursor;

    fn run_lines(server: &Server, lines: &str) -> Vec<String> {
        let mut out = Vec::new();
        serve(server, Cursor::new(lines.as_bytes()), &mut out).unwrap();
        String::from_utf8(out)
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect()
    }

    #[test]
    fn serves_queries_stats_and_garbage_in_input_order() {
        let server = Server::start(ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        });
        let input = "\
{\"id\":\"q1\",\"workload\":\"cc\"}\n\
not json at all\n\
{\"id\":\"q2\",\"workload\":\"cc\"}\n\
{\"stats\":true}\n";
        let out = run_lines(&server, input);
        assert_eq!(out.len(), 4);

        let r1 = json::parse(&out[0]).unwrap();
        assert_eq!(r1.get("id").and_then(|v| v.as_str()), Some("q1"));
        assert_eq!(r1.get("ok").and_then(|v| v.as_bool()), Some(true));

        let bad = json::parse(&out[1]).unwrap();
        assert_eq!(bad.get("ok").and_then(|v| v.as_bool()), Some(false));

        let r2 = json::parse(&out[2]).unwrap();
        assert_eq!(r2.get("id").and_then(|v| v.as_str()), Some("q2"));
        // Exactly one of the duplicates traced and the other hit; with
        // two workers, *which* is which depends on scheduling (the
        // in-flight dedup makes the loser wait and wake to a hit).
        let mut statuses = vec![
            r1.get("cache")
                .and_then(|v| v.as_str())
                .unwrap()
                .to_string(),
            r2.get("cache")
                .and_then(|v| v.as_str())
                .unwrap()
                .to_string(),
        ];
        statuses.sort();
        assert_eq!(statuses, vec!["hit", "miss"]);
        // Byte-identical bodies: hit == miss.
        assert_eq!(
            r1.get("body").unwrap().to_string(),
            r2.get("body").unwrap().to_string()
        );

        // The trailing stats probe sees the whole session.
        let st = json::parse(&out[3]).unwrap();
        let body = st.get("body").unwrap();
        assert_eq!(
            body.get("server.requests").and_then(|v| v.as_u64()),
            Some(2)
        );
        assert_eq!(
            body.get("server.cache.hits").and_then(|v| v.as_u64()),
            Some(1)
        );
        assert_eq!(
            body.get("server.cache.misses").and_then(|v| v.as_u64()),
            Some(1)
        );
        server.shutdown();
    }

    #[test]
    fn blank_lines_are_skipped() {
        let server = Server::start(ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        });
        let out = run_lines(&server, "\n   \n{\"stats\":true}\n\n");
        assert_eq!(out.len(), 1);
        server.shutdown();
    }
}
