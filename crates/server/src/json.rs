//! A minimal JSON value for the line-delimited wire protocol.
//!
//! The workspace deliberately vendors no serde; the telemetry crate
//! already carries a private JSON reader for snapshots, and this module
//! is the protocol's equivalent: an ordered [`Value`] tree with a
//! recursive-descent parser and a compact writer. Two properties
//! matter for the service:
//!
//! * **determinism** — objects keep insertion order and numbers are
//!   written from their stored text, so encoding the same response
//!   twice yields the same bytes (the batch-API byte-identity guarantee
//!   rests on this);
//! * **integer exactness** — numbers are stored as raw text and only
//!   converted on demand, so `u64` counters round-trip without `f64`
//!   precision loss.

use std::fmt;

/// One JSON value. Object member order is preserved.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its literal text (always a valid JSON number).
    Num(String),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; member order is insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// An empty object, ready for [`Value::set`] chaining.
    pub fn obj() -> Value {
        Value::Obj(Vec::new())
    }

    /// A number value from an unsigned integer (exact).
    pub fn u64(v: u64) -> Value {
        Value::Num(v.to_string())
    }

    /// A number value from a float, written in Rust's shortest
    /// round-trip form. Non-finite values become `null` (JSON has no
    /// `NaN`/`inf`).
    pub fn f64(v: f64) -> Value {
        if v.is_finite() {
            Value::Num(format!("{v}"))
        } else {
            Value::Null
        }
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Appends `key: value` to an object.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn set(&mut self, key: &str, value: Value) -> &mut Value {
        match self {
            Value::Obj(entries) => entries.push((key.to_string(), value)),
            other => panic!("set {key:?} on non-object {other:?}"),
        }
        self
    }

    /// Member of an object, if present.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean content, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Unsigned integer content, if this is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// Float content, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// Array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Object members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(entries) => Some(entries),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    /// Compact single-line JSON (the wire format: one value per line).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Num(raw) => f.write_str(raw),
            Value::Str(s) => f.write_str(&quote(s)),
            Value::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Obj(entries) => {
                f.write_str("{")?;
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{}:{v}", quote(k))?;
                }
                f.write_str("}")
            }
        }
    }
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parses one JSON value from `text`, rejecting trailing garbage.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("bad keyword at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    if start == *pos {
        return Err(format!("expected value at byte {start}"));
    }
    let raw = std::str::from_utf8(&bytes[start..*pos]).expect("ascii digits");
    raw.parse::<f64>()
        .map_err(|_| format!("bad number {raw:?}"))?;
    Ok(Value::Num(raw.to_string()))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                        *pos += 4;
                    }
                    _ => return Err("bad escape".to_string()),
                }
                *pos += 1;
            }
            Some(_) => {
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| "invalid utf-8 in string")?;
                let c = rest.chars().next().expect("nonempty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'{')?;
    let mut entries = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(entries));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        entries.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(entries));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compactly() {
        let text = r#"{"id":"r1","n":42,"f":1.5,"ok":true,"none":null,"a":[1,"two",[]]}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.to_string(), text);
        assert_eq!(v.get("id").unwrap().as_str(), Some("r1"));
        assert_eq!(v.get("n").unwrap().as_u64(), Some(42));
        assert_eq!(v.get("f").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
    }

    #[test]
    fn builder_writes_in_insertion_order() {
        let mut v = Value::obj();
        v.set("b", Value::u64(2));
        v.set("a", Value::str("x"));
        v.set("inf", Value::f64(f64::INFINITY));
        assert_eq!(v.to_string(), r#"{"b":2,"a":"x","inf":null}"#);
    }

    #[test]
    fn u64_values_are_exact() {
        let big = u64::MAX;
        let v = parse(&Value::u64(big).to_string()).unwrap();
        assert_eq!(v.as_u64(), Some(big));
    }

    #[test]
    fn string_escapes_round_trip() {
        let mut v = Value::obj();
        v.set("s", Value::str("a\"b\\c\nd\te\u{1}"));
        let text = v.to_string();
        let back = parse(&text).unwrap();
        assert_eq!(back.get("s").unwrap().as_str(), Some("a\"b\\c\nd\te\u{1}"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nope").is_err());
        assert!(parse("\"open").is_err());
    }
}
