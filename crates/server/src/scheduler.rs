//! Work-stealing scheduler with bounded admission.
//!
//! Replay requests are CPU-bound and wildly uneven — a full-scale
//! `qcd` trace costs orders of magnitude more than a small `cc` served
//! from cache — so a single shared queue would let one slow shard
//! starve the rest. [`StealPool`] gives each worker its own deque:
//! submissions land round-robin, a worker pops its own queue from the
//! front (FIFO for fairness), and an idle worker *steals from the
//! back* of a victim's queue, the classic split that keeps stolen work
//! coarse and owner work cache-warm.
//!
//! Admission is bounded: once `queue_depth` jobs are in flight the
//! pool rejects instead of buffering without limit, surfacing
//! overload to the client immediately (`server.queue.rejected`). This
//! mirrors the bounded trace channel inside the pipeline — the same
//! backpressure discipline, one level up — and idle workers park on
//! the pipeline's own `pipeline.backpressure.consumer_waits` counter
//! so a queue-starved service is visible in the same place as a
//! replay-starved consumer.
//!
//! Telemetry: `server.queue.rejected`, `server.queue.depth`
//! (histogram, sampled at submit), `server.scheduler.steals`,
//! `pipeline.backpressure.consumer_waits` (parks).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Queue-depth histogram buckets (jobs in flight at submit time).
const DEPTH_BUCKETS: &[u64] = &[0, 1, 2, 4, 8, 16, 32, 64, 128];

struct PoolState<T> {
    /// One deque per worker; the submit side round-robins across them.
    shards: Vec<Mutex<VecDeque<T>>>,
    /// Total jobs admitted but not yet handed to a handler.
    queued: AtomicUsize,
    /// Round-robin cursor for submissions.
    next_shard: AtomicUsize,
    /// Set once by `shutdown`; workers drain and exit.
    stopping: AtomicBool,
    /// Parking lot for idle workers.
    idle: Mutex<()>,
    wake: Condvar,
    queue_depth: usize,
}

impl<T> PoolState<T> {
    /// Pops work for `worker`: own queue front first, then steal from
    /// the back of the other shards.
    fn find_work(&self, worker: usize) -> Option<T> {
        if let Some(job) = self.shards[worker].lock().unwrap().pop_front() {
            self.queued.fetch_sub(1, Ordering::SeqCst);
            return Some(job);
        }
        let n = self.shards.len();
        for off in 1..n {
            let victim = (worker + off) % n;
            if let Some(job) = self.shards[victim].lock().unwrap().pop_back() {
                self.queued.fetch_sub(1, Ordering::SeqCst);
                databp_telemetry::count!("server.scheduler.steals");
                return Some(job);
            }
        }
        None
    }
}

/// A fixed-size pool of worker threads with per-worker deques, LIFO
/// steals, and bounded admission.
pub struct StealPool<T: Send + 'static> {
    state: Arc<PoolState<T>>,
    workers: Vec<JoinHandle<()>>,
}

impl<T: Send + 'static> StealPool<T> {
    /// Starts `workers` threads running `handler(worker_index, job)`
    /// for every admitted job. At most `queue_depth` jobs may be
    /// queued (admitted, not yet picked up) at once; further
    /// [`submit`](StealPool::submit)s are rejected.
    ///
    /// A handler panic is contained to that job: the worker survives
    /// and moves on. (The server layer converts panics into error
    /// responses; the pool just must not die.)
    pub fn start<F>(workers: usize, queue_depth: usize, handler: F) -> StealPool<T>
    where
        F: Fn(usize, T) + Send + Sync + 'static,
    {
        assert!(workers > 0, "StealPool needs at least one worker");
        assert!(queue_depth > 0, "StealPool needs a nonzero queue depth");
        let state = Arc::new(PoolState {
            shards: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            queued: AtomicUsize::new(0),
            next_shard: AtomicUsize::new(0),
            stopping: AtomicBool::new(false),
            idle: Mutex::new(()),
            wake: Condvar::new(),
            queue_depth,
        });
        let handler = Arc::new(handler);
        let threads = (0..workers)
            .map(|w| {
                let state = Arc::clone(&state);
                let handler = Arc::clone(&handler);
                std::thread::Builder::new()
                    .name(format!("databp-worker-{w}"))
                    .spawn(move || loop {
                        if let Some(job) = state.find_work(w) {
                            let h = Arc::clone(&handler);
                            let result =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    h(w, job)
                                }));
                            drop(result); // panic contained; worker lives on
                            continue;
                        }
                        if state.stopping.load(Ordering::SeqCst) {
                            return; // queues drained, shutting down
                        }
                        let guard = state.idle.lock().unwrap();
                        // Re-check under the park lock: a submit
                        // between our empty scan and this lock would
                        // otherwise have notified nobody.
                        if state.queued.load(Ordering::SeqCst) == 0
                            && !state.stopping.load(Ordering::SeqCst)
                        {
                            databp_telemetry::count!("pipeline.backpressure.consumer_waits");
                            drop(state.wake.wait(guard).unwrap());
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        StealPool {
            state,
            workers: threads,
        }
    }

    /// Submits a job, round-robin across worker shards. Returns the
    /// job back as `Err` when the pool is saturated (admission
    /// control) or shutting down.
    pub fn submit(&self, job: T) -> Result<(), T> {
        if self.state.stopping.load(Ordering::SeqCst) {
            return Err(job);
        }
        // Optimistic reserve: claim a queue slot, undo on overflow.
        let prior = self.state.queued.fetch_add(1, Ordering::SeqCst);
        if prior >= self.state.queue_depth {
            self.state.queued.fetch_sub(1, Ordering::SeqCst);
            databp_telemetry::count!("server.queue.rejected");
            return Err(job);
        }
        databp_telemetry::observe!("server.queue.depth", DEPTH_BUCKETS, prior as u64);
        let shard = self.state.next_shard.fetch_add(1, Ordering::Relaxed) % self.state.shards.len();
        self.state.shards[shard].lock().unwrap().push_back(job);
        // Pair the push with the workers' parked re-check.
        let _park = self.state.idle.lock().unwrap();
        self.state.wake.notify_all();
        Ok(())
    }

    /// Jobs admitted but not yet picked up by a worker.
    pub fn queued(&self) -> usize {
        self.state.queued.load(Ordering::SeqCst)
    }

    /// Drains all queued jobs, then stops and joins every worker.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.state.stopping.store(true, Ordering::SeqCst);
        {
            let _park = self.state.idle.lock().unwrap();
            self.state.wake.notify_all();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl<T: Send + 'static> Drop for StealPool<T> {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::time::Duration;

    #[test]
    fn runs_every_submitted_job_across_workers() {
        let sum = Arc::new(AtomicU64::new(0));
        let pool = {
            let sum = Arc::clone(&sum);
            StealPool::start(4, 256, move |_w, job: u64| {
                sum.fetch_add(job, Ordering::SeqCst);
            })
        };
        for i in 1..=100u64 {
            pool.submit(i).unwrap();
        }
        pool.shutdown();
        assert_eq!(sum.load(Ordering::SeqCst), 5050);
    }

    #[test]
    fn saturated_pool_rejects_deterministically() {
        // One worker, blocked by a gate: the queue fills to exactly
        // `depth`, and the next submit must bounce.
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let started = Arc::new((Mutex::new(false), Condvar::new()));
        let pool = {
            let gate = Arc::clone(&gate);
            let started = Arc::clone(&started);
            StealPool::start(1, 3, move |_w, _job: u32| {
                *started.0.lock().unwrap() = true;
                started.1.notify_all();
                let mut open = gate.0.lock().unwrap();
                while !*open {
                    open = gate.1.wait(open).unwrap();
                }
            })
        };
        // First job occupies the worker (wait until it is *running*,
        // i.e. out of the queue)...
        pool.submit(0).unwrap();
        {
            let mut running = started.0.lock().unwrap();
            while !*running {
                running = started.1.wait(running).unwrap();
            }
        }
        // ...then exactly `depth` more fit in the queue.
        for i in 1..=3 {
            pool.submit(i).unwrap();
        }
        assert_eq!(pool.queued(), 3);
        assert_eq!(pool.submit(99), Err(99), "admission control rejects");
        // Open the gate; shutdown drains the remaining queued jobs.
        *gate.0.lock().unwrap() = true;
        gate.1.notify_all();
        pool.shutdown();
    }

    #[test]
    fn idle_worker_steals_from_a_loaded_shard() {
        // Two workers; the round-robin spread plus an artificially slow
        // first job forces cross-shard pickup. We can't assert *which*
        // worker ran what (steals are timing-dependent), only that all
        // jobs complete promptly even though one worker is stuck.
        let done = Arc::new(AtomicU64::new(0));
        let pool = {
            let done = Arc::clone(&done);
            StealPool::start(2, 64, move |_w, slow: bool| {
                if slow {
                    std::thread::sleep(Duration::from_millis(50));
                }
                done.fetch_add(1, Ordering::SeqCst);
            })
        };
        pool.submit(true).unwrap();
        for _ in 0..20 {
            pool.submit(false).unwrap();
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 21);
    }

    #[test]
    fn panicking_job_does_not_kill_the_worker() {
        let done = Arc::new(AtomicU64::new(0));
        let pool = {
            let done = Arc::clone(&done);
            StealPool::start(1, 64, move |_w, explode: bool| {
                if explode {
                    panic!("job panic");
                }
                done.fetch_add(1, Ordering::SeqCst);
            })
        };
        pool.submit(true).unwrap();
        pool.submit(false).unwrap();
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 1, "worker survived the panic");
    }
}
