//! In-memory trace cache with LRU eviction and in-flight deduplication.
//!
//! The service's hottest observation is that traffic repeats: the same
//! workload is queried again and again with different strategy or
//! ladder mixes, and phase 1 (tracing the workload on the simulated
//! machine) dwarfs everything else. [`TraceCache`] keys completed
//! phase-1+2 results by [workload hash](databp_workloads::Workload::workload_hash)
//! so a repeat request skips the trace entirely.
//!
//! Two properties matter beyond a plain map:
//!
//! * **In-flight dedup.** When two workers miss on the same key
//!   concurrently, only the first traces; the second blocks on the
//!   first's *pending* slot and wakes to a hit. Without this, a batch
//!   of N duplicate requests would trace N times on a cold cache —
//!   exactly the work the cache exists to avoid.
//! * **Bounded memory.** Entries are charged approximate byte sizes
//!   (traces dominate — see
//!   [`Trace::approx_bytes`](databp_trace::Trace::approx_bytes)) and
//!   evicted least-recently-used when the budget is exceeded. A single
//!   oversized entry is still admitted (the value was just paid for;
//!   dropping it would only force a re-trace), it simply evicts
//!   everything else.
//!
//! Telemetry: `server.cache.hits` / `.misses` / `.evictions` counters
//! and the `server.cache.bytes` gauge. (`server.cache.rewalks` is
//! counted by the server when a hit needs a phase-2-only rewalk.)

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// A cached value slot.
enum Slot<V> {
    /// Some worker is computing this entry; others wait on the condvar.
    Pending,
    /// A completed entry.
    Ready {
        value: Arc<V>,
        bytes: usize,
        last_used: u64,
    },
}

struct CacheInner<V> {
    slots: HashMap<u64, Slot<V>>,
    /// Monotonic use tick for LRU ordering.
    tick: u64,
    /// Bytes charged by all `Ready` slots.
    bytes: usize,
}

/// Outcome of a cache lookup.
pub enum Lookup<V> {
    /// The entry was ready (or became ready while we waited on a
    /// pending slot).
    Hit(Arc<V>),
    /// The entry is absent and this caller owns building it. Call
    /// [`TraceCache::fill`] with the guard when done; dropping the
    /// guard without filling releases the slot so another caller can
    /// retry.
    MustBuild(BuildGuard<V>),
}

/// Ownership token for a pending cache slot (see [`Lookup::MustBuild`]).
pub struct BuildGuard<V> {
    cache: Arc<Shared<V>>,
    key: u64,
    filled: bool,
}

impl<V> BuildGuard<V> {
    /// The key this guard owns.
    pub fn key(&self) -> u64 {
        self.key
    }
}

impl<V> Drop for BuildGuard<V> {
    fn drop(&mut self) {
        if !self.filled {
            // The build failed (panicked or errored): release the
            // pending slot and wake waiters so one of them can retry
            // rather than blocking forever.
            let mut inner = self.cache.inner.lock().unwrap();
            if matches!(inner.slots.get(&self.key), Some(Slot::Pending)) {
                inner.slots.remove(&self.key);
            }
            drop(inner);
            self.cache.ready.notify_all();
        }
    }
}

struct Shared<V> {
    inner: Mutex<CacheInner<V>>,
    ready: Condvar,
    capacity_bytes: usize,
}

/// The trace cache: a byte-bounded LRU map with pending-slot dedup.
///
/// Generic over the value type so the cache logic is unit-testable
/// without tracing workloads; the server instantiates it with its
/// cached-results record.
pub struct TraceCache<V> {
    shared: Arc<Shared<V>>,
}

impl<V> Clone for TraceCache<V> {
    fn clone(&self) -> Self {
        TraceCache {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<V> TraceCache<V> {
    /// A cache evicting LRU entries once `Ready` slots exceed
    /// `capacity_bytes`.
    pub fn new(capacity_bytes: usize) -> TraceCache<V> {
        TraceCache {
            shared: Arc::new(Shared {
                inner: Mutex::new(CacheInner {
                    slots: HashMap::new(),
                    tick: 0,
                    bytes: 0,
                }),
                ready: Condvar::new(),
                capacity_bytes,
            }),
        }
    }

    /// Looks up `key`, waiting out any in-flight build of the same key.
    ///
    /// Exactly one caller per absent key receives
    /// [`Lookup::MustBuild`]; everyone else blocks until that build
    /// [`fill`](TraceCache::fill)s (waking to a hit) or is abandoned
    /// (one waiter inherits the build).
    pub fn lookup_or_begin(&self, key: u64) -> Lookup<V> {
        let mut inner = self.shared.inner.lock().unwrap();
        loop {
            inner.tick += 1;
            let tick = inner.tick;
            match inner.slots.get_mut(&key) {
                Some(Slot::Ready {
                    value, last_used, ..
                }) => {
                    *last_used = tick;
                    let value = Arc::clone(value);
                    databp_telemetry::count!("server.cache.hits");
                    return Lookup::Hit(value);
                }
                Some(Slot::Pending) => {
                    inner = self.shared.ready.wait(inner).unwrap();
                }
                None => {
                    inner.slots.insert(key, Slot::Pending);
                    databp_telemetry::count!("server.cache.misses");
                    return Lookup::MustBuild(BuildGuard {
                        cache: Arc::clone(&self.shared),
                        key,
                        filled: false,
                    });
                }
            }
        }
    }

    /// Completes a build: publishes `value` under the guard's key,
    /// charges `bytes` against the budget (evicting LRU entries as
    /// needed), and wakes waiters. Returns the published value.
    pub fn fill(&self, mut guard: BuildGuard<V>, value: V, bytes: usize) -> Arc<V> {
        guard.filled = true;
        let value = Arc::new(value);
        let mut inner = self.shared.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        inner.slots.insert(
            guard.key,
            Slot::Ready {
                value: Arc::clone(&value),
                bytes,
                last_used: tick,
            },
        );
        inner.bytes += bytes;
        databp_telemetry::gauge_add!("server.cache.bytes", bytes as i64);
        self.evict_over_budget(&mut inner, guard.key);
        drop(inner);
        self.shared.ready.notify_all();
        value
    }

    /// Replaces the value under `key` in place (used when a rewalk
    /// widened a cached entry's ladder), recharging its size. No-op if
    /// the entry was evicted in the meantime.
    pub fn update(&self, key: u64, value: V, bytes: usize) -> Arc<V> {
        let value = Arc::new(value);
        let mut inner = self.shared.inner.lock().unwrap();
        if let Some(Slot::Ready {
            bytes: old_bytes, ..
        }) = inner.slots.get(&key)
        {
            let old_bytes = *old_bytes;
            inner.tick += 1;
            let tick = inner.tick;
            inner.slots.insert(
                key,
                Slot::Ready {
                    value: Arc::clone(&value),
                    bytes,
                    last_used: tick,
                },
            );
            inner.bytes = inner.bytes - old_bytes + bytes;
            databp_telemetry::gauge_add!("server.cache.bytes", bytes as i64 - old_bytes as i64);
            self.evict_over_budget(&mut inner, key);
        }
        value
    }

    /// Evicts least-recently-used `Ready` entries (never `keep`, never
    /// pending slots) until within budget or nothing evictable remains.
    fn evict_over_budget(&self, inner: &mut CacheInner<V>, keep: u64) {
        while inner.bytes > self.shared.capacity_bytes {
            let victim = inner
                .slots
                .iter()
                .filter_map(|(&k, slot)| match slot {
                    Slot::Ready { last_used, .. } if k != keep => Some((*last_used, k)),
                    _ => None,
                })
                .min()
                .map(|(_, k)| k);
            let Some(k) = victim else { break };
            if let Some(Slot::Ready { bytes, .. }) = inner.slots.remove(&k) {
                inner.bytes -= bytes;
                databp_telemetry::count!("server.cache.evictions");
                databp_telemetry::gauge_add!("server.cache.bytes", -(bytes as i64));
            }
        }
    }

    /// Current charged bytes across ready entries.
    pub fn bytes(&self) -> usize {
        self.shared.inner.lock().unwrap().bytes
    }

    /// Number of ready entries.
    pub fn len(&self) -> usize {
        self.shared
            .inner
            .lock()
            .unwrap()
            .slots
            .values()
            .filter(|s| matches!(s, Slot::Ready { .. }))
            .count()
    }

    /// True when no ready entries exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    fn build(cache: &TraceCache<String>, key: u64, v: &str, bytes: usize) -> Arc<String> {
        match cache.lookup_or_begin(key) {
            Lookup::Hit(v) => v,
            Lookup::MustBuild(guard) => cache.fill(guard, v.to_string(), bytes),
        }
    }

    #[test]
    fn hit_after_fill_and_lru_eviction_order() {
        let cache = TraceCache::new(100);
        build(&cache, 1, "one", 40);
        build(&cache, 2, "two", 40);
        // Touch 1 so 2 becomes the LRU entry.
        assert!(matches!(cache.lookup_or_begin(1), Lookup::Hit(v) if *v == "one"));
        // 40+40+40 > 100 → evict exactly one entry: key 2.
        build(&cache, 3, "three", 40);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.bytes(), 80);
        assert!(matches!(cache.lookup_or_begin(1), Lookup::Hit(_)));
        assert!(matches!(cache.lookup_or_begin(3), Lookup::Hit(_)));
        assert!(matches!(cache.lookup_or_begin(2), Lookup::MustBuild(_)));
    }

    #[test]
    fn oversized_entry_is_admitted_and_evicts_the_rest() {
        let cache = TraceCache::new(50);
        build(&cache, 1, "small", 10);
        build(&cache, 2, "huge", 500);
        assert_eq!(cache.len(), 1, "only the oversized entry remains");
        assert!(matches!(cache.lookup_or_begin(2), Lookup::Hit(v) if *v == "huge"));
    }

    #[test]
    fn update_recharges_bytes_in_place() {
        let cache = TraceCache::new(1000);
        build(&cache, 7, "v1", 100);
        cache.update(7, "v2".to_string(), 250);
        assert_eq!(cache.bytes(), 250);
        assert!(matches!(cache.lookup_or_begin(7), Lookup::Hit(v) if *v == "v2"));
        // Updating an absent key is a no-op.
        cache.update(99, "ghost".to_string(), 10);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn concurrent_duplicate_misses_build_once() {
        let cache = TraceCache::new(1000);
        let builds = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let cache = cache.clone();
            let builds = Arc::clone(&builds);
            handles.push(thread::spawn(move || match cache.lookup_or_begin(42) {
                Lookup::Hit(v) => v,
                Lookup::MustBuild(guard) => {
                    builds.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    // Linger so the other threads pile onto the
                    // pending slot instead of racing past it.
                    thread::sleep(Duration::from_millis(20));
                    cache.fill(guard, "built".to_string(), 8)
                }
            }));
        }
        for h in handles {
            assert_eq!(*h.join().unwrap(), "built");
        }
        assert_eq!(builds.load(std::sync::atomic::Ordering::SeqCst), 1);
    }

    #[test]
    fn abandoned_build_hands_the_slot_to_a_waiter() {
        let cache: TraceCache<String> = TraceCache::new(1000);
        let Lookup::MustBuild(guard) = cache.lookup_or_begin(5) else {
            panic!("fresh key must be a miss");
        };
        let waiter = {
            let cache = cache.clone();
            thread::spawn(move || match cache.lookup_or_begin(5) {
                Lookup::Hit(_) => panic!("abandoned slot must not read as a hit"),
                Lookup::MustBuild(g) => {
                    cache.fill(g, "second try".to_string(), 4);
                }
            })
        };
        thread::sleep(Duration::from_millis(20));
        drop(guard); // simulate a failed build
        waiter.join().unwrap();
        assert!(matches!(cache.lookup_or_begin(5), Lookup::Hit(v) if *v == "second try"));
    }
}
