//! databp-server: the sharded multi-session replay service.
//!
//! The paper's pipeline answers one question per run: trace a workload
//! (phase 1), replay the trace against every monitor session (phase
//! 2), model the overheads. This crate turns that pipeline into a
//! long-running *service* that treats (workload × session-set ×
//! strategy × page ladder) requests as traffic:
//!
//! * [`scheduler`] — a work-stealing pool sharding requests across
//!   worker threads, with bounded admission (overload is rejected, not
//!   buffered).
//! * [`cache`] — an LRU trace cache keyed by
//!   [`workload_hash`](databp_workloads::Workload::workload_hash); a
//!   repeat request skips phase 1 entirely, and concurrent duplicates
//!   collapse onto one in-flight build.
//! * [`server`] — the batch API: "overhead of CP for these N sessions"
//!   answered in a single fused trace walk per *distinct* workload,
//!   with miss / hit / rewalk resolution per request.
//! * [`request`] / [`proto`] — wire types and the line-delimited JSON
//!   protocol over stdin/stdout (`repro serve`, `repro client`).
//! * [`json`] — the deterministic JSON reader/writer those layers
//!   share (insertion-ordered objects, canonical number text), which
//!   is what lets the service promise *byte-identical* responses for
//!   cached and fresh answers.
//!
//! The crate also owns the `repro` binary (the CLI grew a service mode;
//! the binary moved here so it can drive both the harness and the
//! server without a dependency cycle).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod json;
pub mod proto;
pub mod request;
pub mod scheduler;
pub mod server;

pub use cache::{BuildGuard, Lookup, TraceCache};
pub use proto::serve;
pub use request::{
    body_for, query_body_for, CacheStatus, Request, RequestLine, Response, ResponseBody,
};
pub use scheduler::StealPool;
pub use server::{Server, ServerConfig, ServerStats, Ticket};
