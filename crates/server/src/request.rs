//! Wire-level request and response types for the replay service.
//!
//! One request asks one question of the batch API: *for workload W at
//! scale S, what do strategies A… cost across every surviving monitor
//! session, at page sizes P…?* The service answers every strategy and
//! every page size of a request out of **one** trace — cached from an
//! earlier request when possible, produced by one streamed phase-1 run
//! otherwise — which is the paper's trace→replay split turned into a
//! query substrate.
//!
//! The response splits into metadata (`id`, `ok`, `cache`) and a
//! [`ResponseBody`] holding every derived number. The body is rendered
//! by the pure function [`body_for`] from a
//! [`WorkloadResults`](databp_harness::WorkloadResults), so a cached
//! answer is *byte-identical* to a freshly computed one by
//! construction — the end-to-end tests pin that equality against the
//! one-shot `--stream` pipeline.

use crate::json::{self, Value};
use databp_core::WriterMap;
use databp_harness::{overheads_for, AnalyzeOpts, Scale, WorkloadResults};
use databp_machine::PageSize;
use databp_models::Approach;
use databp_sim::{QueryResult, WriteHit};
use databp_stats::Summary;
use databp_workloads::Workload;

/// One line read from the wire: a query, or a stats probe.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestLine {
    /// A batch-API query.
    Query(Request),
    /// `{"stats": true}` — asks for the server's counters (answered in
    /// stream order like any other request, so a trailing stats probe
    /// sees every earlier request of the session accounted).
    Stats,
}

/// A batch-API query: one workload, N strategies, M page sizes, all
/// answered from a single (possibly cached) trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub id: String,
    /// Workload name: one of the Table 1 set (`cc`, `tex`, `spice`,
    /// `qcd`, `bps`) or the benchmark corpus (`matmul`, `fib`,
    /// `struct_bench`, `bitwise`).
    pub workload: String,
    /// Workload scale. Defaults to [`Scale::Small`]: service traffic is
    /// interactive, and full-scale traces are an explicit opt-in.
    pub scale: Scale,
    /// Strategies to model. Empty means all five.
    pub strategies: Vec<Approach>,
    /// Extra page sizes; 4K and 8K are always included (the overhead
    /// models need them).
    pub page_sizes: Vec<PageSize>,
    /// Include the full per-session overhead population per strategy
    /// (not just its summary statistics).
    pub overheads: bool,
    /// A trace query (`<agg> [if <predicate>]`, see
    /// [`databp_sim::Query`]). When present the response body is the
    /// query answer instead of the strategy/ladder report — computed
    /// from the (possibly cached) trace alone, so a cache hit does
    /// zero phase-1 *and* zero phase-2 work.
    pub query: Option<String>,
}

impl Request {
    /// A query for `workload` with every strategy at the default
    /// ladder — the shape most tests and the demo client use.
    pub fn simple(id: &str, workload: &str, scale: Scale) -> Request {
        Request {
            id: id.to_string(),
            workload: workload.to_string(),
            scale,
            strategies: Vec::new(),
            page_sizes: Vec::new(),
            overheads: false,
            query: None,
        }
    }

    /// The strategies to answer: the requested set, or all of them.
    pub fn effective_strategies(&self) -> Vec<Approach> {
        if self.strategies.is_empty() {
            Approach::ALL.to_vec()
        } else {
            self.strategies.clone()
        }
    }

    /// The normalized page-size ladder this request needs (requested
    /// sizes plus the mandatory 4K/8K pair, ascending, deduplicated).
    pub fn normalized_ladder(&self) -> Vec<PageSize> {
        AnalyzeOpts {
            ladder: self.page_sizes.clone(),
            ..AnalyzeOpts::default()
        }
        .normalized_ladder()
    }

    /// The workload this request names, at its requested scale.
    pub fn resolve_workload(&self) -> Result<Workload, String> {
        let w = Workload::by_name(&self.workload).ok_or_else(|| {
            format!(
                "unknown workload {:?} (cc, tex, spice, qcd, bps, matmul, fib, struct_bench, bitwise)",
                self.workload
            )
        })?;
        Ok(match self.scale {
            Scale::Full => w,
            Scale::Small => w.scaled_down(),
        })
    }

    /// Parses one wire line.
    pub fn parse_line(line: &str) -> Result<RequestLine, String> {
        let v = json::parse(line)?;
        let obj = v
            .as_object()
            .ok_or_else(|| "request must be a JSON object".to_string())?;
        if v.get("stats").and_then(Value::as_bool) == Some(true) {
            return Ok(RequestLine::Stats);
        }
        let mut req = Request {
            id: String::new(),
            workload: String::new(),
            scale: Scale::Small,
            strategies: Vec::new(),
            page_sizes: Vec::new(),
            overheads: false,
            query: None,
        };
        for (key, val) in obj {
            match key.as_str() {
                "id" => {
                    req.id = match val {
                        Value::Str(s) => s.clone(),
                        Value::Num(raw) => raw.clone(),
                        _ => return Err("id must be a string or number".to_string()),
                    }
                }
                "workload" => {
                    req.workload = val
                        .as_str()
                        .ok_or_else(|| "workload must be a string".to_string())?
                        .to_string()
                }
                "scale" => {
                    req.scale = match val.as_str() {
                        Some("small") => Scale::Small,
                        Some("full") => Scale::Full,
                        _ => return Err("scale must be \"small\" or \"full\"".to_string()),
                    }
                }
                "strategies" => {
                    let items = val
                        .as_array()
                        .ok_or_else(|| "strategies must be an array".to_string())?;
                    for item in items {
                        let name = item
                            .as_str()
                            .ok_or_else(|| "strategy must be a string".to_string())?;
                        req.strategies.push(parse_strategy(name).ok_or_else(|| {
                            format!("unknown strategy {name:?} (nh, vm4k, vm8k, tp, cp)")
                        })?);
                    }
                }
                "page_sizes" => {
                    let items = val
                        .as_array()
                        .ok_or_else(|| "page_sizes must be an array".to_string())?;
                    for item in items {
                        let name = item
                            .as_str()
                            .ok_or_else(|| "page size must be a string".to_string())?;
                        req.page_sizes.push(
                            PageSize::parse(name)
                                .ok_or_else(|| format!("unknown page size {name:?}"))?,
                        );
                    }
                }
                "overheads" => {
                    req.overheads = val
                        .as_bool()
                        .ok_or_else(|| "overheads must be a bool".to_string())?
                }
                "query" => {
                    req.query = Some(
                        val.as_str()
                            .ok_or_else(|| "query must be a string".to_string())?
                            .to_string(),
                    )
                }
                other => return Err(format!("unknown request field {other:?}")),
            }
        }
        if req.workload.is_empty() {
            return Err("request needs a \"workload\" field".to_string());
        }
        Ok(RequestLine::Query(req))
    }

    /// The request as a wire line (the client side of
    /// [`Request::parse_line`]).
    pub fn to_json_line(&self) -> String {
        let mut v = Value::obj();
        if !self.id.is_empty() {
            v.set("id", Value::str(&self.id));
        }
        v.set("workload", Value::str(&self.workload));
        v.set(
            "scale",
            Value::str(match self.scale {
                Scale::Small => "small",
                Scale::Full => "full",
            }),
        );
        if !self.strategies.is_empty() {
            v.set(
                "strategies",
                Value::Arr(
                    self.strategies
                        .iter()
                        .map(|&a| Value::str(strategy_slug(a)))
                        .collect(),
                ),
            );
        }
        if !self.page_sizes.is_empty() {
            v.set(
                "page_sizes",
                Value::Arr(
                    self.page_sizes
                        .iter()
                        .map(|ps| Value::str(ps.to_string()))
                        .collect(),
                ),
            );
        }
        if self.overheads {
            v.set("overheads", Value::Bool(true));
        }
        if let Some(q) = &self.query {
            v.set("query", Value::str(q));
        }
        v.to_string()
    }
}

/// Parses a strategy slug (`nh`, `vm4k`, `vm8k`, `tp`, `cp`).
pub fn parse_strategy(s: &str) -> Option<Approach> {
    match s {
        "nh" => Some(Approach::Nh),
        "vm4k" => Some(Approach::Vm4k),
        "vm8k" => Some(Approach::Vm8k),
        "tp" => Some(Approach::Tp),
        "cp" => Some(Approach::Cp),
        _ => None,
    }
}

/// The wire slug of a strategy (inverse of [`parse_strategy`]).
pub fn strategy_slug(a: Approach) -> &'static str {
    match a {
        Approach::Nh => "nh",
        Approach::Vm4k => "vm4k",
        Approach::Vm8k => "vm8k",
        Approach::Tp => "tp",
        Approach::Cp => "cp",
    }
}

/// How a response was produced, for telemetry and clients that care
/// about warm-up behavior; excluded from the byte-identity guarantee.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStatus {
    /// Phase 1 ran: the trace was produced by a streamed workload run.
    Miss,
    /// Served entirely from the cached results — no trace walk at all.
    Hit,
    /// Served from the cached trace, but the requested ladder needed
    /// one fresh phase-2 walk (still no phase-1 work).
    Rewalk,
}

impl CacheStatus {
    /// The wire form.
    pub fn as_str(self) -> &'static str {
        match self {
            CacheStatus::Miss => "miss",
            CacheStatus::Hit => "hit",
            CacheStatus::Rewalk => "rewalk",
        }
    }
}

/// Everything a successful response derives from the trace. Rendered
/// only through [`body_for`], so equal inputs give equal bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct ResponseBody {
    json: Value,
}

impl ResponseBody {
    /// The body as canonical compact JSON (the byte-identity surface).
    pub fn to_json(&self) -> String {
        self.json.to_string()
    }

    /// The body as a JSON value (for embedding in a [`Response`]).
    pub fn value(&self) -> &Value {
        &self.json
    }
}

/// Wraps an arbitrary JSON object as a response body (used by the
/// protocol layer for stats probes, whose payload is not a query
/// answer).
pub fn raw_body(json: Value) -> ResponseBody {
    ResponseBody { json }
}

/// Renders the answer to `req` from `results` — the single place
/// result bytes come from, shared by the cache-hit and cache-miss
/// paths (and by tests computing the expected answer with the one-shot
/// pipeline).
///
/// `results` must cover the request's normalized ladder; the body
/// reports exactly the requested sizes even when the cached results
/// carry more.
///
/// # Panics
///
/// Panics if `results` lacks one of the requested page sizes (a server
/// bug — the cache layer guarantees coverage before rendering).
pub fn body_for(req: &Request, results: &WorkloadResults) -> ResponseBody {
    let mut body = Value::obj();
    body.set("workload", Value::str(&req.workload));
    body.set(
        "workload_hash",
        Value::str(format!(
            "{:016x}",
            results.prepared.workload.workload_hash()
        )),
    );
    body.set(
        "scale",
        Value::str(match req.scale {
            Scale::Small => "small",
            Scale::Full => "full",
        }),
    );
    body.set("candidates", Value::u64(results.candidates as u64));
    body.set("sessions", Value::u64(results.sessions.len() as u64));
    body.set("base_ms", Value::f64(results.base_ms()));

    let mut ladder = Vec::new();
    for ps in req.normalized_ladder() {
        let k = results
            .ladder
            .iter()
            .position(|&p| p == ps)
            .unwrap_or_else(|| panic!("results missing page size {ps}"));
        let row = &results.ladder_counts[k];
        let sum = |f: fn(&databp_models::Counts) -> u64| -> u64 { row.iter().map(f).sum() };
        let mut entry = Value::obj();
        entry.set("page_size", Value::str(ps.to_string()));
        entry.set("hits", Value::u64(sum(|c| c.hit)));
        entry.set("misses", Value::u64(sum(|c| c.miss)));
        entry.set("vm_protects", Value::u64(sum(|c| c.vm_protect)));
        entry.set("vm_unprotects", Value::u64(sum(|c| c.vm_unprotect)));
        entry.set(
            "active_page_misses",
            Value::u64(sum(|c| c.vm_active_page_miss)),
        );
        ladder.push(entry);
    }
    body.set("ladder", Value::Arr(ladder));

    let mut strategies = Vec::new();
    for a in req.effective_strategies() {
        let ovs = overheads_for(results, a);
        let s = Summary::from_samples(&ovs);
        let mut entry = Value::obj();
        entry.set("strategy", Value::str(strategy_slug(a)));
        entry.set("n", Value::u64(s.n as u64));
        entry.set("min", Value::f64(s.min));
        entry.set("t_mean", Value::f64(s.t_mean));
        entry.set("mean", Value::f64(s.mean));
        entry.set("p90", Value::f64(s.p90));
        entry.set("p98", Value::f64(s.p98));
        entry.set("max", Value::f64(s.max));
        if req.overheads {
            entry.set(
                "overheads",
                Value::Arr(ovs.iter().map(|&o| Value::f64(o)).collect()),
            );
        }
        strategies.push(entry);
    }
    body.set("strategies", Value::Arr(strategies));
    ResponseBody { json: body }
}

/// Renders one [`WriteHit`] as a JSON object (addresses in hex for
/// greppability, values in decimal).
fn hit_value(hit: &WriteHit) -> Value {
    let mut v = Value::obj();
    v.set("seq", Value::u64(hit.seq));
    v.set("pc", Value::str(format!("{:#x}", hit.pc)));
    v.set("ba", Value::str(format!("{:#x}", hit.ba)));
    v.set("ea", Value::str(format!("{:#x}", hit.ea)));
    v.set("value", Value::u64(u64::from(hit.value)));
    v.set("old", Value::u64(u64::from(hit.old)));
    v
}

/// Renders the answer to a trace query from `results` — the query
/// sibling of [`body_for`], and like it the *single* place query
/// result bytes come from, so a cached answer is byte-identical to a
/// fresh one. Needs only the trace and the debug info; never touches
/// the counts matrices, so a cache hit answers with zero phase-1 and
/// zero phase-2 work.
///
/// The query runs as a columnar pushdown scan over the prepared
/// workload's cached DBPT v2 bytes
/// ([`Prepared::columnar_bytes`](databp_workloads::Prepared::columnar_bytes)):
/// zone-refuted blocks are skipped undecoded, surviving blocks decode
/// only the columns the query reads, fanned across `jobs` workers with
/// a deterministic in-order merge — so the rendered bytes are
/// identical to the event-at-a-time engine's, just cheaper.
///
/// # Errors
///
/// A message when the query is malformed or names an unknown function.
pub fn query_body_for(
    req: &Request,
    results: &WorkloadResults,
    jobs: usize,
) -> Result<ResponseBody, String> {
    let src = req.query.as_deref().unwrap_or_default();
    let debug = &results.prepared.plain.debug;
    let writers = WriterMap::new(
        debug
            .functions
            .iter()
            .enumerate()
            .map(|(id, f)| (f.entry_pc, id as u16)),
    );
    let bytes = results.prepared.columnar_bytes();
    let (result, _stats) =
        databp_sim::scan_query(bytes, src, |name| debug.func_id(name), &writers, jobs)
            .map_err(|e| format!("bad query: {e}"))?;

    let mut body = Value::obj();
    body.set("workload", Value::str(&req.workload));
    body.set(
        "workload_hash",
        Value::str(format!(
            "{:016x}",
            results.prepared.workload.workload_hash()
        )),
    );
    body.set(
        "scale",
        Value::str(match req.scale {
            Scale::Small => "small",
            Scale::Full => "full",
        }),
    );
    body.set("query", Value::str(src));
    let mut res = Value::obj();
    match &result {
        QueryResult::Count { matched, writes } => {
            res.set("kind", Value::str("count"));
            res.set("matched", Value::u64(*matched));
            res.set("writes", Value::u64(*writes));
        }
        QueryResult::First(hit) => {
            res.set("kind", Value::str("first"));
            res.set("hit", hit.as_ref().map_or(Value::Null, hit_value));
        }
        QueryResult::Last(hit) => {
            res.set("kind", Value::str("last"));
            res.set("hit", hit.as_ref().map_or(Value::Null, hit_value));
        }
        QueryResult::Histogram(sites) => {
            res.set("kind", Value::str("hist"));
            res.set(
                "sites",
                Value::Arr(
                    sites
                        .iter()
                        .map(|&(pc, n)| {
                            let mut s = Value::obj();
                            s.set("pc", Value::str(format!("{pc:#x}")));
                            s.set("count", Value::u64(n));
                            s
                        })
                        .collect(),
                ),
            );
        }
        QueryResult::ValueWatch { samples, total } => {
            res.set("kind", Value::str("watch"));
            res.set("total", Value::u64(*total));
            res.set(
                "samples",
                Value::Arr(samples.iter().map(|&v| Value::u64(u64::from(v))).collect()),
            );
        }
    }
    body.set("result", res);
    Ok(ResponseBody { json: body })
}

/// One wire response: metadata plus (on success) a [`ResponseBody`].
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Echo of the request id.
    pub id: String,
    /// False for rejected or failed requests.
    pub ok: bool,
    /// How the answer was produced (successful queries only).
    pub cache: Option<CacheStatus>,
    /// Error message when `ok` is false.
    pub error: Option<String>,
    /// The result payload when `ok` is true.
    pub body: Option<ResponseBody>,
}

impl Response {
    /// A successful response.
    pub fn success(id: &str, cache: CacheStatus, body: ResponseBody) -> Response {
        Response {
            id: id.to_string(),
            ok: true,
            cache: Some(cache),
            error: None,
            body: Some(body),
        }
    }

    /// An error response.
    pub fn failure(id: &str, error: impl Into<String>) -> Response {
        Response {
            id: id.to_string(),
            ok: false,
            cache: None,
            error: Some(error.into()),
            body: None,
        }
    }

    /// The response as one wire line.
    pub fn to_json_line(&self) -> String {
        let mut v = Value::obj();
        v.set("id", Value::str(&self.id));
        v.set("ok", Value::Bool(self.ok));
        if let Some(cache) = self.cache {
            v.set("cache", Value::str(cache.as_str()));
        }
        if let Some(error) = &self.error {
            v.set("error", Value::str(error));
        }
        if let Some(body) = &self.body {
            v.set("body", body.value().clone());
        }
        v.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_request() {
        let line = r#"{"id":"r1","workload":"cc","scale":"small","strategies":["cp","tp"],"page_sizes":["16K"],"overheads":true}"#;
        let RequestLine::Query(req) = Request::parse_line(line).unwrap() else {
            panic!("expected a query");
        };
        assert_eq!(req.id, "r1");
        assert_eq!(req.workload, "cc");
        assert_eq!(req.scale, Scale::Small);
        assert_eq!(req.strategies, vec![Approach::Cp, Approach::Tp]);
        assert_eq!(req.page_sizes, vec![PageSize::K16]);
        assert!(req.overheads);
        assert_eq!(
            req.normalized_ladder(),
            vec![PageSize::K4, PageSize::K8, PageSize::K16]
        );
    }

    #[test]
    fn request_round_trips_through_its_own_wire_form() {
        let req = Request {
            id: "7".to_string(),
            workload: "tex".to_string(),
            scale: Scale::Full,
            strategies: vec![Approach::Vm8k],
            page_sizes: vec![PageSize::K32],
            overheads: true,
            query: Some("count if value > 5".to_string()),
        };
        let RequestLine::Query(back) = Request::parse_line(&req.to_json_line()).unwrap() else {
            panic!("expected a query");
        };
        assert_eq!(back, req);
    }

    #[test]
    fn stats_probe_and_errors_are_recognized() {
        assert_eq!(
            Request::parse_line(r#"{"stats":true}"#).unwrap(),
            RequestLine::Stats
        );
        assert!(Request::parse_line("{}").is_err(), "workload required");
        assert!(Request::parse_line(r#"{"workload":"cc","scale":"huge"}"#).is_err());
        assert!(Request::parse_line(r#"{"workload":"cc","strategies":["zz"]}"#).is_err());
        assert!(Request::parse_line(r#"{"workload":"cc","bogus":1}"#).is_err());
        assert!(Request::parse_line(r#"{"workload":"cc","query":7}"#).is_err());
        assert!(Request::parse_line("not json").is_err());
    }

    #[test]
    fn strategy_slugs_round_trip() {
        for a in Approach::ALL {
            assert_eq!(parse_strategy(strategy_slug(a)), Some(a));
        }
        assert_eq!(parse_strategy("vm"), None);
    }

    #[test]
    fn failure_response_line_shape() {
        let r = Response::failure("x", "queue full");
        assert_eq!(
            r.to_json_line(),
            r#"{"id":"x","ok":false,"error":"queue full"}"#
        );
    }
}
