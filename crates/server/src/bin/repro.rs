//! `repro` — regenerates every table and figure of *Efficient Data
//! Breakpoints* (Wahbe, ASPLOS 1992) from the substituted workloads,
//! and runs the replay service built on the same pipeline.
//!
//! ```text
//! usage: repro [--small] [--csv DIR] [--telemetry FMT] [--jobs N]
//!              [--stream] [--page-sizes LIST] [--store DIR] <command>
//!
//! commands:
//!   all          every experiment, in paper order
//!   table1       session counts and base execution times
//!   table2       timing variables (paper + host-measured)
//!   table3       mean counting variables
//!   table4       relative overhead statistics
//!   fig7         maximum relative overhead (chart + values)
//!   fig8         90th-percentile relative overhead
//!   fig9         10–90% trimmed-mean relative overhead
//!   breakdown    Section 8 time-spent breakdown
//!   expansion    Section 8 CodePatch code expansion
//!   loopopt      Section 9 loop-check optimization (executes CodePatch)
//!   staticopt [W...]  SSA-driven static check elision + dominator
//!                hoisting (executes CodePatch, replay-verifies every
//!                elision); runs the named workloads, default: the five
//!                paper workloads plus the four-kernel bench corpus
//!   tinyc --dump-ssa W  print workload W's SSA form (blocks, phis,
//!                per-site address facts, hoist plans)
//!   dyncp        Section 3.3 dynamic-patching hybrid (executes CodePatch)
//!   nhcoverage   watch-register coverage analysis
//!   ladder       per-page-size counting summary over the whole ladder
//!                (pair with --page-sizes to sweep beyond 4K/8K)
//!   serve        run the replay service: line-delimited JSON requests on
//!                stdin, one response line each on stdout (see README
//!                "Running as a service" for the schema); --jobs sets the
//!                worker count; --store DIR persists traces across
//!                restarts (the cache warm-starts from the directory)
//!   client ARGS  in-process client for the batch API: one query per
//!                listed workload name (duplicates exercise the trace
//!                cache), or `--demo` for a canned mixed batch; prints
//!                request lines, response lines, then a stats line
//!   query Q [W...]  run the online trace query Q (`<agg> [if <pred>]`,
//!                aggs: count, first, last, hist, watch) over the
//!                phase-1 trace of each named workload (default: the
//!                bench corpus) as a columnar pushdown scan — zone-maps
//!                skip refuted blocks undecoded; the per-workload
//!                query.blocks_scanned / query.blocks_skipped stats
//!                print in greppable `key=value` form; when Q carries a
//!                predicate, a predicated CodePatch pass follows,
//!                printing the cp.pred_filtered / cp.pred_fired
//!                counters the same way
//!   verify       run the DESIGN.md fidelity checklist (exit 1 on failure)
//!   perfgate     compare results/perf.json against results/perf.prev.json
//!                and fail if `harness.analyze` or `sim.replay`
//!                or the pushdown `query.ns_per_event` regressed — or
//!                the service-mix `server.batch_throughput` or the
//!                static-elision `cp.elision_rate` dropped — more than
//!                PERF_GATE_TOLERANCE_PCT percent (default 25);
//!                missing or unparsable snapshots pass (first-run
//!                friendly)
//!   perf         instrumented small-scale run; prints per-table
//!                wall-clock + simulated cycles (the machine's
//!                retired-instruction counter is the virtual clock),
//!                runs a service-mix batch so `server.*` counters and
//!                `server.batch_throughput` land in the snapshot,
//!                prints the telemetry snapshot, diffs it against the
//!                previous results/perf.json (kept as
//!                results/perf.prev.json), and writes the new
//!                results/perf.json
//!   sessions W   list surviving sessions of workload W
//!   dist W A     histogram of per-session overheads for workload W under
//!                approach A (nh, vm4k, vm8k, tp, cp)
//!   trace W F    run workload W and save its phase-1 trace to file F
//!                (columnar DBPT v2 when F ends in .dbpt, v1 binary when
//!                .bin, text otherwise)
//!   trace dump [--meta] F  decode a trace file (any format) and print it
//!                as text; --meta prints the columnar header, meta blob,
//!                and per-block zone-map summary without decoding any
//!                event column
//!   trace convert I O  re-encode trace file I as O (format by extension,
//!                as for `trace W F`); v1→v2 conversion is lossless
//!
//! options:
//!   --small           run scaled-down workloads (fast; for smoke tests)
//!   --csv DIR         also write each table as CSV into DIR
//!   --telemetry FMT   enable telemetry and dump a snapshot after the
//!                     command (FMT: text, json, csv)
//!   --jobs N          run up to N workloads in parallel (default: one
//!                     per available core); for `serve`/`client`, the
//!                     service worker count
//!   --stream          overlap phase 2 with phase 1: the traced run feeds
//!                     event batches through a bounded channel into a
//!                     concurrent replay (results are byte-identical)
//!   --page-sizes LIST comma-separated page-size ladder, e.g. 4K,8K,16K,32K
//!                     (4K and 8K are always included — the overhead
//!                     models need them; all sizes share one trace walk)
//!   --store DIR       persistent trace store directory for `serve`: cache
//!                     misses save their trace as DBPT v2 files and a
//!                     restarted server warm-starts from them (first repeat
//!                     request is a hit with zero phase-1 work)
//! ```

use databp_harness::figures::{figure, figure_ascii, Figure};
use databp_harness::overheads_for;
use databp_harness::render::TextTable;
use databp_harness::WorkloadResults;
use databp_harness::{analyze_all_opts, analyze_opts, default_jobs, AnalyzeOpts, Scale};
use databp_harness::{breakdown, dyncp, expansion, loopopt, nhcoverage, staticopt, tables};
use databp_machine::PageSize;
use databp_server::{Request, Server, ServerConfig};
use databp_telemetry::Snapshot;
use databp_workloads::Workload;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: repro [--small] [--csv DIR] [--telemetry FMT] [--jobs N] \
                     [--stream] [--page-sizes LIST] [--store DIR] <command>\n\
                     commands: all table1 table2 table3 table4 fig7 fig8 fig9 breakdown \
                     expansion loopopt staticopt dyncp nhcoverage ladder serve client query \
                     verify perf perfgate sessions dist trace tinyc\n\
                     (see the source header for details)";

/// Every valid subcommand — checked before any workload runs so an
/// unknown command fails fast with a nonzero exit.
const COMMANDS: &[&str] = &[
    "all",
    "table1",
    "table2",
    "table3",
    "table4",
    "fig7",
    "fig8",
    "fig9",
    "breakdown",
    "expansion",
    "loopopt",
    "staticopt",
    "dyncp",
    "nhcoverage",
    "ladder",
    "serve",
    "client",
    "query",
    "verify",
    "perf",
    "perfgate",
    "sessions",
    "dist",
    "trace",
    "tinyc",
];

#[derive(Clone, Copy, PartialEq, Eq)]
enum TelemetryFormat {
    Text,
    Json,
    Csv,
}

impl TelemetryFormat {
    fn parse(s: &str) -> Option<TelemetryFormat> {
        match s {
            "text" => Some(TelemetryFormat::Text),
            "json" => Some(TelemetryFormat::Json),
            "csv" => Some(TelemetryFormat::Csv),
            _ => None,
        }
    }

    fn render(self, snap: &Snapshot) -> String {
        match self {
            TelemetryFormat::Text => snap.to_text(),
            TelemetryFormat::Json => snap.to_json(),
            TelemetryFormat::Csv => snap.to_csv(),
        }
    }
}

struct Opts {
    scale: Scale,
    csv_dir: Option<PathBuf>,
    telemetry: Option<TelemetryFormat>,
    jobs: usize,
    stream: bool,
    ladder: Vec<PageSize>,
    store: Option<PathBuf>,
}

impl Opts {
    /// Pipeline options for this invocation.
    fn analyze(&self) -> AnalyzeOpts {
        AnalyzeOpts {
            stream: self.stream,
            ladder: self.ladder.clone(),
            // Threaded overlap on multicore hosts, inline replay on a
            // single core (a consumer thread would only context-switch).
            channel_batches: AnalyzeOpts::auto_channel_batches(),
            ..AnalyzeOpts::default()
        }
    }

    /// Service configuration for `serve`/`client`/the perf service mix.
    fn server(&self) -> ServerConfig {
        ServerConfig {
            workers: self.jobs.clamp(1, 8),
            // `--stream` opts the one-shot commands *into* streaming;
            // the service streams by default and the flag is a no-op.
            stream: true,
            store: self.store.clone(),
            ..ServerConfig::default()
        }
    }
}

fn emit(opts: &Opts, slug: &str, table: &TextTable) {
    println!("{}", table.render());
    if let Some(dir) = &opts.csv_dir {
        std::fs::create_dir_all(dir).expect("create csv dir");
        let path = dir.join(format!("{slug}.csv"));
        std::fs::write(&path, table.render_csv()).expect("write csv");
        println!("(csv written to {})\n", path.display());
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1).collect::<Vec<_>>();
    let mut opts = Opts {
        scale: Scale::Full,
        csv_dir: None,
        telemetry: None,
        jobs: default_jobs(),
        stream: false,
        ladder: vec![PageSize::K4, PageSize::K8],
        store: None,
    };
    if let Some(pos) = args.iter().position(|a| a == "--store") {
        args.remove(pos);
        if pos >= args.len() {
            eprintln!("--store needs a directory");
            return ExitCode::FAILURE;
        }
        opts.store = Some(PathBuf::from(args.remove(pos)));
    }
    if let Some(pos) = args.iter().position(|a| a == "--stream") {
        args.remove(pos);
        opts.stream = true;
    }
    if let Some(pos) = args.iter().position(|a| a == "--page-sizes") {
        args.remove(pos);
        if pos >= args.len() {
            eprintln!("--page-sizes needs a comma-separated list, e.g. 4K,8K,16K");
            return ExitCode::FAILURE;
        }
        let list = args.remove(pos);
        let mut ladder = Vec::new();
        for part in list.split(',') {
            let Some(ps) = PageSize::parse(part) else {
                eprintln!(
                    "--page-sizes: unknown page size '{part}' (expected one of 4K, 8K, 16K, 32K, 64K)"
                );
                return ExitCode::FAILURE;
            };
            ladder.push(ps);
        }
        // 4K and 8K are re-added by the pipeline if absent: the paper's
        // overhead models always need them.
        opts.ladder = ladder;
    }
    if let Some(pos) = args.iter().position(|a| a == "--small") {
        args.remove(pos);
        opts.scale = Scale::Small;
    }
    if let Some(pos) = args.iter().position(|a| a == "--csv") {
        args.remove(pos);
        if pos >= args.len() {
            eprintln!("--csv needs a directory");
            return ExitCode::FAILURE;
        }
        opts.csv_dir = Some(PathBuf::from(args.remove(pos)));
    }
    if let Some(pos) = args.iter().position(|a| a == "--telemetry") {
        args.remove(pos);
        if pos >= args.len() {
            eprintln!("--telemetry needs a format: text, json, or csv");
            return ExitCode::FAILURE;
        }
        let fmt = args.remove(pos);
        let Some(fmt) = TelemetryFormat::parse(&fmt) else {
            eprintln!("unknown telemetry format '{fmt}' (expected text, json, or csv)");
            return ExitCode::FAILURE;
        };
        opts.telemetry = Some(fmt);
    }
    if let Some(pos) = args.iter().position(|a| a == "--jobs") {
        args.remove(pos);
        if pos >= args.len() {
            eprintln!("--jobs needs a worker count");
            return ExitCode::FAILURE;
        }
        let n = args.remove(pos);
        let Ok(n) = n.parse::<usize>() else {
            eprintln!("--jobs: '{n}' is not a number");
            return ExitCode::FAILURE;
        };
        if n == 0 {
            eprintln!("--jobs must be at least 1");
            return ExitCode::FAILURE;
        }
        opts.jobs = n;
    }
    let Some(cmd) = args.first().map(String::as_str) else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    if !COMMANDS.contains(&cmd) {
        eprintln!("unknown command '{cmd}'\n{USAGE}");
        return ExitCode::FAILURE;
    }

    // `perf` enables telemetry itself; otherwise the flag controls it.
    if opts.telemetry.is_some() || cmd == "perf" {
        databp_telemetry::set_enabled(true);
        databp_telemetry::global().reset();
    }

    let code = run(cmd, &args, &opts);

    // For every command except `perf` (which prints its own snapshot),
    // `--telemetry` appends a dump of everything recorded.
    if cmd != "perf" {
        if let Some(fmt) = opts.telemetry {
            print!("{}", fmt.render(&databp_telemetry::global().snapshot()));
        }
    }
    code
}

fn run(cmd: &str, args: &[String], opts: &Opts) -> ExitCode {
    match cmd {
        "perf" => return perf(opts),
        "perfgate" => return perfgate(),
        "serve" => return serve_stdio(opts),
        "client" => return client(&args[1..], opts),
        "query" => return query_cmd(&args[1..], opts),
        "table2" => {
            // No workload runs needed.
            emit(opts, "table2", &tables::table2());
            return ExitCode::SUCCESS;
        }
        "dist" => {
            let (Some(name), Some(approach)) = (args.get(1), args.get(2)) else {
                eprintln!("usage: repro dist <workload> <nh|vm4k|vm8k|tp|cp>");
                return ExitCode::FAILURE;
            };
            let approach = match approach.as_str() {
                "nh" => databp_models::Approach::Nh,
                "vm4k" => databp_models::Approach::Vm4k,
                "vm8k" => databp_models::Approach::Vm8k,
                "tp" => databp_models::Approach::Tp,
                "cp" => databp_models::Approach::Cp,
                other => {
                    eprintln!("unknown approach '{other}'");
                    return ExitCode::FAILURE;
                }
            };
            let Some(w) = Workload::by_name(name) else {
                eprintln!("unknown workload '{name}'");
                return ExitCode::FAILURE;
            };
            let w = match opts.scale {
                Scale::Full => w,
                Scale::Small => w.scaled_down(),
            };
            let r = analyze_opts(&w, &opts.analyze());
            let ovs = overheads_for(&r, approach);
            let h = databp_stats::Histogram::from_samples(&ovs, 16);
            println!(
                "{name} under {approach}: {} sessions, relative overhead distribution",
                ovs.len()
            );
            print!("{}", h.render_ascii(48));
            let s = databp_stats::Summary::from_samples(&ovs);
            println!(
                "min={:.2} t-mean={:.2} mean={:.2} p90={:.2} p98={:.2} max={:.2}",
                s.min, s.t_mean, s.mean, s.p90, s.p98, s.max
            );
            return ExitCode::SUCCESS;
        }
        "trace" => return trace_cmd(&args[1..], opts),
        "tinyc" => {
            let (Some(flag), Some(name)) = (args.get(1), args.get(2)) else {
                eprintln!("usage: repro tinyc --dump-ssa <workload>");
                return ExitCode::FAILURE;
            };
            if flag != "--dump-ssa" {
                eprintln!("unknown tinyc flag '{flag}' (expected --dump-ssa)");
                return ExitCode::FAILURE;
            }
            let Some(w) = Workload::by_name(name) else {
                eprintln!("unknown workload '{name}'");
                return ExitCode::FAILURE;
            };
            let hir = match databp_tinyc::lower(w.source) {
                Ok(hir) => hir,
                Err(e) => {
                    eprintln!("workload '{name}' does not lower: {e}");
                    return ExitCode::FAILURE;
                }
            };
            print!("{}", databp_tinyc::ssa::dump(&hir));
            return ExitCode::SUCCESS;
        }
        "staticopt" => {
            // Own corpus resolution: the SSA elision table defaults to
            // the five paper workloads *plus* the bench kernels (where
            // pointer hoisting pays), and takes explicit names too.
            let mut workloads = Vec::new();
            if args.len() > 1 {
                for name in &args[1..] {
                    let Some(w) = Workload::by_name(name) else {
                        eprintln!("unknown workload '{name}'");
                        return ExitCode::FAILURE;
                    };
                    workloads.push(w);
                }
            } else {
                workloads.extend(Workload::all());
                workloads.extend(Workload::bench());
            }
            eprintln!(
                "running {} workload(s) for the staticopt comparison...",
                workloads.len()
            );
            let results: Vec<WorkloadResults> = workloads
                .into_iter()
                .map(|w| {
                    let w = match opts.scale {
                        Scale::Full => w,
                        Scale::Small => w.scaled_down(),
                    };
                    analyze_opts(&w, &opts.analyze())
                })
                .collect();
            emit(opts, "staticopt", &staticopt::staticopt_report(&results));
            return ExitCode::SUCCESS;
        }
        "sessions" => {
            let Some(name) = args.get(1) else {
                eprintln!("usage: repro sessions <workload>");
                return ExitCode::FAILURE;
            };
            let Some(w) = Workload::by_name(name) else {
                eprintln!("unknown workload '{name}' (cc, tex, spice, qcd, bps)");
                return ExitCode::FAILURE;
            };
            let w = match opts.scale {
                Scale::Full => w,
                Scale::Small => w.scaled_down(),
            };
            let r = analyze_opts(&w, &opts.analyze());
            println!(
                "{}: {} candidate sessions, {} with hits",
                name,
                r.candidates,
                r.sessions.len()
            );
            for (i, s) in r.sessions.iter().enumerate() {
                println!(
                    "  [{i:4}] {:+30} hits={:8} misses={:9}  {}",
                    s.to_string(),
                    r.counts4[i].hit,
                    r.counts4[i].miss,
                    s.describe(&r.prepared.plain.debug)
                );
            }
            return ExitCode::SUCCESS;
        }
        _ => {}
    }

    eprintln!(
        "running {} workloads across {} thread(s){} (this regenerates the paper's traces)...",
        match opts.scale {
            Scale::Full => "full-scale",
            Scale::Small => "scaled-down",
        },
        opts.jobs.min(Workload::all().len()),
        if opts.stream {
            ", streaming phase 2"
        } else {
            ""
        },
    );
    let results = analyze_all_opts(opts.scale, opts.jobs, &opts.analyze());
    eprintln!("workloads done.\n");

    let run_figures = |opts: &Opts, fig: Figure, slug: &str| {
        println!("{}", figure_ascii(&results, fig, 48));
        emit(opts, slug, &figure(&results, fig));
    };

    match cmd {
        "all" => {
            emit(opts, "table1", &tables::table1(&results));
            emit(opts, "table2", &tables::table2());
            emit(opts, "table3", &tables::table3(&results));
            emit(opts, "table4", &tables::table4(&results));
            run_figures(opts, Figure::Max, "fig7");
            run_figures(opts, Figure::P90, "fig8");
            run_figures(opts, Figure::TMean, "fig9");
            emit(opts, "breakdown", &breakdown::breakdown_table(&results));
            emit(opts, "expansion", &expansion::expansion_table(&results));
            emit(opts, "nhcoverage", &nhcoverage::coverage_table(&results));
            emit(opts, "loopopt", &loopopt::loopopt_table(&results, 3));
            emit(opts, "staticopt", &staticopt::staticopt_report(&results));
            emit(opts, "dyncp", &dyncp::dyncp_table(&results));
        }
        "table1" => emit(opts, "table1", &tables::table1(&results)),
        "table3" => emit(opts, "table3", &tables::table3(&results)),
        "table4" => emit(opts, "table4", &tables::table4(&results)),
        "fig7" => run_figures(opts, Figure::Max, "fig7"),
        "fig8" => run_figures(opts, Figure::P90, "fig8"),
        "fig9" => run_figures(opts, Figure::TMean, "fig9"),
        "breakdown" => emit(opts, "breakdown", &breakdown::breakdown_table(&results)),
        "expansion" => emit(opts, "expansion", &expansion::expansion_table(&results)),
        "nhcoverage" => emit(opts, "nhcoverage", &nhcoverage::coverage_table(&results)),
        "loopopt" => emit(opts, "loopopt", &loopopt::loopopt_table(&results, 3)),
        "dyncp" => emit(opts, "dyncp", &dyncp::dyncp_table(&results)),
        "ladder" => emit(opts, "ladder", &ladder_table(&results)),
        "verify" => {
            let checks = databp_harness::verify::verify(&results);
            let (text, all) = databp_harness::verify::render(&checks);
            println!("{text}");
            if !all {
                return ExitCode::FAILURE;
            }
        }
        other => unreachable!("command '{other}' passed validation but has no handler"),
    }
    ExitCode::SUCCESS
}

/// Encodes `trace` in the format `path`'s extension names: columnar
/// DBPT v2 for `.dbpt`, row-oriented v1 binary for `.bin`, text
/// otherwise. `meta` only survives into the v2 form (the other formats
/// have no meta slot).
fn encode_trace_as(trace: &databp_trace::Trace, meta: &[u8], path: &str) -> Vec<u8> {
    let mut buf = Vec::new();
    if path.ends_with(".dbpt") {
        databp_trace::write_columnar(trace, meta, &mut buf).expect("encode");
    } else if path.ends_with(".bin") {
        databp_trace::write_binary(trace, &mut buf).expect("encode");
    } else {
        databp_trace::write_text(trace, &mut buf).expect("encode");
    }
    buf
}

/// Decodes a trace file in any supported format: DBPT v1/v2 by magic,
/// falling back to the text form. Returns the trace plus the v2 meta
/// blob (empty for the other formats).
fn decode_trace_file(path: &str) -> Result<(databp_trace::Trace, Vec<u8>), String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    match databp_trace::read_any(&bytes) {
        Ok(out) => Ok(out),
        Err(binary_err) => match std::str::from_utf8(&bytes)
            .ok()
            .and_then(|text| databp_trace::read_text(text).ok())
        {
            Some(trace) => Ok((trace, Vec::new())),
            None => Err(format!("cannot decode {path}: {binary_err}")),
        },
    }
}

/// `trace dump --meta F`: print a DBPT v2 file's header, meta blob,
/// dictionary size, and per-block summary (event counts, encoded column
/// sizes, zone-map ranges) straight off the container framing — no
/// event column is ever decoded.
fn trace_dump_meta(path: &str) -> ExitCode {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("trace dump: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let reader = match databp_trace::ColumnarReader::open(&bytes) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("trace dump: {path} is not a DBPT columnar file: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "{path}: DBPT v{}, {} events, {} blocks, {} dict entries, {} meta bytes, zone maps: {}",
        reader.version(),
        reader.n_events(),
        reader.blocks().len(),
        reader.dict().len(),
        reader.meta().len(),
        if reader.zones().is_some() {
            "yes"
        } else {
            "no"
        }
    );
    if !reader.meta().is_empty() {
        println!("meta: {}", String::from_utf8_lossy(reader.meta()));
    }
    for (i, block) in reader.blocks().iter().enumerate() {
        let cols = block
            .column_sizes()
            .iter()
            .filter(|&&(_, n)| n > 0)
            .map(|&(name, n)| format!("{name}={n}B"))
            .collect::<Vec<_>>()
            .join(" ");
        print!("block[{i}] events={} {cols}", block.events());
        if let Some(zones) = reader.zones() {
            let z = &zones[i];
            print!(
                " | writes={} installs={} removes={} enters={} exits={}",
                z.writes, z.installs, z.removes, z.enters, z.exits
            );
            if let Some((lo, hi)) = z.write_pc_range() {
                print!(" pc=[{lo:#x},{hi:#x}]");
            }
            if let Some((lo, hi)) = z.write_value_range() {
                print!(" value=[{lo},{hi}]");
            }
        }
        println!();
    }
    ExitCode::SUCCESS
}

/// The `trace` subcommand family: `trace W F` runs a workload and saves
/// its phase-1 trace; `trace dump F` decodes any trace file to text
/// (`--meta` prints the columnar container summary without decoding
/// event columns); `trace convert I O` re-encodes between the text, v1
/// binary, and v2 columnar forms.
fn trace_cmd(args: &[String], opts: &Opts) -> ExitCode {
    match args.first().map(String::as_str) {
        Some("dump") => {
            let rest: Vec<&String> = args[1..].iter().filter(|a| *a != "--meta").collect();
            let meta_only = rest.len() < args.len() - 1;
            let Some(&path) = rest.first() else {
                eprintln!("usage: repro trace dump [--meta] <file>");
                return ExitCode::FAILURE;
            };
            if meta_only {
                return trace_dump_meta(path);
            }
            let (trace, meta) = match decode_trace_file(path) {
                Ok(out) => out,
                Err(e) => {
                    eprintln!("trace dump: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let st = trace.stats();
            eprintln!(
                "{path}: {} events ({} writes, {} installs), {} meta bytes",
                trace.len(),
                st.writes,
                st.installs,
                meta.len()
            );
            let mut out = Vec::new();
            databp_trace::write_text(&trace, &mut out).expect("encode");
            print!("{}", String::from_utf8(out).expect("text form is UTF-8"));
            ExitCode::SUCCESS
        }
        Some("convert") => {
            let (Some(input), Some(output)) = (args.get(1), args.get(2)) else {
                eprintln!("usage: repro trace convert <in> <out>");
                return ExitCode::FAILURE;
            };
            let (trace, meta) = match decode_trace_file(input) {
                Ok(out) => out,
                Err(e) => {
                    eprintln!("trace convert: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let buf = encode_trace_as(&trace, &meta, output);
            std::fs::write(output, &buf).expect("write trace file");
            println!(
                "{input}: {} events -> {output} ({} bytes)",
                trace.len(),
                buf.len()
            );
            ExitCode::SUCCESS
        }
        Some(name) => {
            let Some(path) = args.get(1) else {
                eprintln!("usage: repro trace <workload> <file>");
                return ExitCode::FAILURE;
            };
            let Some(w) = Workload::by_name(name) else {
                eprintln!("unknown workload '{name}'");
                return ExitCode::FAILURE;
            };
            let w = match opts.scale {
                Scale::Full => w,
                Scale::Small => w.scaled_down(),
            };
            let p = databp_workloads::prepare(&w).expect("workload runs");
            let buf = encode_trace_as(&p.trace, &[], path);
            std::fs::write(path, &buf).expect("write trace file");
            let st = p.trace.stats();
            println!(
                "{}: {} events ({} writes, {} installs) -> {} ({} bytes)",
                name,
                p.trace.len(),
                st.writes,
                st.installs,
                path,
                buf.len()
            );
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("usage: repro trace <workload> <file> | trace dump <file> | trace convert <in> <out>");
            ExitCode::FAILURE
        }
    }
}

/// The `serve` subcommand: the replay service on stdin/stdout. One
/// request per line in, one response per line out, in input order;
/// EOF drains the queue and exits cleanly.
fn serve_stdio(opts: &Opts) -> ExitCode {
    let cfg = opts.server();
    eprintln!(
        "replay service ready: {} workers, queue depth {}, {}MiB trace cache{} \
         (one JSON request per line on stdin; Ctrl-D to finish)",
        cfg.workers,
        cfg.queue_depth,
        cfg.cache_bytes >> 20,
        match &cfg.store {
            Some(dir) => format!(", trace store at {}", dir.display()),
            None => String::new(),
        }
    );
    let server = Server::start(cfg);
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    match databp_server::serve(&server, stdin.lock(), &mut stdout) {
        Ok(handled) => {
            let stats = server.stats();
            eprintln!(
                "served {handled} request(s): {} hits, {} misses, {} rewalks, {} rejected",
                stats.cache_hits, stats.cache_misses, stats.cache_rewalks, stats.rejected
            );
            server.shutdown();
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("serve: I/O error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The `client` subcommand: an in-process batch-API client. Builds one
/// query per listed workload name (at the invocation's scale and
/// ladder), pipes the request lines through a fresh service, and
/// prints each request/response pair plus a trailing stats probe —
/// the same bytes a networked client would see.
fn client(args: &[String], opts: &Opts) -> ExitCode {
    let names: Vec<String> = if args.iter().any(|a| a == "--demo") {
        // Canned mix: duplicates hit the cache, the spread exercises
        // every strategy column.
        ["cc", "tex", "cc", "tex", "cc"]
            .iter()
            .map(|s| s.to_string())
            .collect()
    } else if args.is_empty() {
        eprintln!("usage: repro client <workload>... | repro client --demo");
        return ExitCode::FAILURE;
    } else {
        args.to_vec()
    };
    let mut lines = String::new();
    for (i, name) in names.iter().enumerate() {
        let req = Request {
            id: format!("q{}", i + 1),
            workload: name.clone(),
            scale: opts.scale,
            strategies: Vec::new(),
            page_sizes: opts.ladder.clone(),
            overheads: false,
            query: None,
        };
        lines.push_str(&req.to_json_line());
        lines.push('\n');
    }
    lines.push_str("{\"stats\":true}\n");

    let server = Server::start(opts.server());
    let mut out = Vec::new();
    if let Err(e) = databp_server::serve(&server, std::io::Cursor::new(lines.as_bytes()), &mut out)
    {
        eprintln!("client: I/O error: {e}");
        return ExitCode::FAILURE;
    }
    server.shutdown();
    let responses = String::from_utf8(out).expect("responses are UTF-8");
    for (req_line, resp_line) in lines.lines().zip(responses.lines()) {
        println!("> {req_line}");
        println!("< {resp_line}");
    }
    ExitCode::SUCCESS
}

/// The `query` subcommand: parses the query once, then for each
/// workload runs phase 1 and feeds the trace through the online
/// [`QueryEngine`](databp_sim::QueryEngine) — no monitor replay, no
/// overhead models. When the query carries a predicate, a predicated
/// CodePatch pass (monitoring everything) follows so the inline-check
/// predicate counters are exercised end to end; they print as
/// `key=value` pairs for scripts and the CI smoke step to grep.
fn query_cmd(args: &[String], opts: &Opts) -> ExitCode {
    let Some(qsrc) = args.first() else {
        eprintln!(
            "usage: repro query '<agg> [if <predicate>]' [workload...]\n\
             aggs: count, first, last, hist, watch; default workloads: the bench corpus"
        );
        return ExitCode::FAILURE;
    };
    let parsed = match databp_sim::Query::parse(qsrc) {
        Ok(q) => q,
        Err(e) => {
            eprintln!("bad query: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut workloads = Vec::new();
    if args.len() > 1 {
        for name in &args[1..] {
            let Some(w) = Workload::by_name(name) else {
                let known: Vec<&str> = Workload::all()
                    .iter()
                    .chain(Workload::bench().iter())
                    .map(|w| w.name)
                    .collect();
                eprintln!("unknown workload '{name}'; available: {}", known.join(", "));
                return ExitCode::FAILURE;
            };
            workloads.push(w);
        }
    } else {
        workloads.extend(Workload::bench());
    }
    for w in workloads {
        let w = match opts.scale {
            Scale::Full => w,
            Scale::Small => w.scaled_down(),
        };
        let name = w.name;
        let prepared = match databp_workloads::prepare(&w) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("workload '{name}' failed to run: {e}");
                return ExitCode::FAILURE;
            }
        };
        let debug = &prepared.plain.debug;
        let writers = databp_core::WriterMap::new(
            debug
                .functions
                .iter()
                .enumerate()
                .map(|(id, f)| (f.entry_pc, id as u16)),
        );
        let (result, stats) = match databp_sim::scan_query(
            prepared.columnar_bytes(),
            qsrc,
            |n| debug.func_id(n),
            &writers,
            opts.jobs.max(1),
        ) {
            Ok(out) => out,
            Err(e) => {
                eprintln!("query failed on '{name}': {e}");
                return ExitCode::FAILURE;
            }
        };
        println!("query[{name}] {result} (writes={})", stats.writes);
        println!(
            "query[{name}] query.blocks_scanned={} query.blocks_skipped={}",
            stats.blocks_scanned, stats.blocks_skipped
        );
        let Some(psrc) = parsed.predicate_src() else {
            continue;
        };
        let build = prepared.codepatch();
        let pred = match databp_core::Predicate::parse(psrc)
            .expect("predicate re-parses")
            .compile(|n| build.debug.func_id(n))
        {
            Ok(p) => p,
            Err(e) => {
                eprintln!("query predicate does not resolve in '{name}': {e}");
                return ExitCode::FAILURE;
            }
        };
        let mut m = databp_machine::Machine::new();
        m.load(&build.program);
        m.set_args(w.args.clone());
        let rep = databp_core::CodePatch::default()
            .with_predicate(pred)
            .run(
                &mut m,
                &build.debug,
                &databp_core::MonitorEverything,
                w.max_steps * 2,
            )
            .expect("CodePatch run failed");
        println!(
            "query[{name}] cp.pred_filtered={} cp.pred_fired={} cp.pred_dead_skips={} notifications={}",
            rep.pred_filtered + rep.pred_dead_skips,
            rep.pred_fired,
            rep.pred_dead_skips,
            rep.notification_count
        );
    }
    ExitCode::SUCCESS
}

/// The `perf` subcommand: a fully instrumented small-scale pass over
/// every experiment. The registry is reset first, so counters reflect
/// exactly this run (and are deterministic run to run); spans and the
/// derived rates carry the host's wall-clock timings.
///
/// Each table is timed on two clocks: host wall time and *simulated
/// cycles*, the delta of the machine's retired-instruction counter.
/// Tables that only do arithmetic over the collected results burn zero
/// simulated cycles; the ones that execute CodePatch (loopopt,
/// staticopt, dyncp) show exactly how much virtual work they re-run.
/// The deltas land in `perf.vcycles.*` counters before the snapshot is
/// taken, so the trajectory diff tracks them like any other counter.
///
/// After the tables, a *service-mix* phase drives an in-process replay
/// service with a duplicate-heavy batch so the `server.*` counters
/// appear in the snapshot and the batch rate lands as the
/// `server.batch_throughput` derived metric (gated by `perfgate`).
fn perf(opts: &Opts) -> ExitCode {
    eprintln!("running scaled-down workloads under telemetry...");
    let vclock = || {
        databp_telemetry::global()
            .counter("machine.instructions.retired")
            .get()
    };
    let mut vrows: Vec<(&'static str, f64, u64)> = Vec::new();
    // Evaluates one table expression under both clocks and records the
    // simulated-cycle delta as a `perf.vcycles.<slug>` counter.
    macro_rules! timed {
        ($slug:literal, $table:expr) => {{
            let t0 = std::time::Instant::now();
            let v0 = vclock();
            let table = $table;
            let dv = vclock() - v0;
            databp_telemetry::global()
                .counter(concat!("perf.vcycles.", $slug))
                .add_always(dv);
            vrows.push(($slug, t0.elapsed().as_secs_f64(), dv));
            ($slug, table)
        }};
    }

    let wall = std::time::Instant::now();
    let v_start = vclock();
    // perf always takes the streaming pipeline — it is the configuration
    // whose counters (`pipeline.*`) and spans the snapshot is meant to
    // track — and keeps the teed trace because loopopt/staticopt/dyncp
    // below re-execute against it.
    let results = analyze_all_opts(
        Scale::Small,
        opts.jobs,
        &AnalyzeOpts {
            stream: true,
            keep_trace: true,
            ladder: opts.ladder.clone(),
            channel_batches: AnalyzeOpts::auto_channel_batches(),
            // Wider batches amortize the replay engine's cache refill
            // per feed; ~1 MiB of buffering is still far below a
            // materialized trace.
            batch_events: 64 * 1024,
        },
    );
    let dv = vclock() - v_start;
    databp_telemetry::global()
        .counter("perf.vcycles.workloads")
        .add_always(dv);
    vrows.push(("workloads", wall.elapsed().as_secs_f64(), dv));

    // Exercise every harness path so each `harness.*` span is recorded;
    // the tables themselves go to the CSV dir if requested, not stdout.
    let tables = [
        timed!("table1", tables::table1(&results)),
        timed!("table2", tables::table2()),
        timed!("table3", tables::table3(&results)),
        timed!("table4", tables::table4(&results)),
        timed!("fig7", figure(&results, Figure::Max)),
        timed!("fig8", figure(&results, Figure::P90)),
        timed!("fig9", figure(&results, Figure::TMean)),
        timed!("breakdown", breakdown::breakdown_table(&results)),
        timed!("expansion", expansion::expansion_table(&results)),
        timed!("nhcoverage", nhcoverage::coverage_table(&results)),
        timed!("loopopt", loopopt::loopopt_table(&results, 3)),
        timed!("staticopt", staticopt::staticopt_report(&results)),
        // The bench kernels join the staticopt phase: their
        // pointer-heavy loops are where SSA hoisting pays, and their
        // cp.stores_* counters pool with the paper workloads' to form
        // the gated cp.elision_rate metric.
        timed!("staticopt-bench", {
            let bench: Vec<WorkloadResults> = Workload::bench()
                .into_iter()
                .map(|w| {
                    analyze_opts(
                        &w.scaled_down(),
                        &AnalyzeOpts {
                            stream: true,
                            keep_trace: true,
                            channel_batches: AnalyzeOpts::auto_channel_batches(),
                            ..AnalyzeOpts::default()
                        },
                    )
                })
                .collect();
            staticopt::staticopt_report(&bench)
        }),
        timed!("dyncp", dyncp::dyncp_table(&results)),
    ];
    if let Some(dir) = &opts.csv_dir {
        std::fs::create_dir_all(dir).expect("create csv dir");
        for (slug, table) in &tables {
            std::fs::write(dir.join(format!("{slug}.csv")), table.render_csv()).expect("write csv");
        }
    }

    // Service-mix phase: the same duplicate-heavy batch the CI smoke
    // step sends, driven through a fresh in-process service. Two
    // distinct workloads trace (cache misses), the duplicates hit, and
    // one widened ladder forces a rewalk — so every `server.cache.*`
    // counter is exercised and lands in the snapshot below.
    let batch_secs = {
        let t0 = std::time::Instant::now();
        let v0 = vclock();
        let server = Server::start(ServerConfig {
            workers: opts.jobs.clamp(1, 4),
            ..ServerConfig::default()
        });
        let mut batch = vec![
            Request::simple("mix1", "cc", Scale::Small),
            Request::simple("mix2", "tex", Scale::Small),
            Request::simple("mix3", "cc", Scale::Small),
            Request::simple("mix4", "tex", Scale::Small),
            Request::simple("mix5", "cc", Scale::Small),
        ];
        batch[4].page_sizes = vec![PageSize::K16]; // rewalk, not re-trace
        let n = batch.len();
        let responses = server.submit_batch(batch);
        let failed = responses.iter().filter(|r| !r.ok).count();
        if failed > 0 {
            eprintln!("perf: {failed}/{n} service-mix requests failed");
        }
        server.shutdown();
        let secs = t0.elapsed().as_secs_f64();
        vrows.push(("server-mix", secs, vclock() - v0));
        secs
    };

    // Bench-corpus replay phase: trace the four benchmark workloads,
    // round-trip each trace through a TraceStore (so the
    // `trace.store.*` counters land in the snapshot), and replay the
    // *loaded* trace at a three-size ladder. The `sim.replay` span this
    // accumulates — together with the Table 1 replays above — is the
    // lane-packed engine's gated latency metric.
    {
        let t0 = std::time::Instant::now();
        let v0 = vclock();
        let dir = std::env::temp_dir().join(format!("databp-perf-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = databp_trace::TraceStore::open(&dir).expect("open perf trace store");
        for w in Workload::bench() {
            let w = w.scaled_down();
            let p = databp_workloads::prepare(&w).expect("workload runs");
            let key = p.workload.workload_hash();
            store.save(key, &p.trace, &[]).expect("save bench trace");
            let (trace, _meta) = store
                .load(key)
                .expect("load bench trace")
                .expect("entry exists");
            assert_eq!(trace.len(), p.trace.len(), "store round-trip lost events");
            let _ = databp_harness::reanalyze(&p, &[PageSize::K4, PageSize::K8, PageSize::K16]);
        }
        let _ = std::fs::remove_dir_all(&dir);
        vrows.push(("bench-replay", t0.elapsed().as_secs_f64(), vclock() - v0));
    }

    // Predicate phase: one online trace query plus a predicated
    // CodePatch pass over a bench kernel, so the inline-check predicate
    // counters (`cp.pred_filtered`, `cp.pred_fired`) land in the
    // snapshot and the trajectory diff tracks them.
    {
        let t0 = std::time::Instant::now();
        let v0 = vclock();
        let w = Workload::by_name("fib")
            .expect("bench workload exists")
            .scaled_down();
        let p = databp_workloads::prepare(&w).expect("workload runs");
        let debug = &p.plain.debug;
        let writers = databp_core::WriterMap::new(
            debug
                .functions
                .iter()
                .enumerate()
                .map(|(id, f)| (f.entry_pc, id as u16)),
        );
        databp_sim::run_query(
            "count if value > 5",
            p.trace.events(),
            |n| debug.func_id(n),
            writers,
        )
        .expect("perf query runs");
        let build = p.codepatch();
        let pred = databp_core::Predicate::parse("value > 5")
            .expect("perf predicate parses")
            .compile(|n| build.debug.func_id(n))
            .expect("perf predicate compiles");
        let mut m = databp_machine::Machine::new();
        m.load(&build.program);
        m.set_args(w.args.clone());
        databp_core::CodePatch::default()
            .with_predicate(pred)
            .run(
                &mut m,
                &build.debug,
                &databp_core::MonitorEverything,
                w.max_steps * 2,
            )
            .expect("predicated CodePatch run");
        vrows.push(("predicates", t0.elapsed().as_secs_f64(), vclock() - v0));
    }

    // Query phase: the same query mix over the bench corpus' cached
    // columnar traces, answered twice from the encoded bytes — once by
    // full decode + the event-at-a-time engine (what the server's query
    // path did before pushdown), once by the zone-mapped pushdown scan
    // — so the snapshot carries both `query.ns_per_event` (pushdown,
    // gated) and `query.fullscan_ns_per_event` (baseline), plus the
    // `query.blocks_scanned` / `query.blocks_skipped` counters the CI
    // smoke step pins nonzero.
    let query_rates = {
        let t0 = std::time::Instant::now();
        let v0 = vclock();
        const QUERIES: &[&str] = &[
            "count",
            "count if value > 100000000",
            "count if value > 1000",
            "first if value > 100000000",
            "hist if old < 16",
        ];
        const REPS: u32 = 5;
        let corpus: Vec<databp_workloads::Prepared> = Workload::bench()
            .into_iter()
            .map(|w| databp_workloads::prepare(&w.scaled_down()).expect("workload runs"))
            .collect();
        let mut full_ns = 0u64;
        let mut push_ns = 0u64;
        let mut events = 0u64;
        for p in &corpus {
            let debug = &p.plain.debug;
            let writers = databp_core::WriterMap::new(
                debug
                    .functions
                    .iter()
                    .enumerate()
                    .map(|(id, f)| (f.entry_pc, id as u16)),
            );
            let bytes = p.columnar_bytes().clone();
            for q in QUERIES {
                for _ in 0..REPS {
                    let t = std::time::Instant::now();
                    let (decoded, _) =
                        databp_trace::read_columnar(&bytes).expect("perf trace decodes");
                    let full = databp_sim::run_query(
                        q,
                        decoded.events(),
                        |n| debug.func_id(n),
                        writers.clone(),
                    )
                    .expect("perf query runs");
                    full_ns += t.elapsed().as_nanos() as u64;
                    let t = std::time::Instant::now();
                    let (pushed, _) =
                        databp_sim::scan_query(&bytes, q, |n| debug.func_id(n), &writers, 1)
                            .expect("perf pushdown query runs");
                    push_ns += t.elapsed().as_nanos() as u64;
                    assert_eq!(
                        pushed, full,
                        "pushdown diverged on `{q}` over {}",
                        p.workload.name
                    );
                    events += p.trace.len() as u64;
                }
            }
        }
        vrows.push(("queries", t0.elapsed().as_secs_f64(), vclock() - v0));
        (events, full_ns, push_ns)
    };
    let wall_secs = wall.elapsed().as_secs_f64();
    eprintln!("workloads done in {wall_secs:.2}s.\n");

    let mut vt = TextTable::new(
        "per-phase wall-clock and simulated cycles (retired instructions)",
        &["phase", "wall", "simulated cycles"],
    );
    for (slug, secs, dv) in &vrows {
        vt.row(vec![
            slug.to_string(),
            format!("{:.1}ms", secs * 1e3),
            dv.to_string(),
        ]);
    }

    let mut snap = databp_telemetry::global().snapshot();
    let instructions = snap.counter("machine.instructions.retired").unwrap_or(0);
    let events = snap.counter("sim.events.replayed").unwrap_or(0);
    let replay_secs = snap
        .span("sim.replay")
        .map_or(0.0, |s| s.total_ns as f64 / 1e9);
    snap.push_derived("wall_seconds", wall_secs);
    if replay_secs > 0.0 {
        snap.push_derived("events_per_sec", events as f64 / replay_secs);
    }
    if wall_secs > 0.0 {
        snap.push_derived("instructions_per_sec", instructions as f64 / wall_secs);
    }
    if batch_secs > 0.0 {
        snap.push_derived("server.batch_throughput", 5.0 / batch_secs);
    }
    // Static-elision effectiveness over the staticopt phases (paper +
    // bench corpus): the fraction of traced stores — each counted once,
    // in the plain-CP baseline run — whose check the optimized variant
    // either statically elided or skipped behind a dominating preheader
    // guard. Matches the staticopt TOTAL row's rate column. Gated by
    // `perfgate` — the analysis must not silently lose precision.
    let traced = snap.counter("staticopt.stores_base").unwrap_or(0);
    let elided = snap.counter("staticopt.stores_elided").unwrap_or(0);
    let hoisted = snap.counter("staticopt.stores_hoisted").unwrap_or(0);
    if traced > 0 {
        snap.push_derived("cp.elision_rate", (elided + hoisted) as f64 / traced as f64);
    }
    // Query-pushdown latency over the bench corpus (lower is better,
    // gated) against its own full-scan baseline; the speedup ratio is
    // the acceptance headline.
    let (q_events, q_full_ns, q_push_ns) = query_rates;
    if q_events > 0 {
        snap.push_derived("query.ns_per_event", q_push_ns as f64 / q_events as f64);
        snap.push_derived(
            "query.fullscan_ns_per_event",
            q_full_ns as f64 / q_events as f64,
        );
        if q_push_ns > 0 {
            snap.push_derived("query.speedup", q_full_ns as f64 / q_push_ns as f64);
        }
    }

    let fmt = opts.telemetry.unwrap_or(TelemetryFormat::Text);
    // The dual-clock table is commentary; keep stdout machine-readable
    // when a structured snapshot format was requested.
    if matches!(fmt, TelemetryFormat::Text) {
        println!("{}", vt.render());
    } else {
        eprintln!("{}", vt.render());
    }
    print!("{}", fmt.render(&snap));

    // Tracked regression baseline: the previous snapshot (if any) moves
    // to results/perf.prev.json and a counter/span diff is printed, so
    // each run shows its trajectory against the last one.
    if let Err(e) = std::fs::create_dir_all("results") {
        eprintln!("perf: cannot create results dir: {e}");
        return ExitCode::FAILURE;
    }
    match load_snapshot("results/perf.json") {
        Ok(Some((baseline, text))) => {
            if let Err(e) = std::fs::write("results/perf.prev.json", text) {
                eprintln!("perf: cannot write results/perf.prev.json: {e}");
                return ExitCode::FAILURE;
            }
            let diff = perf_diff(&baseline, &snap).render();
            // With a machine-readable snapshot format on stdout, the diff
            // table is progress commentary and belongs on stderr.
            if matches!(fmt, TelemetryFormat::Text) {
                println!("{diff}");
            } else {
                eprintln!("{diff}");
            }
        }
        Ok(None) => {
            // First run: nothing to diff against is a clean start, not
            // an error.
            eprintln!(
                "(no previous results/perf.json — baseline created; run `repro perf` again \
                 for a trajectory diff)"
            );
        }
        Err(e) => eprintln!("(ignoring previous results/perf.json: {e})"),
    }
    if let Err(e) = std::fs::write("results/perf.json", snap.to_json()) {
        eprintln!("perf: cannot write results/perf.json: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("(snapshot written to results/perf.json; baseline kept in results/perf.prev.json)");
    ExitCode::SUCCESS
}

/// The `ladder` subcommand's table: per-workload, per-page-size sums of
/// the size-dependent counting variables. Hits and misses are
/// page-size-independent (one column each); the VM columns show how the
/// ladder trades protection traffic against active-page misses as pages
/// coarsen — all sizes measured in the same single trace walk.
fn ladder_table(results: &[WorkloadResults]) -> TextTable {
    let mut t = TextTable::new(
        "page-size ladder sweep (sums over surviving sessions; one trace walk per workload)",
        &[
            "workload",
            "page size",
            "sessions",
            "hits",
            "misses",
            "vm protects",
            "vm unprotects",
            "active-page misses",
        ],
    );
    for r in results {
        for (k, ps) in r.ladder.iter().enumerate() {
            let row = &r.ladder_counts[k];
            let sum = |f: fn(&databp_models::Counts) -> u64| -> u64 { row.iter().map(f).sum() };
            t.row(vec![
                r.prepared.workload.name.to_string(),
                ps.to_string(),
                row.len().to_string(),
                sum(|c| c.hit).to_string(),
                sum(|c| c.miss).to_string(),
                sum(|c| c.vm_protect).to_string(),
                sum(|c| c.vm_unprotect).to_string(),
                sum(|c| c.vm_active_page_miss).to_string(),
            ]);
        }
    }
    t
}

/// Loads a telemetry snapshot from `path`. `Ok(None)` means the file
/// does not exist (a fresh checkout — callers treat it as "no
/// baseline"); `Err` means it exists but cannot be read or parsed
/// (corrupt or truncated — reported cleanly, never a panic). The raw
/// text rides along for callers that rotate the file.
fn load_snapshot(path: &str) -> Result<Option<(Snapshot, String)>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(format!("cannot read {path}: {e}")),
    };
    match Snapshot::from_json(&text) {
        Ok(s) => Ok(Some((s, text))),
        Err(e) => Err(format!("unparsable {path}: {e}")),
    }
}

/// The `perfgate` subcommand: CI's perf-smoke gate. Compares
/// results/perf.json against results/perf.prev.json and fails on a
/// real regression beyond the tolerance (`PERF_GATE_TOLERANCE_PCT`,
/// default 25) in any gated metric: the `harness.analyze` span
/// (one-shot pipeline latency, lower is better), the `sim.replay` span
/// (lane-packed replay engine latency, lower is better), the
/// `server.batch_throughput` derived rate (service-mix requests/sec,
/// higher is better), the `cp.elision_rate` derived ratio (fraction
/// of traced stores whose check the static pass removes — higher is
/// better; a drop means the analysis lost precision), or the
/// `query.ns_per_event` derived rate (pushdown query latency over the
/// bench corpus, lower is better). A missing or
/// unparsable snapshot on either side passes — a fresh checkout has no
/// baseline, and that must not break the build.
fn perfgate() -> ExitCode {
    let tolerance: f64 = std::env::var("PERF_GATE_TOLERANCE_PCT")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(25.0);
    let load = |path: &str| -> Option<Snapshot> {
        match load_snapshot(path) {
            Ok(Some((snap, _))) => Some(snap),
            Ok(None) => {
                eprintln!("perfgate: no {path} — pass (run `repro perf` twice to arm the gate)");
                None
            }
            Err(e) => {
                eprintln!("perfgate: {e} — pass");
                None
            }
        }
    };
    let (Some(cur), Some(prev)) = (load("results/perf.json"), load("results/perf.prev.json"))
    else {
        return ExitCode::SUCCESS;
    };
    let mut failed = false;

    // Gate 1: one-shot pipeline latency (lower is better).
    let analyze_ms = |s: &Snapshot| s.span("harness.analyze").map(|sp| sp.total_ns as f64 / 1e6);
    match (analyze_ms(&cur), analyze_ms(&prev)) {
        (Some(cur_ms), Some(prev_ms)) if prev_ms > 0.0 => {
            let change = (cur_ms - prev_ms) / prev_ms * 100.0;
            println!(
                "perfgate: harness.analyze {prev_ms:.3}ms -> {cur_ms:.3}ms ({change:+.1}%), \
                 tolerance +{tolerance:.0}%"
            );
            if change > tolerance {
                eprintln!("perfgate: FAIL — harness.analyze regressed beyond the tolerance");
                failed = true;
            }
        }
        _ => eprintln!("perfgate: no harness.analyze baseline — span gate skipped"),
    }

    // Gate 2: lane-packed replay latency (lower is better). The
    // `sim.replay` span sums every phase-2 walk of the perf run — the
    // Table 1 streamed replays plus the bench-corpus replay phase.
    let replay_ms = |s: &Snapshot| s.span("sim.replay").map(|sp| sp.total_ns as f64 / 1e6);
    match (replay_ms(&cur), replay_ms(&prev)) {
        (Some(cur_ms), Some(prev_ms)) if prev_ms > 0.0 => {
            let change = (cur_ms - prev_ms) / prev_ms * 100.0;
            println!(
                "perfgate: sim.replay {prev_ms:.3}ms -> {cur_ms:.3}ms ({change:+.1}%), \
                 tolerance +{tolerance:.0}%"
            );
            if change > tolerance {
                eprintln!("perfgate: FAIL — sim.replay regressed beyond the tolerance");
                failed = true;
            }
        }
        _ => eprintln!("perfgate: no sim.replay baseline — replay gate skipped"),
    }

    // Gate 3: service-mix batch throughput (higher is better; a *drop*
    // beyond the tolerance fails).
    let throughput = |s: &Snapshot| {
        s.derived
            .iter()
            .find(|(n, _)| n == "server.batch_throughput")
            .map(|&(_, v)| v)
    };
    match (throughput(&cur), throughput(&prev)) {
        (Some(cur_rps), Some(prev_rps)) if prev_rps > 0.0 => {
            let change = (cur_rps - prev_rps) / prev_rps * 100.0;
            println!(
                "perfgate: server.batch_throughput {prev_rps:.2}req/s -> {cur_rps:.2}req/s \
                 ({change:+.1}%), tolerance -{tolerance:.0}%"
            );
            if change < -tolerance {
                eprintln!("perfgate: FAIL — server.batch_throughput dropped beyond the tolerance");
                failed = true;
            }
        }
        _ => eprintln!("perfgate: no server.batch_throughput baseline — throughput gate skipped"),
    }

    // Gate 4: static check elision rate (higher is better; a *drop*
    // beyond the tolerance fails — a looser alias analysis or a broken
    // hoist planner silently re-checking stores is a regression even
    // though every run still passes its soundness oracle).
    let elision = |s: &Snapshot| {
        s.derived
            .iter()
            .find(|(n, _)| n == "cp.elision_rate")
            .map(|&(_, v)| v)
    };
    match (elision(&cur), elision(&prev)) {
        (Some(cur_rate), Some(prev_rate)) if prev_rate > 0.0 => {
            let change = (cur_rate - prev_rate) / prev_rate * 100.0;
            println!(
                "perfgate: cp.elision_rate {:.1}% -> {:.1}% ({change:+.1}%), \
                 tolerance -{tolerance:.0}%",
                prev_rate * 100.0,
                cur_rate * 100.0
            );
            if change < -tolerance {
                eprintln!("perfgate: FAIL — cp.elision_rate dropped beyond the tolerance");
                failed = true;
            }
        }
        _ => eprintln!("perfgate: no cp.elision_rate baseline — elision gate skipped"),
    }

    // Gate 5: query-pushdown latency (lower is better). The perf run's
    // query phase answers the bench-corpus query mix from the columnar
    // bytes; losing block skipping or lazy column decode shows up here.
    let query_ns = |s: &Snapshot| {
        s.derived
            .iter()
            .find(|(n, _)| n == "query.ns_per_event")
            .map(|&(_, v)| v)
    };
    match (query_ns(&cur), query_ns(&prev)) {
        (Some(cur_ns), Some(prev_ns)) if prev_ns > 0.0 => {
            let change = (cur_ns - prev_ns) / prev_ns * 100.0;
            println!(
                "perfgate: query.ns_per_event {prev_ns:.2}ns -> {cur_ns:.2}ns ({change:+.1}%), \
                 tolerance +{tolerance:.0}%"
            );
            if change > tolerance {
                eprintln!("perfgate: FAIL — query.ns_per_event regressed beyond the tolerance");
                failed = true;
            }
        }
        _ => eprintln!("perfgate: no query.ns_per_event baseline — query gate skipped"),
    }

    if failed {
        return ExitCode::FAILURE;
    }
    println!("perfgate: ok");
    ExitCode::SUCCESS
}

/// Counter and span trajectory between two `repro perf` snapshots.
///
/// Counters are compared by value; spans by total wall time (count
/// alongside). Rows appear for every name in either snapshot, in the
/// snapshots' own (sorted) order, so the table is deterministic.
fn perf_diff(prev: &Snapshot, cur: &Snapshot) -> TextTable {
    let mut t = TextTable::new(
        "perf trajectory vs previous results/perf.json",
        &["metric", "previous", "current", "change"],
    );
    let pct = |old: f64, new: f64| -> String {
        if old == 0.0 {
            if new == 0.0 {
                "=".to_string()
            } else {
                "new".to_string()
            }
        } else {
            format!("{:+.1}%", (new - old) / old * 100.0)
        }
    };
    let mut counter_names: Vec<&str> = prev
        .counters
        .iter()
        .chain(&cur.counters)
        .map(|(n, _)| n.as_str())
        .collect();
    counter_names.sort_unstable();
    counter_names.dedup();
    for name in counter_names {
        let old = prev.counter(name).unwrap_or(0);
        let new = cur.counter(name).unwrap_or(0);
        t.row(vec![
            format!("counter {name}"),
            old.to_string(),
            new.to_string(),
            pct(old as f64, new as f64),
        ]);
    }
    let mut span_names: Vec<&str> = prev
        .spans
        .iter()
        .chain(&cur.spans)
        .map(|s| s.name.as_str())
        .collect();
    span_names.sort_unstable();
    span_names.dedup();
    for name in span_names {
        let (old_ms, old_n) = prev
            .span(name)
            .map_or((0.0, 0), |s| (s.total_ns as f64 / 1e6, s.count));
        let (new_ms, new_n) = cur
            .span(name)
            .map_or((0.0, 0), |s| (s.total_ns as f64 / 1e6, s.count));
        t.row(vec![
            format!("span {name}"),
            format!("{old_ms:.3}ms /{old_n}"),
            format!("{new_ms:.3}ms /{new_n}"),
            pct(old_ms, new_ms),
        ]);
    }
    t
}
