//! The replay service: scheduler + cache + batch API glued together.
//!
//! A [`Server`] owns a [`StealPool`](crate::scheduler::StealPool) of
//! replay workers and a [`TraceCache`](crate::cache::TraceCache) of
//! completed analyses keyed by workload hash. Each submitted
//! [`Request`] becomes a job; the worker that picks it up answers it
//! one of three ways:
//!
//! * **miss** — first sight of this workload: run the streamed
//!   trace→replay pipeline once
//!   ([`analyze_opts`](databp_harness::analyze_opts) with
//!   `keep_trace`), cache the results *with* the materialized trace,
//!   render the body.
//! * **hit** — the cached ladder covers the request: render straight
//!   from cache. No phase-1, no phase-2, no trace walk at all.
//! * **rewalk** — cached, but the request wants page sizes the cached
//!   walk didn't count: one phase-2-only
//!   [`reanalyze`](databp_harness::reanalyze) over the cached trace at
//!   the merged ladder, then update the cache so the wider entry
//!   serves future hits. Still zero phase-1 work.
//!
//! All three paths render through the same pure
//! [`body_for`](crate::request::body_for), which is what makes cached
//! answers byte-identical to fresh ones.
//!
//! With a [`ServerConfig::store`] directory configured, every phase-1
//! miss additionally persists its trace to a
//! [`TraceStore`](databp_trace::TraceStore), and `Server::start`
//! **warm-starts** from the same directory: each stored trace is
//! reconstituted into a full cache entry (plain build recompiled, one
//! phase-2 [`reanalyze`] walk, *zero* phase-1 work), so the first
//! repeat request after a restart is already a cache hit.

use std::panic::AssertUnwindSafe;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use databp_harness::{analyze_opts, reanalyze, AnalyzeOpts, WorkloadResults};
use databp_machine::PageSize;
use databp_trace::TraceStore;
use databp_workloads::{compile_plain, Prepared, Workload};

use crate::cache::{Lookup, TraceCache};
use crate::request::{body_for, query_body_for, CacheStatus, Request, Response};
use crate::scheduler::StealPool;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads (each runs whole requests; phase-1 streaming
    /// inside a request may add its own consumer thread).
    pub workers: usize,
    /// Jobs admitted-but-not-started before submissions are rejected.
    pub queue_depth: usize,
    /// Trace-cache budget in bytes.
    pub cache_bytes: usize,
    /// Use the streamed phase-1/phase-2 overlap on cache misses.
    pub stream: bool,
    /// Directory of the persistent trace store. When set, cache misses
    /// save their trace here and `Server::start` warm-starts the cache
    /// from whatever the directory already holds.
    pub store: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: std::thread::available_parallelism()
                .map_or(2, |n| n.get())
                .clamp(1, 8),
            queue_depth: 64,
            // Enough for every small-scale workload trace at once;
            // full-scale traffic will evict LRU, which is the point.
            cache_bytes: 512 << 20,
            stream: true,
            store: None,
        }
    }
}

/// Monotonic service counters, independent of the telemetry registry
/// (which is process-global and may be disabled); the `stats` wire
/// probe reads these.
#[derive(Debug, Default)]
struct StatsInner {
    requests: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_rewalks: AtomicU64,
    rejected: AtomicU64,
    errors: AtomicU64,
}

/// A point-in-time copy of the service counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Queries processed (including failed ones; excluding rejections).
    pub requests: u64,
    /// Answers rendered from a covering cached entry (no trace walk).
    pub cache_hits: u64,
    /// Answers that ran phase 1 (first sight of the workload).
    pub cache_misses: u64,
    /// Answers that re-walked a cached trace for a wider ladder
    /// (counted *in addition to* a hit — the cache did its job, the
    /// ladder just grew).
    pub cache_rewalks: u64,
    /// Submissions bounced by admission control.
    pub rejected: u64,
    /// Queries that failed (bad request or worker panic).
    pub errors: u64,
    /// Bytes currently charged to the trace cache.
    pub cache_bytes: u64,
    /// Entries currently in the trace cache.
    pub cache_entries: u64,
}

/// A handle to one in-flight request's eventual [`Response`].
#[derive(Clone)]
pub struct Ticket {
    slot: Arc<(Mutex<Option<Response>>, Condvar)>,
}

impl Ticket {
    fn new() -> Ticket {
        Ticket {
            slot: Arc::new((Mutex::new(None), Condvar::new())),
        }
    }

    fn fulfill(&self, resp: Response) {
        let mut slot = self.slot.0.lock().unwrap();
        *slot = Some(resp);
        self.slot.1.notify_all();
    }

    /// Blocks until the response is ready.
    pub fn wait(&self) -> Response {
        let mut slot = self.slot.0.lock().unwrap();
        loop {
            if let Some(resp) = slot.take() {
                return resp;
            }
            slot = self.slot.1.wait(slot).unwrap();
        }
    }

    /// Takes the response if it is already ready.
    pub fn try_take(&self) -> Option<Response> {
        self.slot.0.lock().unwrap().take()
    }
}

type Job = (Request, Ticket);

/// The sharded multi-session replay service.
pub struct Server {
    pool: StealPool<Job>,
    cache: TraceCache<WorkloadResults>,
    stats: Arc<StatsInner>,
    config: ServerConfig,
}

impl Server {
    /// Starts the worker pool and returns a ready server. With a
    /// configured [`ServerConfig::store`], the cache is warm-started
    /// from the store directory first (synchronously — a started server
    /// answers repeat requests as hits from its very first job).
    pub fn start(config: ServerConfig) -> Server {
        let cache: TraceCache<WorkloadResults> = TraceCache::new(config.cache_bytes);
        if let Some(dir) = &config.store {
            warm_start(&cache, dir);
        }
        let stats = Arc::new(StatsInner::default());
        let pool = {
            let cache = cache.clone();
            let stats = Arc::clone(&stats);
            let cfg = config.clone();
            StealPool::start(config.workers, config.queue_depth, move |_w, job: Job| {
                let (req, ticket) = job;
                let resp = Server::process(&cfg, &cache, &stats, &req);
                ticket.fulfill(resp);
            })
        };
        Server {
            pool,
            cache,
            stats,
            config,
        }
    }

    /// A server with default configuration.
    pub fn start_default() -> Server {
        Server::start(ServerConfig::default())
    }

    /// The active configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Submits one request. `Err` returns the request when admission
    /// control rejects it (queue full or shutting down) — the caller
    /// decides whether to retry, shed, or answer with an error.
    // Handing the whole Request back on rejection is the point of the
    // API; the Err path is the rare shed path, not a hot path.
    #[allow(clippy::result_large_err)]
    pub fn submit(&self, req: Request) -> Result<Ticket, Request> {
        let ticket = Ticket::new();
        match self.pool.submit((req, ticket.clone())) {
            Ok(()) => Ok(ticket),
            Err((req, _)) => {
                self.stats.rejected.fetch_add(1, Ordering::Relaxed);
                Err(req)
            }
        }
    }

    /// The batch API: answers N requests, responses in request order.
    /// Duplicates within the batch are deduplicated by the cache's
    /// in-flight pending slots — one trace, N answers. Rejected
    /// submissions become error responses (`ok: false`) in place.
    #[allow(clippy::result_large_err)]
    pub fn submit_batch(&self, reqs: Vec<Request>) -> Vec<Response> {
        let outcomes: Vec<Result<Ticket, Request>> =
            reqs.into_iter().map(|req| self.submit(req)).collect();
        outcomes
            .into_iter()
            .map(|outcome| match outcome {
                Ok(ticket) => ticket.wait(),
                Err(req) => Response::failure(&req.id, "rejected: queue full"),
            })
            .collect()
    }

    /// Current service counters.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            requests: self.stats.requests.load(Ordering::Relaxed),
            cache_hits: self.stats.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.stats.cache_misses.load(Ordering::Relaxed),
            cache_rewalks: self.stats.cache_rewalks.load(Ordering::Relaxed),
            rejected: self.stats.rejected.load(Ordering::Relaxed),
            errors: self.stats.errors.load(Ordering::Relaxed),
            cache_bytes: self.cache.bytes() as u64,
            cache_entries: self.cache.len() as u64,
        }
    }

    /// Drains queued work and joins the workers.
    pub fn shutdown(self) {
        self.pool.shutdown();
    }

    /// Answers one query (runs on a worker thread).
    fn process(
        cfg: &ServerConfig,
        cache: &TraceCache<WorkloadResults>,
        stats: &StatsInner,
        req: &Request,
    ) -> Response {
        stats.requests.fetch_add(1, Ordering::Relaxed);
        databp_telemetry::count!("server.requests");
        let result =
            std::panic::catch_unwind(AssertUnwindSafe(|| Server::answer(cfg, cache, stats, req)));
        match result {
            Ok(Ok((status, results))) => {
                if req.query.is_some() {
                    databp_telemetry::count!("server.trace_queries");
                    match query_body_for(req, &results, cfg.workers.max(1)) {
                        Ok(body) => Response::success(&req.id, status, body),
                        Err(msg) => {
                            stats.errors.fetch_add(1, Ordering::Relaxed);
                            Response::failure(&req.id, msg)
                        }
                    }
                } else {
                    Response::success(&req.id, status, body_for(req, &results))
                }
            }
            Ok(Err(msg)) => {
                stats.errors.fetch_add(1, Ordering::Relaxed);
                Response::failure(&req.id, msg)
            }
            Err(_) => {
                stats.errors.fetch_add(1, Ordering::Relaxed);
                Response::failure(&req.id, "internal error: request processing panicked")
            }
        }
    }

    /// Resolves the cache outcome for one query.
    fn answer(
        cfg: &ServerConfig,
        cache: &TraceCache<WorkloadResults>,
        stats: &StatsInner,
        req: &Request,
    ) -> Result<(CacheStatus, Arc<WorkloadResults>), String> {
        let workload = req.resolve_workload()?;
        if let Some(q) = &req.query {
            // Reject malformed queries before any trace work: a bad
            // query must not cost a phase-1 run.
            databp_sim::Query::parse(q).map_err(|e| format!("bad query: {e}"))?;
        }
        let key = workload.workload_hash();
        let want = req.normalized_ladder();
        match cache.lookup_or_begin(key) {
            Lookup::Hit(results) => {
                stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                // A trace query needs only the cached trace — never a
                // ladder rewalk, whatever page sizes the request names.
                if req.query.is_some() || want.iter().all(|ps| results.ladder.contains(ps)) {
                    return Ok((CacheStatus::Hit, results));
                }
                // The cached trace is good; its walk just didn't count
                // the sizes this request wants. Re-walk once at the
                // union so the entry only ever widens.
                stats.cache_rewalks.fetch_add(1, Ordering::Relaxed);
                databp_telemetry::count!("server.cache.rewalks");
                let merged = merged_ladder(&results.ladder, &want);
                let fresh = reanalyze(&results.prepared, &merged);
                let bytes = entry_bytes(&fresh);
                let arc = cache.update(key, fresh, bytes);
                Ok((CacheStatus::Rewalk, arc))
            }
            Lookup::MustBuild(guard) => {
                stats.cache_misses.fetch_add(1, Ordering::Relaxed);
                let opts = AnalyzeOpts {
                    stream: cfg.stream,
                    keep_trace: true, // the cache IS the trace owner
                    ladder: req.page_sizes.clone(),
                    channel_batches: AnalyzeOpts::auto_channel_batches(),
                    ..AnalyzeOpts::default()
                };
                let results = analyze_opts(&workload, &opts);
                let bytes = entry_bytes(&results);
                let arc = cache.fill(guard, results, bytes);
                if let Some(dir) = &cfg.store {
                    save_to_store(dir, key, &arc.prepared);
                }
                Ok((CacheStatus::Miss, arc))
            }
        }
    }
}

/// Version tag of the store meta blob (bumped if the layout changes).
const META_VERSION: u32 = 1;

/// Encodes the base-run measurements a warm start cannot rederive
/// without re-running phase 1: base time, instruction count, and the
/// program output (the workload-integrity reference). Everything else
/// in a [`Prepared`] is recompiled or decoded from the trace columns.
fn encode_meta(prepared: &Prepared) -> Vec<u8> {
    let mut out = Vec::with_capacity(28 + prepared.output.len());
    out.extend_from_slice(&META_VERSION.to_le_bytes());
    out.extend_from_slice(&prepared.base_us.to_bits().to_le_bytes());
    out.extend_from_slice(&prepared.instructions.to_le_bytes());
    out.extend_from_slice(&(prepared.output.len() as u64).to_le_bytes());
    out.extend_from_slice(&prepared.output);
    out
}

/// Decodes [`encode_meta`]'s blob: `(base_us, instructions, output)`.
fn decode_meta(meta: &[u8]) -> Result<(f64, u64, Vec<u8>), String> {
    let take8 = |at: usize| -> Result<u64, String> {
        let bytes: [u8; 8] = meta
            .get(at..at + 8)
            .ok_or("meta blob truncated")?
            .try_into()
            .expect("slice is 8 bytes");
        Ok(u64::from_le_bytes(bytes))
    };
    let version = u32::from_le_bytes(
        meta.get(0..4)
            .ok_or("meta blob truncated")?
            .try_into()
            .expect("slice is 4 bytes"),
    );
    if version != META_VERSION {
        return Err(format!("unknown meta version {version}"));
    }
    let base_us = f64::from_bits(take8(4)?);
    let instructions = take8(12)?;
    let output_len = take8(20)? as usize;
    let output = meta.get(28..).ok_or("meta blob truncated")?;
    if output.len() != output_len {
        return Err(format!(
            "meta output length mismatch: header says {output_len}, blob has {}",
            output.len()
        ));
    }
    Ok((base_us, instructions, output.to_vec()))
}

/// Saves one freshly traced entry to the store. Persistence is
/// best-effort: a failed save costs a warning and a re-trace after the
/// next restart, never the response.
fn save_to_store(dir: &Path, key: u64, prepared: &Prepared) {
    let result = TraceStore::open(dir)
        .and_then(|store| store.save(key, &prepared.trace, &encode_meta(prepared)));
    if let Err(e) = result {
        eprintln!(
            "warning: trace store save failed for {} ({key:016x}): {e}",
            prepared.workload.name
        );
    }
}

/// Every workload hash the store could legitimately hold: the bundled
/// corpus (Table 1 set plus benchmarks) at both scales.
fn known_workloads() -> std::collections::HashMap<u64, Workload> {
    let mut map = std::collections::HashMap::new();
    for w in Workload::all().into_iter().chain(Workload::bench()) {
        let small = w.clone().scaled_down();
        map.insert(small.workload_hash(), small);
        map.insert(w.workload_hash(), w);
    }
    map
}

/// Rebuilds cache entries from the persistent store: for each stored
/// trace whose key names a bundled workload, recompile the plain build,
/// reattach the trace and base-run meta, and run one phase-2 walk at
/// the default ladder. No phase 1 runs — that is the store's whole
/// point. Entries that fail to load or decode are skipped with a
/// warning (the next miss simply re-traces and overwrites them).
fn warm_start(cache: &TraceCache<WorkloadResults>, dir: &Path) {
    let store = match TraceStore::open(dir) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("warning: trace store {} unusable: {e}", dir.display());
            return;
        }
    };
    let keys = match store.keys() {
        Ok(k) => k,
        Err(e) => {
            eprintln!("warning: trace store {} unlistable: {e}", dir.display());
            return;
        }
    };
    let known = known_workloads();
    for key in keys {
        let Some(workload) = known.get(&key) else {
            eprintln!("warning: trace store entry {key:016x} names no bundled workload, skipping");
            continue;
        };
        let (trace, meta) = match store.load(key) {
            Ok(Some(entry)) => entry,
            Ok(None) => continue,
            Err(e) => {
                eprintln!("warning: trace store entry {key:016x} unreadable: {e}");
                continue;
            }
        };
        let (base_us, instructions, output) = match decode_meta(&meta) {
            Ok(parts) => parts,
            Err(e) => {
                eprintln!("warning: trace store entry {key:016x} has bad meta: {e}");
                continue;
            }
        };
        let plain = compile_plain(workload);
        let prepared = Prepared::from_parts(
            workload.clone(),
            plain,
            trace,
            base_us,
            instructions,
            output,
        );
        let ladder = AnalyzeOpts::default().normalized_ladder();
        let results = reanalyze(&prepared, &ladder);
        let bytes = entry_bytes(&results);
        if let Lookup::MustBuild(guard) = cache.lookup_or_begin(key) {
            cache.fill(guard, results, bytes);
            databp_telemetry::count!("server.store.warm_entries");
        }
    }
}

/// Union of two normalized ladders, kept ascending by page shift.
fn merged_ladder(a: &[PageSize], b: &[PageSize]) -> Vec<PageSize> {
    let mut out: Vec<PageSize> = a.iter().chain(b).copied().collect();
    out.sort_unstable_by_key(|ps| ps.shift());
    out.dedup();
    out
}

/// Bytes a cached entry is charged against the cache budget: the
/// materialized trace dominates; the counts matrix and session list
/// ride along.
fn entry_bytes(r: &WorkloadResults) -> usize {
    r.prepared.trace.approx_bytes()
        + std::mem::size_of_val(r.sessions.as_slice())
        + r.ladder_counts
            .iter()
            .map(|row| std::mem::size_of_val(row.as_slice()))
            .sum::<usize>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use databp_harness::Scale;

    fn tiny_server(workers: usize) -> Server {
        Server::start(ServerConfig {
            workers,
            queue_depth: 16,
            cache_bytes: 512 << 20,
            stream: true,
            store: None,
        })
    }

    #[test]
    fn meta_blob_round_trips_and_rejects_garbage() {
        let w = Workload::all().remove(0).scaled_down();
        let prepared = databp_workloads::prepare(&w).expect("workload runs");
        let meta = encode_meta(&prepared);
        let (base_us, instructions, output) = decode_meta(&meta).expect("own blob decodes");
        assert_eq!(base_us.to_bits(), prepared.base_us.to_bits());
        assert_eq!(instructions, prepared.instructions);
        assert_eq!(output, prepared.output);
        for cut in 0..meta.len() {
            assert!(decode_meta(&meta[..cut]).is_err(), "prefix {cut} accepted");
        }
        let mut wrong = meta.clone();
        wrong[0] ^= 0xff; // version
        assert!(decode_meta(&wrong).is_err());
    }

    #[test]
    fn store_round_trip_warm_starts_a_fresh_cache() {
        let dir = std::env::temp_dir().join(format!("databp-warm-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cold = Server::start(ServerConfig {
            workers: 1,
            queue_depth: 16,
            cache_bytes: 512 << 20,
            stream: true,
            store: Some(dir.clone()),
        });
        let req = Request::simple("cold", "cc", Scale::Small);
        let first = cold.submit(req.clone()).unwrap().wait();
        assert_eq!(first.cache, Some(CacheStatus::Miss));
        cold.shutdown();

        // A brand-new server over the same directory starts warm: the
        // very first request is a pure hit with identical bytes.
        let warm = Server::start(ServerConfig {
            workers: 1,
            queue_depth: 16,
            cache_bytes: 512 << 20,
            stream: true,
            store: Some(dir.clone()),
        });
        assert_eq!(warm.stats().cache_entries, 1);
        let mut again = req;
        again.id = "warm".to_string();
        let second = warm.submit(again).unwrap().wait();
        assert_eq!(second.cache, Some(CacheStatus::Hit));
        assert_eq!(
            first.body.as_ref().unwrap().to_json(),
            second.body.as_ref().unwrap().to_json(),
            "warm-started answer must be byte-identical"
        );
        assert_eq!(warm.stats().cache_misses, 0, "no phase 1 after restart");
        warm.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_requests_hit_the_cache_with_identical_bytes() {
        let server = tiny_server(2);
        let req = Request::simple("a", "cc", Scale::Small);
        let mut dup = req.clone();
        dup.id = "b".to_string();
        let first = server.submit(req).unwrap().wait();
        let second = server.submit(dup).unwrap().wait();
        assert!(first.ok && second.ok);
        assert_eq!(first.cache, Some(CacheStatus::Miss));
        assert_eq!(second.cache, Some(CacheStatus::Hit));
        assert_eq!(
            first.body.as_ref().unwrap().to_json(),
            second.body.as_ref().unwrap().to_json(),
            "cached answer must be byte-identical"
        );
        let stats = server.stats();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_entries, 1);
        assert!(stats.cache_bytes > 0);
        server.shutdown();
    }

    #[test]
    fn wider_ladder_rewalks_without_retracing() {
        let server = tiny_server(1);
        let base = Request::simple("warm", "tex", Scale::Small);
        assert!(server.submit(base.clone()).unwrap().wait().ok);
        let mut wide = base.clone();
        wide.id = "wide".to_string();
        wide.page_sizes = vec![PageSize::K16, PageSize::K32];
        let widened = server.submit(wide.clone()).unwrap().wait();
        assert_eq!(widened.cache, Some(CacheStatus::Rewalk));
        // The widened entry now serves the wide ladder as a pure hit…
        let mut again = wide;
        again.id = "again".to_string();
        let hit = server.submit(again).unwrap().wait();
        assert_eq!(hit.cache, Some(CacheStatus::Hit));
        assert_eq!(
            widened.body.as_ref().unwrap().to_json(),
            hit.body.as_ref().unwrap().to_json()
        );
        // …and the original narrow request still renders identically
        // from the widened entry (body filters to the asked ladder).
        let mut narrow = base;
        narrow.id = "narrow2".to_string();
        let narrow_resp = server.submit(narrow).unwrap().wait();
        assert_eq!(narrow_resp.cache, Some(CacheStatus::Hit));
        let stats = server.stats();
        assert_eq!(stats.cache_misses, 1, "tex was traced exactly once");
        assert_eq!(stats.cache_rewalks, 1);
        server.shutdown();
    }

    #[test]
    fn trace_queries_answer_from_cache_without_rewalks() {
        let server = tiny_server(1);
        // A malformed query must be rejected before any phase-1 work.
        let mut bad = Request::simple("q0", "cc", Scale::Small);
        bad.query = Some("count if value >".to_string());
        let resp = server.submit(bad).unwrap().wait();
        assert!(!resp.ok);
        assert_eq!(server.stats().cache_misses, 0, "bad query must not trace");

        let mut q = Request::simple("q1", "cc", Scale::Small);
        q.query = Some("count if value > 0".to_string());
        let first = server.submit(q.clone()).unwrap().wait();
        assert!(first.ok, "{:?}", first.error);
        assert_eq!(first.cache, Some(CacheStatus::Miss));
        // A repeat query is a pure hit, even when it names page sizes
        // the cached walk never counted — queries only need the trace.
        let mut again = q;
        again.id = "q2".to_string();
        again.page_sizes = vec![databp_machine::PageSize::K32];
        let second = server.submit(again).unwrap().wait();
        assert_eq!(second.cache, Some(CacheStatus::Hit));
        assert_eq!(server.stats().cache_rewalks, 0);
        assert_eq!(
            first.body.as_ref().unwrap().to_json(),
            second.body.as_ref().unwrap().to_json(),
            "cached query answer must be byte-identical"
        );
        let json = first.body.as_ref().unwrap().to_json();
        assert!(json.contains(r#""kind":"count""#), "{json}");
        server.shutdown();
    }

    #[test]
    fn batch_preserves_order_and_reports_bad_requests_in_place() {
        let server = tiny_server(2);
        let reqs = vec![
            Request::simple("1", "cc", Scale::Small),
            Request::simple("2", "nope", Scale::Small),
            Request::simple("3", "cc", Scale::Small),
        ];
        let resps = server.submit_batch(reqs);
        assert_eq!(
            resps.iter().map(|r| r.id.as_str()).collect::<Vec<_>>(),
            vec!["1", "2", "3"]
        );
        assert!(resps[0].ok);
        assert!(!resps[1].ok);
        assert!(resps[1]
            .error
            .as_ref()
            .unwrap()
            .contains("unknown workload"));
        assert!(resps[2].ok);
        assert_eq!(
            resps[0].body.as_ref().unwrap().to_json(),
            resps[2].body.as_ref().unwrap().to_json()
        );
        assert_eq!(server.stats().errors, 1);
        server.shutdown();
    }
}
