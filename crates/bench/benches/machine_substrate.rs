//! Substrate benchmarks: raw simulated-machine throughput, the cost of
//! tracing, and compiler speed — the denominators behind every
//! experiment's wall-clock budget.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use databp_machine::{Machine, NoHooks};
use databp_tinyc::{compile, Options};
use databp_trace::Tracer;
use databp_workloads::Workload;
use std::hint::black_box;

fn bench_machine_throughput(c: &mut Criterion) {
    let w = Workload::by_name("qcd").expect("qcd exists").scaled_down();
    let compiled = compile(w.source, &Options::plain()).expect("compiles");
    // Count instructions once.
    let mut m = Machine::new();
    m.load(&compiled.program);
    m.set_args(w.args.clone());
    m.run(&mut NoHooks, w.max_steps).expect("runs");
    let instructions = m.cost().instructions;

    let mut g = c.benchmark_group("machine/throughput");
    g.sample_size(10);
    g.throughput(Throughput::Elements(instructions));
    g.bench_function("qcd_plain_run", |b| {
        b.iter(|| {
            let mut m = Machine::new();
            m.load(&compiled.program);
            m.set_args(w.args.clone());
            black_box(m.run(&mut NoHooks, w.max_steps).unwrap())
        });
    });
    g.bench_function("qcd_traced_run", |b| {
        b.iter(|| {
            let mut m = Machine::new();
            m.load(&compiled.program);
            m.set_args(w.args.clone());
            let mut t = Tracer::new(compiled.debug.frame_map(), compiled.debug.global_specs())
                .with_untraced(compiled.debug.untraced_store_pcs.clone());
            t.begin();
            m.run(&mut t, w.max_steps).unwrap();
            black_box(t.finish().len())
        });
    });
    g.finish();
}

fn bench_compiler(c: &mut Criterion) {
    let mut g = c.benchmark_group("tinyc/compile");
    for w in Workload::all() {
        g.bench_function(w.name, |b| {
            b.iter(|| black_box(compile(w.source, &Options::codepatch()).unwrap()));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_machine_throughput, bench_compiler);
criterion_main!(benches);
