//! Executable-strategy benchmarks: wall-clock cost of *running* each WMS
//! implementation on the simulated machine, plus the Section 9 loopopt
//! ablation and the exec-vs-model agreement check.

use criterion::{criterion_group, criterion_main, Criterion};
use databp_core::{CodePatch, NativeHardware, RangePlan, TrapPatch, VirtualMemory};
use databp_machine::Machine;
use databp_tinyc::{compile, Compiled, Options};
use std::hint::black_box;

const PROGRAM: &str = r#"
    int acc;
    int buf[64];
    int mix(int x) { return (x * 2654435761) >> 7; }
    int main() {
        int i; int j;
        for (i = 0; i < 60; i = i + 1) {
            for (j = 0; j < 64; j = j + 1) {
                buf[j] = mix(buf[j] + i + j);
                acc = acc + buf[j];
            }
        }
        return acc & 255;
    }
"#;

fn builds() -> (Compiled, Compiled, Compiled) {
    (
        compile(PROGRAM, &Options::plain()).expect("compiles"),
        compile(PROGRAM, &Options::codepatch()).expect("compiles"),
        compile(PROGRAM, &Options::codepatch_loopopt()).expect("compiles"),
    )
}

fn bench_strategies(c: &mut Criterion) {
    let (plain, cp, cp_opt) = builds();
    let plan = RangePlan {
        globals: vec![0],
        ..RangePlan::default()
    };
    let mut g = c.benchmark_group("strategies/executable");
    g.sample_size(20);

    g.bench_function("native_hardware", |b| {
        b.iter(|| {
            let mut m = Machine::new();
            m.load(&plain.program);
            black_box(
                NativeHardware::default()
                    .run(&mut m, &plain.debug, &plan, 10_000_000)
                    .unwrap(),
            )
        });
    });
    g.bench_function("virtual_memory_4k", |b| {
        b.iter(|| {
            let mut m = Machine::new();
            m.load(&plain.program);
            black_box(
                VirtualMemory::k4()
                    .run(&mut m, &plain.debug, &plan, 10_000_000)
                    .unwrap(),
            )
        });
    });
    g.bench_function("trap_patch", |b| {
        b.iter(|| {
            let mut m = Machine::new();
            m.load(&plain.program);
            black_box(
                TrapPatch::default()
                    .run(&mut m, &plain.debug, &plan, 10_000_000)
                    .unwrap(),
            )
        });
    });
    g.bench_function("code_patch", |b| {
        b.iter(|| {
            let mut m = Machine::new();
            m.load(&cp.program);
            black_box(
                CodePatch::default()
                    .run(&mut m, &cp.debug, &plan, 10_000_000)
                    .unwrap(),
            )
        });
    });
    g.bench_function("code_patch_loopopt", |b| {
        b.iter(|| {
            let mut m = Machine::new();
            m.load(&cp_opt.program);
            black_box(
                CodePatch::with_loopopt()
                    .run(&mut m, &cp_opt.debug, &plan, 10_000_000)
                    .unwrap(),
            )
        });
    });
    g.finish();

    // Print the Section 9 ablation result once: modeled overhead saved.
    let mut m = Machine::new();
    m.load(&cp.program);
    let base = CodePatch::default()
        .run(&mut m, &cp.debug, &plan, 10_000_000)
        .unwrap();
    let mut m = Machine::new();
    m.load(&cp_opt.program);
    let opt = CodePatch::with_loopopt()
        .run(&mut m, &cp_opt.debug, &plan, 10_000_000)
        .unwrap();
    println!(
        "loopopt ablation: CP {:.2}x -> CP+opt {:.2}x ({} lookups skipped, {} preheader)",
        base.relative_overhead(),
        opt.relative_overhead(),
        opt.skipped_lookups,
        opt.preheader_lookups
    );
    assert_eq!(base.notification_count, opt.notification_count);
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
