//! Table 3 regeneration benchmark: the phase-2 counting simulator over
//! each workload's trace (both page sizes), plus the engine-vs-naive
//! **ablation** showing why the one-pass multi-session design matters.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use databp_machine::PageSize;
use databp_sessions::{enumerate_sessions, SessionSet};
use databp_sim::{simulate, simulate_naive};
use databp_workloads::{prepare, Prepared, Workload};
use std::hint::black_box;

fn prep(name: &str) -> (Prepared, SessionSet) {
    let w = Workload::by_name(name)
        .expect("workload exists")
        .scaled_down();
    let p = prepare(&w).expect("workload runs");
    let sessions = enumerate_sessions(&p.plain.debug, &p.trace);
    let set = SessionSet::new(sessions, &p.plain.debug, &p.trace);
    (p, set)
}

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3/one_pass_engine");
    g.sample_size(10);
    for name in ["cc", "tex", "spice", "qcd", "bps"] {
        let (p, set) = prep(name);
        // Print the regenerated Table 3 row once (mean counting vars).
        let counts = simulate(&p.trace, &set, PageSize::K4);
        let n = counts.len().max(1) as f64;
        println!(
            "table3 row: {:6} sessions={:5} mean_hit={:9.0} mean_miss={:10.0} mean_apm={:8.0}",
            name,
            counts.len(),
            counts.iter().map(|c| c.hit).sum::<u64>() as f64 / n,
            counts.iter().map(|c| c.miss).sum::<u64>() as f64 / n,
            counts.iter().map(|c| c.vm_active_page_miss).sum::<u64>() as f64 / n,
        );
        g.throughput(Throughput::Elements(p.trace.len() as u64));
        g.bench_function(format!("{name}/4k"), |b| {
            b.iter(|| black_box(simulate(&p.trace, &set, PageSize::K4)));
        });
        g.bench_function(format!("{name}/8k"), |b| {
            b.iter(|| black_box(simulate(&p.trace, &set, PageSize::K8)));
        });
    }
    g.finish();
}

fn bench_engine_vs_naive_ablation(c: &mut Criterion) {
    // Per-session cost comparison on one workload: the naive oracle
    // replays the trace once per session; the engine amortizes one pass
    // over all of them.
    let (p, set) = prep("spice");
    let nsessions = {
        use databp_sim::Membership;
        set.count()
    };
    let mut g = c.benchmark_group("ablation/engine_vs_naive");
    g.sample_size(10);
    g.bench_function(format!("one_pass_all_{nsessions}_sessions"), |b| {
        b.iter(|| black_box(simulate(&p.trace, &set, PageSize::K4)));
    });
    g.bench_function("naive_single_session", |b| {
        b.iter(|| black_box(simulate_naive(&p.trace, &set, PageSize::K4, 0)));
    });
    g.finish();
}

criterion_group!(benches, bench_engine, bench_engine_vs_naive_ablation);
criterion_main!(benches);
