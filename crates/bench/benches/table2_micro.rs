//! Table 2 regeneration benchmark — Appendix A.5 for real.
//!
//! Measures `SoftwareLookup` and `SoftwareUpdate` on the paper's
//! WorkingMonitorSet (100 non-overlapping monitors in 2 MiB) against the
//! page-bitmap structure, and runs the lookup-structure **ablation**: the
//! same operations on the naive interval list, at several set sizes —
//! quantifying why the paper chose a hash-table-of-bitmaps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use databp_core::{IntervalSet, Monitor, MonitorId, PageMap};
use databp_harness::microbench::{software_microbenchmarks, working_monitor_set};
use std::hint::black_box;

fn probe_addrs(n: usize) -> Vec<u32> {
    // Deterministic pseudo-random probes over the 2 MiB region.
    let mut s = 0x1992_u64;
    (0..n)
        .map(|_| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            0x0040_0000 + ((s >> 33) as u32) % (2 * 1024 * 1024 - 4)
        })
        .collect()
}

fn monitors(n: usize) -> Vec<Monitor> {
    (0..n as u32)
        .map(|i| {
            let ba = 0x0040_0000 + i * (2 * 1024 * 1024 / n as u32 / 4 * 4);
            Monitor::new(ba, ba + 16).expect("non-empty")
        })
        .collect()
}

fn bench_software_lookup(c: &mut Criterion) {
    // Print the regenerated Table 2 software rows once.
    let b = software_microbenchmarks();
    println!(
        "table2 rows: SoftwareLookup host={:.4}µs (paper 2.75µs), SoftwareUpdate host={:.4}µs (paper 22µs)",
        b.lookup_us, b.update_us
    );

    let set = working_monitor_set();
    let mut pm = PageMap::new();
    let mut is = IntervalSet::new();
    for (i, m) in set.iter().enumerate() {
        pm.install(MonitorId::from_raw(i as u64), *m);
        is.install(MonitorId::from_raw(i as u64), *m);
    }
    let probes = probe_addrs(1024);

    let mut g = c.benchmark_group("table2/software_lookup");
    g.bench_function("pagemap_100_monitors", |b| {
        let mut i = 0;
        b.iter(|| {
            let a = probes[i & 1023];
            i += 1;
            black_box(pm.lookup(a, a + 4))
        });
    });
    g.bench_function("intervalset_100_monitors", |b| {
        let mut i = 0;
        b.iter(|| {
            let a = probes[i & 1023];
            i += 1;
            black_box(is.hit_exact(a, a + 4))
        });
    });
    g.finish();
}

fn bench_software_update(c: &mut Criterion) {
    let set = working_monitor_set();
    let mut g = c.benchmark_group("table2/software_update");
    g.bench_function("pagemap_install_remove_100", |b| {
        b.iter(|| {
            let mut pm = PageMap::new();
            for (i, m) in set.iter().enumerate() {
                pm.install(MonitorId::from_raw(i as u64), *m);
            }
            for (i, m) in set.iter().enumerate() {
                pm.remove(MonitorId::from_raw(i as u64), *m);
            }
            black_box(pm.len())
        });
    });
    g.finish();
}

fn bench_lookup_scaling_ablation(c: &mut Criterion) {
    let probes = probe_addrs(1024);
    let mut g = c.benchmark_group("ablation/lookup_structure_scaling");
    for n in [10usize, 100, 1000] {
        let ms = monitors(n);
        let mut pm = PageMap::new();
        let mut is = IntervalSet::new();
        for (i, m) in ms.iter().enumerate() {
            pm.install(MonitorId::from_raw(i as u64), *m);
            is.install(MonitorId::from_raw(i as u64), *m);
        }
        g.bench_with_input(BenchmarkId::new("pagemap", n), &n, |b, _| {
            let mut i = 0;
            b.iter(|| {
                let a = probes[i & 1023];
                i += 1;
                black_box(pm.lookup(a, a + 4))
            });
        });
        g.bench_with_input(BenchmarkId::new("intervalset", n), &n, |b, _| {
            let mut i = 0;
            b.iter(|| {
                let a = probes[i & 1023];
                i += 1;
                black_box(is.hit_exact(a, a + 4))
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_software_lookup,
    bench_software_update,
    bench_lookup_scaling_ablation
);
criterion_main!(benches);
