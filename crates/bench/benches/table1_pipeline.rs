//! Table 1 regeneration benchmark: phase 1 (instrumented run → trace) and
//! session enumeration, per workload.
//!
//! Run with `cargo bench -p databp-bench --bench table1_pipeline`. The
//! bench prints the regenerated Table 1 row for each workload once, then
//! times the pipeline stages.

use criterion::{criterion_group, criterion_main, Criterion};
use databp_harness::analyze;
use databp_sessions::enumerate_sessions;
use databp_workloads::{prepare, Workload};
use std::hint::black_box;

fn bench_phase1(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1/phase1_trace");
    g.sample_size(10);
    for w in Workload::all() {
        let w = w.scaled_down();
        // Print the regenerated Table 1 row once.
        let r = analyze(&w);
        let kc = r.kind_counts();
        println!(
            "table1 row: {:6} sessions={:?} base_ms={:.1}",
            w.name,
            kc.values().collect::<Vec<_>>(),
            r.base_ms()
        );
        g.bench_function(w.name, |b| {
            b.iter(|| black_box(prepare(&w).expect("workload runs")));
        });
    }
    g.finish();
}

fn bench_enumeration(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1/session_enumeration");
    for w in Workload::all() {
        let w = w.scaled_down();
        let p = prepare(&w).expect("workload runs");
        g.bench_function(w.name, |b| {
            b.iter(|| black_box(enumerate_sessions(&p.plain.debug, &p.trace)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_phase1, bench_enumeration);
criterion_main!(benches);
