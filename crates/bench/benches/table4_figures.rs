//! Table 4 and Figures 7–9 regeneration benchmark: analytical-model
//! evaluation and summary statistics over every session population.

use criterion::{criterion_group, criterion_main, Criterion};
use databp_harness::figures::{figure_series, Figure};
use databp_harness::{analyze, overheads_for, WorkloadResults};
use databp_models::{overhead, Approach, TimingVars};
use databp_stats::Summary;
use databp_workloads::Workload;
use std::hint::black_box;

fn results() -> Vec<WorkloadResults> {
    Workload::all()
        .into_iter()
        .map(|w| analyze(&w.scaled_down()))
        .collect()
}

fn bench_table4(c: &mut Criterion) {
    let res = results();
    // Print the regenerated Table 4 t-mean row per workload once.
    for r in &res {
        let tmeans: Vec<String> = Approach::ALL
            .iter()
            .map(|&a| {
                format!(
                    "{}={:.2}",
                    a.abbrev(),
                    Summary::from_samples(&overheads_for(r, a)).t_mean
                )
            })
            .collect();
        println!(
            "table4 t-means: {:6} {}",
            r.prepared.workload.name,
            tmeans.join(" ")
        );
    }
    let timing = TimingVars::default();
    let mut g = c.benchmark_group("table4");
    g.bench_function("model_evaluation_all_sessions", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for r in &res {
                for cts in &r.counts4 {
                    for a in Approach::ALL {
                        acc += overhead(a, cts, &timing).total_us();
                    }
                }
            }
            black_box(acc)
        });
    });
    g.bench_function("summaries_all_cells", |b| {
        b.iter(|| {
            let mut out = Vec::new();
            for r in &res {
                for a in Approach::ALL {
                    out.push(Summary::from_samples(&overheads_for(r, a)));
                }
            }
            black_box(out)
        });
    });
    g.finish();
}

fn bench_figures(c: &mut Criterion) {
    let res = results();
    // Print the regenerated figure series once.
    for fig in [Figure::Max, Figure::P90, Figure::TMean] {
        for (name, vals) in figure_series(&res, fig) {
            println!("{:?} series: {:6} {:?}", fig, name, vals);
        }
    }
    let mut g = c.benchmark_group("figures");
    for (fig, slug) in [
        (Figure::Max, "fig7"),
        (Figure::P90, "fig8"),
        (Figure::TMean, "fig9"),
    ] {
        g.bench_function(slug, |b| {
            b.iter(|| black_box(figure_series(&res, fig)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_table4, bench_figures);
criterion_main!(benches);
