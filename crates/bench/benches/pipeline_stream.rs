//! Streaming-pipeline benchmarks: the tentpole perf claims, measured.
//!
//! * `pipeline/materialized_vs_streamed` — end-to-end `analyze` per
//!   workload both ways. Streaming overlaps the traced run with replay,
//!   so its wall time approaches max(phase 1, phase 2) instead of their
//!   sum.
//! * `ladder/2_sizes_vs_4_sizes` — the generalized ladder's marginal
//!   cost: doubling the page sizes shares the same single trace walk,
//!   so it must cost far less than doubling the replay.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use databp_harness::{analyze_opts, AnalyzeOpts};
use databp_machine::PageSize;
use databp_sessions::{enumerate_sessions, SessionSet};
use databp_sim::simulate_sizes;
use databp_workloads::{prepare, Workload};
use std::hint::black_box;

fn bench_materialized_vs_streamed(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline/materialized_vs_streamed");
    g.sample_size(10);
    for name in ["spice", "qcd"] {
        let w = Workload::by_name(name)
            .expect("workload exists")
            .scaled_down();
        let materialized = AnalyzeOpts::default();
        // No tee: the streamed configuration measures the pure overlap,
        // the way `analyze_all` runs when nothing downstream needs the
        // materialized trace.
        let streamed = AnalyzeOpts {
            stream: true,
            keep_trace: false,
            ..AnalyzeOpts::default()
        };
        g.bench_function(format!("{name}/materialized"), |b| {
            b.iter(|| black_box(analyze_opts(&w, &materialized)));
        });
        g.bench_function(format!("{name}/streamed"), |b| {
            b.iter(|| black_box(analyze_opts(&w, &streamed)));
        });
    }
    g.finish();
}

fn bench_ladder_width(c: &mut Criterion) {
    let w = Workload::by_name("spice")
        .expect("workload exists")
        .scaled_down();
    let p = prepare(&w).expect("workload runs");
    let sessions = enumerate_sessions(&p.plain.debug, &p.trace);
    let set = SessionSet::new(sessions, &p.plain.debug, &p.trace);
    let two = [PageSize::K4, PageSize::K8];
    let four = [PageSize::K4, PageSize::K8, PageSize::K16, PageSize::K32];
    let mut g = c.benchmark_group("ladder/2_sizes_vs_4_sizes");
    g.sample_size(10);
    g.throughput(Throughput::Elements(p.trace.len() as u64));
    g.bench_function("2_sizes", |b| {
        b.iter(|| black_box(simulate_sizes(&p.trace, &set, &two)));
    });
    g.bench_function("4_sizes", |b| {
        b.iter(|| black_box(simulate_sizes(&p.trace, &set, &four)));
    });
    g.finish();
}

criterion_group!(benches, bench_materialized_vs_streamed, bench_ladder_width);
criterion_main!(benches);
