//! Criterion benchmark crate — see `benches/`. One bench target per
//! paper table/figure plus the DESIGN.md ablations; `cargo bench`
//! regenerates and times every artifact.
