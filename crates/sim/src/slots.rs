//! [`SlotList`] — small-vec-style inline storage for per-page instance
//! lists.
//!
//! The engine's page index maps page number → slab indices of the
//! instances overlapping that page. In every workload trace the vast
//! majority of pages hold a single monitored instance (locals and heap
//! objects are small; globals are packed but enumerated per variable),
//! so a `Vec<u32>` per page wastes a heap allocation and a pointer
//! chase on the hottest read path in the simulator. `SlotList` stores
//! up to [`INLINE`] slots in place and only spills to a `Vec` beyond
//! that.

/// Inline capacity. Four covers >99% of pages in the paper's workloads;
/// the spilled representation is unbounded.
const INLINE: usize = 4;

/// A list of instance-slab indices with inline storage for the common
/// few-instances-per-page case.
#[derive(Debug, Clone)]
pub enum SlotList {
    /// Up to [`INLINE`] slots stored in place.
    Inline { len: u8, buf: [u32; INLINE] },
    /// Spilled to the heap once the inline buffer overflows.
    Spilled(Vec<u32>),
}

impl Default for SlotList {
    fn default() -> Self {
        SlotList::Inline {
            len: 0,
            buf: [0; INLINE],
        }
    }
}

impl SlotList {
    /// Number of stored slots.
    pub fn len(&self) -> usize {
        match self {
            SlotList::Inline { len, .. } => usize::from(*len),
            SlotList::Spilled(v) => v.len(),
        }
    }

    /// Is the list empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The stored slots as a slice.
    pub fn as_slice(&self) -> &[u32] {
        match self {
            SlotList::Inline { len, buf } => &buf[..usize::from(*len)],
            SlotList::Spilled(v) => v,
        }
    }

    /// Appends a slot, spilling to the heap if the inline buffer is
    /// full.
    pub fn push(&mut self, slot: u32) {
        match self {
            SlotList::Inline { len, buf } => {
                let n = usize::from(*len);
                if n < INLINE {
                    buf[n] = slot;
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(INLINE * 2);
                    v.extend_from_slice(buf);
                    v.push(slot);
                    *self = SlotList::Spilled(v);
                }
            }
            SlotList::Spilled(v) => v.push(slot),
        }
    }

    /// Removes the first occurrence of `slot` (order is not preserved).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is not present — the engine's page index and
    /// instance slab must stay consistent.
    pub fn swap_remove_value(&mut self, slot: u32) {
        match self {
            SlotList::Inline { len, buf } => {
                let n = usize::from(*len);
                let pos = buf[..n]
                    .iter()
                    .position(|&x| x == slot)
                    .expect("slot in page list");
                buf[pos] = buf[n - 1];
                *len -= 1;
            }
            SlotList::Spilled(v) => {
                let pos = v
                    .iter()
                    .position(|&x| x == slot)
                    .expect("slot in page list");
                v.swap_remove(pos);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_then_spill() {
        let mut l = SlotList::default();
        assert!(l.is_empty());
        for i in 0..INLINE as u32 {
            l.push(i);
        }
        assert!(matches!(l, SlotList::Inline { .. }));
        assert_eq!(l.len(), INLINE);
        l.push(99);
        assert!(matches!(l, SlotList::Spilled(_)));
        assert_eq!(l.len(), INLINE + 1);
        assert_eq!(l.as_slice(), &[0, 1, 2, 3, 99]);
    }

    #[test]
    fn swap_remove_inline_and_spilled() {
        let mut l = SlotList::default();
        l.push(10);
        l.push(20);
        l.push(30);
        l.swap_remove_value(10);
        assert_eq!(l.as_slice(), &[30, 20]);
        l.swap_remove_value(20);
        assert_eq!(l.as_slice(), &[30]);

        let mut s = SlotList::default();
        for i in 0..8 {
            s.push(i);
        }
        s.swap_remove_value(0);
        assert_eq!(s.len(), 7);
        assert!(!s.as_slice().contains(&0));
        for i in 1..8 {
            s.swap_remove_value(i);
        }
        assert!(s.is_empty());
    }

    #[test]
    #[should_panic(expected = "slot in page list")]
    fn removing_absent_slot_panics() {
        let mut l = SlotList::default();
        l.push(1);
        l.swap_remove_value(2);
    }
}
