//! Naive single-session replay — the oracle for the one-pass engine.
//!
//! Replays the trace tracking only one session's monitors, with plain
//! data structures and no event-stamp tricks. O(sessions × trace), used
//! only in tests and as a benchmark baseline.

use crate::membership::Membership;
use databp_machine::PageSize;
use databp_models::Counts;
use databp_trace::{Event, ObjectDesc, Trace};
use std::collections::HashMap;

/// Counts for session `session` alone, by direct replay.
pub fn simulate_naive<M: Membership>(
    trace: &Trace,
    membership: &M,
    page_size: PageSize,
    session: u32,
) -> Counts {
    let mut c = Counts::default();
    let mut active: HashMap<(ObjectDesc, u32), (u32, u32)> = HashMap::new();
    let mut page_count: HashMap<u32, u32> = HashMap::new();
    let mut scratch = Vec::new();
    let mut total_writes = 0u64;

    let is_member = |obj: &ObjectDesc, scratch: &mut Vec<u32>| {
        membership.sessions_of(obj, scratch);
        scratch.contains(&session)
    };

    for ev in trace.events() {
        match *ev {
            Event::Install { obj, ba, ea } => {
                if ba < ea && is_member(&obj, &mut scratch) {
                    active.insert((obj, ba), (ba, ea));
                    c.install += 1;
                    for page in page_size.pages_of_range(ba, ea) {
                        let n = page_count.entry(page).or_insert(0);
                        *n += 1;
                        if *n == 1 {
                            c.vm_protect += 1;
                        }
                    }
                }
            }
            Event::Remove { obj, ba, .. } => {
                if let Some((ba, ea)) = active.remove(&(obj, ba)) {
                    c.remove += 1;
                    for page in page_size.pages_of_range(ba, ea) {
                        let n = page_count.get_mut(&page).expect("counted page");
                        *n -= 1;
                        if *n == 0 {
                            page_count.remove(&page);
                            c.vm_unprotect += 1;
                        }
                    }
                }
            }
            Event::Write { ba, ea, .. } => {
                total_writes += 1;
                if ba >= ea {
                    continue;
                }
                let hit = active.values().any(|&(mba, mea)| ba < mea && mba < ea);
                if hit {
                    c.hit += 1;
                } else {
                    let touches_active_page = page_size
                        .pages_of_range(ba, ea)
                        .any(|p| page_count.contains_key(&p));
                    if touches_active_page {
                        c.vm_active_page_miss += 1;
                    }
                }
            }
            Event::Enter { .. } | Event::Exit { .. } => {}
        }
    }
    c.miss = total_writes - c.hit;
    c
}

/// Shared proptest generators for engine-vs-oracle equivalence tests
/// (also used by the streaming replay's tests).
#[cfg(test)]
pub(crate) mod testgen {
    use crate::membership::TableMembership;
    use databp_trace::{Event, ObjectDesc, Trace};
    use proptest::prelude::*;
    use std::collections::HashMap;

    /// Random traces where every object is eventually installed before
    /// use and removed at most once per install.
    pub(crate) fn arb_trace_and_membership() -> impl Strategy<Value = (Trace, TableMembership)> {
        // A small universe of objects and a small address space so that
        // page sharing and overlap happen constantly.
        let objs: Vec<ObjectDesc> = vec![
            ObjectDesc::Global { id: 0 },
            ObjectDesc::Global { id: 1 },
            ObjectDesc::Local { func: 0, var: 0 },
            ObjectDesc::Local { func: 0, var: 1 },
            ObjectDesc::Heap { seq: 0 },
            ObjectDesc::Heap { seq: 1 },
        ];
        let n_sessions = 3usize;
        let membership = prop::collection::vec(
            prop::collection::vec(0u32..n_sessions as u32, 0..3),
            objs.len(),
        );
        let script = prop::collection::vec(
            prop_oneof![
                // install object k at a random small range
                (0usize..6, 0u32..0x3000u32, 4u32..64).prop_map(|(k, ba, len)| (0u8, k, ba, len)),
                // remove object k
                (0usize..6).prop_map(|k| (1u8, k, 0, 0)),
                // write
                (0u32..0x3400u32, 1u32..8).prop_map(|(ba, len)| (2u8, 0, ba, len)),
            ],
            1..150,
        );
        (membership, script).prop_map(move |(mem, script)| {
            let objs = objs.clone();
            let mut live: HashMap<usize, (u32, u32)> = HashMap::new();
            let mut tr = Trace::new();
            for (op, k, ba, len) in script {
                match op {
                    0 => {
                        if let std::collections::hash_map::Entry::Vacant(e) = live.entry(k) {
                            let range = (ba, ba + len);
                            e.insert(range);
                            tr.push(Event::Install {
                                obj: objs[k],
                                ba: range.0,
                                ea: range.1,
                            });
                        }
                    }
                    1 => {
                        if let Some((ba, ea)) = live.remove(&k) {
                            tr.push(Event::Remove {
                                obj: objs[k],
                                ba,
                                ea,
                            });
                        }
                    }
                    _ => tr.push(Event::Write {
                        pc: 0,
                        ba,
                        ea: ba + len,
                        value: 0,
                        old: 0,
                    }),
                }
            }
            // Close out, like Tracer::finish.
            let mut leftover: Vec<(usize, (u32, u32))> = live.into_iter().collect();
            leftover.sort_unstable();
            for (k, (ba, ea)) in leftover {
                tr.push(Event::Remove {
                    obj: objs[k],
                    ba,
                    ea,
                });
            }
            let membership = TableMembership::new(
                objs.iter().zip(mem).map(|(o, ss)| (*o, ss)).collect(),
                n_sessions,
            );
            (tr, membership)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::testgen::arb_trace_and_membership;
    use super::*;
    use crate::engine::{simulate, simulate_sizes};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// The one-pass engine agrees with per-session naive replay on
        /// every counter, for both page sizes.
        #[test]
        fn engine_matches_naive_oracle((trace, membership) in arb_trace_and_membership()) {
            for ps in [PageSize::K4, PageSize::K8] {
                let fast = simulate(&trace, &membership, ps);
                for s in 0..membership.count() as u32 {
                    let slow = simulate_naive(&trace, &membership, ps, s);
                    prop_assert_eq!(
                        fast[s as usize], slow,
                        "divergence for session {} at page size {}", s, ps
                    );
                }
            }
        }

        /// The fused dual-page-size replay is bit-identical to the
        /// naive oracle run separately at 4K and at 8K.
        #[test]
        fn fused_engine_matches_naive_oracle((trace, membership) in arb_trace_and_membership()) {
            let (c4, c8) = crate::engine::simulate_fused(&trace, &membership);
            for s in 0..membership.count() as u32 {
                let slow4 = simulate_naive(&trace, &membership, PageSize::K4, s);
                let slow8 = simulate_naive(&trace, &membership, PageSize::K8, s);
                prop_assert_eq!(
                    c4[s as usize], slow4,
                    "fused 4K divergence for session {}", s
                );
                prop_assert_eq!(
                    c8[s as usize], slow8,
                    "fused 8K divergence for session {}", s
                );
            }
        }

        /// The generalized ladder at `[4K, 8K]` is byte-identical to the
        /// dedicated dual-size entry point.
        #[test]
        fn ladder_pair_matches_fused((trace, membership) in arb_trace_and_membership()) {
            let ladder = simulate_sizes(&trace, &membership, &[PageSize::K4, PageSize::K8]);
            let (c4, c8) = crate::engine::simulate_fused(&trace, &membership);
            prop_assert_eq!(&ladder[0], &c4);
            prop_assert_eq!(&ladder[1], &c8);
        }

        /// A four-size ladder matches the naive oracle at every size —
        /// one trace walk, four sets of page-derived counters.
        #[test]
        fn ladder_matches_naive_oracle((trace, membership) in arb_trace_and_membership()) {
            let ladder = [PageSize::K4, PageSize::K8, PageSize::K16, PageSize::K32];
            let fused = simulate_sizes(&trace, &membership, &ladder);
            for (k, &ps) in ladder.iter().enumerate() {
                for s in 0..membership.count() as u32 {
                    let slow = simulate_naive(&trace, &membership, ps, s);
                    prop_assert_eq!(
                        fused[k][s as usize], slow,
                        "ladder divergence for session {} at page size {}", s, ps
                    );
                }
            }
        }
    }
}
