//! The online trace-query engine.
//!
//! A query is a *predicate* (the same language the strategies compile
//! into their inline checks — see `databp_core::Predicate`) plus an
//! *aggregation* over the writes that satisfy it. The engine is
//! incremental: [`QueryEngine::feed`] accepts event batches in trace
//! order — straight from phase 1 as the tracer produces them, or
//! replayed out of a stored trace — and [`QueryEngine::result`]
//! snapshots the answer at any point. Feeding the same events in any
//! batch partitioning yields the same result, so online and replayed
//! evaluation agree exactly (a property the harness tests pin).
//!
//! Unlike the strategies, which evaluate predicates only over
//! *candidate* writes (those overlapping an installed monitor), a query
//! ranges over **all traced writes**: its `hits` counter advances on
//! every write event. That makes queries answerable from a cached trace
//! with no monitor-session replay at all — the replay service exploits
//! this to answer queries against cached traces with zero phase-1 work.

use databp_core::{CompiledPredicate, PredEval, Predicate, PredicateError, WriterMap};
use databp_trace::Event;
use std::collections::BTreeMap;
use std::fmt;

/// Value samples retained by a `watch` aggregation; the total keeps
/// counting past this.
pub const MAX_WATCH_SAMPLES: usize = 4096;

/// What to compute over the matching writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregation {
    /// How many writes matched (and how many writes there were).
    Count,
    /// The first matching write.
    First,
    /// The last matching write.
    Last,
    /// Matching-write counts per store site (pc).
    Histogram,
    /// The sequence of values the matching writes stored.
    ValueWatch,
}

impl Aggregation {
    /// The keyword naming this aggregation in query syntax.
    pub fn keyword(self) -> &'static str {
        match self {
            Aggregation::Count => "count",
            Aggregation::First => "first",
            Aggregation::Last => "last",
            Aggregation::Histogram => "hist",
            Aggregation::ValueWatch => "watch",
        }
    }
}

/// A malformed query string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The query was empty.
    Empty,
    /// The leading word is not an aggregation keyword.
    UnknownAggregation(String),
    /// The `if` clause failed to parse or compile.
    Predicate(PredicateError),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Empty => {
                write!(
                    f,
                    "empty query: expected `count|first|last|hist|watch [if <predicate>]`"
                )
            }
            QueryError::UnknownAggregation(w) => {
                write!(
                    f,
                    "unknown aggregation `{w}`: expected count, first, last, hist, or watch"
                )
            }
            QueryError::Predicate(e) => write!(f, "bad predicate: {e}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<PredicateError> for QueryError {
    fn from(e: PredicateError) -> Self {
        QueryError::Predicate(e)
    }
}

/// A parsed query: `<aggregation> [if <predicate>]`.
#[derive(Debug, Clone)]
pub struct Query {
    /// The aggregation.
    pub agg: Aggregation,
    pred: Option<Predicate>,
}

impl Query {
    /// Parses `count | first | last | hist | watch [if <predicate>]`.
    ///
    /// # Errors
    ///
    /// [`QueryError`] on an empty string, unknown aggregation keyword,
    /// or malformed predicate.
    pub fn parse(src: &str) -> Result<Query, QueryError> {
        let src = src.trim();
        if src.is_empty() {
            return Err(QueryError::Empty);
        }
        let (head, rest) = match src.find(char::is_whitespace) {
            Some(i) => (&src[..i], src[i..].trim_start()),
            None => (src, ""),
        };
        let agg = match head {
            "count" => Aggregation::Count,
            "first" => Aggregation::First,
            "last" => Aggregation::Last,
            "hist" => Aggregation::Histogram,
            "watch" => Aggregation::ValueWatch,
            other => return Err(QueryError::UnknownAggregation(other.to_string())),
        };
        let pred = if rest.is_empty() {
            None
        } else {
            let body = rest
                .strip_prefix("if")
                .filter(|r| r.is_empty() || r.starts_with(char::is_whitespace))
                .ok_or_else(|| QueryError::UnknownAggregation(rest.to_string()))?;
            Some(Predicate::parse(body)?)
        };
        Ok(Query { agg, pred })
    }

    /// The predicate source, if the query has an `if` clause.
    pub fn predicate_src(&self) -> Option<&str> {
        self.pred.as_ref().map(Predicate::src)
    }

    /// Resolves `writer in f` names to function ids, producing a
    /// runnable query.
    ///
    /// # Errors
    ///
    /// [`QueryError::Predicate`] when a function name does not resolve.
    pub fn compile(
        &self,
        resolve: impl FnMut(&str) -> Option<u16>,
    ) -> Result<CompiledQuery, QueryError> {
        let pred = match &self.pred {
            Some(p) => Some(p.compile(resolve)?),
            None => None,
        };
        Ok(CompiledQuery {
            agg: self.agg,
            pred,
        })
    }
}

/// A compiled, runnable query.
#[derive(Debug, Clone)]
pub struct CompiledQuery {
    /// The aggregation.
    pub agg: Aggregation,
    /// The compiled `if` clause, if any.
    pub pred: Option<CompiledPredicate>,
}

/// One matching write, as reported by `first`/`last`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteHit {
    /// 1-based ordinal of this write among all traced writes — the
    /// value the predicate's `hits` variable had when it matched.
    pub seq: u64,
    /// Program counter of the writing instruction.
    pub pc: u32,
    /// Beginning address written.
    pub ba: u32,
    /// Ending address written (exclusive).
    pub ea: u32,
    /// Value written (masked to the store width).
    pub value: u32,
    /// Value overwritten (masked to the store width).
    pub old: u32,
}

/// A query answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryResult {
    /// `count`: matching writes out of all traced writes.
    Count {
        /// Writes satisfying the predicate.
        matched: u64,
        /// All traced writes seen.
        writes: u64,
    },
    /// `first`: the earliest matching write, if any matched.
    First(Option<WriteHit>),
    /// `last`: the latest matching write so far, if any matched.
    Last(Option<WriteHit>),
    /// `hist`: per-site (pc, matching-write count), ascending by pc.
    Histogram(Vec<(u32, u64)>),
    /// `watch`: the first [`MAX_WATCH_SAMPLES`] matching values, plus
    /// the total match count.
    ValueWatch {
        /// Values stored by matching writes, in trace order (capped).
        samples: Vec<u32>,
        /// Total matching writes (uncapped).
        total: u64,
    },
}

impl fmt::Display for QueryResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryResult::Count { matched, writes } => {
                write!(f, "count {matched}/{writes}")
            }
            QueryResult::First(h) | QueryResult::Last(h) => {
                let label = if matches!(self, QueryResult::First(_)) {
                    "first"
                } else {
                    "last"
                };
                match h {
                    Some(h) => write!(
                        f,
                        "{label} write #{} pc={:#x} [{:#x},{:#x}) value={} old={}",
                        h.seq, h.pc, h.ba, h.ea, h.value, h.old
                    ),
                    None => write!(f, "{label} (no match)"),
                }
            }
            QueryResult::Histogram(rows) => {
                write!(f, "hist")?;
                for (pc, n) in rows {
                    write!(f, " {pc:#x}:{n}")?;
                }
                Ok(())
            }
            QueryResult::ValueWatch { samples, total } => {
                write!(f, "watch {total} match(es):")?;
                for v in samples {
                    write!(f, " {v}")?;
                }
                if *total > samples.len() as u64 {
                    write!(f, " …")?;
                }
                Ok(())
            }
        }
    }
}

/// Evaluates one [`CompiledQuery`] incrementally over event batches.
#[derive(Debug, Clone)]
pub struct QueryEngine {
    agg: Aggregation,
    pred: Option<PredEval>,
    writers: WriterMap,
    writes: u64,
    matched: u64,
    first: Option<WriteHit>,
    last: Option<WriteHit>,
    hist: BTreeMap<u32, u64>,
    /// Pending `(pc, count)` histogram run: consecutive matches at the
    /// same site coalesce here and flush to the map only when the site
    /// changes, so tight store loops don't pay a map lookup per event.
    hist_run: Option<(u32, u64)>,
    samples: Vec<u32>,
}

impl QueryEngine {
    /// An engine for `query`; `writers` maps store pcs to their owning
    /// function for `writer in f` filters (pass an empty map when the
    /// predicate has no writer clauses).
    pub fn new(query: CompiledQuery, writers: WriterMap) -> Self {
        QueryEngine {
            agg: query.agg,
            pred: query.pred.map(PredEval::new),
            writers,
            writes: 0,
            matched: 0,
            first: None,
            last: None,
            hist: BTreeMap::new(),
            hist_run: None,
            samples: Vec::new(),
        }
    }

    /// Consumes the next batch of events, in trace order. Non-write
    /// events are ignored; any partitioning of the same event sequence
    /// into batches produces the same result.
    pub fn feed(&mut self, events: &[Event]) {
        for ev in events {
            self.feed_event(ev);
        }
    }

    /// Consumes one event.
    pub fn feed_event(&mut self, ev: &Event) {
        let &Event::Write {
            pc,
            ba,
            ea,
            value,
            old,
        } = ev
        else {
            return;
        };
        self.writes += 1;
        let fire = match self.pred.as_mut() {
            Some(pe) => pe.observe(value, old, self.writers.writer_of(pc)),
            None => true,
        };
        if !fire {
            return;
        }
        self.matched += 1;
        let hit = WriteHit {
            seq: self.writes,
            pc,
            ba,
            ea,
            value,
            old,
        };
        match self.agg {
            Aggregation::Count => {}
            Aggregation::First => {
                self.first.get_or_insert(hit);
            }
            Aggregation::Last => self.last = Some(hit),
            Aggregation::Histogram => match &mut self.hist_run {
                Some((run_pc, n)) if *run_pc == pc => *n += 1,
                run => {
                    if let Some((p, n)) = run.take() {
                        *self.hist.entry(p).or_insert(0) += n;
                    }
                    *run = Some((pc, 1));
                }
            },
            Aggregation::ValueWatch => {
                if self.samples.len() < MAX_WATCH_SAMPLES {
                    self.samples.push(value);
                }
            }
        }
    }

    /// Total writes seen so far.
    pub fn writes_seen(&self) -> u64 {
        self.writes
    }

    /// The answer over everything fed so far.
    pub fn result(&self) -> QueryResult {
        match self.agg {
            Aggregation::Count => QueryResult::Count {
                matched: self.matched,
                writes: self.writes,
            },
            Aggregation::First => QueryResult::First(self.first),
            Aggregation::Last => QueryResult::Last(self.last),
            Aggregation::Histogram => {
                let mut rows: Vec<(u32, u64)> = self.hist.iter().map(|(&pc, &n)| (pc, n)).collect();
                if let Some((pc, n)) = self.hist_run {
                    match rows.binary_search_by_key(&pc, |&(p, _)| p) {
                        Ok(i) => rows[i].1 += n,
                        Err(i) => rows.insert(i, (pc, n)),
                    }
                }
                QueryResult::Histogram(rows)
            }
            Aggregation::ValueWatch => QueryResult::ValueWatch {
                samples: self.samples.clone(),
                total: self.matched,
            },
        }
    }
}

/// Parses, compiles, and runs `query` over a complete event list in one
/// call — the replay-service and CLI entry point for cached traces.
///
/// # Errors
///
/// [`QueryError`] when the query is malformed or a `writer in f` name
/// does not resolve.
pub fn run_query(
    query: &str,
    events: &[Event],
    resolve: impl FnMut(&str) -> Option<u16>,
    writers: WriterMap,
) -> Result<QueryResult, QueryError> {
    let q = Query::parse(query)?.compile(resolve)?;
    let mut eng = QueryEngine::new(q, writers);
    eng.feed(events);
    Ok(eng.result())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(pc: u32, ba: u32, value: u32, old: u32) -> Event {
        Event::Write {
            pc,
            ba,
            ea: ba + 4,
            value,
            old,
        }
    }

    fn events() -> Vec<Event> {
        vec![
            Event::Enter { func: 0 },
            w(0x100, 0x40, 1, 0),
            w(0x104, 0x44, 7, 0),
            w(0x100, 0x40, 9, 1),
            Event::Exit { func: 0 },
        ]
    }

    fn run(q: &str) -> QueryResult {
        run_query(q, &events(), |_| None, WriterMap::default()).unwrap()
    }

    #[test]
    fn parse_accepts_each_aggregation() {
        for (src, agg) in [
            ("count", Aggregation::Count),
            ("first", Aggregation::First),
            ("last", Aggregation::Last),
            ("hist", Aggregation::Histogram),
            ("watch", Aggregation::ValueWatch),
        ] {
            assert_eq!(Query::parse(src).unwrap().agg, agg);
            let with_pred = format!("{src} if value > 0");
            let q = Query::parse(&with_pred).unwrap();
            assert_eq!(q.agg, agg);
            assert_eq!(q.predicate_src(), Some("value > 0"));
        }
    }

    #[test]
    fn parse_rejects_malformed_queries() {
        assert!(matches!(Query::parse("   "), Err(QueryError::Empty)));
        assert!(matches!(
            Query::parse("sum"),
            Err(QueryError::UnknownAggregation(w)) if w == "sum"
        ));
        assert!(matches!(
            Query::parse("count value > 0"),
            Err(QueryError::UnknownAggregation(_)),
        ));
        assert!(matches!(
            Query::parse("count if value >"),
            Err(QueryError::Predicate(_))
        ));
        // `iffy` is not the keyword `if`.
        assert!(matches!(
            Query::parse("count iffy"),
            Err(QueryError::UnknownAggregation(_))
        ));
    }

    #[test]
    fn unresolved_writer_name_fails_compile() {
        let q = Query::parse("count if writer in nosuch").unwrap();
        assert_eq!(
            q.compile(|_| None).unwrap_err(),
            QueryError::Predicate(PredicateError::UnknownFunction {
                name: "nosuch".to_string()
            })
        );
    }

    #[test]
    fn count_with_and_without_predicate() {
        assert_eq!(
            run("count"),
            QueryResult::Count {
                matched: 3,
                writes: 3
            }
        );
        assert_eq!(
            run("count if value > 5"),
            QueryResult::Count {
                matched: 2,
                writes: 3
            }
        );
    }

    #[test]
    fn first_and_last_carry_hit_details() {
        let QueryResult::First(Some(h)) = run("first if value > 5") else {
            panic!("expected a first hit");
        };
        assert_eq!((h.seq, h.pc, h.value, h.old), (2, 0x104, 7, 0));
        let QueryResult::Last(Some(h)) = run("last if value > 5") else {
            panic!("expected a last hit");
        };
        assert_eq!((h.seq, h.pc, h.value, h.old), (3, 0x100, 9, 1));
        assert_eq!(run("first if value > 100"), QueryResult::First(None));
    }

    #[test]
    fn histogram_groups_by_site() {
        assert_eq!(
            run("hist"),
            QueryResult::Histogram(vec![(0x100, 2), (0x104, 1)])
        );
        assert_eq!(
            run("hist if old == 0"),
            QueryResult::Histogram(vec![(0x100, 1), (0x104, 1)])
        );
    }

    #[test]
    fn watch_collects_matching_values() {
        assert_eq!(
            run("watch if value % 2 == 1"),
            QueryResult::ValueWatch {
                samples: vec![1, 7, 9],
                total: 3
            }
        );
    }

    #[test]
    fn hits_counts_all_writes_not_just_matches() {
        // `hits` advances on every traced write, so `hits % 2 == 0`
        // selects the 2nd write regardless of other clauses.
        assert_eq!(
            run("watch if hits % 2 == 0"),
            QueryResult::ValueWatch {
                samples: vec![7],
                total: 1
            }
        );
    }

    #[test]
    fn batch_partitioning_is_invisible() {
        let evs = events();
        let q = Query::parse("hist if value > 0")
            .unwrap()
            .compile(|_| None)
            .unwrap();
        let mut whole = QueryEngine::new(q.clone(), WriterMap::default());
        whole.feed(&evs);
        for split in 0..=evs.len() {
            let mut parts = QueryEngine::new(q.clone(), WriterMap::default());
            parts.feed(&evs[..split]);
            parts.feed(&evs[split..]);
            assert_eq!(parts.result(), whole.result());
        }
    }

    #[test]
    fn writer_filter_uses_the_pc_map() {
        let writers = WriterMap::new([(0x100, 0), (0x104, 1)]);
        let q = Query::parse("count if writer in put")
            .unwrap()
            .compile(|n| (n == "put").then_some(1))
            .unwrap();
        let mut eng = QueryEngine::new(q, writers);
        eng.feed(&events());
        assert_eq!(
            eng.result(),
            QueryResult::Count {
                matched: 1,
                writes: 3
            }
        );
    }

    #[test]
    fn display_renders_each_result() {
        assert_eq!(run("count").to_string(), "count 3/3");
        assert_eq!(run("hist").to_string(), "hist 0x100:2 0x104:1");
        assert_eq!(run("first if value > 100").to_string(), "first (no match)");
        assert_eq!(run("watch").to_string(), "watch 3 match(es): 1 7 9");
    }
}
