//! Replay-time verification of static check elision.
//!
//! The write-safety pass in `databp-analysis` claims certain store sites
//! can never write a monitored address under a given session's plan.
//! That claim is *load-bearing*: `CodePatch::with_staticopt` skips those
//! checks, so a wrong classification would silently drop notifications.
//! This module is the independent referee — it replays the full program
//! trace with exact monitor-lifetime bookkeeping and confirms that no
//! elided store ever overlapped a live monitor of the session it was
//! elided for. Any overlap is returned as a hard
//! [`ElisionViolation`], which the harness and property tests turn into
//! a test failure.

use crate::membership::Membership;
use databp_trace::{Event, ObjectDesc, Trace};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Proof that a statically elided store wrote a monitored address — the
/// write-safety classification was unsound for this program and session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElisionViolation {
    /// Session index the store was (wrongly) elided for.
    pub session: u32,
    /// Program counter of the offending store.
    pub pc: u32,
    /// Written range.
    pub write: (u32, u32),
    /// The live monitored range it overlapped.
    pub monitor: (u32, u32),
    /// The monitored object.
    pub obj: ObjectDesc,
}

impl fmt::Display for ElisionViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "elided store at pc {:#x} wrote [{:#x}, {:#x}) overlapping monitor [{:#x}, {:#x}) \
             on {:?} of session {} — unsound write-safety classification",
            self.pc,
            self.write.0,
            self.write.1,
            self.monitor.0,
            self.monitor.1,
            self.obj,
            self.session
        )
    }
}

impl std::error::Error for ElisionViolation {}

/// Replays `trace` and checks that no store whose pc appears in
/// `elided_per_session[s]` ever overlaps a monitor that session `s` has
/// live at that moment. `elided_per_session[s]` holds the *plain-build*
/// store pcs (the build the trace was recorded from) that the analysis
/// elides under session `s`'s plan class.
///
/// Returns the first violation found, or `Ok(())` when every elision was
/// sound for this trace.
///
/// # Errors
///
/// [`ElisionViolation`] identifying the offending store, monitor range,
/// object, and session.
pub fn verify_elided_stores<M: Membership>(
    trace: &Trace,
    membership: &M,
    elided_per_session: &[Vec<u32>],
) -> Result<(), ElisionViolation> {
    let _t = databp_telemetry::time!("sim.soundness");
    let elided: Vec<HashSet<u32>> = elided_per_session
        .iter()
        .map(|pcs| pcs.iter().copied().collect())
        .collect();
    if elided.iter().all(HashSet::is_empty) {
        return Ok(());
    }
    // Live monitor instances with the sessions watching each.
    let mut active: HashMap<(ObjectDesc, u32), (u32, u32, Vec<u32>)> = HashMap::new();
    let mut scratch = Vec::new();
    for ev in trace.events() {
        match *ev {
            Event::Install { obj, ba, ea } => {
                if ba < ea {
                    membership.sessions_of(&obj, &mut scratch);
                    if !scratch.is_empty() {
                        active.insert((obj, ba), (ba, ea, scratch.clone()));
                    }
                }
            }
            Event::Remove { obj, ba, .. } => {
                active.remove(&(obj, ba));
            }
            Event::Write { pc, ba, ea, .. } => {
                if ba >= ea {
                    continue;
                }
                for ((obj, _), &(mba, mea, ref sessions)) in &active {
                    if ba < mea && mba < ea {
                        for &s in sessions {
                            if elided.get(s as usize).is_some_and(|pcs| pcs.contains(&pc)) {
                                return Err(ElisionViolation {
                                    session: s,
                                    pc,
                                    write: (ba, ea),
                                    monitor: (mba, mea),
                                    obj: *obj,
                                });
                            }
                        }
                    }
                }
            }
            Event::Enter { .. } | Event::Exit { .. } => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::membership::TableMembership;

    fn membership() -> TableMembership {
        TableMembership::new(
            vec![
                (ObjectDesc::Global { id: 0 }, vec![0]),
                (ObjectDesc::Local { func: 0, var: 0 }, vec![1]),
            ],
            2,
        )
    }

    fn trace() -> Trace {
        let mut tr = Trace::new();
        tr.push(Event::Install {
            obj: ObjectDesc::Global { id: 0 },
            ba: 0x1000,
            ea: 0x1004,
        });
        tr.push(Event::Install {
            obj: ObjectDesc::Local { func: 0, var: 0 },
            ba: 0x2000,
            ea: 0x2004,
        });
        // pc 0x10: writes the global. pc 0x20: writes the local.
        tr.push(Event::Write {
            pc: 0x10,
            ba: 0x1000,
            ea: 0x1004,
            value: 0,
            old: 0,
        });
        tr.push(Event::Write {
            pc: 0x20,
            ba: 0x2000,
            ea: 0x2004,
            value: 0,
            old: 0,
        });
        tr.push(Event::Remove {
            obj: ObjectDesc::Local { func: 0, var: 0 },
            ba: 0x2000,
            ea: 0x2004,
        });
        // The local is dead now: its old range is fair game.
        tr.push(Event::Write {
            pc: 0x30,
            ba: 0x2000,
            ea: 0x2004,
            value: 0,
            old: 0,
        });
        tr
    }

    #[test]
    fn sound_elisions_pass() {
        // Session 0 (watches the global): eliding the local-writing
        // store is sound. Session 1 (watches the local): eliding the
        // global-writing store is sound, as is the post-removal write.
        let ok = verify_elided_stores(&trace(), &membership(), &[vec![0x20], vec![0x10, 0x30]]);
        assert_eq!(ok, Ok(()));
    }

    #[test]
    fn unsound_elision_is_caught() {
        // Eliding pc 0x10 for session 0 is wrong: it writes the
        // monitored global while the monitor is live.
        let err = verify_elided_stores(&trace(), &membership(), &[vec![0x10], vec![]])
            .expect_err("must be flagged");
        assert_eq!(err.session, 0);
        assert_eq!(err.pc, 0x10);
        assert_eq!(err.monitor, (0x1000, 0x1004));
        assert_eq!(err.obj, ObjectDesc::Global { id: 0 });
        assert!(err.to_string().contains("unsound"));
    }

    #[test]
    fn removal_ends_liability() {
        // pc 0x30 writes the local's old range *after* removal — sound
        // to elide even for the local's own session.
        assert_eq!(
            verify_elided_stores(&trace(), &membership(), &[vec![], vec![0x30]]),
            Ok(())
        );
    }

    #[test]
    fn empty_elisions_trivially_pass() {
        assert_eq!(
            verify_elided_stores(&trace(), &membership(), &[vec![], vec![]]),
            Ok(())
        );
    }
}
