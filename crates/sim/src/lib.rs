//! The phase-2 simulator (Section 4).
//!
//! Phase 1 produced a program event trace; phase 2 replays it against a
//! description of which objects each *monitor session* watches, emitting
//! the paper's counting variables ([`databp_models::Counts`]) per
//! session. Those counts feed the analytical models.
//!
//! The engine ([`simulate`]) processes **all sessions in one pass** over
//! the trace: each write consults a per-page index of active monitored
//! object instances and attributes hits / active-page misses to the
//! owning sessions with event-stamped deduplication. A naive per-session
//! replay ([`simulate_naive`]) serves as the correctness oracle in
//! property tests.
//!
//! Page-size-dependent counters (`VMProtectσ`, `VMUnprotectσ`,
//! `VMActivePageMissσ`) are computed for the page size passed in; the
//! harness runs the engine once for 4 KiB and once for 8 KiB, exactly as
//! the paper reports VM-4K and VM-8K.

mod engine;
mod membership;
mod naive;

pub use engine::simulate;
pub use membership::{Membership, TableMembership};
pub use naive::simulate_naive;
