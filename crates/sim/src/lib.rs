//! The phase-2 simulator (Section 4).
//!
//! Phase 1 produced a program event trace; phase 2 replays it against a
//! description of which objects each *monitor session* watches, emitting
//! the paper's counting variables ([`databp_models::Counts`]) per
//! session. Those counts feed the analytical models.
//!
//! The engine processes **all sessions and all page sizes in one pass**
//! over the trace: each write consults a per-page index of active
//! monitored object instances and attributes hits / active-page misses
//! to the owning sessions with event-stamped deduplication. A naive
//! per-session replay ([`simulate_naive`]) serves as the correctness
//! oracle in property tests.
//!
//! Page-size-dependent counters (`VMProtectσ`, `VMUnprotectσ`,
//! `VMActivePageMissσ`) are kept per page size inside the engine, so one
//! replay yields a whole *page-size ladder* of columns — any set of
//! power-of-two sizes, derived from a single page index at the smallest
//! size. [`simulate`] remains for single-size callers,
//! [`simulate_fused`] for the paper's VM-4K / VM-8K pair, and
//! [`simulate_sizes`] for arbitrary ladders. Hot paths use a vendored
//! FxHash hasher and inline per-page slot lists (see `slots.rs`).
//!
//! The engine is event-driven: [`StreamingReplay`] accepts event
//! batches as phase 1 produces them, overlapping replay with trace
//! generation (see `databp-trace`'s `batch_channel`). Online session
//! membership goes through [`StreamMembership`]; [`FixedMembership`]
//! adapts a precomputed [`Membership`] table.

mod engine;
mod membership;
mod naive;
mod pushdown;
mod query;
mod slots;
mod soundness;
mod stream;

pub use engine::{simulate, simulate_fused, simulate_sizes};
pub use membership::{Membership, SessionLanes, TableMembership};
pub use naive::simulate_naive;
pub use pushdown::{scan_query, ScanError, ScanStats};
pub use query::{
    run_query, Aggregation, CompiledQuery, Query, QueryEngine, QueryError, QueryResult, WriteHit,
    MAX_WATCH_SAMPLES,
};
pub use slots::SlotList;
pub use soundness::{verify_elided_stores, ElisionViolation};
pub use stream::{FixedMembership, StreamMembership, StreamingReplay};
