//! The phase-2 simulator (Section 4).
//!
//! Phase 1 produced a program event trace; phase 2 replays it against a
//! description of which objects each *monitor session* watches, emitting
//! the paper's counting variables ([`databp_models::Counts`]) per
//! session. Those counts feed the analytical models.
//!
//! The engine processes **all sessions and all page sizes in one pass**
//! over the trace: each write consults a per-page index of active
//! monitored object instances and attributes hits / active-page misses
//! to the owning sessions with event-stamped deduplication. A naive
//! per-session replay ([`simulate_naive`]) serves as the correctness
//! oracle in property tests.
//!
//! Page-size-dependent counters (`VMProtectσ`, `VMUnprotectσ`,
//! `VMActivePageMissσ`) are kept per page size inside the engine, so one
//! replay ([`simulate_fused`]) yields both the VM-4K and VM-8K columns
//! the paper reports; [`simulate`] remains for single-size callers and
//! [`simulate_sizes`] generalizes to any page-size list. Hot paths use a
//! vendored FxHash hasher and inline per-page slot lists (see
//! `slots.rs`).

mod engine;
mod membership;
mod naive;
mod slots;
mod soundness;

pub use engine::{simulate, simulate_fused, simulate_sizes};
pub use membership::{Membership, TableMembership};
pub use naive::simulate_naive;
pub use slots::SlotList;
pub use soundness::{verify_elided_stores, ElisionViolation};
