//! Columnar query pushdown: answer trace queries straight from DBPT v2
//! bytes, skipping blocks their zone maps refute.
//!
//! [`scan_query`] is the block-granular counterpart of
//! [`run_query`](crate::run_query). Instead of decoding the whole trace
//! and interpreting every event, it:
//!
//! 1. opens the file with [`databp_trace::ColumnarReader`] (header and
//!    block directory only — no column decode);
//! 2. compiles the query's predicate into a *block-level refutation
//!    test* via [`CompiledPredicate::decide_over`]: the block's
//!    [`ZoneMap`] bounds `value`, `old` and (through cumulative write
//!    counts) `hits`, and `writer in f` becomes a tri-state pc-range
//!    test against the [`WriterMap`] segments plus the zone's write-pc
//!    occupancy filter. Blocks the interval abstraction refutes are
//!    never decoded — yet still advance the write totals and the `hits`
//!    numbering, exactly, from their zone counts;
//! 3. decodes each surviving block lazily — only the columns the query
//!    actually reads (`count if value > 100` touches just the values
//!    column);
//! 4. fans surviving blocks across worker threads (a shared block
//!    cursor, the calling thread participating) and merges the
//!    per-block partial aggregates **in block order**, so the answer is
//!    deterministic and byte-identical to the full-scan engine's.
//!    `first` (and `last`, scanned back-to-front) short-circuit: once
//!    an earlier block answers, later slots are cut without decoding.
//!
//! Soundness: every skip decision is conservative. Zone maps are
//! checksummed and cross-checked against block headers on open (a
//! damaged trailer degrades to a full scan), `decide_over` only returns
//! a definite answer when *no* write consistent with the zone bounds
//! could disagree, and scanned blocks verify their decoded write count
//! against the zone that predicted it. The differential property suite
//! (`harness/tests/query_pushdown.rs`) pins equality with the
//! event-at-a-time engine across random traces, queries, and block
//! boundaries.

use crate::query::{Aggregation, CompiledQuery, Query, QueryError, QueryResult, WriteHit};
use crate::MAX_WATCH_SAMPLES;
use databp_core::{CompiledPredicate, WriteSpan, WriterMap, NO_WRITER};
use databp_trace::{
    read_columnar, BlockWrites, ColumnarReader, RawBlock, TraceCodecError, WriteCols, ZoneMap,
};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Scan accounting for one [`scan_query`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Blocks whose columns were (partially) decoded.
    pub blocks_scanned: u64,
    /// Blocks never decoded: zone-refuted, empty of writes, answered
    /// from counts alone, or cut by a `first`/`last` short-circuit.
    pub blocks_skipped: u64,
    /// Total writes in the trace per the zone maps (or the decode, when
    /// the file carries no usable zone maps and every block is scanned).
    pub writes: u64,
}

/// A failed [`scan_query`]: either the query itself is malformed or the
/// trace bytes are.
#[derive(Debug)]
pub enum ScanError {
    /// Malformed query or unresolvable `writer in f` name.
    Query(QueryError),
    /// Malformed trace bytes.
    Codec(TraceCodecError),
}

impl fmt::Display for ScanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScanError::Query(e) => write!(f, "{e}"),
            ScanError::Codec(e) => write!(f, "bad trace: {e}"),
        }
    }
}

impl std::error::Error for ScanError {}

impl From<QueryError> for ScanError {
    fn from(e: QueryError) -> Self {
        ScanError::Query(e)
    }
}

impl From<TraceCodecError> for ScanError {
    fn from(e: TraceCodecError) -> Self {
        ScanError::Codec(e)
    }
}

/// What to do with one block, decided from its zone map alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Action {
    /// No write in the block can match (or it has no writes): never
    /// decode it; its zone write count still feeds the totals.
    Skip,
    /// Every write matches and the aggregation only needs counts: add
    /// the zone's write count to `matched` without decoding.
    CountOnly,
    /// Decode (the needed columns) and evaluate per write.
    Scan,
}

/// Per-block partial aggregate, merged in block order.
#[derive(Debug, Default)]
struct BlockPartial {
    matched: u64,
    first: Option<WriteHit>,
    last: Option<WriteHit>,
    /// Sorted `(pc, count)` rows, merged once per block.
    hist: Vec<(u32, u64)>,
    samples: Vec<u32>,
}

/// What a parallel slot produced.
enum Outcome {
    Scanned(BlockPartial),
    /// Cut by a `first`/`last` short-circuit before being decoded.
    Cut,
}

/// Tri-state writer presence for a block: `Some(true)` = every write's
/// writer is `f`, `Some(false)` = no write's writer can be `f`, `None`
/// = mixed/unknown. Uses the zone's write-pc range against the sorted
/// `WriterMap` segments, sharpened by the 64-bucket pc occupancy
/// filter.
fn writer_presence(zone: &ZoneMap, writers: &WriterMap, f: u16) -> Option<bool> {
    let (pc_min, pc_max) = zone.write_pc_range()?;
    let segs = writers.segments();
    let idx_min = segs.partition_point(|&(entry, _)| entry <= pc_min);
    let idx_max = segs.partition_point(|&(entry, _)| entry <= pc_max);
    if idx_min == idx_max {
        // The whole pc range lies in one segment (or below every
        // entry): every write has that segment's id.
        let id = if idx_min == 0 {
            NO_WRITER
        } else {
            segs[idx_min - 1].1
        };
        return Some(id == f);
    }
    // Mixed range: definite only if no write pc can land in any of
    // `f`'s segments.
    for (i, &(entry, id)) in segs.iter().enumerate() {
        if id != f {
            continue;
        }
        let seg_hi = match segs.get(i + 1) {
            // A duplicate entry shadows this segment entirely.
            Some(&(next, _)) if next <= entry => continue,
            Some(&(next, _)) => next - 1,
            None => u32::MAX,
        };
        if zone.any_write_pc_in(entry, seg_hi) {
            return None;
        }
    }
    Some(false)
}

/// Decides a block from its zone map. `base` is the number of writes in
/// all earlier blocks (the `hits` ordinal base).
fn decide_block(
    zone: &ZoneMap,
    base: u64,
    pred: Option<&CompiledPredicate>,
    agg: Aggregation,
    writers: &WriterMap,
) -> Action {
    if zone.writes == 0 {
        return Action::Skip;
    }
    let all_match = match pred {
        None => Some(true),
        Some(p) => {
            let span = WriteSpan {
                value: zone.write_value_range().expect("writes > 0"),
                old: zone.write_old_range().expect("writes > 0"),
                hits: (base + 1, base + u64::from(zone.writes)),
            };
            p.decide_over(&span, &mut |f| writer_presence(zone, writers, f))
        }
    };
    match all_match {
        Some(false) => Action::Skip,
        Some(true) if agg == Aggregation::Count => Action::CountOnly,
        _ => Action::Scan,
    }
}

/// The columns `agg`/`pred` actually read.
fn needed_columns(agg: Aggregation, pred: Option<&CompiledPredicate>) -> WriteCols {
    let hit_detail = matches!(agg, Aggregation::First | Aggregation::Last);
    WriteCols {
        pcs: hit_detail
            || agg == Aggregation::Histogram
            || pred.is_some_and(CompiledPredicate::uses_writer),
        addrs: hit_detail,
        values: hit_detail
            || agg == Aggregation::ValueWatch
            || pred.is_some_and(CompiledPredicate::uses_value),
        olds: hit_detail || pred.is_some_and(CompiledPredicate::uses_old),
    }
}

/// Scans one block: decodes the needed columns and folds its writes
/// into a [`BlockPartial`]. `expect_writes` (from the zone map) is
/// cross-checked against the decode when known.
fn scan_block(
    block: &RawBlock<'_>,
    base: u64,
    q: &CompiledQuery,
    writers: &WriterMap,
    want: WriteCols,
    expect_writes: Option<u64>,
    bw: &mut BlockWrites,
) -> Result<BlockPartial, TraceCodecError> {
    let n = u64::from(block.decode_writes(want, bw)?);
    if let Some(expect) = expect_writes {
        if expect != n {
            return Err(TraceCodecError::Malformed(format!(
                "zone map promises {expect} writes, block decodes {n}"
            )));
        }
    }
    let mut out = BlockPartial::default();
    let uses_writer = q.pred.as_ref().is_some_and(CompiledPredicate::uses_writer);
    let eval = |i: u64| -> bool {
        match &q.pred {
            None => true,
            Some(p) => {
                let value = if want.values {
                    bw.values[i as usize]
                } else {
                    0
                };
                let old = if want.olds { bw.olds[i as usize] } else { 0 };
                let writer = if uses_writer {
                    writers.writer_of(bw.pcs[i as usize])
                } else {
                    NO_WRITER
                };
                p.eval(value, old, base + i + 1, writer)
            }
        }
    };
    let hit = |i: u64| -> WriteHit {
        WriteHit {
            seq: base + i + 1,
            pc: bw.pcs[i as usize],
            ba: bw.bas[i as usize],
            ea: bw.eas[i as usize],
            value: bw.values[i as usize],
            old: bw.olds[i as usize],
        }
    };
    match q.agg {
        Aggregation::Count => {
            for i in 0..n {
                out.matched += u64::from(eval(i));
            }
        }
        Aggregation::First => {
            for i in 0..n {
                if eval(i) {
                    out.matched += 1;
                    out.first = Some(hit(i));
                    break;
                }
            }
        }
        Aggregation::Last => {
            for i in (0..n).rev() {
                if eval(i) {
                    out.matched += 1;
                    out.last = Some(hit(i));
                    break;
                }
            }
        }
        Aggregation::Histogram => {
            // Coalesce consecutive same-pc matches, then sort and merge
            // once — no per-event map insertion.
            let mut runs: Vec<(u32, u64)> = Vec::new();
            for i in 0..n {
                if !eval(i) {
                    continue;
                }
                out.matched += 1;
                let pc = bw.pcs[i as usize];
                match runs.last_mut() {
                    Some((run_pc, c)) if *run_pc == pc => *c += 1,
                    _ => runs.push((pc, 1)),
                }
            }
            runs.sort_unstable_by_key(|&(pc, _)| pc);
            for (pc, c) in runs {
                match out.hist.last_mut() {
                    Some((last_pc, total)) if *last_pc == pc => *total += c,
                    _ => out.hist.push((pc, c)),
                }
            }
        }
        Aggregation::ValueWatch => {
            for i in 0..n {
                if eval(i) {
                    out.matched += 1;
                    if out.samples.len() < MAX_WATCH_SAMPLES {
                        out.samples.push(bw.values[i as usize]);
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Runs the scan items (block index, hits base) with `jobs`-way
/// parallelism over a shared cursor; the calling thread participates.
/// `short_circuit` cuts slots after the first item (in `items` order)
/// that produces a hit. Slot results come back in `items` order.
fn run_items(
    reader: &ColumnarReader<'_>,
    items: &[(usize, u64)],
    q: &CompiledQuery,
    writers: &WriterMap,
    want: WriteCols,
    jobs: usize,
    short_circuit: bool,
) -> Result<Vec<Outcome>, TraceCodecError> {
    let zones = reader.zones();
    let slots: Vec<OnceLock<Result<Outcome, TraceCodecError>>> =
        (0..items.len()).map(|_| OnceLock::new()).collect();
    let cursor = AtomicUsize::new(0);
    let stop_at = AtomicUsize::new(usize::MAX);
    let worker = || {
        let mut bw = BlockWrites::default();
        loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= items.len() {
                break;
            }
            if short_circuit && i > stop_at.load(Ordering::Relaxed) {
                let _ = slots[i].set(Ok(Outcome::Cut));
                continue;
            }
            let (bidx, base) = items[i];
            let expect = zones.map(|z| u64::from(z[bidx].writes));
            let res = scan_block(
                &reader.blocks()[bidx],
                base,
                q,
                writers,
                want,
                expect,
                &mut bw,
            );
            if short_circuit {
                if let Ok(p) = &res {
                    if p.first.is_some() || p.last.is_some() {
                        stop_at.fetch_min(i, Ordering::Relaxed);
                    }
                }
            }
            let _ = slots[i].set(res.map(Outcome::Scanned));
        }
    };
    let helpers = jobs.max(1).min(items.len()).saturating_sub(1);
    if helpers == 0 {
        worker();
    } else {
        std::thread::scope(|s| {
            for _ in 0..helpers {
                s.spawn(worker);
            }
            worker();
        });
    }
    let mut out = Vec::with_capacity(items.len());
    for slot in slots {
        match slot.into_inner().expect("every slot claimed") {
            Ok(o) => out.push(o),
            Err(e) => return Err(e),
        }
    }
    Ok(out)
}

/// Parses, compiles, and runs `query` directly over DBPT v2 `bytes` —
/// the pushdown counterpart of [`run_query`](crate::run_query),
/// returning the identical [`QueryResult`] plus scan accounting.
///
/// `jobs` bounds the worker threads for the block scan (`1` = fully
/// sequential; the result does not depend on it). Files without usable
/// zone maps (legacy, trailer-less, or with a corrupted trailer) fall
/// back to scanning every block; legacy six-column files fall back to a
/// full decode.
///
/// # Errors
///
/// [`ScanError::Query`] when the query is malformed or a `writer in f`
/// name does not resolve; [`ScanError::Codec`] when the bytes are.
pub fn scan_query(
    bytes: &[u8],
    query: &str,
    resolve: impl FnMut(&str) -> Option<u16>,
    writers: &WriterMap,
    jobs: usize,
) -> Result<(QueryResult, ScanStats), ScanError> {
    let q = Query::parse(query)?.compile(resolve)?;
    let reader = ColumnarReader::open(bytes)?;
    if !reader.has_write_values() {
        // Legacy six-column layout: write values live nowhere but the
        // full decode. Rare enough that pushdown doesn't special-case
        // it beyond this fallback.
        let (trace, _) = read_columnar(bytes)?;
        let mut eng = crate::QueryEngine::new(q, writers.clone());
        eng.feed(trace.events());
        let stats = ScanStats {
            blocks_scanned: reader.blocks().len() as u64,
            blocks_skipped: 0,
            writes: eng.writes_seen(),
        };
        record(&stats);
        return Ok((eng.result(), stats));
    }
    let pred = q.pred.as_ref();
    let want = needed_columns(q.agg, pred);
    let n_blocks = reader.blocks().len();

    // Decide every block up front (zones present), or scan everything.
    let mut items: Vec<(usize, u64)> = Vec::new();
    let mut count_only = 0u64;
    let total_writes = match reader.zones() {
        Some(zones) => {
            let mut base = 0u64;
            for (idx, zone) in zones.iter().enumerate() {
                match decide_block(zone, base, pred, q.agg, writers) {
                    Action::Skip => {}
                    Action::CountOnly => count_only += u64::from(zone.writes),
                    Action::Scan => items.push((idx, base)),
                }
                base += u64::from(zone.writes);
            }
            base
        }
        None => {
            // No usable zone maps: every block is a scan item, with
            // hits bases discovered by a cheap tag-only counting pass
            // (no value columns decoded).
            let mut base = 0u64;
            let mut bw = BlockWrites::default();
            for (idx, block) in reader.blocks().iter().enumerate() {
                let n = block
                    .decode_writes(WriteCols::default(), &mut bw)
                    .map_err(ScanError::Codec)?;
                items.push((idx, base));
                base += u64::from(n);
            }
            base
        }
    };

    // `last` short-circuits back-to-front; everything else runs
    // front-to-back.
    let short_circuit = matches!(q.agg, Aggregation::First | Aggregation::Last);
    if q.agg == Aggregation::Last {
        items.reverse();
    }
    let outcomes = run_items(&reader, &items, &q, writers, want, jobs, short_circuit)?;

    // Deterministic in-order merge (slot order == items order).
    let mut scanned = 0u64;
    let mut matched = count_only;
    let mut first: Option<WriteHit> = None;
    let mut last: Option<WriteHit> = None;
    let mut hist: Vec<(u32, u64)> = Vec::new();
    let mut samples: Vec<u32> = Vec::new();
    let mut watch_total = 0u64;
    for outcome in &outcomes {
        let partial = match outcome {
            Outcome::Scanned(p) => p,
            Outcome::Cut => continue,
        };
        scanned += 1;
        match q.agg {
            Aggregation::Count => matched += partial.matched,
            Aggregation::First => {
                if first.is_none() {
                    first = partial.first;
                }
            }
            Aggregation::Last => {
                // Items are reversed, so the first hit seen is the
                // latest in trace order.
                if last.is_none() {
                    last = partial.last;
                }
            }
            Aggregation::Histogram => {
                // Merge two sorted row lists.
                if hist.is_empty() {
                    hist = partial.hist.clone();
                } else if !partial.hist.is_empty() {
                    let mut merged = Vec::with_capacity(hist.len() + partial.hist.len());
                    let (mut a, mut b) = (hist.iter().peekable(), partial.hist.iter().peekable());
                    while let (Some(&&(pa, ca)), Some(&&(pb, cb))) = (a.peek(), b.peek()) {
                        match pa.cmp(&pb) {
                            std::cmp::Ordering::Less => {
                                merged.push((pa, ca));
                                a.next();
                            }
                            std::cmp::Ordering::Greater => {
                                merged.push((pb, cb));
                                b.next();
                            }
                            std::cmp::Ordering::Equal => {
                                merged.push((pa, ca + cb));
                                a.next();
                                b.next();
                            }
                        }
                    }
                    merged.extend(a.copied());
                    merged.extend(b.copied());
                    hist = merged;
                }
            }
            Aggregation::ValueWatch => {
                watch_total += partial.matched;
                let room = MAX_WATCH_SAMPLES - samples.len();
                samples.extend(partial.samples.iter().take(room).copied());
            }
        }
    }

    let result = match q.agg {
        Aggregation::Count => QueryResult::Count {
            matched,
            writes: total_writes,
        },
        Aggregation::First => QueryResult::First(first),
        Aggregation::Last => QueryResult::Last(last),
        Aggregation::Histogram => QueryResult::Histogram(hist),
        Aggregation::ValueWatch => QueryResult::ValueWatch {
            samples,
            total: watch_total,
        },
    };
    let stats = ScanStats {
        blocks_scanned: scanned,
        blocks_skipped: n_blocks as u64 - scanned,
        writes: total_writes,
    };
    record(&stats);
    Ok((result, stats))
}

fn record(stats: &ScanStats) {
    databp_telemetry::count!("query.blocks_scanned", stats.blocks_scanned);
    databp_telemetry::count!("query.blocks_skipped", stats.blocks_skipped);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_query;
    use databp_trace::{write_columnar_with, Event, Trace, WriteOpts};

    fn w(pc: u32, ba: u32, value: u32, old: u32) -> Event {
        Event::Write {
            pc,
            ba,
            ea: ba + 4,
            value,
            old,
        }
    }

    /// A trace whose value ranges differ sharply per 8-event block.
    fn blocky_trace() -> Trace {
        let mut evs = Vec::new();
        for b in 0u32..6 {
            for i in 0u32..8 {
                let pc = 0x100 + b * 0x40 + (i % 2) * 4;
                evs.push(w(pc, 0x1000 + i * 4, b * 100 + i, i));
            }
        }
        Trace::from_events(evs)
    }

    fn encoded(trace: &Trace, block_events: usize, zone_maps: bool) -> Vec<u8> {
        let mut buf = Vec::new();
        write_columnar_with(
            trace,
            &[],
            &mut buf,
            WriteOpts {
                block_events,
                zone_maps,
            },
        )
        .unwrap();
        buf
    }

    #[test]
    fn pushdown_matches_full_scan_and_skips_blocks() {
        let t = blocky_trace();
        let bytes = encoded(&t, 8, true);
        for q in [
            "count",
            "count if value > 450",
            "count if value > 250 && old < 4",
            "first if value > 250",
            "last if value < 100",
            "hist if value % 2 == 0",
            "watch if value > 499",
            "count if hits > 40",
        ] {
            let want = run_query(q, t.events(), |_| None, WriterMap::default()).unwrap();
            for jobs in [1, 4] {
                let (got, stats) =
                    scan_query(&bytes, q, |_| None, &WriterMap::default(), jobs).unwrap();
                assert_eq!(got, want, "query `{q}` with jobs={jobs}");
                assert_eq!(stats.writes, 48);
                assert_eq!(stats.blocks_scanned + stats.blocks_skipped, 6);
            }
        }
        // A fully selective query answers without scanning at all: the
        // last block's values (500..=507) all pass, earlier blocks all
        // refute, so zone counts settle everything.
        let (r, stats) = scan_query(
            &bytes,
            "count if value > 450",
            |_| None,
            &WriterMap::default(),
            1,
        )
        .unwrap();
        assert_eq!(
            r,
            QueryResult::Count {
                matched: 8,
                writes: 48
            }
        );
        assert_eq!(stats.blocks_skipped, 6);
        assert_eq!(stats.blocks_scanned, 0);
        // A predicate straddling one block's value range scans exactly
        // that block.
        let (_, stats) = scan_query(
            &bytes,
            "count if value > 500",
            |_| None,
            &WriterMap::default(),
            1,
        )
        .unwrap();
        assert_eq!(stats.blocks_skipped, 5);
        assert_eq!(stats.blocks_scanned, 1);
        // `count` with no predicate answers entirely from zone counts.
        let (r, stats) = scan_query(&bytes, "count", |_| None, &WriterMap::default(), 1).unwrap();
        assert_eq!(
            r,
            QueryResult::Count {
                matched: 48,
                writes: 48
            }
        );
        assert_eq!(stats.blocks_scanned, 0);
    }

    #[test]
    fn first_short_circuits_and_last_scans_backwards() {
        let t = blocky_trace();
        let bytes = encoded(&t, 8, true);
        // Everything matches: `first` needs exactly one block.
        let (r, stats) = scan_query(&bytes, "first", |_| None, &WriterMap::default(), 4).unwrap();
        let want = run_query("first", t.events(), |_| None, WriterMap::default()).unwrap();
        assert_eq!(r, want);
        assert_eq!(stats.blocks_scanned, 1);
        // `last` answers from the final block alone.
        let (r, stats) = scan_query(&bytes, "last", |_| None, &WriterMap::default(), 4).unwrap();
        let want = run_query("last", t.events(), |_| None, WriterMap::default()).unwrap();
        assert_eq!(r, want);
        assert_eq!(stats.blocks_scanned, 1);
    }

    #[test]
    fn no_zone_file_full_scans_to_the_same_answer() {
        let t = blocky_trace();
        let bytes = encoded(&t, 8, false);
        let q = "count if value > 450";
        let want = run_query(q, t.events(), |_| None, WriterMap::default()).unwrap();
        let (got, stats) = scan_query(&bytes, q, |_| None, &WriterMap::default(), 2).unwrap();
        assert_eq!(got, want);
        assert_eq!(stats.blocks_skipped, 0);
        assert_eq!(stats.blocks_scanned, 6);
    }

    #[test]
    fn corrupted_trailer_degrades_to_full_scan_not_wrong_answer() {
        let t = blocky_trace();
        let mut bytes = encoded(&t, 8, true);
        let last = bytes.len() - 1;
        bytes[last] ^= 0x5a;
        let q = "count if value > 450";
        let want = run_query(q, t.events(), |_| None, WriterMap::default()).unwrap();
        let (got, stats) = scan_query(&bytes, q, |_| None, &WriterMap::default(), 2).unwrap();
        assert_eq!(got, want);
        assert_eq!(stats.blocks_skipped, 0, "no zones, no skipping");
    }

    #[test]
    fn writer_filter_refutes_by_pc_range() {
        let t = blocky_trace();
        let bytes = encoded(&t, 8, true);
        // Blocks 0..6 use pcs 0x100+b*0x40: function `f5` owns
        // [0x240, ...), i.e. exactly block 5's pcs.
        let writers = WriterMap::new((0u16..6).map(|b| (0x100 + u32::from(b) * 0x40, b)));
        let resolve = |name: &str| name.strip_prefix('f').and_then(|s| s.parse::<u16>().ok());
        let q = "count if writer in f5";
        let want = run_query(q, t.events(), resolve, writers.clone()).unwrap();
        let (got, stats) = scan_query(&bytes, q, resolve, &writers, 1).unwrap();
        assert_eq!(got, want);
        // Whole-block pc homogeneity: every non-f5 block refutes, and
        // block 5 affirms into a count-only skip.
        assert_eq!(stats.blocks_scanned, 0);
        assert_eq!(stats.blocks_skipped, 6);
    }

    #[test]
    fn empty_trace_scans_cleanly() {
        let t = Trace::new();
        let bytes = encoded(&t, 8, true);
        let (r, stats) = scan_query(&bytes, "count", |_| None, &WriterMap::default(), 1).unwrap();
        assert_eq!(
            r,
            QueryResult::Count {
                matched: 0,
                writes: 0
            }
        );
        assert_eq!(stats.blocks_scanned + stats.blocks_skipped, 0);
        let (r, _) = scan_query(&bytes, "first", |_| None, &WriterMap::default(), 1).unwrap();
        assert_eq!(r, QueryResult::First(None));
    }

    #[test]
    fn malformed_query_and_bytes_error_cleanly() {
        let t = blocky_trace();
        let bytes = encoded(&t, 8, true);
        assert!(matches!(
            scan_query(&bytes, "bogus", |_| None, &WriterMap::default(), 1),
            Err(ScanError::Query(_))
        ));
        assert!(matches!(
            scan_query(b"NOPE", "count", |_| None, &WriterMap::default(), 1),
            Err(ScanError::Codec(_))
        ));
    }
}
