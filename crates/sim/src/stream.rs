//! Streaming replay: phase 2 consuming events while phase 1 produces
//! them.
//!
//! [`StreamingReplay`] wraps the fused ladder engine
//! (`crate::engine::EngineCore`) behind a feed-batches API: hand it
//! event slices in program order — from a channel, a file reader, or a
//! materialized trace — and call [`StreamingReplay::finish`] for the
//! per-size, per-session [`Counts`]. One `StreamingReplay` is one trace
//! walk (`sim.trace_walks` counts them), no matter how many page sizes
//! or batches.
//!
//! Because the replay starts before the program run ends, session
//! membership can no longer be precomputed from the full trace. The
//! [`StreamMembership`] trait abstracts that: [`FixedMembership`] adapts
//! any ordinary [`Membership`] table (static session universe), while
//! `databp-sessions`' `StreamSessionSet` discovers heap sessions online
//! from the event stream itself, growing the engine's session universe
//! as it goes ([`EngineCore::ensure_sessions`] makes that sound).

use crate::engine::EngineCore;
use crate::membership::Membership;
use databp_machine::PageSize;
use databp_models::Counts;
use databp_trace::{Event, ObjectDesc};
use rustc_hash::FxHashMap;

/// Online session membership: resolves objects to member sessions while
/// the event stream is still being produced.
///
/// Implementations may *create* sessions during resolution (heap
/// sessions exist only once the allocation is seen), so `resolve` takes
/// `&mut self` and [`StreamMembership::count`] is the session universe
/// *so far* — it only ever grows.
pub trait StreamMembership {
    /// Number of sessions discovered so far.
    fn count(&self) -> usize;

    /// Observes control entering function `func`.
    fn on_enter(&mut self, func: u16) {
        let _ = func;
    }

    /// Observes control leaving function `func`.
    fn on_exit(&mut self, func: u16) {
        let _ = func;
    }

    /// Writes the sessions monitoring `obj` into `out` (cleared first),
    /// without duplicates. Must be stable: resolving the same
    /// descriptor twice yields the same sessions.
    fn resolve(&mut self, obj: &ObjectDesc, out: &mut Vec<u32>);
}

/// Adapts a precomputed [`Membership`] table (the materialized-trace
/// pipeline's session universe) to the streaming interface.
#[derive(Debug)]
pub struct FixedMembership<'m, M: Membership + ?Sized> {
    table: &'m M,
}

impl<'m, M: Membership + ?Sized> FixedMembership<'m, M> {
    /// Wraps `table`.
    pub fn new(table: &'m M) -> Self {
        FixedMembership { table }
    }
}

impl<M: Membership + ?Sized> StreamMembership for FixedMembership<'_, M> {
    fn count(&self) -> usize {
        self.table.count()
    }

    fn resolve(&mut self, obj: &ObjectDesc, out: &mut Vec<u32>) {
        self.table.sessions_of(obj, out);
    }
}

/// The incremental replay engine: feed event batches in program order,
/// then [`finish`](StreamingReplay::finish).
pub struct StreamingReplay<S: StreamMembership> {
    membership: S,
    core: EngineCore,
    /// Object descriptor -> interned member-list index in the core.
    /// Memoizes `membership.resolve` per object (all instantiations of
    /// a local share one descriptor).
    member_cache: FxHashMap<ObjectDesc, u32>,
    scratch: Vec<u32>,
}

impl<S: StreamMembership> StreamingReplay<S> {
    /// A replay counting at every size in `ladder` (nonempty, strictly
    /// ascending — see [`crate::simulate_sizes`] for an entry point
    /// that sorts and dedups for you).
    pub fn new(membership: S, ladder: &[PageSize]) -> Self {
        databp_telemetry::count!("sim.replays");
        databp_telemetry::count!("sim.trace_walks");
        databp_telemetry::count!("sim.page_sizes.fused", ladder.len() as u64);
        StreamingReplay {
            membership,
            core: EngineCore::new(ladder),
            member_cache: FxHashMap::default(),
            scratch: Vec::new(),
        }
    }

    /// Replays `events`, which must follow all previously fed batches
    /// in program order. Batch boundaries are arbitrary — results are
    /// identical for any split of the same event sequence.
    pub fn feed(&mut self, events: &[Event]) {
        let _replay_timer = databp_telemetry::time!("sim.replay");
        databp_telemetry::count!("sim.events.replayed", events.len() as u64);
        for ev in events {
            match *ev {
                Event::Install { obj, ba, ea } => {
                    // Resolve membership before any validity check:
                    // session discovery must see every install, even of
                    // an empty (zero-size) object.
                    let members = match self.member_cache.get(&obj) {
                        Some(&i) => i,
                        None => {
                            self.membership.resolve(&obj, &mut self.scratch);
                            let i = self.core.intern(&self.scratch);
                            self.member_cache.insert(obj, i);
                            i
                        }
                    };
                    self.core.ensure_sessions(self.membership.count());
                    self.core.install(obj, ba, ea, members);
                }
                Event::Remove { obj, ba, .. } => self.core.remove(obj, ba),
                Event::Write { ba, ea, .. } => self.core.write(ba, ea),
                Event::Enter { func } => self.membership.on_enter(func),
                Event::Exit { func } => self.membership.on_exit(func),
            }
        }
    }

    /// Ends the replay: returns the membership (whose discovered
    /// session universe the caller may need to canonicalize) and the
    /// per-size, per-session counts (`[k][s]` = ladder size `k`,
    /// session `s`, for `s` in `0..membership.count()`).
    pub fn finish(mut self) -> (S, Vec<Vec<Counts>>) {
        let n = self.membership.count();
        databp_telemetry::count!("sim.sessions.simulated", n as u64);
        let counts = self.core.counts(n);
        (self.membership, counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::membership::TableMembership;
    use crate::simulate_sizes;
    use databp_trace::Trace;

    fn g(id: u32) -> ObjectDesc {
        ObjectDesc::Global { id }
    }

    fn demo_trace() -> Trace {
        Trace::from_events(vec![
            Event::Install {
                obj: g(0),
                ba: 0x1000,
                ea: 0x1010,
            },
            Event::Write {
                pc: 0,
                ba: 0x1000,
                ea: 0x1004,
                value: 0,
                old: 0,
            },
            Event::Write {
                pc: 4,
                ba: 0x1800,
                ea: 0x1804,
                value: 0,
                old: 0,
            },
            Event::Write {
                pc: 8,
                ba: 0x5000,
                ea: 0x5004,
                value: 0,
                old: 0,
            },
            Event::Remove {
                obj: g(0),
                ba: 0x1000,
                ea: 0x1010,
            },
        ])
    }

    #[test]
    fn batched_feed_matches_single_feed() {
        let m = TableMembership::new(vec![(g(0), vec![0])], 1);
        let trace = demo_trace();
        let whole = simulate_sizes(&trace, &m, &[PageSize::K4, PageSize::K8]);
        for batch in [1usize, 2, 3] {
            let mut r =
                StreamingReplay::new(FixedMembership::new(&m), &[PageSize::K4, PageSize::K8]);
            for chunk in trace.events().chunks(batch) {
                r.feed(chunk);
            }
            let (_, counts) = r.finish();
            assert_eq!(counts, whole, "batch size {batch}");
        }
    }

    #[test]
    fn empty_feed_is_harmless() {
        let m = TableMembership::new(vec![], 2);
        let mut r = StreamingReplay::new(FixedMembership::new(&m), &[PageSize::K4]);
        r.feed(&[]);
        let (_, counts) = r.finish();
        assert_eq!(counts.len(), 1);
        assert_eq!(counts[0].len(), 2);
        assert_eq!(counts[0][0], Counts::default());
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_ladder_is_rejected() {
        let m = TableMembership::new(vec![], 0);
        let _ = StreamingReplay::new(FixedMembership::new(&m), &[PageSize::K8, PageSize::K4]);
    }

    mod properties {
        use super::*;
        use crate::naive::testgen::arb_trace_and_membership;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            /// Streamed replay is byte-identical to the materialized
            /// replay for every batch size — including degenerate
            /// one-event batches and batches larger than the trace.
            #[test]
            fn streamed_matches_materialized((trace, membership) in arb_trace_and_membership()) {
                let ladder = [PageSize::K4, PageSize::K8];
                let whole = simulate_sizes(&trace, &membership, &ladder);
                for batch in [1usize, 7, 4096] {
                    let mut r = StreamingReplay::new(FixedMembership::new(&membership), &ladder);
                    for chunk in trace.events().chunks(batch) {
                        r.feed(chunk);
                    }
                    let (_, counts) = r.finish();
                    prop_assert_eq!(&counts, &whole, "batch size {}", batch);
                }
            }
        }
    }
}
