//! The session-membership interface between the simulator and whoever
//! defines sessions.

use databp_trace::ObjectDesc;

/// Maps trace objects to the monitor sessions that watch them.
///
/// Implemented by `databp-sessions` for the paper's five session types;
/// the simulator itself is session-type-agnostic.
pub trait Membership {
    /// Number of sessions (session indices are `0..count()`).
    fn count(&self) -> usize;

    /// Appends the indices of every session monitoring `obj` to `out`
    /// (which is cleared first). Indices must be `< count()` and unique.
    fn sessions_of(&self, obj: &ObjectDesc, out: &mut Vec<u32>);
}

/// A direct table-backed membership, convenient in tests: entry `i`
/// lists `(object, sessions)` pairs.
#[derive(Debug, Clone, Default)]
pub struct TableMembership {
    /// Explicit object→sessions pairs.
    pub entries: Vec<(ObjectDesc, Vec<u32>)>,
    /// Total session count.
    pub sessions: usize,
}

impl Membership for TableMembership {
    fn count(&self) -> usize {
        self.sessions
    }

    fn sessions_of(&self, obj: &ObjectDesc, out: &mut Vec<u32>) {
        out.clear();
        for (o, ss) in &self.entries {
            if o == obj {
                out.extend_from_slice(ss);
            }
        }
        out.sort_unstable();
        out.dedup();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_membership_lookups() {
        let m = TableMembership {
            entries: vec![
                (ObjectDesc::Global { id: 0 }, vec![0, 1]),
                (ObjectDesc::Heap { seq: 3 }, vec![1]),
            ],
            sessions: 2,
        };
        let mut out = Vec::new();
        m.sessions_of(&ObjectDesc::Global { id: 0 }, &mut out);
        assert_eq!(out, vec![0, 1]);
        m.sessions_of(&ObjectDesc::Heap { seq: 3 }, &mut out);
        assert_eq!(out, vec![1]);
        m.sessions_of(&ObjectDesc::Heap { seq: 4 }, &mut out);
        assert!(out.is_empty());
        assert_eq!(m.count(), 2);
    }
}
