//! The session-membership interface between the simulator and whoever
//! defines sessions — plus the bitset-lane representation the
//! vectorized engine consumes.

use databp_trace::ObjectDesc;
use rustc_hash::FxHashMap;

/// Maps trace objects to the monitor sessions that watch them.
///
/// Implemented by `databp-sessions` for the paper's five session types;
/// the simulator itself is session-type-agnostic.
pub trait Membership {
    /// Number of sessions (session indices are `0..count()`).
    fn count(&self) -> usize;

    /// Appends the indices of every session monitoring `obj` to `out`
    /// (which is cleared first). Indices must be `< count()` and unique.
    fn sessions_of(&self, obj: &ObjectDesc, out: &mut Vec<u32>);

    /// The same membership as `u64` bitset lanes — the dense form the
    /// lane-packed replay engine consumes (one word op touches 64
    /// sessions). `scratch` is clobbered.
    fn lanes_of(&self, obj: &ObjectDesc, scratch: &mut Vec<u32>) -> SessionLanes {
        self.sessions_of(obj, scratch);
        SessionLanes::from_sessions(scratch)
    }
}

/// One object's member sessions as packed `u64` bitset lanes.
///
/// Bit `s & 63` of lane word `s / 64` is set iff session `s` is a
/// member. The lanes are *sparse*: only nonzero words are stored, as
/// ascending `(word index, bits)` pairs. Real memberships are a handful
/// of sessions whose indices may sit anywhere in the session universe —
/// a session-dense workload like `cc` spreads one object's members
/// across a dozen lane words — so storing pairs keeps the engine's
/// per-instance cost at one word op per *occupied* word, never per
/// spanned word.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SessionLanes {
    pairs: Box<[(u32, u64)]>,
}

impl SessionLanes {
    /// Packs a list of (unique) session indices.
    pub fn from_sessions(sessions: &[u32]) -> SessionLanes {
        if sessions.is_empty() {
            return SessionLanes::default();
        }
        let mut sorted = sessions.to_vec();
        sorted.sort_unstable();
        let mut pairs: Vec<(u32, u64)> = Vec::new();
        for s in sorted {
            let (word, bit) = (s / 64, 1u64 << (s & 63));
            match pairs.last_mut() {
                Some(p) if p.0 == word => p.1 |= bit,
                _ => pairs.push((word, bit)),
            }
        }
        SessionLanes {
            pairs: pairs.into_boxed_slice(),
        }
    }

    /// True when no session is a member.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Number of member sessions (a popcount over the lanes).
    pub fn len(&self) -> usize {
        self.pairs.iter().map(|p| p.1.count_ones() as usize).sum()
    }

    /// The stored `(word index, bits)` pairs, ascending by word, every
    /// `bits` nonzero.
    pub fn pairs(&self) -> &[(u32, u64)] {
        &self.pairs
    }

    /// Member session indices, ascending.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.pairs.iter().flat_map(|&(word, bits)| {
            let base = word * 64;
            let mut bits = bits;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let s = base + bits.trailing_zeros();
                bits &= bits - 1;
                Some(s)
            })
        })
    }
}

/// A direct table-backed membership, convenient in tests: a hash index
/// from object descriptor to its (sorted, deduplicated) member-session
/// list, built once at construction.
#[derive(Debug, Clone, Default)]
pub struct TableMembership {
    index: FxHashMap<ObjectDesc, Vec<u32>>,
    sessions: usize,
}

impl TableMembership {
    /// Builds the index from explicit `(object, sessions)` pairs.
    /// Duplicate objects merge; each list is sorted and deduplicated,
    /// so `sessions_of` is a single hash probe at lookup time.
    pub fn new(entries: Vec<(ObjectDesc, Vec<u32>)>, sessions: usize) -> TableMembership {
        let mut index: FxHashMap<ObjectDesc, Vec<u32>> = FxHashMap::default();
        for (obj, ss) in entries {
            index.entry(obj).or_default().extend(ss);
        }
        index.retain(|_, ss| {
            ss.sort_unstable();
            ss.dedup();
            !ss.is_empty()
        });
        TableMembership { index, sessions }
    }
}

impl Membership for TableMembership {
    fn count(&self) -> usize {
        self.sessions
    }

    fn sessions_of(&self, obj: &ObjectDesc, out: &mut Vec<u32>) {
        out.clear();
        if let Some(ss) = self.index.get(obj) {
            out.extend_from_slice(ss);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_membership_lookups() {
        let m = TableMembership::new(
            vec![
                (ObjectDesc::Global { id: 0 }, vec![1, 0]),
                (ObjectDesc::Heap { seq: 3 }, vec![1]),
                (ObjectDesc::Global { id: 0 }, vec![1]),
            ],
            2,
        );
        let mut out = Vec::new();
        m.sessions_of(&ObjectDesc::Global { id: 0 }, &mut out);
        assert_eq!(out, vec![0, 1], "merged, sorted, deduplicated");
        m.sessions_of(&ObjectDesc::Heap { seq: 3 }, &mut out);
        assert_eq!(out, vec![1]);
        m.sessions_of(&ObjectDesc::Heap { seq: 4 }, &mut out);
        assert!(out.is_empty());
        assert_eq!(m.count(), 2);
    }

    #[test]
    fn lanes_pack_and_iterate() {
        let lanes = SessionLanes::from_sessions(&[0, 63, 64, 200]);
        assert_eq!(
            lanes.pairs(),
            &[(0, 1 | (1u64 << 63)), (1, 1), (3, 1 << 8)],
            "nonzero words only; word 2 is not stored"
        );
        assert_eq!(lanes.iter().collect::<Vec<_>>(), vec![0, 63, 64, 200]);
        assert_eq!(lanes.len(), 4);
        assert!(!lanes.is_empty());
    }

    #[test]
    fn lanes_skip_empty_words() {
        // Sessions 130 and 900 occupy words 2 and 14: exactly two pairs
        // are stored regardless of the gap or the universe size.
        let lanes = SessionLanes::from_sessions(&[900, 130]);
        assert_eq!(lanes.pairs().len(), 2);
        assert_eq!(lanes.pairs()[0].0, 2);
        assert_eq!(lanes.pairs()[1].0, 14);
        assert_eq!(lanes.iter().collect::<Vec<_>>(), vec![130, 900]);
    }

    #[test]
    fn empty_lanes() {
        let lanes = SessionLanes::from_sessions(&[]);
        assert!(lanes.is_empty());
        assert_eq!(lanes.len(), 0);
        assert_eq!(lanes.iter().count(), 0);
    }

    #[test]
    fn lanes_of_matches_sessions_of() {
        let m = TableMembership::new(vec![(ObjectDesc::Global { id: 7 }, vec![2, 65, 9])], 66);
        let mut scratch = Vec::new();
        let lanes = m.lanes_of(&ObjectDesc::Global { id: 7 }, &mut scratch);
        assert_eq!(lanes.iter().collect::<Vec<_>>(), vec![2, 9, 65]);
    }
}
