//! The one-pass multi-session counting engine, fused across a page-size
//! ladder and vectorized across sessions.
//!
//! One call to [`simulate_sizes`] walks the trace **once** and
//! accumulates [`Counts`] for every requested page size simultaneously —
//! any set of power-of-two sizes, not just the 4K/8K buddy pair the
//! paper reports. The engine keeps a single page index at the *smallest*
//! (base) size and derives every coarser size's page walk from it by
//! shifting: a size-`k` page of a write expands to the base-page range
//!
//! ```text
//! lo[k] = (ba >> shift_k) << d_k
//! hi[k] = (((ea - 1) >> shift_k) << d_k) | ((1 << d_k) - 1)
//! ```
//!
//! where `d_k = shift_k - base_shift`. Because the sizes are sorted
//! ascending, these ranges nest (`lo` nonincreasing, `hi` nondecreasing
//! in `k`), so one sweep over the widest range classifies every base
//! page with its *level* `m` — the smallest `k` whose range contains it
//! — and an instance found at level `m` is touched at exactly the sizes
//! `m..n`. Page-derived protection state (`vm_protect` /
//! `vm_unprotect` / active-page-miss tallies) stays per size; the
//! instance slab, membership interning, and install/remove/hit/miss
//! accounting are shared, so the dominant replay work is paid once
//! regardless of ladder length.
//!
//! # Lane-packed session sweep
//!
//! Session state within a write is held in `u64` bitset lanes, 64
//! sessions per word (see [`SessionLanes`]). Each monitored instance
//! carries its member set as sparse `(word, bits)` lane pairs, so
//! charging a write to all member sessions is one word OR per *occupied*
//! lane word into per-level *touch lanes* (`touch_lanes[k]`) and a *hit
//! lane*, instead of a per-member scalar loop with stamp branches. A
//! post-pass over the (few) dirty lane words then settles counters: set
//! bits of the hit lane bump `MonitorHit`; for active-page misses the
//! ascending-level scan `t = touch_lanes[k] & !below; below |= t`
//! isolates each session's *minimum* touch level in exactly one `t`,
//! and a hit (folded into `below` first) suppresses the APM at every
//! size. Lane words are zeroed lazily via per-word write stamps, so a
//! write that touches no monitored page pays nothing and a sparse touch
//! pays per dirty word, not per session universe. Because the per-write
//! state is all bitsets, charging is idempotent — an instance spanning
//! several base pages may be swept more than once with no stamp
//! bookkeeping. Each occupied base page additionally caches the *union*
//! of its instances' member lanes (rebuilt lazily when the page's
//! generation moves), so touch charging is one OR pass per page rather
//! than per instance; individual instances are only walked at level 0,
//! where byte overlap decides hits.
//!
//! # Memoized write effects
//!
//! Traced programs are loops: the same store site writes the same
//! `(ba, ea)` span thousands of times while the monitor population on
//! its pages is unchanged, and the per-session effect of such a write —
//! which sessions take a `MonitorHit`, which take an active-page miss
//! and at which minimum ladder level — is a pure function of the span
//! and the instances living on its probed pages. The engine therefore
//! memoizes settled effects in a `(ba, ea) → effect` table, validated
//! by per-base-page *generations*: every install/remove bumps the
//! generation of each base page the instance covers, and an effect is
//! reusable iff the maximum generation over the write's probed page
//! range still equals the snapshot taken when it was recorded. Effects
//! are applied *deferred*: a valid memo hit only increments the
//! effect's multiplicity, and the accumulated count is flushed into the
//! per-session counters when the effect is superseded or at the final
//! `counts` settle. A repeated write then costs one occupancy probe,
//! one generation max, one hash lookup, and one increment — O(1) no
//! matter how many sessions it touches; the full page sweep runs only
//! for novel spans or after the monitor set on those pages actually
//! changed. Effect session lists live in append-only arenas
//! (`eff_hits` / `eff_apms`), so a flush is a branch-free counter walk.
//!
//! Hits are page-size-independent by construction: a write that overlaps
//! a monitored instance shares at least one byte with it, hence shares a
//! base page inside the write's own range (level 0), so the sweep always
//! discovers every overlapping instance at level 0 and byte-checks it
//! there. A hit suppresses the active-page miss at every size.
//!
//! The engine core ([`EngineCore`]) is event-driven — it has no
//! dependency on a materialized [`Trace`] — which is what lets the
//! streaming pipeline (`crate::stream`) replay batches concurrently with
//! trace generation. [`simulate`] / [`simulate_fused`] /
//! [`simulate_sizes`] remain the materialized-trace entry points.

use crate::membership::{Membership, SessionLanes};
use crate::slots::SlotList;
use crate::stream::{FixedMembership, StreamingReplay};
use databp_machine::PageSize;
use databp_models::Counts;
use databp_trace::{ObjectDesc, Trace};
use rustc_hash::FxHashMap;

/// A live monitored object instance.
#[derive(Debug, Clone, Copy)]
struct Instance {
    ba: u32,
    ea: u32,
    /// Index into the engine's interned membership lanes.
    members: u32,
}

/// A memoized, settled write effect: arena ranges of the sessions that
/// hit and the sessions that take an APM (packed with their minimum
/// ladder level), valid while the generation max over the write's
/// probed base pages equals `gen`. `count` is the effect's multiplicity
/// — how many writes produced it since it was last flushed into the
/// per-session counters. Deferring the application this way makes a
/// repeated write O(1) no matter how many sessions it touches.
#[derive(Debug, Clone, Copy)]
struct Effect {
    gen: u64,
    count: u64,
    hits: (u32, u32),
    apms: (u32, u32),
}

/// APM arena entries pack `level << LEVEL_SHIFT | session`.
const LEVEL_SHIFT: u32 = 24;

/// Per-page active member-monitor counts: unsorted `(session, count)`
/// pairs, scanned linearly. A page's distinct member-session set is
/// small (the instances living there share interned member sets), so a
/// sequential L1 scan beats a hash probe per (session, page) op — and
/// install/remove pay this op per member per covered page per size,
/// which makes it the hottest part of instance turnover.
#[derive(Debug, Clone, Default)]
struct PageSessions(Vec<(u32, u32)>);

impl PageSessions {
    /// Increments `s`'s count; true when the page becomes newly active
    /// for `s` (a `vm_protect` transition).
    #[inline]
    fn add(&mut self, s: u32) -> bool {
        for p in self.0.iter_mut() {
            if p.0 == s {
                p.1 += 1;
                return false;
            }
        }
        self.0.push((s, 1));
        true
    }

    /// Decrements `s`'s count; true when the page goes inactive for `s`
    /// (a `vm_unprotect` transition).
    #[inline]
    fn sub(&mut self, s: u32) -> bool {
        for (i, p) in self.0.iter_mut().enumerate() {
            if p.0 == s {
                p.1 -= 1;
                if p.1 == 0 {
                    self.0.swap_remove(i);
                    return true;
                }
                return false;
            }
        }
        panic!("page count exists for member session");
    }
}

/// A lazily cached union of the member lanes of every instance on one
/// base page, valid while `gen` equals the page's generation. The pair
/// list is unsorted; only nonzero words appear.
#[derive(Debug, Clone, Default)]
struct PageUnion {
    gen: u64,
    pairs: Vec<(u32, u64)>,
}

/// Page-derived state for one ladder size. Only the base (smallest)
/// size carries a page index; coarser sizes keep protection counts and
/// active-page-miss tallies of their own but share the base walk.
struct SizeState {
    page_size: PageSize,
    /// Active member-monitor counts indexed by this size's page number.
    page_counts: Vec<PageSessions>,
    // Per-session accumulators.
    apm: Vec<u64>,
    vm_protect: Vec<u64>,
    vm_unprotect: Vec<u64>,
}

/// The event-driven replay core: feed it install/remove/write events in
/// program order (any batching), then read per-size, per-session
/// [`Counts`]. Sessions may appear lazily — [`EngineCore::ensure_sessions`]
/// grows every per-session accumulator — which is what dynamic
/// session discovery during streaming needs.
pub(crate) struct EngineCore {
    base_shift: u32,
    sizes: Vec<SizeState>,
    /// Base-size page -> slab indices of instances overlapping it,
    /// indexed directly by page number. The machine's data space is
    /// 16 MiB, so a flat array beats hashing on the write path; it
    /// grows on demand so synthetic traces with larger addresses stay
    /// correct.
    pages: Vec<SlotList>,
    /// One bit per base page, set iff `pages[p]` is nonempty. The whole
    /// 16 MiB space fits in 512 bytes, so the all-miss write sweep (the
    /// overwhelmingly common case) probes L1-resident state instead of
    /// the ~100 KiB `pages` array — which matters most when replay
    /// interleaves with the traced run and shares its cache.
    occ: Vec<u64>,
    /// Per-base-page generation: the `stamp` value of the last
    /// install/remove covering the page. Validates memoized effects and
    /// cached page unions.
    page_gen: Vec<u64>,
    /// Per-base-page cached union of the member lanes of every instance
    /// on the page, rebuilt lazily when the page's generation moves.
    /// Lets the sweep charge a whole page's touch in one pair walk
    /// instead of one walk per instance.
    page_union: Vec<PageUnion>,
    /// Slab of live instances; `None` slots are free.
    instances: Vec<Option<Instance>>,
    free: Vec<u32>,
    /// Live lookup by (object, install base address).
    live: FxHashMap<(ObjectDesc, u32), u32>,
    /// Interned membership lane sets (see [`EngineCore::intern`]).
    member_lanes: Vec<SessionLanes>,
    // Per-session accumulators (page-size-independent).
    hits: Vec<u64>,
    installs: Vec<u64>,
    removes: Vec<u64>,
    /// Lane words per session array (`ceil(sessions / 64)`).
    width: usize,
    /// Per-level touch lanes for the current write, flattened as
    /// `[level * width + word]`. Zeroed lazily via `word_stamp`.
    touch_lanes: Vec<u64>,
    /// Hit lanes for the current write (`[word]`), lazily zeroed.
    hit_lanes: Vec<u64>,
    /// Stamp of the write that last initialized lane `word` across all
    /// levels; a stale stamp means the word's lanes are garbage and get
    /// zeroed on first touch.
    word_stamp: Vec<u64>,
    /// Scratch: lane words dirtied by the current write (reused).
    dirty: Vec<u32>,
    /// Memoized write effects keyed by `ba << 32 | ea`; the value
    /// indexes `effects`, so revalidating a stale entry after an
    /// install/remove overwrites in place without re-hashing.
    memo: FxHashMap<u64, u32>,
    effects: Vec<Effect>,
    /// Effect arenas (append-only; superseded ranges are abandoned).
    eff_hits: Vec<u32>,
    eff_apms: Vec<u32>,
    total_writes: u64,
    /// Event stamp, pre-incremented per write and per install/remove;
    /// 0 is the never-stamped sentinel.
    stamp: u64,
    /// Scratch: per-size expanded base-page bounds of the current write.
    lo: Vec<u32>,
    hi: Vec<u32>,
}

impl EngineCore {
    /// A core counting at every size in `ladder`, which must be
    /// nonempty and strictly ascending.
    pub(crate) fn new(ladder: &[PageSize]) -> EngineCore {
        assert!(!ladder.is_empty(), "page-size ladder must be nonempty");
        assert!(
            ladder.windows(2).all(|w| w[0].shift() < w[1].shift()),
            "page-size ladder must be strictly ascending"
        );
        let base_shift = ladder[0].shift();
        let n = ladder.len();
        let base_pages = (databp_machine::MEM_SIZE >> base_shift) as usize;
        EngineCore {
            base_shift,
            sizes: ladder
                .iter()
                .map(|&ps| SizeState {
                    page_size: ps,
                    page_counts: vec![
                        PageSessions::default();
                        (databp_machine::MEM_SIZE >> ps.shift()) as usize
                    ],
                    apm: Vec::new(),
                    vm_protect: Vec::new(),
                    vm_unprotect: Vec::new(),
                })
                .collect(),
            // Pre-size for the machine's whole data space; traces from
            // real workloads never grow this.
            pages: vec![SlotList::default(); base_pages],
            occ: vec![0; base_pages.div_ceil(64)],
            page_gen: vec![0; base_pages],
            page_union: vec![PageUnion::default(); base_pages],
            instances: Vec::new(),
            free: Vec::new(),
            live: FxHashMap::default(),
            member_lanes: Vec::new(),
            hits: Vec::new(),
            installs: Vec::new(),
            removes: Vec::new(),
            width: 0,
            touch_lanes: Vec::new(),
            hit_lanes: Vec::new(),
            word_stamp: Vec::new(),
            dirty: Vec::new(),
            memo: FxHashMap::default(),
            effects: Vec::new(),
            eff_hits: Vec::new(),
            eff_apms: Vec::new(),
            total_writes: 0,
            stamp: 0,
            lo: vec![0; n],
            hi: vec![0; n],
        }
    }

    /// Grows every per-session accumulator to cover sessions `0..n`.
    /// New sessions start with zeroed counters, which is correct because
    /// they could not have been touched by any event replayed before
    /// they existed. Lane scratch re-strides on growth; that is safe
    /// because growth only happens between writes and every lane word is
    /// stamp-gated, so stale content is zeroed before its next use.
    pub(crate) fn ensure_sessions(&mut self, n: usize) {
        if self.hits.len() >= n {
            return;
        }
        assert!(
            n < (1 << LEVEL_SHIFT),
            "session universe exceeds the effect-arena packing"
        );
        self.hits.resize(n, 0);
        self.installs.resize(n, 0);
        self.removes.resize(n, 0);
        self.width = n.div_ceil(64);
        self.touch_lanes.resize(self.sizes.len() * self.width, 0);
        self.hit_lanes.resize(self.width, 0);
        self.word_stamp.resize(self.width, 0);
        for st in &mut self.sizes {
            st.apm.resize(n, 0);
            st.vm_protect.resize(n, 0);
            st.vm_unprotect.resize(n, 0);
        }
    }

    /// Interns a member-session set, returning its index for
    /// [`EngineCore::install`]. Callers cache per object descriptor —
    /// all instantiations of a local share one descriptor, so this
    /// interns per variable.
    pub(crate) fn intern(&mut self, sessions: &[u32]) -> u32 {
        let i = self.member_lanes.len() as u32;
        self.member_lanes
            .push(SessionLanes::from_sessions(sessions));
        i
    }

    pub(crate) fn install(&mut self, obj: ObjectDesc, ba: u32, ea: u32, members: u32) {
        let EngineCore {
            base_shift,
            sizes,
            pages,
            occ,
            page_gen,
            page_union,
            instances,
            free,
            live,
            member_lanes,
            installs,
            stamp,
            ..
        } = self;
        let lanes = &member_lanes[members as usize];
        if lanes.is_empty() || ba >= ea {
            return;
        }
        *stamp += 1;
        let slot = match free.pop() {
            Some(s) => {
                instances[s as usize] = Some(Instance { ba, ea, members });
                s
            }
            None => {
                instances.push(Some(Instance { ba, ea, members }));
                (instances.len() - 1) as u32
            }
        };
        live.insert((obj, ba), slot);
        for page in (ba >> *base_shift)..=((ea - 1) >> *base_shift) {
            if page as usize >= pages.len() {
                pages.resize(page as usize + 1, SlotList::default());
                occ.resize(pages.len().div_ceil(64), 0);
                page_gen.resize(pages.len(), 0);
                page_union.resize(pages.len(), PageUnion::default());
            }
            pages[page as usize].push(slot);
            occ[(page >> 6) as usize] |= 1u64 << (page & 63);
            page_gen[page as usize] = *stamp;
        }
        for st in sizes.iter_mut() {
            for page in st.page_size.pages_of_range(ba, ea) {
                if page as usize >= st.page_counts.len() {
                    st.page_counts
                        .resize(page as usize + 1, PageSessions::default());
                }
                let counts = &mut st.page_counts[page as usize];
                for s in lanes.iter() {
                    if counts.add(s) {
                        st.vm_protect[s as usize] += 1;
                    }
                }
            }
        }
        for s in lanes.iter() {
            installs[s as usize] += 1;
        }
    }

    pub(crate) fn remove(&mut self, obj: ObjectDesc, ba: u32) {
        let Some(slot) = self.live.remove(&(obj, ba)) else {
            // Object not monitored by any session.
            return;
        };
        let inst = self.instances[slot as usize]
            .take()
            .expect("live slot is occupied");
        self.free.push(slot);
        self.stamp += 1;
        let lanes = &self.member_lanes[inst.members as usize];
        for page in (inst.ba >> self.base_shift)..=((inst.ea - 1) >> self.base_shift) {
            let list = &mut self.pages[page as usize];
            list.swap_remove_value(slot);
            if list.is_empty() {
                self.occ[(page >> 6) as usize] &= !(1u64 << (page & 63));
            }
            self.page_gen[page as usize] = self.stamp;
        }
        for st in &mut self.sizes {
            for page in st.page_size.pages_of_range(inst.ba, inst.ea) {
                let counts = &mut st.page_counts[page as usize];
                for s in lanes.iter() {
                    if counts.sub(s) {
                        st.vm_unprotect[s as usize] += 1;
                    }
                }
            }
        }
        for s in lanes.iter() {
            self.removes[s as usize] += 1;
        }
    }

    pub(crate) fn write(&mut self, ba: u32, ea: u32) {
        self.total_writes += 1;
        if ba >= ea {
            return;
        }
        let n = self.sizes.len();
        let top_shift = self.sizes[n - 1].page_size.shift();
        let d_top = top_shift - self.base_shift;
        let lo_top = (ba >> top_shift) << d_top;
        let hi_top = (((ea - 1) >> top_shift) << d_top) | ((1u32 << d_top) - 1);
        // Occupancy and generation probe, fused in one pass: the
        // overwhelmingly common case is a write whose probed range holds
        // no monitored page — it pays a couple of L1 loads and nothing
        // else. `gen` is the range's generation max, which validates the
        // memo: the effect of this span is reusable iff no
        // install/remove has touched any probed page since it was
        // recorded.
        let mut occupied = false;
        let mut gen = 0u64;
        for page in lo_top..=hi_top {
            let Some(&word) = self.occ.get((page >> 6) as usize) else {
                break; // the bitmap is contiguous: no monitors this high
            };
            occupied |= word & (1u64 << (page & 63)) != 0;
            // The occ word can outlive `page_gen`'s exact length (it is
            // sized in 64-page words); out-of-range pages never change.
            gen = gen.max(self.page_gen.get(page as usize).copied().unwrap_or(0));
        }
        if !occupied {
            return;
        }
        let key = (u64::from(ba) << 32) | u64::from(ea);
        let slot = self.memo.get(&key).copied();
        if let Some(i) = slot {
            let e = &mut self.effects[i as usize];
            if e.gen == gen {
                e.count += 1;
                return;
            }
        }
        let (hits, apms) = self.sweep(ba, ea, lo_top, hi_top);
        let e = Effect {
            gen,
            count: 1,
            hits,
            apms,
        };
        match slot {
            Some(i) => {
                // Settle the superseded effect's accumulated writes
                // before the new monitor state takes its slot.
                let old = self.effects[i as usize];
                self.flush_effect(old);
                self.effects[i as usize] = e;
            }
            None => {
                let i = self.effects.len() as u32;
                self.effects.push(e);
                self.memo.insert(key, i);
            }
        }
    }

    /// Settles an effect's accumulated multiplicity into the per-session
    /// counters: arena ranges of hitting sessions and of
    /// `level << LEVEL_SHIFT | session` APM entries, each charged
    /// `count` times.
    #[inline]
    fn flush_effect(&mut self, e: Effect) {
        if e.count == 0 {
            return;
        }
        for &s in &self.eff_hits[e.hits.0 as usize..e.hits.1 as usize] {
            // Page-size-independent; counted once per write and
            // suppressing the active-page miss at every size.
            self.hits[s as usize] += e.count;
        }
        for &a in &self.eff_apms[e.apms.0 as usize..e.apms.1 as usize] {
            let s = (a & ((1 << LEVEL_SHIFT) - 1)) as usize;
            let k = (a >> LEVEL_SHIFT) as usize;
            // Touched at level k ⇒ touched at every coarser size.
            for st in self.sizes[k..].iter_mut() {
                st.apm[s] += e.count;
            }
        }
    }

    /// The full page sweep for one write: classifies each occupied base
    /// page in the probed range with its minimum ladder level, charges
    /// member lanes, settles the dirty lane words, and records the
    /// resulting effect in the arenas. Returns the new arena ranges.
    fn sweep(&mut self, ba: u32, ea: u32, lo_top: u32, hi_top: u32) -> ((u32, u32), (u32, u32)) {
        self.stamp += 1;
        let stamp = self.stamp;
        let n = self.sizes.len();
        let width = self.width;
        let EngineCore {
            base_shift,
            sizes,
            pages,
            occ,
            page_gen,
            page_union,
            instances,
            member_lanes,
            touch_lanes,
            hit_lanes,
            word_stamp,
            dirty,
            eff_hits,
            eff_apms,
            lo,
            hi,
            ..
        } = self;
        let mut ranges_ready = false;
        dirty.clear();
        // One sweep of the widest range; the level `m` of each base page
        // is the smallest size whose (nested) range contains it. The
        // per-size bounds are computed once on the first occupied page.
        for page in lo_top..=hi_top {
            let Some(&word) = occ.get((page >> 6) as usize) else {
                break;
            };
            if word & (1u64 << (page & 63)) == 0 {
                continue;
            }
            // A set bit guarantees the page exists and is nonempty.
            let list = &pages[page as usize];
            if !ranges_ready {
                for (k, st) in sizes.iter().enumerate() {
                    let shift = st.page_size.shift();
                    let d = shift - *base_shift;
                    lo[k] = (ba >> shift) << d;
                    hi[k] = (((ea - 1) >> shift) << d) | ((1u32 << d) - 1);
                }
                ranges_ready = true;
            }
            let mut m = 0usize;
            while page < lo[m] || page > hi[m] {
                m += 1;
            }
            // Charge the whole page's touch from its cached lane union
            // — one OR charges up to 64 member sessions at once, and
            // only occupied lane words cost. The union is rebuilt
            // lazily after the page's monitor set changes.
            let u = &mut page_union[page as usize];
            if u.gen != page_gen[page as usize] {
                u.gen = page_gen[page as usize];
                u.pairs.clear();
                for &slot in list.as_slice() {
                    let inst = instances[slot as usize].expect("indexed slot live");
                    'pair: for &(w, bits) in member_lanes[inst.members as usize].pairs() {
                        for p in u.pairs.iter_mut() {
                            if p.0 == w {
                                p.1 |= bits;
                                continue 'pair;
                            }
                        }
                        u.pairs.push((w, bits));
                    }
                }
            }
            for &(w, bits) in u.pairs.iter() {
                let w = w as usize;
                if word_stamp[w] != stamp {
                    word_stamp[w] = stamp;
                    hit_lanes[w] = 0;
                    for k in 0..n {
                        touch_lanes[k * width + w] = 0;
                    }
                    dirty.push(w as u32);
                }
                touch_lanes[m * width + w] |= bits;
            }
            // Byte overlap implies a shared base page at level 0, so
            // per-instance hit checks only run there — and lane ORs are
            // idempotent, so an instance spanning several pages needs no
            // dedup stamp.
            if m == 0 {
                for &slot in list.as_slice() {
                    let inst = instances[slot as usize].expect("indexed slot live");
                    if ba < inst.ea && inst.ba < ea {
                        for &(w, bits) in member_lanes[inst.members as usize].pairs() {
                            hit_lanes[w as usize] |= bits;
                        }
                    }
                }
            }
        }
        // Settle the dirty lane words into the effect arenas. `below`
        // carries every session already accounted for at a finer level
        // (or by a hit), so each session's minimum touch level survives
        // in exactly one masked `t`.
        let h0 = eff_hits.len() as u32;
        let a0 = eff_apms.len() as u32;
        for &w in dirty.iter() {
            let w = w as usize;
            let base = (w as u32) * 64;
            let mut bits = hit_lanes[w];
            let mut below = bits;
            while bits != 0 {
                let s = base + bits.trailing_zeros();
                bits &= bits - 1;
                eff_hits.push(s);
            }
            for k in 0..n {
                let mut t = touch_lanes[k * width + w] & !below;
                below |= t;
                while t != 0 {
                    let s = base + t.trailing_zeros();
                    t &= t - 1;
                    eff_apms.push(((k as u32) << LEVEL_SHIFT) | s);
                }
            }
        }
        ((h0, eff_hits.len() as u32), (a0, eff_apms.len() as u32))
    }

    /// Per-size, per-session counting variables for sessions `0..n`
    /// (result `[k][s]` is ladder size `k`, session `s`).
    pub(crate) fn counts(&mut self, n: usize) -> Vec<Vec<Counts>> {
        self.ensure_sessions(n);
        // Settle every outstanding memoized effect (idempotent: flushed
        // multiplicities zero out).
        for i in 0..self.effects.len() {
            let e = self.effects[i];
            self.flush_effect(e);
            self.effects[i].count = 0;
        }
        self.sizes
            .iter()
            .map(|st| {
                (0..n)
                    .map(|s| Counts {
                        install: self.installs[s],
                        remove: self.removes[s],
                        hit: self.hits[s],
                        miss: self.total_writes - self.hits[s],
                        vm_protect: st.vm_protect[s],
                        vm_unprotect: st.vm_unprotect[s],
                        vm_active_page_miss: st.apm[s],
                    })
                    .collect()
            })
            .collect()
    }
}
/// Replays `trace` once, producing per-session counting variables at the
/// given page size.
///
/// Sessions are identified by index (`0..membership.count()`); see
/// [`Membership`]. `MonitorMissσ` is derived as
/// `total writes − MonitorHitσ`, because the software strategies check
/// every traced write for the whole run.
pub fn simulate<M: Membership>(trace: &Trace, membership: &M, page_size: PageSize) -> Vec<Counts> {
    simulate_sizes(trace, membership, &[page_size])
        .pop()
        .expect("one page size in, one counts vector out")
}

/// The fused dual-page-size replay: one trace walk, counts at both
/// 4 KiB and 8 KiB — exactly the pair the paper's VM-4K / VM-8K columns
/// need, at roughly the cost of a single-size replay.
pub fn simulate_fused<M: Membership>(trace: &Trace, membership: &M) -> (Vec<Counts>, Vec<Counts>) {
    let mut both = simulate_sizes(trace, membership, &[PageSize::K4, PageSize::K8]);
    let c8 = both.pop().expect("8K counts");
    let c4 = both.pop().expect("4K counts");
    (c4, c8)
}

/// Replays `trace` once, producing per-session counting variables for
/// **each** page size in `sizes` (result `[i]` corresponds to
/// `sizes[i]`; duplicates and any ordering are fine — the engine sorts
/// and dedups internally). One replay is one trace walk regardless of
/// how many page sizes are requested.
pub fn simulate_sizes<M: Membership>(
    trace: &Trace,
    membership: &M,
    sizes: &[PageSize],
) -> Vec<Vec<Counts>> {
    if sizes.is_empty() {
        return Vec::new();
    }
    let mut ladder = sizes.to_vec();
    ladder.sort_unstable_by_key(|ps| ps.shift());
    ladder.dedup();
    let mut replay = StreamingReplay::new(FixedMembership::new(membership), &ladder);
    replay.feed(trace.events());
    let (_, counts) = replay.finish();
    sizes
        .iter()
        .map(|ps| {
            let k = ladder
                .iter()
                .position(|l| l == ps)
                .expect("requested size is in the deduped ladder");
            counts[k].clone()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::membership::TableMembership;
    use databp_trace::Event;

    fn g(id: u32) -> ObjectDesc {
        ObjectDesc::Global { id }
    }

    fn write(ba: u32, ea: u32) -> Event {
        Event::Write {
            pc: 0,
            ba,
            ea,
            value: 0,
            old: 0,
        }
    }

    #[test]
    fn single_session_hit_miss_accounting() {
        let m = TableMembership::new(vec![(g(0), vec![0])], 1);
        let trace = Trace::from_events(vec![
            Event::Install {
                obj: g(0),
                ba: 0x1000,
                ea: 0x1004,
            },
            write(0x1000, 0x1004), // hit
            write(0x2000, 0x2004), // miss (different page)
            write(0x1008, 0x100c), // active-page miss
            Event::Remove {
                obj: g(0),
                ba: 0x1000,
                ea: 0x1004,
            },
            write(0x1000, 0x1004), // after removal: plain miss
        ]);
        let c = simulate(&trace, &m, PageSize::K4);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].hit, 1);
        assert_eq!(c[0].miss, 3);
        assert_eq!(c[0].vm_active_page_miss, 1);
        assert_eq!(c[0].install, 1);
        assert_eq!(c[0].remove, 1);
        assert_eq!(c[0].vm_protect, 1);
        assert_eq!(c[0].vm_unprotect, 1);
    }

    #[test]
    fn page_size_affects_apm() {
        let m = TableMembership::new(vec![(g(0), vec![0])], 1);
        let trace = Trace::from_events(vec![
            // Monitor on 4K page 1 == 8K page 0.
            Event::Install {
                obj: g(0),
                ba: 0x1000,
                ea: 0x1004,
            },
            write(0x1800, 0x1804), // same 4K page and same 8K page
            write(0x0800, 0x0804), // different 4K page, same 8K page
        ]);
        let c4 = simulate(&trace, &m, PageSize::K4);
        let c8 = simulate(&trace, &m, PageSize::K8);
        assert_eq!(c4[0].vm_active_page_miss, 1);
        assert_eq!(c8[0].vm_active_page_miss, 2);
        assert_eq!(c4[0].hit, 0);
        assert_eq!(c4[0].miss, 2);
    }

    #[test]
    fn fused_replay_matches_separate_replays() {
        let m = TableMembership::new(
            vec![(g(0), vec![0, 1]), (g(1), vec![1]), (g(2), vec![2])],
            3,
        );
        let trace = Trace::from_events(vec![
            Event::Install {
                obj: g(0),
                ba: 0x0ff0,
                ea: 0x1010, // spans 4K pages 0-1 (one 8K page)
            },
            Event::Install {
                obj: g(1),
                ba: 0x1ffc,
                ea: 0x2004, // spans 4K pages 1-2 and 8K pages 0-1
            },
            write(0x1000, 0x1004), // hits g(0)
            write(0x1800, 0x1804), // APM at 4K and 8K
            write(0x2800, 0x2804), // APM at 4K (page 2) and 8K (page 1)
            write(0x4000, 0x4004), // plain miss everywhere
            Event::Remove {
                obj: g(0),
                ba: 0x0ff0,
                ea: 0x1010,
            },
            write(0x0ff0, 0x0ff4), // g(0) gone: miss/APM only
            Event::Remove {
                obj: g(1),
                ba: 0x1ffc,
                ea: 0x2004,
            },
        ]);
        let (c4, c8) = simulate_fused(&trace, &m);
        assert_eq!(c4, simulate(&trace, &m, PageSize::K4));
        assert_eq!(c8, simulate(&trace, &m, PageSize::K8));
    }

    #[test]
    fn ladder_matches_separate_replays_and_any_order() {
        let m = TableMembership::new(vec![(g(0), vec![0, 1]), (g(1), vec![1])], 2);
        let trace = Trace::from_events(vec![
            Event::Install {
                obj: g(0),
                ba: 0x0ff0,
                ea: 0x1010,
            },
            Event::Install {
                obj: g(1),
                ba: 0x7ffc,
                ea: 0x8004, // spans 16K pages 1-2, 32K page 0-1
            },
            write(0x1000, 0x1004),
            write(0x3800, 0x3804),   // APM at 16K/32K only for g(0)
            write(0x9000, 0x9004),   // near g(1): APM at coarse sizes
            write(0x20000, 0x20004), // plain miss everywhere
            Event::Remove {
                obj: g(0),
                ba: 0x0ff0,
                ea: 0x1010,
            },
            write(0x0ff0, 0x0ff4),
        ]);
        let ladder = [PageSize::K4, PageSize::K8, PageSize::K16, PageSize::K32];
        let fused = simulate_sizes(&trace, &m, &ladder);
        for (k, &ps) in ladder.iter().enumerate() {
            assert_eq!(fused[k], simulate(&trace, &m, ps), "size {ps}");
        }
        // Order and duplicates in the request don't change the results.
        let shuffled = [PageSize::K32, PageSize::K4, PageSize::K4, PageSize::K16];
        let out = simulate_sizes(&trace, &m, &shuffled);
        assert_eq!(out[0], fused[3]);
        assert_eq!(out[1], fused[0]);
        assert_eq!(out[2], fused[0]);
        assert_eq!(out[3], fused[2]);
    }

    #[test]
    fn one_write_hitting_two_objects_counts_once_per_session() {
        let m = TableMembership::new(vec![(g(0), vec![0]), (g(1), vec![0, 1])], 2);
        let trace = Trace::from_events(vec![
            Event::Install {
                obj: g(0),
                ba: 0x1000,
                ea: 0x1004,
            },
            Event::Install {
                obj: g(1),
                ba: 0x1004,
                ea: 0x1008,
            },
            write(0x1000, 0x1008), // straddles both objects
        ]);
        let c = simulate(&trace, &m, PageSize::K4);
        assert_eq!(c[0].hit, 1, "session 0 hit once despite two member objects");
        assert_eq!(c[1].hit, 1);
    }

    #[test]
    fn hit_suppresses_active_page_miss_for_same_write() {
        let m = TableMembership::new(vec![(g(0), vec![0]), (g(1), vec![0])], 1);
        let trace = Trace::from_events(vec![
            Event::Install {
                obj: g(0),
                ba: 0x1000,
                ea: 0x1004,
            },
            Event::Install {
                obj: g(1),
                ba: 0x1100,
                ea: 0x1104,
            },
            // Hits g(0); also touches g(1)'s page (same page) — counts
            // as a hit, not an APM.
            write(0x1000, 0x1004),
        ]);
        let c = simulate(&trace, &m, PageSize::K4);
        assert_eq!(c[0].hit, 1);
        assert_eq!(c[0].vm_active_page_miss, 0);
    }

    #[test]
    fn fused_hit_suppression_is_per_page_size() {
        // A monitor on 4K page 1; a second monitor on 4K page 0 (same
        // 8K page). A write that hits the second monitor must suppress
        // the APM at both sizes; a near-miss on page 0 is an APM at 4K
        // (page 0 is active) and at 8K too.
        let m = TableMembership::new(vec![(g(0), vec![0]), (g(1), vec![0])], 1);
        let trace = Trace::from_events(vec![
            Event::Install {
                obj: g(0),
                ba: 0x1000,
                ea: 0x1004,
            },
            Event::Install {
                obj: g(1),
                ba: 0x0100,
                ea: 0x0104,
            },
            write(0x0100, 0x0104), // hit on g(1): no APM at either size
            write(0x0200, 0x0204), // APM at both sizes
            write(0x2100, 0x2104), // plain miss at 4K; APM at 8K? no —
                                   // 8K page 1 (0x2000-0x3fff) holds no monitor: plain miss.
        ]);
        let (c4, c8) = simulate_fused(&trace, &m);
        assert_eq!(c4[0].hit, 1);
        assert_eq!(c8[0].hit, 1);
        assert_eq!(c4[0].vm_active_page_miss, 1);
        assert_eq!(c8[0].vm_active_page_miss, 1);
        assert_eq!(c4[0].miss, 2);
        assert_eq!(c8[0].miss, 2);
    }

    #[test]
    fn reinstalled_object_keeps_counting() {
        // Realloc pattern: remove + install of the same descriptor.
        let h = ObjectDesc::Heap { seq: 5 };
        let m = TableMembership::new(vec![(h, vec![0])], 1);
        let trace = Trace::from_events(vec![
            Event::Install {
                obj: h,
                ba: 0x1000,
                ea: 0x1010,
            },
            write(0x1000, 0x1004),
            Event::Remove {
                obj: h,
                ba: 0x1000,
                ea: 0x1010,
            },
            Event::Install {
                obj: h,
                ba: 0x3000,
                ea: 0x3040,
            },
            write(0x3000, 0x3004),
            Event::Remove {
                obj: h,
                ba: 0x3000,
                ea: 0x3040,
            },
        ]);
        let c = simulate(&trace, &m, PageSize::K4);
        assert_eq!(c[0].hit, 2);
        assert_eq!(c[0].install, 2);
        assert_eq!(c[0].remove, 2);
        assert_eq!(c[0].vm_protect, 2);
    }

    #[test]
    fn recursion_instances_tracked_independently() {
        let l = ObjectDesc::Local { func: 1, var: 0 };
        let m = TableMembership::new(vec![(l, vec![0])], 1);
        let trace = Trace::from_events(vec![
            Event::Install {
                obj: l,
                ba: 0xF000,
                ea: 0xF004,
            }, // outer
            Event::Install {
                obj: l,
                ba: 0xE000,
                ea: 0xE004,
            }, // inner
            write(0xE000, 0xE004), // hits inner instance
            Event::Remove {
                obj: l,
                ba: 0xE000,
                ea: 0xE004,
            },
            write(0xE000, 0xE004), // inner gone: miss (different page from outer)
            write(0xF000, 0xF004), // hits outer
            Event::Remove {
                obj: l,
                ba: 0xF000,
                ea: 0xF004,
            },
        ]);
        let c = simulate(&trace, &m, PageSize::K4);
        assert_eq!(c[0].hit, 2);
        assert_eq!(c[0].install, 2);
        assert_eq!(c[0].remove, 2);
        assert_eq!(c[0].miss, 1);
    }

    #[test]
    fn unmonitored_objects_cost_nothing() {
        let m = TableMembership::new(vec![], 1);
        let trace = Trace::from_events(vec![
            Event::Install {
                obj: g(9),
                ba: 0x1000,
                ea: 0x1004,
            },
            write(0x1000, 0x1004),
            Event::Remove {
                obj: g(9),
                ba: 0x1000,
                ea: 0x1004,
            },
        ]);
        let c = simulate(&trace, &m, PageSize::K4);
        assert_eq!(c[0].hit, 0);
        assert_eq!(c[0].miss, 1);
        assert_eq!(c[0].install, 0);
        assert_eq!(c[0].vm_active_page_miss, 0);
    }

    #[test]
    fn overlapping_monitors_page_counts_stay_protected() {
        let m = TableMembership::new(vec![(g(0), vec![0]), (g(1), vec![0])], 1);
        let trace = Trace::from_events(vec![
            Event::Install {
                obj: g(0),
                ba: 0x1000,
                ea: 0x1004,
            },
            Event::Install {
                obj: g(1),
                ba: 0x1004,
                ea: 0x1008,
            },
            Event::Remove {
                obj: g(0),
                ba: 0x1000,
                ea: 0x1004,
            },
            // Page still has g(1): a nearby write is an APM.
            write(0x1800, 0x1804),
            Event::Remove {
                obj: g(1),
                ba: 0x1004,
                ea: 0x1008,
            },
        ]);
        let c = simulate(&trace, &m, PageSize::K4);
        assert_eq!(c[0].vm_protect, 1, "page protected once");
        assert_eq!(
            c[0].vm_unprotect, 1,
            "unprotected only when last monitor left"
        );
        assert_eq!(c[0].vm_active_page_miss, 1);
    }

    #[test]
    fn high_session_indices_span_many_lane_words() {
        // Sessions 0, 63, 64, and 200 exercise lane-word boundaries and
        // the sparse-pair path (an object whose only member is a
        // high-indexed session must not pay for the words below it).
        let m = TableMembership::new(vec![(g(0), vec![0, 63, 64]), (g(1), vec![200])], 201);
        let trace = Trace::from_events(vec![
            Event::Install {
                obj: g(0),
                ba: 0x1000,
                ea: 0x1004,
            },
            Event::Install {
                obj: g(1),
                ba: 0x1100,
                ea: 0x1104,
            },
            write(0x1000, 0x1004), // hits g(0); APM for g(1)'s session
            write(0x1800, 0x1804), // APM for all four sessions
            write(0x5000, 0x5004), // plain miss everywhere
        ]);
        let c = simulate(&trace, &m, PageSize::K4);
        for s in [0usize, 63, 64] {
            assert_eq!(c[s].hit, 1, "session {s}");
            assert_eq!(c[s].vm_active_page_miss, 1, "session {s}");
            assert_eq!(c[s].miss, 2, "session {s}");
        }
        assert_eq!(c[200].hit, 0);
        assert_eq!(c[200].vm_active_page_miss, 2);
        assert_eq!(c[200].miss, 3);
    }

    #[test]
    fn repeated_writes_reuse_and_invalidate_the_memo() {
        // The same span written before and after a remove on its page
        // must not reuse the stale effect; a remove on an unrelated page
        // must not invalidate it either (the counts prove both).
        let m = TableMembership::new(vec![(g(0), vec![0]), (g(1), vec![1])], 2);
        let trace = Trace::from_events(vec![
            Event::Install {
                obj: g(0),
                ba: 0x1000,
                ea: 0x1004,
            },
            Event::Install {
                obj: g(1),
                ba: 0x9000,
                ea: 0x9004,
            },
            write(0x1000, 0x1004), // hit (memo fill)
            write(0x1000, 0x1004), // hit (memo reuse)
            Event::Remove {
                obj: g(1),
                ba: 0x9000,
                ea: 0x9004,
            },
            write(0x1000, 0x1004), // unrelated remove: still a hit
            Event::Remove {
                obj: g(0),
                ba: 0x1000,
                ea: 0x1004,
            },
            write(0x1000, 0x1004), // monitor gone: plain miss
            Event::Install {
                obj: g(0),
                ba: 0x1000,
                ea: 0x1004,
            },
            write(0x1000, 0x1004), // reinstalled: hit again
        ]);
        let c = simulate(&trace, &m, PageSize::K4);
        assert_eq!(c[0].hit, 4);
        assert_eq!(c[0].miss, 1);
        assert_eq!(c[1].vm_active_page_miss, 0);
    }

    #[test]
    fn engine_outputs_are_send() {
        // The parallel pipeline moves counts (and everything the engine
        // produces) across threads; pin that the engine's result type
        // stays Send.
        fn assert_send<T: Send>(_: &T) {}
        let m = TableMembership::new(vec![(g(0), vec![0])], 1);
        let trace = Trace::from_events(vec![Event::Install {
            obj: g(0),
            ba: 0x1000,
            ea: 0x1004,
        }]);
        let out = simulate_fused(&trace, &m);
        assert_send(&out);
    }
}
