//! The one-pass multi-session counting engine, fused across page sizes.
//!
//! One call to [`simulate_sizes`] walks the trace **once** and
//! accumulates [`Counts`] for every requested page size simultaneously.
//! Page-derived state (the page → instances index, per-(session, page)
//! protection counts, `vm_protect` / `vm_unprotect` / active-page-miss
//! accounting) lives in a per-page-size [`SizeState`]; everything else —
//! the instance slab, membership interning, install/remove/hit/miss
//! accounting — is shared across sizes, so the dominant replay work is
//! paid once instead of once per page size.
//!
//! Hits are page-size-independent by construction: a write that overlaps
//! a monitored instance shares at least one byte with it, hence shares a
//! page at *every* page size, so every size's page walk discovers every
//! overlapping instance. The engine exploits this by stamping the shared
//! `last_hit` array from whichever walk runs and counting the hit in the
//! first size's sweep only.

use crate::membership::Membership;
use crate::slots::SlotList;
use databp_machine::PageSize;
use databp_models::Counts;
use databp_trace::{Event, ObjectDesc, Trace};
use rustc_hash::FxHashMap;

/// A live monitored object instance.
#[derive(Debug, Clone, Copy)]
struct Instance {
    ba: u32,
    ea: u32,
    /// Index into the engine's interned membership lists.
    members: u32,
}

/// Packs a (session, page) pair into one map key.
#[inline]
fn session_page(s: u32, page: u32) -> u64 {
    (u64::from(s) << 32) | u64::from(page)
}

/// Page-derived state for one page size.
struct SizeState {
    page_size: PageSize,
    /// Whether this size maintains its own `pages` index. The second
    /// size of a doubling pair (e.g. 8K over 4K) derives its page walk
    /// from the first size's index — an 8K page is exactly the 4K
    /// buddy pair `{P, P ^ 1}` — so indexing it would be pure
    /// install/remove overhead.
    indexed: bool,
    /// Page -> slab indices of instances overlapping it, indexed
    /// directly by page number. The machine's data space is 16 MiB
    /// (4096 pages at 4K), so a flat array beats hashing on the
    /// write path; it grows on demand so synthetic traces with larger
    /// addresses stay correct.
    pages: Vec<SlotList>,
    /// Packed (session, page) -> active member-monitor count.
    page_counts: FxHashMap<u64, u32>,
    // Per-session accumulators.
    apm: Vec<u64>,
    vm_protect: Vec<u64>,
    vm_unprotect: Vec<u64>,
    // Event-stamped dedup state, private to this size's page walk.
    last_touch: Vec<u64>,
    inst_stamp: Vec<u64>,
    /// Scratch: sessions touched by the current write (reused).
    touched: Vec<u32>,
}

impl SizeState {
    fn new(page_size: PageSize, n_sessions: usize, indexed: bool) -> SizeState {
        SizeState {
            page_size,
            indexed,
            // Pre-size for the machine's whole data space; traces from
            // real workloads never grow this.
            pages: if indexed {
                vec![SlotList::default(); (databp_machine::MEM_SIZE >> page_size.shift()) as usize]
            } else {
                Vec::new()
            },
            page_counts: FxHashMap::default(),
            apm: vec![0; n_sessions],
            vm_protect: vec![0; n_sessions],
            vm_unprotect: vec![0; n_sessions],
            last_touch: vec![u64::MAX; n_sessions],
            inst_stamp: Vec::new(),
            touched: Vec::new(),
        }
    }
}

struct Engine<'m, M: Membership> {
    membership: &'m M,
    sizes: Vec<SizeState>,
    /// Slab of live instances; `None` slots are free.
    instances: Vec<Option<Instance>>,
    free: Vec<u32>,
    /// Live lookup by (object, install base address).
    live: FxHashMap<(ObjectDesc, u32), u32>,
    /// Interned membership lists; `member_cache` maps each object
    /// descriptor to an index here (all instantiations of a local share
    /// one descriptor, so this interns per variable). Index-based
    /// interning keeps the engine `Send`-friendly and makes an instance
    /// 12 bytes.
    member_cache: FxHashMap<ObjectDesc, u32>,
    member_lists: Vec<Box<[u32]>>,
    // Per-session accumulators (page-size-independent).
    hits: Vec<u64>,
    installs: Vec<u64>,
    removes: Vec<u64>,
    /// Shared across sizes: stamp of the last write that hit the
    /// session (hits are page-size-independent, see module docs).
    last_hit: Vec<u64>,
    total_writes: u64,
    /// True when `sizes` is a doubling pair (`sizes[1]` pages are twice
    /// `sizes[0]` pages): the write path then derives the second size's
    /// page walk from the first size's index via buddy pages.
    derived_pair: bool,
}

/// Replays `trace` once, producing per-session counting variables at the
/// given page size.
///
/// Sessions are identified by index (`0..membership.count()`); see
/// [`Membership`]. `MonitorMissσ` is derived as
/// `total writes − MonitorHitσ`, because the software strategies check
/// every traced write for the whole run.
pub fn simulate<M: Membership>(trace: &Trace, membership: &M, page_size: PageSize) -> Vec<Counts> {
    simulate_sizes(trace, membership, &[page_size])
        .pop()
        .expect("one page size in, one counts vector out")
}

/// The fused dual-page-size replay: one trace walk, counts at both
/// 4 KiB and 8 KiB — exactly the pair the paper's VM-4K / VM-8K columns
/// need, at roughly the cost of a single-size replay.
pub fn simulate_fused<M: Membership>(trace: &Trace, membership: &M) -> (Vec<Counts>, Vec<Counts>) {
    let mut both = simulate_sizes(trace, membership, &[PageSize::K4, PageSize::K8]);
    let c8 = both.pop().expect("8K counts");
    let c4 = both.pop().expect("4K counts");
    (c4, c8)
}

/// Replays `trace` once, producing per-session counting variables for
/// **each** page size in `sizes` (result `[i]` corresponds to
/// `sizes[i]`). One replay is one trace walk regardless of how many
/// page sizes are requested.
pub fn simulate_sizes<M: Membership>(
    trace: &Trace,
    membership: &M,
    sizes: &[PageSize],
) -> Vec<Vec<Counts>> {
    let n = membership.count();
    let derived_pair = sizes.len() == 2 && sizes[1].shift() == sizes[0].shift() + 1;
    let mut e = Engine {
        membership,
        sizes: sizes
            .iter()
            .enumerate()
            .map(|(i, &ps)| SizeState::new(ps, n, !(derived_pair && i == 1)))
            .collect(),
        instances: Vec::new(),
        free: Vec::new(),
        live: FxHashMap::default(),
        member_cache: FxHashMap::default(),
        member_lists: Vec::new(),
        hits: vec![0; n],
        installs: vec![0; n],
        removes: vec![0; n],
        last_hit: vec![u64::MAX; n],
        total_writes: 0,
        derived_pair,
    };
    let _replay_timer = databp_telemetry::time!("sim.replay");
    databp_telemetry::count!("sim.replays");
    databp_telemetry::count!("sim.page_sizes.fused", sizes.len() as u64);
    databp_telemetry::count!("sim.sessions.simulated", n as u64);
    databp_telemetry::count!("sim.events.replayed", trace.events().len() as u64);
    let mut scratch = Vec::new();
    for (idx, ev) in trace.events().iter().enumerate() {
        let stamp = idx as u64;
        match *ev {
            Event::Install { obj, ba, ea } => e.install(obj, ba, ea, &mut scratch),
            Event::Remove { obj, ba, .. } => e.remove(obj, ba),
            Event::Write { ba, ea, .. } => e.write(ba, ea, stamp),
            Event::Enter { .. } | Event::Exit { .. } => {}
        }
    }
    e.sizes
        .iter()
        .map(|st| {
            (0..n)
                .map(|s| Counts {
                    install: e.installs[s],
                    remove: e.removes[s],
                    hit: e.hits[s],
                    miss: e.total_writes - e.hits[s],
                    vm_protect: st.vm_protect[s],
                    vm_unprotect: st.vm_unprotect[s],
                    vm_active_page_miss: st.apm[s],
                })
                .collect()
        })
        .collect()
}

impl<'m, M: Membership> Engine<'m, M> {
    fn members(&mut self, obj: &ObjectDesc, scratch: &mut Vec<u32>) -> u32 {
        if let Some(&i) = self.member_cache.get(obj) {
            return i;
        }
        self.membership.sessions_of(obj, scratch);
        let i = self.member_lists.len() as u32;
        self.member_lists.push(scratch.as_slice().into());
        self.member_cache.insert(*obj, i);
        i
    }

    fn install(&mut self, obj: ObjectDesc, ba: u32, ea: u32, scratch: &mut Vec<u32>) {
        let members = self.members(&obj, scratch);
        let sessions = &self.member_lists[members as usize];
        if sessions.is_empty() || ba >= ea {
            return;
        }
        let slot = match self.free.pop() {
            Some(s) => {
                self.instances[s as usize] = Some(Instance { ba, ea, members });
                s
            }
            None => {
                self.instances.push(Some(Instance { ba, ea, members }));
                for st in &mut self.sizes {
                    st.inst_stamp.push(u64::MAX);
                }
                (self.instances.len() - 1) as u32
            }
        };
        self.live.insert((obj, ba), slot);
        for st in &mut self.sizes {
            for page in st.page_size.pages_of_range(ba, ea) {
                if st.indexed {
                    if page as usize >= st.pages.len() {
                        st.pages.resize(page as usize + 1, SlotList::default());
                    }
                    st.pages[page as usize].push(slot);
                }
                for &s in sessions.iter() {
                    let cnt = st.page_counts.entry(session_page(s, page)).or_insert(0);
                    *cnt += 1;
                    if *cnt == 1 {
                        st.vm_protect[s as usize] += 1;
                    }
                }
            }
        }
        for &s in sessions.iter() {
            self.installs[s as usize] += 1;
        }
    }

    fn remove(&mut self, obj: ObjectDesc, ba: u32) {
        let Some(slot) = self.live.remove(&(obj, ba)) else {
            // Object not monitored by any session.
            return;
        };
        let inst = self.instances[slot as usize]
            .take()
            .expect("live slot is occupied");
        self.free.push(slot);
        let sessions = &self.member_lists[inst.members as usize];
        for st in &mut self.sizes {
            for page in st.page_size.pages_of_range(inst.ba, inst.ea) {
                if st.indexed {
                    st.pages[page as usize].swap_remove_value(slot);
                }
                for &s in sessions.iter() {
                    let key = session_page(s, page);
                    let cnt = st
                        .page_counts
                        .get_mut(&key)
                        .expect("page count exists for member session");
                    *cnt -= 1;
                    if *cnt == 0 {
                        st.page_counts.remove(&key);
                        st.vm_unprotect[s as usize] += 1;
                    }
                }
            }
        }
        for &s in sessions.iter() {
            self.removes[s as usize] += 1;
        }
    }

    fn write(&mut self, ba: u32, ea: u32, stamp: u64) {
        self.total_writes += 1;
        if ba >= ea {
            return;
        }
        if self.derived_pair {
            self.write_derived_pair(ba, ea, stamp);
            return;
        }
        let Engine {
            sizes,
            instances,
            member_lists,
            hits,
            last_hit,
            ..
        } = self;
        for (size_idx, st) in sizes.iter_mut().enumerate() {
            let SizeState {
                page_size,
                pages,
                apm,
                last_touch,
                inst_stamp,
                touched,
                ..
            } = st;
            touched.clear();
            for page in page_size.pages_of_range(ba, ea) {
                let Some(list) = pages.get(page as usize) else {
                    continue; // beyond every install: no monitors there
                };
                for &slot in list.as_slice() {
                    if inst_stamp[slot as usize] == stamp {
                        continue; // instance spans pages; already processed
                    }
                    inst_stamp[slot as usize] = stamp;
                    let inst = instances[slot as usize].expect("indexed slot live");
                    // Every size's walk finds every overlapping instance
                    // (overlap ⇒ a shared page at any size), so the first
                    // sweep already stamped `last_hit` for all hit
                    // sessions; later sweeps only classify.
                    let overlap = size_idx == 0 && ba < inst.ea && inst.ba < ea;
                    for &s in member_lists[inst.members as usize].iter() {
                        if last_touch[s as usize] != stamp {
                            last_touch[s as usize] = stamp;
                            touched.push(s);
                        }
                        if overlap {
                            last_hit[s as usize] = stamp;
                        }
                    }
                }
            }
            for &s in touched.iter() {
                if last_hit[s as usize] == stamp {
                    // Page-size-independent; counted once, in the first
                    // size's sweep (a hit session is touched at every
                    // size — see module docs).
                    if size_idx == 0 {
                        hits[s as usize] += 1;
                    }
                } else {
                    apm[s as usize] += 1;
                }
            }
        }
    }

    /// Write path for a doubling size pair (e.g. 4K + 8K): one walk of
    /// the small-size page index serves both sizes.
    ///
    /// A large page is exactly the small-page buddy pair `{P, P ^ 1}`,
    /// so the large-size view of this write is the instances on the
    /// write's own small pages (already visited for the small size)
    /// plus the instances on their buddy pages. Buddy-only instances
    /// have no byte in the write's own pages, hence can never overlap
    /// the write — they contribute large-size touches (possible
    /// active-page misses), never hits.
    fn write_derived_pair(&mut self, ba: u32, ea: u32, stamp: u64) {
        let (small, large) = self.sizes.split_at_mut(1);
        let small = &mut small[0];
        let large = &mut large[0];
        let instances = &self.instances;
        let member_lists = &self.member_lists;
        small.touched.clear();
        large.touched.clear();
        let first = ba >> small.page_size.shift();
        let last = (ea - 1) >> small.page_size.shift();
        // Own pages: candidates for overlap; touch both sizes.
        for page in first..=last {
            let Some(list) = small.pages.get(page as usize) else {
                continue;
            };
            for &slot in list.as_slice() {
                if small.inst_stamp[slot as usize] == stamp {
                    continue; // instance spans pages; already processed
                }
                small.inst_stamp[slot as usize] = stamp;
                let inst = instances[slot as usize].expect("indexed slot live");
                let overlap = ba < inst.ea && inst.ba < ea;
                for &s in member_lists[inst.members as usize].iter() {
                    if small.last_touch[s as usize] != stamp {
                        small.last_touch[s as usize] = stamp;
                        small.touched.push(s);
                    }
                    if large.last_touch[s as usize] != stamp {
                        large.last_touch[s as usize] = stamp;
                        large.touched.push(s);
                    }
                    if overlap {
                        self.last_hit[s as usize] = stamp;
                    }
                }
            }
        }
        // Buddy pages: complete the large-size view; touch it only.
        for page in first..=last {
            let buddy = page ^ 1;
            if buddy >= first && buddy <= last {
                continue; // buddy is an own page, already walked above
            }
            let Some(list) = small.pages.get(buddy as usize) else {
                continue;
            };
            for &slot in list.as_slice() {
                if small.inst_stamp[slot as usize] == stamp {
                    continue; // already visited via an own page
                }
                if large.inst_stamp[slot as usize] == stamp {
                    continue; // already visited via another buddy page
                }
                large.inst_stamp[slot as usize] = stamp;
                let inst = instances[slot as usize].expect("indexed slot live");
                for &s in member_lists[inst.members as usize].iter() {
                    if large.last_touch[s as usize] != stamp {
                        large.last_touch[s as usize] = stamp;
                        large.touched.push(s);
                    }
                }
            }
        }
        for &s in small.touched.iter() {
            if self.last_hit[s as usize] == stamp {
                self.hits[s as usize] += 1;
            } else {
                small.apm[s as usize] += 1;
            }
        }
        for &s in large.touched.iter() {
            if self.last_hit[s as usize] != stamp {
                large.apm[s as usize] += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::membership::TableMembership;

    fn g(id: u32) -> ObjectDesc {
        ObjectDesc::Global { id }
    }

    fn write(ba: u32, ea: u32) -> Event {
        Event::Write { pc: 0, ba, ea }
    }

    #[test]
    fn single_session_hit_miss_accounting() {
        let m = TableMembership {
            entries: vec![(g(0), vec![0])],
            sessions: 1,
        };
        let trace = Trace::from_events(vec![
            Event::Install {
                obj: g(0),
                ba: 0x1000,
                ea: 0x1004,
            },
            write(0x1000, 0x1004), // hit
            write(0x2000, 0x2004), // miss (different page)
            write(0x1008, 0x100c), // active-page miss
            Event::Remove {
                obj: g(0),
                ba: 0x1000,
                ea: 0x1004,
            },
            write(0x1000, 0x1004), // after removal: plain miss
        ]);
        let c = simulate(&trace, &m, PageSize::K4);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].hit, 1);
        assert_eq!(c[0].miss, 3);
        assert_eq!(c[0].vm_active_page_miss, 1);
        assert_eq!(c[0].install, 1);
        assert_eq!(c[0].remove, 1);
        assert_eq!(c[0].vm_protect, 1);
        assert_eq!(c[0].vm_unprotect, 1);
    }

    #[test]
    fn page_size_affects_apm() {
        let m = TableMembership {
            entries: vec![(g(0), vec![0])],
            sessions: 1,
        };
        let trace = Trace::from_events(vec![
            // Monitor on 4K page 1 == 8K page 0.
            Event::Install {
                obj: g(0),
                ba: 0x1000,
                ea: 0x1004,
            },
            write(0x1800, 0x1804), // same 4K page and same 8K page
            write(0x0800, 0x0804), // different 4K page, same 8K page
        ]);
        let c4 = simulate(&trace, &m, PageSize::K4);
        let c8 = simulate(&trace, &m, PageSize::K8);
        assert_eq!(c4[0].vm_active_page_miss, 1);
        assert_eq!(c8[0].vm_active_page_miss, 2);
        assert_eq!(c4[0].hit, 0);
        assert_eq!(c4[0].miss, 2);
    }

    #[test]
    fn fused_replay_matches_separate_replays() {
        let m = TableMembership {
            entries: vec![(g(0), vec![0, 1]), (g(1), vec![1]), (g(2), vec![2])],
            sessions: 3,
        };
        let trace = Trace::from_events(vec![
            Event::Install {
                obj: g(0),
                ba: 0x0ff0,
                ea: 0x1010, // spans 4K pages 0–1 (one 8K page)
            },
            Event::Install {
                obj: g(1),
                ba: 0x1ffc,
                ea: 0x2004, // spans 4K pages 1–2 and 8K pages 0–1
            },
            write(0x1000, 0x1004), // hits g(0)
            write(0x1800, 0x1804), // APM at 4K and 8K
            write(0x2800, 0x2804), // APM at 4K (page 2) and 8K (page 1)
            write(0x4000, 0x4004), // plain miss everywhere
            Event::Remove {
                obj: g(0),
                ba: 0x0ff0,
                ea: 0x1010,
            },
            write(0x0ff0, 0x0ff4), // g(0) gone: miss/APM only
            Event::Remove {
                obj: g(1),
                ba: 0x1ffc,
                ea: 0x2004,
            },
        ]);
        let (c4, c8) = simulate_fused(&trace, &m);
        assert_eq!(c4, simulate(&trace, &m, PageSize::K4));
        assert_eq!(c8, simulate(&trace, &m, PageSize::K8));
    }

    #[test]
    fn one_write_hitting_two_objects_counts_once_per_session() {
        let m = TableMembership {
            entries: vec![(g(0), vec![0]), (g(1), vec![0, 1])],
            sessions: 2,
        };
        let trace = Trace::from_events(vec![
            Event::Install {
                obj: g(0),
                ba: 0x1000,
                ea: 0x1004,
            },
            Event::Install {
                obj: g(1),
                ba: 0x1004,
                ea: 0x1008,
            },
            write(0x1000, 0x1008), // straddles both objects
        ]);
        let c = simulate(&trace, &m, PageSize::K4);
        assert_eq!(c[0].hit, 1, "session 0 hit once despite two member objects");
        assert_eq!(c[1].hit, 1);
    }

    #[test]
    fn hit_suppresses_active_page_miss_for_same_write() {
        let m = TableMembership {
            entries: vec![(g(0), vec![0]), (g(1), vec![0])],
            sessions: 1,
        };
        let trace = Trace::from_events(vec![
            Event::Install {
                obj: g(0),
                ba: 0x1000,
                ea: 0x1004,
            },
            Event::Install {
                obj: g(1),
                ba: 0x1100,
                ea: 0x1104,
            },
            // Hits g(0); also touches g(1)'s page (same page) — counts
            // as a hit, not an APM.
            write(0x1000, 0x1004),
        ]);
        let c = simulate(&trace, &m, PageSize::K4);
        assert_eq!(c[0].hit, 1);
        assert_eq!(c[0].vm_active_page_miss, 0);
    }

    #[test]
    fn fused_hit_suppression_is_per_page_size() {
        // A monitor on 4K page 1; a second monitor on 4K page 0 (same
        // 8K page). A write that hits the second monitor must suppress
        // the APM at both sizes; a near-miss on page 0 is an APM at 4K
        // (page 0 is active) and at 8K too.
        let m = TableMembership {
            entries: vec![(g(0), vec![0]), (g(1), vec![0])],
            sessions: 1,
        };
        let trace = Trace::from_events(vec![
            Event::Install {
                obj: g(0),
                ba: 0x1000,
                ea: 0x1004,
            },
            Event::Install {
                obj: g(1),
                ba: 0x0100,
                ea: 0x0104,
            },
            write(0x0100, 0x0104), // hit on g(1): no APM at either size
            write(0x0200, 0x0204), // APM at both sizes
            write(0x2100, 0x2104), // plain miss at 4K; APM at 8K? no —
                                   // 8K page 1 (0x2000-0x3fff) holds no monitor: plain miss.
        ]);
        let (c4, c8) = simulate_fused(&trace, &m);
        assert_eq!(c4[0].hit, 1);
        assert_eq!(c8[0].hit, 1);
        assert_eq!(c4[0].vm_active_page_miss, 1);
        assert_eq!(c8[0].vm_active_page_miss, 1);
        assert_eq!(c4[0].miss, 2);
        assert_eq!(c8[0].miss, 2);
    }

    #[test]
    fn reinstalled_object_keeps_counting() {
        // Realloc pattern: remove + install of the same descriptor.
        let h = ObjectDesc::Heap { seq: 5 };
        let m = TableMembership {
            entries: vec![(h, vec![0])],
            sessions: 1,
        };
        let trace = Trace::from_events(vec![
            Event::Install {
                obj: h,
                ba: 0x1000,
                ea: 0x1010,
            },
            write(0x1000, 0x1004),
            Event::Remove {
                obj: h,
                ba: 0x1000,
                ea: 0x1010,
            },
            Event::Install {
                obj: h,
                ba: 0x3000,
                ea: 0x3040,
            },
            write(0x3000, 0x3004),
            Event::Remove {
                obj: h,
                ba: 0x3000,
                ea: 0x3040,
            },
        ]);
        let c = simulate(&trace, &m, PageSize::K4);
        assert_eq!(c[0].hit, 2);
        assert_eq!(c[0].install, 2);
        assert_eq!(c[0].remove, 2);
        assert_eq!(c[0].vm_protect, 2);
    }

    #[test]
    fn recursion_instances_tracked_independently() {
        let l = ObjectDesc::Local { func: 1, var: 0 };
        let m = TableMembership {
            entries: vec![(l, vec![0])],
            sessions: 1,
        };
        let trace = Trace::from_events(vec![
            Event::Install {
                obj: l,
                ba: 0xF000,
                ea: 0xF004,
            }, // outer
            Event::Install {
                obj: l,
                ba: 0xE000,
                ea: 0xE004,
            }, // inner
            write(0xE000, 0xE004), // hits inner instance
            Event::Remove {
                obj: l,
                ba: 0xE000,
                ea: 0xE004,
            },
            write(0xE000, 0xE004), // inner gone: miss (different page from outer)
            write(0xF000, 0xF004), // hits outer
            Event::Remove {
                obj: l,
                ba: 0xF000,
                ea: 0xF004,
            },
        ]);
        let c = simulate(&trace, &m, PageSize::K4);
        assert_eq!(c[0].hit, 2);
        assert_eq!(c[0].install, 2);
        assert_eq!(c[0].remove, 2);
        assert_eq!(c[0].miss, 1);
    }

    #[test]
    fn unmonitored_objects_cost_nothing() {
        let m = TableMembership {
            entries: vec![],
            sessions: 1,
        };
        let trace = Trace::from_events(vec![
            Event::Install {
                obj: g(9),
                ba: 0x1000,
                ea: 0x1004,
            },
            write(0x1000, 0x1004),
            Event::Remove {
                obj: g(9),
                ba: 0x1000,
                ea: 0x1004,
            },
        ]);
        let c = simulate(&trace, &m, PageSize::K4);
        assert_eq!(c[0].hit, 0);
        assert_eq!(c[0].miss, 1);
        assert_eq!(c[0].install, 0);
        assert_eq!(c[0].vm_active_page_miss, 0);
    }

    #[test]
    fn overlapping_monitors_page_counts_stay_protected() {
        let m = TableMembership {
            entries: vec![(g(0), vec![0]), (g(1), vec![0])],
            sessions: 1,
        };
        let trace = Trace::from_events(vec![
            Event::Install {
                obj: g(0),
                ba: 0x1000,
                ea: 0x1004,
            },
            Event::Install {
                obj: g(1),
                ba: 0x1004,
                ea: 0x1008,
            },
            Event::Remove {
                obj: g(0),
                ba: 0x1000,
                ea: 0x1004,
            },
            // Page still has g(1): a nearby write is an APM.
            write(0x1800, 0x1804),
            Event::Remove {
                obj: g(1),
                ba: 0x1004,
                ea: 0x1008,
            },
        ]);
        let c = simulate(&trace, &m, PageSize::K4);
        assert_eq!(c[0].vm_protect, 1, "page protected once");
        assert_eq!(
            c[0].vm_unprotect, 1,
            "unprotected only when last monitor left"
        );
        assert_eq!(c[0].vm_active_page_miss, 1);
    }

    #[test]
    fn engine_outputs_are_send() {
        // The parallel pipeline moves counts (and everything the engine
        // produces) across threads; pin that the engine's result type
        // stays Send.
        fn assert_send<T: Send>(_: &T) {}
        let m = TableMembership {
            entries: vec![(g(0), vec![0])],
            sessions: 1,
        };
        let trace = Trace::from_events(vec![Event::Install {
            obj: g(0),
            ba: 0x1000,
            ea: 0x1004,
        }]);
        let out = simulate_fused(&trace, &m);
        assert_send(&out);
    }
}
