//! The one-pass multi-session counting engine, fused across a page-size
//! ladder.
//!
//! One call to [`simulate_sizes`] walks the trace **once** and
//! accumulates [`Counts`] for every requested page size simultaneously —
//! any set of power-of-two sizes, not just the 4K/8K buddy pair the
//! paper reports. The engine keeps a single page index at the *smallest*
//! (base) size and derives every coarser size's page walk from it by
//! shifting: a size-`k` page of a write expands to the base-page range
//!
//! ```text
//! lo[k] = (ba >> shift_k) << d_k
//! hi[k] = (((ea - 1) >> shift_k) << d_k) | ((1 << d_k) - 1)
//! ```
//!
//! where `d_k = shift_k - base_shift`. Because the sizes are sorted
//! ascending, these ranges nest (`lo` nonincreasing, `hi` nondecreasing
//! in `k`), so one sweep over the widest range classifies every base
//! page with its *level* `m` — the smallest `k` whose range contains it
//! — and an instance found at level `m` is touched at exactly the sizes
//! `m..n`. Page-derived protection state (`vm_protect` /
//! `vm_unprotect` / active-page-miss tallies) stays per size; the
//! instance slab, membership interning, and install/remove/hit/miss
//! accounting are shared, so the dominant replay work is paid once
//! regardless of ladder length.
//!
//! Hits are page-size-independent by construction: a write that overlaps
//! a monitored instance shares at least one byte with it, hence shares a
//! base page inside the write's own range (level 0), so the sweep always
//! discovers every overlapping instance at level 0 and byte-checks it
//! there. A hit suppresses the active-page miss at every size.
//!
//! The engine core ([`EngineCore`]) is event-driven — it has no
//! dependency on a materialized [`Trace`] — which is what lets the
//! streaming pipeline (`crate::stream`) replay batches concurrently with
//! trace generation. [`simulate`] / [`simulate_fused`] /
//! [`simulate_sizes`] remain the materialized-trace entry points.

use crate::membership::Membership;
use crate::slots::SlotList;
use crate::stream::{FixedMembership, StreamingReplay};
use databp_machine::PageSize;
use databp_models::Counts;
use databp_trace::{ObjectDesc, Trace};
use rustc_hash::FxHashMap;

/// A live monitored object instance.
#[derive(Debug, Clone, Copy)]
struct Instance {
    ba: u32,
    ea: u32,
    /// Index into the engine's interned membership lists.
    members: u32,
}

/// Packs a (session, page) pair into one map key.
#[inline]
fn session_page(s: u32, page: u32) -> u64 {
    (u64::from(s) << 32) | u64::from(page)
}

/// Page-derived state for one ladder size. Only the base (smallest)
/// size carries a page index; coarser sizes keep protection counts and
/// active-page-miss tallies of their own but share the base walk.
struct SizeState {
    page_size: PageSize,
    /// Packed (session, page) -> active member-monitor count, in this
    /// size's page numbering.
    page_counts: FxHashMap<u64, u32>,
    // Per-session accumulators.
    apm: Vec<u64>,
    vm_protect: Vec<u64>,
    vm_unprotect: Vec<u64>,
}

/// The event-driven replay core: feed it install/remove/write events in
/// program order (any batching), then read per-size, per-session
/// [`Counts`]. Sessions may appear lazily — [`EngineCore::ensure_sessions`]
/// grows every per-session accumulator — which is what dynamic
/// session discovery during streaming needs.
pub(crate) struct EngineCore {
    base_shift: u32,
    sizes: Vec<SizeState>,
    /// Base-size page -> slab indices of instances overlapping it,
    /// indexed directly by page number. The machine's data space is
    /// 16 MiB, so a flat array beats hashing on the write path; it
    /// grows on demand so synthetic traces with larger addresses stay
    /// correct.
    pages: Vec<SlotList>,
    /// One bit per base page, set iff `pages[p]` is nonempty. The whole
    /// 16 MiB space fits in 512 bytes, so the all-miss write sweep (the
    /// overwhelmingly common case) probes L1-resident state instead of
    /// the ~100 KiB `pages` array — which matters most when replay
    /// interleaves with the traced run and shares its cache.
    occ: Vec<u64>,
    /// Slab of live instances; `None` slots are free.
    instances: Vec<Option<Instance>>,
    free: Vec<u32>,
    /// Live lookup by (object, install base address).
    live: FxHashMap<(ObjectDesc, u32), u32>,
    /// Interned membership lists (see [`EngineCore::intern`]).
    member_lists: Vec<Box<[u32]>>,
    /// Per-instance write stamp + smallest level processed this stamp.
    inst_stamp: Vec<u64>,
    inst_min: Vec<u8>,
    // Per-session accumulators (page-size-independent).
    hits: Vec<u64>,
    installs: Vec<u64>,
    removes: Vec<u64>,
    /// Stamp of the last write that hit the session (hits are
    /// page-size-independent, see module docs).
    last_hit: Vec<u64>,
    /// Stamp of the last write that touched the session at any size,
    /// and the smallest level it was touched at.
    last_touch: Vec<u64>,
    touch_min: Vec<u8>,
    /// Scratch: sessions touched by the current write (reused).
    touched: Vec<u32>,
    total_writes: u64,
    /// Write stamp, pre-incremented per write; 0 is the never-stamped
    /// sentinel.
    stamp: u64,
    /// Scratch: per-size expanded base-page bounds of the current write.
    lo: Vec<u32>,
    hi: Vec<u32>,
}

impl EngineCore {
    /// A core counting at every size in `ladder`, which must be
    /// nonempty and strictly ascending.
    pub(crate) fn new(ladder: &[PageSize]) -> EngineCore {
        assert!(!ladder.is_empty(), "page-size ladder must be nonempty");
        assert!(
            ladder.windows(2).all(|w| w[0].shift() < w[1].shift()),
            "page-size ladder must be strictly ascending"
        );
        let base_shift = ladder[0].shift();
        let n = ladder.len();
        EngineCore {
            base_shift,
            sizes: ladder
                .iter()
                .map(|&ps| SizeState {
                    page_size: ps,
                    page_counts: FxHashMap::default(),
                    apm: Vec::new(),
                    vm_protect: Vec::new(),
                    vm_unprotect: Vec::new(),
                })
                .collect(),
            // Pre-size for the machine's whole data space; traces from
            // real workloads never grow this.
            pages: vec![SlotList::default(); (databp_machine::MEM_SIZE >> base_shift) as usize],
            occ: vec![0; ((databp_machine::MEM_SIZE >> base_shift) as usize).div_ceil(64)],
            instances: Vec::new(),
            free: Vec::new(),
            live: FxHashMap::default(),
            member_lists: Vec::new(),
            inst_stamp: Vec::new(),
            inst_min: Vec::new(),
            hits: Vec::new(),
            installs: Vec::new(),
            removes: Vec::new(),
            last_hit: Vec::new(),
            last_touch: Vec::new(),
            touch_min: Vec::new(),
            touched: Vec::new(),
            total_writes: 0,
            stamp: 0,
            lo: vec![0; n],
            hi: vec![0; n],
        }
    }

    /// Grows every per-session accumulator to cover sessions `0..n`.
    /// New sessions start with zeroed counters and never-stamped
    /// sentinels, which is correct because they could not have been
    /// touched by any event replayed before they existed.
    pub(crate) fn ensure_sessions(&mut self, n: usize) {
        if self.hits.len() >= n {
            return;
        }
        self.hits.resize(n, 0);
        self.installs.resize(n, 0);
        self.removes.resize(n, 0);
        self.last_hit.resize(n, 0);
        self.last_touch.resize(n, 0);
        self.touch_min.resize(n, 0);
        for st in &mut self.sizes {
            st.apm.resize(n, 0);
            st.vm_protect.resize(n, 0);
            st.vm_unprotect.resize(n, 0);
        }
    }

    /// Interns a member-session list, returning its index for
    /// [`EngineCore::install`]. Callers cache per object descriptor —
    /// all instantiations of a local share one descriptor, so this
    /// interns per variable.
    pub(crate) fn intern(&mut self, sessions: &[u32]) -> u32 {
        let i = self.member_lists.len() as u32;
        self.member_lists.push(sessions.into());
        i
    }

    pub(crate) fn install(&mut self, obj: ObjectDesc, ba: u32, ea: u32, members: u32) {
        let EngineCore {
            base_shift,
            sizes,
            pages,
            occ,
            instances,
            free,
            live,
            member_lists,
            inst_stamp,
            inst_min,
            installs,
            ..
        } = self;
        let sessions = &member_lists[members as usize];
        if sessions.is_empty() || ba >= ea {
            return;
        }
        let slot = match free.pop() {
            Some(s) => {
                instances[s as usize] = Some(Instance { ba, ea, members });
                s
            }
            None => {
                instances.push(Some(Instance { ba, ea, members }));
                // Stale stamps in reused slots are harmless: stamps
                // strictly increase, so an old stamp never equals a
                // later write's.
                inst_stamp.push(0);
                inst_min.push(0);
                (instances.len() - 1) as u32
            }
        };
        live.insert((obj, ba), slot);
        for page in (ba >> *base_shift)..=((ea - 1) >> *base_shift) {
            if page as usize >= pages.len() {
                pages.resize(page as usize + 1, SlotList::default());
                occ.resize(pages.len().div_ceil(64), 0);
            }
            pages[page as usize].push(slot);
            occ[(page >> 6) as usize] |= 1u64 << (page & 63);
        }
        for st in sizes.iter_mut() {
            for page in st.page_size.pages_of_range(ba, ea) {
                for &s in sessions.iter() {
                    let cnt = st.page_counts.entry(session_page(s, page)).or_insert(0);
                    *cnt += 1;
                    if *cnt == 1 {
                        st.vm_protect[s as usize] += 1;
                    }
                }
            }
        }
        for &s in sessions.iter() {
            installs[s as usize] += 1;
        }
    }

    pub(crate) fn remove(&mut self, obj: ObjectDesc, ba: u32) {
        let Some(slot) = self.live.remove(&(obj, ba)) else {
            // Object not monitored by any session.
            return;
        };
        let inst = self.instances[slot as usize]
            .take()
            .expect("live slot is occupied");
        self.free.push(slot);
        let sessions = &self.member_lists[inst.members as usize];
        for page in (inst.ba >> self.base_shift)..=((inst.ea - 1) >> self.base_shift) {
            let list = &mut self.pages[page as usize];
            list.swap_remove_value(slot);
            if list.is_empty() {
                self.occ[(page >> 6) as usize] &= !(1u64 << (page & 63));
            }
        }
        for st in &mut self.sizes {
            for page in st.page_size.pages_of_range(inst.ba, inst.ea) {
                for &s in sessions.iter() {
                    let key = session_page(s, page);
                    let cnt = st
                        .page_counts
                        .get_mut(&key)
                        .expect("page count exists for member session");
                    *cnt -= 1;
                    if *cnt == 0 {
                        st.page_counts.remove(&key);
                        st.vm_unprotect[s as usize] += 1;
                    }
                }
            }
        }
        for &s in sessions.iter() {
            self.removes[s as usize] += 1;
        }
    }

    pub(crate) fn write(&mut self, ba: u32, ea: u32) {
        self.total_writes += 1;
        if ba >= ea {
            return;
        }
        self.stamp += 1;
        let stamp = self.stamp;
        let n = self.sizes.len();
        let EngineCore {
            base_shift,
            sizes,
            pages,
            occ,
            instances,
            member_lists,
            inst_stamp,
            inst_min,
            hits,
            last_hit,
            last_touch,
            touch_min,
            touched,
            lo,
            hi,
            ..
        } = self;
        let top_shift = sizes[n - 1].page_size.shift();
        let d_top = top_shift - *base_shift;
        let lo_top = (ba >> top_shift) << d_top;
        let hi_top = (((ea - 1) >> top_shift) << d_top) | ((1u32 << d_top) - 1);
        let mut ranges_ready = false;
        touched.clear();
        // One sweep of the widest range; the level `m` of each base page
        // is the smallest size whose (nested) range contains it. The
        // per-size bounds are only needed once a monitored page turns
        // up — the overwhelmingly common all-empty sweep skips them.
        for page in lo_top..=hi_top {
            let Some(&word) = occ.get((page >> 6) as usize) else {
                break; // the bitmap is contiguous: no monitors this high
            };
            if word & (1u64 << (page & 63)) == 0 {
                continue;
            }
            // A set bit guarantees the page exists and is nonempty.
            let list = &pages[page as usize];
            if !ranges_ready {
                for (k, st) in sizes.iter().enumerate() {
                    let shift = st.page_size.shift();
                    let d = shift - *base_shift;
                    lo[k] = (ba >> shift) << d;
                    hi[k] = (((ea - 1) >> shift) << d) | ((1u32 << d) - 1);
                }
                ranges_ready = true;
            }
            let mut m = 0usize;
            while page < lo[m] || page > hi[m] {
                m += 1;
            }
            for &slot in list.as_slice() {
                let si = slot as usize;
                if inst_stamp[si] == stamp && usize::from(inst_min[si]) <= m {
                    continue; // spans pages; already processed at ≤ this level
                }
                inst_stamp[si] = stamp;
                inst_min[si] = m as u8;
                let inst = instances[si].expect("indexed slot live");
                // Byte overlap implies a shared base page at level 0, so
                // checking only there still finds every hit.
                let overlap = m == 0 && ba < inst.ea && inst.ba < ea;
                for &s in member_lists[inst.members as usize].iter() {
                    let su = s as usize;
                    if last_touch[su] != stamp {
                        last_touch[su] = stamp;
                        touch_min[su] = m as u8;
                        touched.push(s);
                    } else if (m as u8) < touch_min[su] {
                        touch_min[su] = m as u8;
                    }
                    if overlap {
                        last_hit[su] = stamp;
                    }
                }
            }
        }
        for &s in touched.iter() {
            let su = s as usize;
            if last_hit[su] == stamp {
                // Page-size-independent; counted once and suppressing
                // the active-page miss at every size.
                hits[su] += 1;
            } else {
                // Touched at level m ⇒ touched at every coarser size.
                for st in sizes[usize::from(touch_min[su])..].iter_mut() {
                    st.apm[su] += 1;
                }
            }
        }
    }

    /// Per-size, per-session counting variables for sessions `0..n`
    /// (result `[k][s]` is ladder size `k`, session `s`).
    pub(crate) fn counts(&mut self, n: usize) -> Vec<Vec<Counts>> {
        self.ensure_sessions(n);
        self.sizes
            .iter()
            .map(|st| {
                (0..n)
                    .map(|s| Counts {
                        install: self.installs[s],
                        remove: self.removes[s],
                        hit: self.hits[s],
                        miss: self.total_writes - self.hits[s],
                        vm_protect: st.vm_protect[s],
                        vm_unprotect: st.vm_unprotect[s],
                        vm_active_page_miss: st.apm[s],
                    })
                    .collect()
            })
            .collect()
    }
}

/// Replays `trace` once, producing per-session counting variables at the
/// given page size.
///
/// Sessions are identified by index (`0..membership.count()`); see
/// [`Membership`]. `MonitorMissσ` is derived as
/// `total writes − MonitorHitσ`, because the software strategies check
/// every traced write for the whole run.
pub fn simulate<M: Membership>(trace: &Trace, membership: &M, page_size: PageSize) -> Vec<Counts> {
    simulate_sizes(trace, membership, &[page_size])
        .pop()
        .expect("one page size in, one counts vector out")
}

/// The fused dual-page-size replay: one trace walk, counts at both
/// 4 KiB and 8 KiB — exactly the pair the paper's VM-4K / VM-8K columns
/// need, at roughly the cost of a single-size replay.
pub fn simulate_fused<M: Membership>(trace: &Trace, membership: &M) -> (Vec<Counts>, Vec<Counts>) {
    let mut both = simulate_sizes(trace, membership, &[PageSize::K4, PageSize::K8]);
    let c8 = both.pop().expect("8K counts");
    let c4 = both.pop().expect("4K counts");
    (c4, c8)
}

/// Replays `trace` once, producing per-session counting variables for
/// **each** page size in `sizes` (result `[i]` corresponds to
/// `sizes[i]`; duplicates and any ordering are fine — the engine sorts
/// and dedups internally). One replay is one trace walk regardless of
/// how many page sizes are requested.
pub fn simulate_sizes<M: Membership>(
    trace: &Trace,
    membership: &M,
    sizes: &[PageSize],
) -> Vec<Vec<Counts>> {
    if sizes.is_empty() {
        return Vec::new();
    }
    let mut ladder = sizes.to_vec();
    ladder.sort_unstable_by_key(|ps| ps.shift());
    ladder.dedup();
    let mut replay = StreamingReplay::new(FixedMembership::new(membership), &ladder);
    replay.feed(trace.events());
    let (_, counts) = replay.finish();
    sizes
        .iter()
        .map(|ps| {
            let k = ladder
                .iter()
                .position(|l| l == ps)
                .expect("requested size is in the deduped ladder");
            counts[k].clone()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::membership::TableMembership;
    use databp_trace::Event;

    fn g(id: u32) -> ObjectDesc {
        ObjectDesc::Global { id }
    }

    fn write(ba: u32, ea: u32) -> Event {
        Event::Write { pc: 0, ba, ea }
    }

    #[test]
    fn single_session_hit_miss_accounting() {
        let m = TableMembership {
            entries: vec![(g(0), vec![0])],
            sessions: 1,
        };
        let trace = Trace::from_events(vec![
            Event::Install {
                obj: g(0),
                ba: 0x1000,
                ea: 0x1004,
            },
            write(0x1000, 0x1004), // hit
            write(0x2000, 0x2004), // miss (different page)
            write(0x1008, 0x100c), // active-page miss
            Event::Remove {
                obj: g(0),
                ba: 0x1000,
                ea: 0x1004,
            },
            write(0x1000, 0x1004), // after removal: plain miss
        ]);
        let c = simulate(&trace, &m, PageSize::K4);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].hit, 1);
        assert_eq!(c[0].miss, 3);
        assert_eq!(c[0].vm_active_page_miss, 1);
        assert_eq!(c[0].install, 1);
        assert_eq!(c[0].remove, 1);
        assert_eq!(c[0].vm_protect, 1);
        assert_eq!(c[0].vm_unprotect, 1);
    }

    #[test]
    fn page_size_affects_apm() {
        let m = TableMembership {
            entries: vec![(g(0), vec![0])],
            sessions: 1,
        };
        let trace = Trace::from_events(vec![
            // Monitor on 4K page 1 == 8K page 0.
            Event::Install {
                obj: g(0),
                ba: 0x1000,
                ea: 0x1004,
            },
            write(0x1800, 0x1804), // same 4K page and same 8K page
            write(0x0800, 0x0804), // different 4K page, same 8K page
        ]);
        let c4 = simulate(&trace, &m, PageSize::K4);
        let c8 = simulate(&trace, &m, PageSize::K8);
        assert_eq!(c4[0].vm_active_page_miss, 1);
        assert_eq!(c8[0].vm_active_page_miss, 2);
        assert_eq!(c4[0].hit, 0);
        assert_eq!(c4[0].miss, 2);
    }

    #[test]
    fn fused_replay_matches_separate_replays() {
        let m = TableMembership {
            entries: vec![(g(0), vec![0, 1]), (g(1), vec![1]), (g(2), vec![2])],
            sessions: 3,
        };
        let trace = Trace::from_events(vec![
            Event::Install {
                obj: g(0),
                ba: 0x0ff0,
                ea: 0x1010, // spans 4K pages 0–1 (one 8K page)
            },
            Event::Install {
                obj: g(1),
                ba: 0x1ffc,
                ea: 0x2004, // spans 4K pages 1–2 and 8K pages 0–1
            },
            write(0x1000, 0x1004), // hits g(0)
            write(0x1800, 0x1804), // APM at 4K and 8K
            write(0x2800, 0x2804), // APM at 4K (page 2) and 8K (page 1)
            write(0x4000, 0x4004), // plain miss everywhere
            Event::Remove {
                obj: g(0),
                ba: 0x0ff0,
                ea: 0x1010,
            },
            write(0x0ff0, 0x0ff4), // g(0) gone: miss/APM only
            Event::Remove {
                obj: g(1),
                ba: 0x1ffc,
                ea: 0x2004,
            },
        ]);
        let (c4, c8) = simulate_fused(&trace, &m);
        assert_eq!(c4, simulate(&trace, &m, PageSize::K4));
        assert_eq!(c8, simulate(&trace, &m, PageSize::K8));
    }

    #[test]
    fn ladder_matches_separate_replays_and_any_order() {
        let m = TableMembership {
            entries: vec![(g(0), vec![0, 1]), (g(1), vec![1])],
            sessions: 2,
        };
        let trace = Trace::from_events(vec![
            Event::Install {
                obj: g(0),
                ba: 0x0ff0,
                ea: 0x1010,
            },
            Event::Install {
                obj: g(1),
                ba: 0x7ffc,
                ea: 0x8004, // spans 16K pages 1–2, 32K page 0–1
            },
            write(0x1000, 0x1004),
            write(0x3800, 0x3804),   // APM at 16K/32K only for g(0)
            write(0x9000, 0x9004),   // near g(1): APM at coarse sizes
            write(0x20000, 0x20004), // plain miss everywhere
            Event::Remove {
                obj: g(0),
                ba: 0x0ff0,
                ea: 0x1010,
            },
            write(0x0ff0, 0x0ff4),
        ]);
        let ladder = [PageSize::K4, PageSize::K8, PageSize::K16, PageSize::K32];
        let fused = simulate_sizes(&trace, &m, &ladder);
        for (k, &ps) in ladder.iter().enumerate() {
            assert_eq!(fused[k], simulate(&trace, &m, ps), "size {ps}");
        }
        // Order and duplicates in the request don't change the results.
        let shuffled = [PageSize::K32, PageSize::K4, PageSize::K4, PageSize::K16];
        let out = simulate_sizes(&trace, &m, &shuffled);
        assert_eq!(out[0], fused[3]);
        assert_eq!(out[1], fused[0]);
        assert_eq!(out[2], fused[0]);
        assert_eq!(out[3], fused[2]);
    }

    #[test]
    fn one_write_hitting_two_objects_counts_once_per_session() {
        let m = TableMembership {
            entries: vec![(g(0), vec![0]), (g(1), vec![0, 1])],
            sessions: 2,
        };
        let trace = Trace::from_events(vec![
            Event::Install {
                obj: g(0),
                ba: 0x1000,
                ea: 0x1004,
            },
            Event::Install {
                obj: g(1),
                ba: 0x1004,
                ea: 0x1008,
            },
            write(0x1000, 0x1008), // straddles both objects
        ]);
        let c = simulate(&trace, &m, PageSize::K4);
        assert_eq!(c[0].hit, 1, "session 0 hit once despite two member objects");
        assert_eq!(c[1].hit, 1);
    }

    #[test]
    fn hit_suppresses_active_page_miss_for_same_write() {
        let m = TableMembership {
            entries: vec![(g(0), vec![0]), (g(1), vec![0])],
            sessions: 1,
        };
        let trace = Trace::from_events(vec![
            Event::Install {
                obj: g(0),
                ba: 0x1000,
                ea: 0x1004,
            },
            Event::Install {
                obj: g(1),
                ba: 0x1100,
                ea: 0x1104,
            },
            // Hits g(0); also touches g(1)'s page (same page) — counts
            // as a hit, not an APM.
            write(0x1000, 0x1004),
        ]);
        let c = simulate(&trace, &m, PageSize::K4);
        assert_eq!(c[0].hit, 1);
        assert_eq!(c[0].vm_active_page_miss, 0);
    }

    #[test]
    fn fused_hit_suppression_is_per_page_size() {
        // A monitor on 4K page 1; a second monitor on 4K page 0 (same
        // 8K page). A write that hits the second monitor must suppress
        // the APM at both sizes; a near-miss on page 0 is an APM at 4K
        // (page 0 is active) and at 8K too.
        let m = TableMembership {
            entries: vec![(g(0), vec![0]), (g(1), vec![0])],
            sessions: 1,
        };
        let trace = Trace::from_events(vec![
            Event::Install {
                obj: g(0),
                ba: 0x1000,
                ea: 0x1004,
            },
            Event::Install {
                obj: g(1),
                ba: 0x0100,
                ea: 0x0104,
            },
            write(0x0100, 0x0104), // hit on g(1): no APM at either size
            write(0x0200, 0x0204), // APM at both sizes
            write(0x2100, 0x2104), // plain miss at 4K; APM at 8K? no —
                                   // 8K page 1 (0x2000-0x3fff) holds no monitor: plain miss.
        ]);
        let (c4, c8) = simulate_fused(&trace, &m);
        assert_eq!(c4[0].hit, 1);
        assert_eq!(c8[0].hit, 1);
        assert_eq!(c4[0].vm_active_page_miss, 1);
        assert_eq!(c8[0].vm_active_page_miss, 1);
        assert_eq!(c4[0].miss, 2);
        assert_eq!(c8[0].miss, 2);
    }

    #[test]
    fn reinstalled_object_keeps_counting() {
        // Realloc pattern: remove + install of the same descriptor.
        let h = ObjectDesc::Heap { seq: 5 };
        let m = TableMembership {
            entries: vec![(h, vec![0])],
            sessions: 1,
        };
        let trace = Trace::from_events(vec![
            Event::Install {
                obj: h,
                ba: 0x1000,
                ea: 0x1010,
            },
            write(0x1000, 0x1004),
            Event::Remove {
                obj: h,
                ba: 0x1000,
                ea: 0x1010,
            },
            Event::Install {
                obj: h,
                ba: 0x3000,
                ea: 0x3040,
            },
            write(0x3000, 0x3004),
            Event::Remove {
                obj: h,
                ba: 0x3000,
                ea: 0x3040,
            },
        ]);
        let c = simulate(&trace, &m, PageSize::K4);
        assert_eq!(c[0].hit, 2);
        assert_eq!(c[0].install, 2);
        assert_eq!(c[0].remove, 2);
        assert_eq!(c[0].vm_protect, 2);
    }

    #[test]
    fn recursion_instances_tracked_independently() {
        let l = ObjectDesc::Local { func: 1, var: 0 };
        let m = TableMembership {
            entries: vec![(l, vec![0])],
            sessions: 1,
        };
        let trace = Trace::from_events(vec![
            Event::Install {
                obj: l,
                ba: 0xF000,
                ea: 0xF004,
            }, // outer
            Event::Install {
                obj: l,
                ba: 0xE000,
                ea: 0xE004,
            }, // inner
            write(0xE000, 0xE004), // hits inner instance
            Event::Remove {
                obj: l,
                ba: 0xE000,
                ea: 0xE004,
            },
            write(0xE000, 0xE004), // inner gone: miss (different page from outer)
            write(0xF000, 0xF004), // hits outer
            Event::Remove {
                obj: l,
                ba: 0xF000,
                ea: 0xF004,
            },
        ]);
        let c = simulate(&trace, &m, PageSize::K4);
        assert_eq!(c[0].hit, 2);
        assert_eq!(c[0].install, 2);
        assert_eq!(c[0].remove, 2);
        assert_eq!(c[0].miss, 1);
    }

    #[test]
    fn unmonitored_objects_cost_nothing() {
        let m = TableMembership {
            entries: vec![],
            sessions: 1,
        };
        let trace = Trace::from_events(vec![
            Event::Install {
                obj: g(9),
                ba: 0x1000,
                ea: 0x1004,
            },
            write(0x1000, 0x1004),
            Event::Remove {
                obj: g(9),
                ba: 0x1000,
                ea: 0x1004,
            },
        ]);
        let c = simulate(&trace, &m, PageSize::K4);
        assert_eq!(c[0].hit, 0);
        assert_eq!(c[0].miss, 1);
        assert_eq!(c[0].install, 0);
        assert_eq!(c[0].vm_active_page_miss, 0);
    }

    #[test]
    fn overlapping_monitors_page_counts_stay_protected() {
        let m = TableMembership {
            entries: vec![(g(0), vec![0]), (g(1), vec![0])],
            sessions: 1,
        };
        let trace = Trace::from_events(vec![
            Event::Install {
                obj: g(0),
                ba: 0x1000,
                ea: 0x1004,
            },
            Event::Install {
                obj: g(1),
                ba: 0x1004,
                ea: 0x1008,
            },
            Event::Remove {
                obj: g(0),
                ba: 0x1000,
                ea: 0x1004,
            },
            // Page still has g(1): a nearby write is an APM.
            write(0x1800, 0x1804),
            Event::Remove {
                obj: g(1),
                ba: 0x1004,
                ea: 0x1008,
            },
        ]);
        let c = simulate(&trace, &m, PageSize::K4);
        assert_eq!(c[0].vm_protect, 1, "page protected once");
        assert_eq!(
            c[0].vm_unprotect, 1,
            "unprotected only when last monitor left"
        );
        assert_eq!(c[0].vm_active_page_miss, 1);
    }

    #[test]
    fn engine_outputs_are_send() {
        // The parallel pipeline moves counts (and everything the engine
        // produces) across threads; pin that the engine's result type
        // stays Send.
        fn assert_send<T: Send>(_: &T) {}
        let m = TableMembership {
            entries: vec![(g(0), vec![0])],
            sessions: 1,
        };
        let trace = Trace::from_events(vec![Event::Install {
            obj: g(0),
            ba: 0x1000,
            ea: 0x1004,
        }]);
        let out = simulate_fused(&trace, &m);
        assert_send(&out);
    }
}
