//! The one-pass multi-session counting engine.

use crate::membership::Membership;
use databp_machine::PageSize;
use databp_models::Counts;
use databp_trace::{Event, ObjectDesc, Trace};
use std::collections::HashMap;
use std::rc::Rc;

/// A live monitored object instance.
#[derive(Debug, Clone)]
struct Instance {
    ba: u32,
    ea: u32,
    sessions: Rc<[u32]>,
}

struct Engine<'m, M: Membership> {
    membership: &'m M,
    page_size: PageSize,
    /// Slab of live instances; `None` slots are free.
    instances: Vec<Option<Instance>>,
    free: Vec<u32>,
    /// Live lookup by (object, install base address).
    live: HashMap<(ObjectDesc, u32), u32>,
    /// Page -> slab indices of instances overlapping it.
    pages: HashMap<u32, Vec<u32>>,
    /// Cached membership per object descriptor (all instantiations of a
    /// local share one descriptor, so this interns per variable).
    member_cache: HashMap<ObjectDesc, Rc<[u32]>>,
    /// Per (session, page): active member-monitor count.
    page_counts: HashMap<(u32, u32), u32>,
    // Per-session accumulators.
    hits: Vec<u64>,
    installs: Vec<u64>,
    removes: Vec<u64>,
    apm: Vec<u64>,
    vm_protect: Vec<u64>,
    vm_unprotect: Vec<u64>,
    // Event-stamped dedup state.
    last_touch: Vec<u64>,
    last_hit: Vec<u64>,
    inst_stamp: Vec<u64>,
    total_writes: u64,
}

/// Replays `trace` once, producing per-session counting variables at the
/// given page size.
///
/// Sessions are identified by index (`0..membership.count()`); see
/// [`Membership`]. `MonitorMissσ` is derived as
/// `total writes − MonitorHitσ`, because the software strategies check
/// every traced write for the whole run.
pub fn simulate<M: Membership>(trace: &Trace, membership: &M, page_size: PageSize) -> Vec<Counts> {
    let n = membership.count();
    let mut e = Engine {
        membership,
        page_size,
        instances: Vec::new(),
        free: Vec::new(),
        live: HashMap::new(),
        pages: HashMap::new(),
        member_cache: HashMap::new(),
        page_counts: HashMap::new(),
        hits: vec![0; n],
        installs: vec![0; n],
        removes: vec![0; n],
        apm: vec![0; n],
        vm_protect: vec![0; n],
        vm_unprotect: vec![0; n],
        last_touch: vec![u64::MAX; n],
        last_hit: vec![u64::MAX; n],
        inst_stamp: Vec::new(),
        total_writes: 0,
    };
    let _replay_timer = databp_telemetry::time!("sim.replay");
    databp_telemetry::count!("sim.replays");
    databp_telemetry::count!("sim.sessions.simulated", n as u64);
    databp_telemetry::count!("sim.events.replayed", trace.events().len() as u64);
    let mut scratch = Vec::new();
    for (idx, ev) in trace.events().iter().enumerate() {
        let stamp = idx as u64;
        match *ev {
            Event::Install { obj, ba, ea } => e.install(obj, ba, ea, &mut scratch),
            Event::Remove { obj, ba, .. } => e.remove(obj, ba),
            Event::Write { ba, ea, .. } => e.write(ba, ea, stamp, &mut scratch),
            Event::Enter { .. } | Event::Exit { .. } => {}
        }
    }
    (0..n)
        .map(|s| Counts {
            install: e.installs[s],
            remove: e.removes[s],
            hit: e.hits[s],
            miss: e.total_writes - e.hits[s],
            vm_protect: e.vm_protect[s],
            vm_unprotect: e.vm_unprotect[s],
            vm_active_page_miss: e.apm[s],
        })
        .collect()
}

impl<'m, M: Membership> Engine<'m, M> {
    fn members(&mut self, obj: &ObjectDesc, scratch: &mut Vec<u32>) -> Rc<[u32]> {
        if let Some(m) = self.member_cache.get(obj) {
            return Rc::clone(m);
        }
        self.membership.sessions_of(obj, scratch);
        let rc: Rc<[u32]> = Rc::from(scratch.as_slice());
        self.member_cache.insert(*obj, Rc::clone(&rc));
        rc
    }

    fn install(&mut self, obj: ObjectDesc, ba: u32, ea: u32, scratch: &mut Vec<u32>) {
        let sessions = self.members(&obj, scratch);
        if sessions.is_empty() || ba >= ea {
            return;
        }
        let slot = match self.free.pop() {
            Some(s) => {
                self.instances[s as usize] = Some(Instance {
                    ba,
                    ea,
                    sessions: Rc::clone(&sessions),
                });
                s
            }
            None => {
                self.instances.push(Some(Instance {
                    ba,
                    ea,
                    sessions: Rc::clone(&sessions),
                }));
                self.inst_stamp.push(u64::MAX);
                (self.instances.len() - 1) as u32
            }
        };
        self.live.insert((obj, ba), slot);
        for page in self.page_size.pages_of_range(ba, ea) {
            self.pages.entry(page).or_default().push(slot);
            for &s in sessions.iter() {
                let cnt = self.page_counts.entry((s, page)).or_insert(0);
                *cnt += 1;
                if *cnt == 1 {
                    self.vm_protect[s as usize] += 1;
                }
            }
        }
        for &s in sessions.iter() {
            self.installs[s as usize] += 1;
        }
    }

    fn remove(&mut self, obj: ObjectDesc, ba: u32) {
        let Some(slot) = self.live.remove(&(obj, ba)) else {
            // Object not monitored by any session.
            return;
        };
        let inst = self.instances[slot as usize]
            .take()
            .expect("live slot is occupied");
        self.free.push(slot);
        for page in self.page_size.pages_of_range(inst.ba, inst.ea) {
            let list = self.pages.get_mut(&page).expect("instance was indexed");
            let pos = list
                .iter()
                .position(|&x| x == slot)
                .expect("slot in page list");
            list.swap_remove(pos);
            if list.is_empty() {
                self.pages.remove(&page);
            }
            for &s in inst.sessions.iter() {
                let cnt = self
                    .page_counts
                    .get_mut(&(s, page))
                    .expect("page count exists for member session");
                *cnt -= 1;
                if *cnt == 0 {
                    self.page_counts.remove(&(s, page));
                    self.vm_unprotect[s as usize] += 1;
                }
            }
        }
        for &s in inst.sessions.iter() {
            self.removes[s as usize] += 1;
        }
    }

    fn write(&mut self, ba: u32, ea: u32, stamp: u64, touched: &mut Vec<u32>) {
        self.total_writes += 1;
        if ba >= ea {
            return;
        }
        touched.clear();
        for page in self.page_size.pages_of_range(ba, ea) {
            let Some(list) = self.pages.get(&page) else {
                continue;
            };
            for &slot in list {
                if self.inst_stamp[slot as usize] == stamp {
                    continue; // instance spans pages; already processed
                }
                self.inst_stamp[slot as usize] = stamp;
                let inst = self.instances[slot as usize]
                    .as_ref()
                    .expect("indexed slot live");
                let overlap = ba < inst.ea && inst.ba < ea;
                for &s in inst.sessions.iter() {
                    if self.last_touch[s as usize] != stamp {
                        self.last_touch[s as usize] = stamp;
                        touched.push(s);
                    }
                    if overlap {
                        self.last_hit[s as usize] = stamp;
                    }
                }
            }
        }
        for &s in touched.iter() {
            if self.last_hit[s as usize] == stamp {
                self.hits[s as usize] += 1;
            } else {
                self.apm[s as usize] += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::membership::TableMembership;

    fn g(id: u32) -> ObjectDesc {
        ObjectDesc::Global { id }
    }

    fn write(ba: u32, ea: u32) -> Event {
        Event::Write { pc: 0, ba, ea }
    }

    #[test]
    fn single_session_hit_miss_accounting() {
        let m = TableMembership {
            entries: vec![(g(0), vec![0])],
            sessions: 1,
        };
        let trace = Trace::from_events(vec![
            Event::Install {
                obj: g(0),
                ba: 0x1000,
                ea: 0x1004,
            },
            write(0x1000, 0x1004), // hit
            write(0x2000, 0x2004), // miss (different page)
            write(0x1008, 0x100c), // active-page miss
            Event::Remove {
                obj: g(0),
                ba: 0x1000,
                ea: 0x1004,
            },
            write(0x1000, 0x1004), // after removal: plain miss
        ]);
        let c = simulate(&trace, &m, PageSize::K4);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].hit, 1);
        assert_eq!(c[0].miss, 3);
        assert_eq!(c[0].vm_active_page_miss, 1);
        assert_eq!(c[0].install, 1);
        assert_eq!(c[0].remove, 1);
        assert_eq!(c[0].vm_protect, 1);
        assert_eq!(c[0].vm_unprotect, 1);
    }

    #[test]
    fn page_size_affects_apm() {
        let m = TableMembership {
            entries: vec![(g(0), vec![0])],
            sessions: 1,
        };
        let trace = Trace::from_events(vec![
            // Monitor on 4K page 1 == 8K page 0.
            Event::Install {
                obj: g(0),
                ba: 0x1000,
                ea: 0x1004,
            },
            write(0x1800, 0x1804), // same 4K page and same 8K page
            write(0x0800, 0x0804), // different 4K page, same 8K page
        ]);
        let c4 = simulate(&trace, &m, PageSize::K4);
        let c8 = simulate(&trace, &m, PageSize::K8);
        assert_eq!(c4[0].vm_active_page_miss, 1);
        assert_eq!(c8[0].vm_active_page_miss, 2);
        assert_eq!(c4[0].hit, 0);
        assert_eq!(c4[0].miss, 2);
    }

    #[test]
    fn one_write_hitting_two_objects_counts_once_per_session() {
        let m = TableMembership {
            entries: vec![(g(0), vec![0]), (g(1), vec![0, 1])],
            sessions: 2,
        };
        let trace = Trace::from_events(vec![
            Event::Install {
                obj: g(0),
                ba: 0x1000,
                ea: 0x1004,
            },
            Event::Install {
                obj: g(1),
                ba: 0x1004,
                ea: 0x1008,
            },
            write(0x1000, 0x1008), // straddles both objects
        ]);
        let c = simulate(&trace, &m, PageSize::K4);
        assert_eq!(c[0].hit, 1, "session 0 hit once despite two member objects");
        assert_eq!(c[1].hit, 1);
    }

    #[test]
    fn hit_suppresses_active_page_miss_for_same_write() {
        let m = TableMembership {
            entries: vec![(g(0), vec![0]), (g(1), vec![0])],
            sessions: 1,
        };
        let trace = Trace::from_events(vec![
            Event::Install {
                obj: g(0),
                ba: 0x1000,
                ea: 0x1004,
            },
            Event::Install {
                obj: g(1),
                ba: 0x1100,
                ea: 0x1104,
            },
            // Hits g(0); also touches g(1)'s page (same page) — counts
            // as a hit, not an APM.
            write(0x1000, 0x1004),
        ]);
        let c = simulate(&trace, &m, PageSize::K4);
        assert_eq!(c[0].hit, 1);
        assert_eq!(c[0].vm_active_page_miss, 0);
    }

    #[test]
    fn reinstalled_object_keeps_counting() {
        // Realloc pattern: remove + install of the same descriptor.
        let h = ObjectDesc::Heap { seq: 5 };
        let m = TableMembership {
            entries: vec![(h, vec![0])],
            sessions: 1,
        };
        let trace = Trace::from_events(vec![
            Event::Install {
                obj: h,
                ba: 0x1000,
                ea: 0x1010,
            },
            write(0x1000, 0x1004),
            Event::Remove {
                obj: h,
                ba: 0x1000,
                ea: 0x1010,
            },
            Event::Install {
                obj: h,
                ba: 0x3000,
                ea: 0x3040,
            },
            write(0x3000, 0x3004),
            Event::Remove {
                obj: h,
                ba: 0x3000,
                ea: 0x3040,
            },
        ]);
        let c = simulate(&trace, &m, PageSize::K4);
        assert_eq!(c[0].hit, 2);
        assert_eq!(c[0].install, 2);
        assert_eq!(c[0].remove, 2);
        assert_eq!(c[0].vm_protect, 2);
    }

    #[test]
    fn recursion_instances_tracked_independently() {
        let l = ObjectDesc::Local { func: 1, var: 0 };
        let m = TableMembership {
            entries: vec![(l, vec![0])],
            sessions: 1,
        };
        let trace = Trace::from_events(vec![
            Event::Install {
                obj: l,
                ba: 0xF000,
                ea: 0xF004,
            }, // outer
            Event::Install {
                obj: l,
                ba: 0xE000,
                ea: 0xE004,
            }, // inner
            write(0xE000, 0xE004), // hits inner instance
            Event::Remove {
                obj: l,
                ba: 0xE000,
                ea: 0xE004,
            },
            write(0xE000, 0xE004), // inner gone: miss (different page from outer)
            write(0xF000, 0xF004), // hits outer
            Event::Remove {
                obj: l,
                ba: 0xF000,
                ea: 0xF004,
            },
        ]);
        let c = simulate(&trace, &m, PageSize::K4);
        assert_eq!(c[0].hit, 2);
        assert_eq!(c[0].install, 2);
        assert_eq!(c[0].remove, 2);
        assert_eq!(c[0].miss, 1);
    }

    #[test]
    fn unmonitored_objects_cost_nothing() {
        let m = TableMembership {
            entries: vec![],
            sessions: 1,
        };
        let trace = Trace::from_events(vec![
            Event::Install {
                obj: g(9),
                ba: 0x1000,
                ea: 0x1004,
            },
            write(0x1000, 0x1004),
            Event::Remove {
                obj: g(9),
                ba: 0x1000,
                ea: 0x1004,
            },
        ]);
        let c = simulate(&trace, &m, PageSize::K4);
        assert_eq!(c[0].hit, 0);
        assert_eq!(c[0].miss, 1);
        assert_eq!(c[0].install, 0);
        assert_eq!(c[0].vm_active_page_miss, 0);
    }

    #[test]
    fn overlapping_monitors_page_counts_stay_protected() {
        let m = TableMembership {
            entries: vec![(g(0), vec![0]), (g(1), vec![0])],
            sessions: 1,
        };
        let trace = Trace::from_events(vec![
            Event::Install {
                obj: g(0),
                ba: 0x1000,
                ea: 0x1004,
            },
            Event::Install {
                obj: g(1),
                ba: 0x1004,
                ea: 0x1008,
            },
            Event::Remove {
                obj: g(0),
                ba: 0x1000,
                ea: 0x1004,
            },
            // Page still has g(1): a nearby write is an APM.
            write(0x1800, 0x1804),
            Event::Remove {
                obj: g(1),
                ba: 0x1004,
                ea: 0x1008,
            },
        ]);
        let c = simulate(&trace, &m, PageSize::K4);
        assert_eq!(c[0].vm_protect, 1, "page protected once");
        assert_eq!(
            c[0].vm_unprotect, 1,
            "unprotected only when last monitor left"
        );
        assert_eq!(c[0].vm_active_page_miss, 1);
    }
}
