//! Pins the fused ladder's headline property end to end: simulating a
//! four-size page ladder costs exactly one trace walk (observed through
//! the telemetry counters, not inferred from the implementation) while
//! every size's counters still match the naive per-session oracle.
//!
//! Lives in its own integration-test binary because the telemetry
//! registry is process-global: lib tests run replays concurrently and
//! would perturb the counters.

use databp_machine::PageSize;
use databp_sim::{simulate_naive, simulate_sizes, Membership, TableMembership};
use databp_trace::{Event, ObjectDesc, Trace};

fn g(id: u32) -> ObjectDesc {
    ObjectDesc::Global { id }
}

fn write(ba: u32, ea: u32) -> Event {
    Event::Write {
        pc: 0,
        ba,
        ea,
        value: 0,
        old: 0,
    }
}

#[test]
fn four_size_ladder_is_one_trace_walk_and_matches_oracle() {
    let membership = TableMembership::new(
        vec![(g(0), vec![0, 1]), (g(1), vec![1]), (g(2), vec![2])],
        3,
    );
    let trace = Trace::from_events(vec![
        Event::Install {
            obj: g(0),
            ba: 0x0ff0,
            ea: 0x1010,
        },
        Event::Install {
            obj: g(1),
            ba: 0x7ffc,
            ea: 0x8004,
        },
        Event::Install {
            obj: g(2),
            ba: 0x2_0000,
            ea: 0x2_0040,
        },
        write(0x1000, 0x1004),
        write(0x3800, 0x3804),
        write(0x9000, 0x9004),
        write(0x2_0000, 0x2_0004),
        write(0x4_0000, 0x4_0004),
        Event::Remove {
            obj: g(0),
            ba: 0x0ff0,
            ea: 0x1010,
        },
        write(0x0ff0, 0x0ff4),
        Event::Remove {
            obj: g(1),
            ba: 0x7ffc,
            ea: 0x8004,
        },
        Event::Remove {
            obj: g(2),
            ba: 0x2_0000,
            ea: 0x2_0040,
        },
    ]);

    databp_telemetry::set_enabled(true);
    databp_telemetry::global().reset();
    let ladder = [PageSize::K4, PageSize::K8, PageSize::K16, PageSize::K32];
    let fused = simulate_sizes(&trace, &membership, &ladder);
    let snap = databp_telemetry::global().snapshot();
    databp_telemetry::set_enabled(false);

    assert_eq!(
        snap.counter("sim.trace_walks"),
        Some(1),
        "four page sizes must share a single trace walk"
    );
    assert_eq!(snap.counter("sim.replays"), Some(1));
    assert_eq!(snap.counter("sim.page_sizes.fused"), Some(4));
    assert_eq!(
        snap.counter("sim.events.replayed"),
        Some(trace.events().len() as u64)
    );

    for (k, &ps) in ladder.iter().enumerate() {
        for s in 0..membership.count() as u32 {
            assert_eq!(
                fused[k][s as usize],
                simulate_naive(&trace, &membership, ps, s),
                "session {s} diverges from the oracle at page size {ps}"
            );
        }
    }
}
