//! Property test: randomly generated *programs* (statements, loops,
//! branches, calls) behave identically compiled and interpreted.
//!
//! Complements `expr_fuzz` (pure expressions) with control flow: nested
//! loops with bounded trip counts, `if`/`else`, `break`/`continue`,
//! helper-function calls, and global/local mutation.

use databp_machine::{Machine, NoHooks};
use databp_tinyc::{compile, interpret, lower, Options};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum S {
    AssignLocal(u8, E),
    AssignGlobal(u8, E),
    Print(E),
    If(E, Vec<S>, Vec<S>),
    /// Bounded loop: `for (li = 0; li < k; li = li + 1) body` over a
    /// dedicated counter so it always terminates.
    Loop(u8, Vec<S>),
    BreakIf(E),
    ContinueIf(E),
    CallHelper(E),
}

#[derive(Debug, Clone)]
enum E {
    K(i32),
    Local(u8),
    Global(u8),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Lt(Box<E>, Box<E>),
    And(Box<E>, Box<E>),
}

impl E {
    fn render(&self, out: &mut String) {
        match self {
            E::K(v) => out.push_str(&format!("({v})")),
            E::Local(i) => out.push_str(&format!("v{}", i % 3)),
            E::Global(i) => out.push_str(&format!("g{}", i % 3)),
            E::Add(a, b) => bin(out, a, "+", b),
            E::Sub(a, b) => bin(out, a, "-", b),
            E::Mul(a, b) => bin(out, a, "*", b),
            E::Lt(a, b) => bin(out, a, "<", b),
            E::And(a, b) => bin(out, a, "&&", b),
        }
    }
}

fn bin(out: &mut String, a: &E, op: &str, b: &E) {
    out.push('(');
    a.render(out);
    out.push_str(op);
    b.render(out);
    out.push(')');
}

fn render_stmts(stmts: &[S], depth: usize, loop_depth: usize, out: &mut String) {
    let pad = "    ".repeat(depth + 1);
    for s in stmts {
        match s {
            S::AssignLocal(i, e) => {
                out.push_str(&format!("{pad}v{} = ", i % 3));
                e.render(out);
                out.push_str(";\n");
            }
            S::AssignGlobal(i, e) => {
                out.push_str(&format!("{pad}g{} = ", i % 3));
                e.render(out);
                out.push_str(";\n");
            }
            S::Print(e) => {
                out.push_str(&format!("{pad}print_int("));
                e.render(out);
                out.push_str(");\n");
            }
            S::If(c, t, f) => {
                out.push_str(&format!("{pad}if ("));
                c.render(out);
                out.push_str(") {\n");
                render_stmts(t, depth + 1, loop_depth, out);
                out.push_str(&format!("{pad}}} else {{\n"));
                render_stmts(f, depth + 1, loop_depth, out);
                out.push_str(&format!("{pad}}}\n"));
            }
            S::Loop(k, body) => {
                let li = format!("li{depth}");
                out.push_str(&format!(
                    "{pad}for ({li} = 0; {li} < {}; {li} = {li} + 1) {{\n",
                    k % 5 + 1
                ));
                render_stmts(body, depth + 1, loop_depth + 1, out);
                out.push_str(&format!("{pad}}}\n"));
            }
            S::BreakIf(c) => {
                if loop_depth > 0 {
                    out.push_str(&format!("{pad}if ("));
                    c.render(out);
                    out.push_str(") break;\n");
                }
            }
            S::ContinueIf(c) => {
                if loop_depth > 0 {
                    out.push_str(&format!("{pad}if ("));
                    c.render(out);
                    out.push_str(") continue;\n");
                }
            }
            S::CallHelper(e) => {
                out.push_str(&format!("{pad}g0 = helper("));
                e.render(out);
                out.push_str(");\n");
            }
        }
    }
}

fn arb_expr() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![
        (-50i32..50).prop_map(E::K),
        (0u8..3).prop_map(E::Local),
        (0u8..3).prop_map(E::Global),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Lt(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::And(Box::new(a), Box::new(b))),
        ]
    })
}

fn arb_stmt() -> impl Strategy<Value = S> {
    let leaf = prop_oneof![
        (0u8..3, arb_expr()).prop_map(|(i, e)| S::AssignLocal(i, e)),
        (0u8..3, arb_expr()).prop_map(|(i, e)| S::AssignGlobal(i, e)),
        arb_expr().prop_map(S::Print),
        arb_expr().prop_map(S::BreakIf),
        arb_expr().prop_map(S::ContinueIf),
        arb_expr().prop_map(S::CallHelper),
    ];
    leaf.prop_recursive(3, 40, 4, |inner| {
        prop_oneof![
            (
                arb_expr(),
                prop::collection::vec(inner.clone(), 0..4),
                prop::collection::vec(inner.clone(), 0..3)
            )
                .prop_map(|(c, t, f)| S::If(c, t, f)),
            (0u8..5, prop::collection::vec(inner.clone(), 1..4)).prop_map(|(k, b)| S::Loop(k, b)),
        ]
    })
}

fn render_program(stmts: &[S]) -> String {
    let mut body = String::new();
    render_stmts(stmts, 0, 0, &mut body);
    format!(
        "int g0; int g1; int g2;\n\
         int helper(int x) {{ return x * 2 - g1; }}\n\
         int main() {{\n    \
             int v0; int v1; int v2;\n    \
             int li0; int li1; int li2; int li3; int li4;\n    \
             v0 = 3; v1 = -7; v2 = 11;\n\
         {body}    \
             print_int(g0 + g1 + g2 + v0 + v1 + v2);\n    \
             return 0;\n\
         }}\n"
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn compiled_program_matches_interpreter(stmts in prop::collection::vec(arb_stmt(), 1..10)) {
        let src = render_program(&stmts);
        let hir = lower(&src).expect("generated program must compile");
        let oracle = interpret(&hir, &[], 50_000_000).expect("interp");
        for opts in [Options::plain(), Options::codepatch(), Options::codepatch_loopopt()] {
            let compiled = compile(&src, &opts).unwrap();
            let mut m = Machine::new();
            m.load(&compiled.program);
            m.run(&mut NoHooks, 50_000_000).expect("machine");
            prop_assert_eq!(
                m.output(), &oracle.output[..],
                "divergence under {:?} for program:\n{}", opts, src
            );
            prop_assert_eq!(m.exit_code(), oracle.exit_code);
        }
    }
}
