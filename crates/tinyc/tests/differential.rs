//! Differential tests: compiled execution vs. the reference interpreter.
//!
//! Because the interpreter mirrors the machine's address-space layout and
//! heap allocator, output, exit code, and even printed pointer-derived
//! values must match exactly, for every compilation mode.

use databp_machine::{Machine, NoHooks, StopReason};
use databp_tinyc::{compile, interpret, lower, Options};

fn machine_run(src: &str, args: &[i32], opts: &Options) -> (Vec<u8>, i32) {
    let compiled = compile(src, opts).expect("compile error");
    let mut m = Machine::new();
    m.load(&compiled.program);
    m.set_args(args.to_vec());
    assert_eq!(
        m.run(&mut NoHooks, 100_000_000).expect("machine error"),
        StopReason::Halted
    );
    (m.take_output(), m.exit_code())
}

fn check_differential(src: &str, args: &[i32]) {
    let hir = lower(src).expect("compile error");
    let oracle = interpret(&hir, args, 200_000_000).expect("interp error");
    for opts in [
        Options::plain(),
        Options::codepatch(),
        Options::codepatch_loopopt(),
    ] {
        let (out, code) = machine_run(src, args, &opts);
        assert_eq!(
            out,
            oracle.output,
            "output mismatch under {opts:?}\nmachine: {}\ninterp:  {}",
            String::from_utf8_lossy(&out),
            String::from_utf8_lossy(&oracle.output),
        );
        assert_eq!(code, oracle.exit_code, "exit code mismatch under {opts:?}");
    }
}

#[test]
fn diff_sieve_of_eratosthenes() {
    check_differential(
        r#"
        int flags[200];
        int main() {
            int i; int j; int count;
            count = 0;
            for (i = 2; i < 200; i = i + 1) flags[i] = 1;
            for (i = 2; i < 200; i = i + 1) {
                if (flags[i]) {
                    count = count + 1;
                    for (j = i + i; j < 200; j = j + i) flags[j] = 0;
                }
            }
            print_int(count);
            return count;
        }
        "#,
        &[],
    );
}

#[test]
fn diff_linked_list_with_heap_churn() {
    check_differential(
        r#"
        struct Node { int val; struct Node *next; };
        struct Node *push(struct Node *head, int v) {
            struct Node *n;
            n = (struct Node*)malloc(sizeof(struct Node));
            n->val = v;
            n->next = head;
            return n;
        }
        int main() {
            struct Node *head;
            struct Node *p;
            struct Node *q;
            int i; int sum;
            head = (struct Node*)0;
            for (i = 1; i <= 50; i = i + 1) head = push(head, i);
            sum = 0;
            p = head;
            while (p != (struct Node*)0) {
                sum = sum + p->val;
                q = p->next;
                free((char*)p);
                p = q;
            }
            print_int(sum);
            return 0;
        }
        "#,
        &[],
    );
}

#[test]
fn diff_string_processing() {
    check_differential(
        r#"
        char buf[64];
        int length(char *s) {
            int n;
            n = 0;
            while (s[n]) n = n + 1;
            return n;
        }
        void reverse(char *s) {
            int i; int j; char t;
            i = 0;
            j = length(s) - 1;
            while (i < j) {
                t = s[i]; s[i] = s[j]; s[j] = t;
                i = i + 1; j = j - 1;
            }
        }
        void copy(char *dst, char *src) {
            int i;
            i = 0;
            while (src[i]) { dst[i] = src[i]; i = i + 1; }
            dst[i] = '\0';
        }
        int main() {
            copy(buf, "data breakpoints");
            reverse(buf);
            print_str(buf);
            print_char('\n');
            print_int(length(buf));
            return 0;
        }
        "#,
        &[],
    );
}

#[test]
fn diff_matrix_multiply_fixed_point() {
    check_differential(
        r#"
        int a[16];
        int b[16];
        int c[16];
        int main() {
            int i; int j; int k; int acc;
            for (i = 0; i < 16; i = i + 1) { a[i] = i * 3 - 7; b[i] = 11 - i; }
            for (i = 0; i < 4; i = i + 1) {
                for (j = 0; j < 4; j = j + 1) {
                    acc = 0;
                    for (k = 0; k < 4; k = k + 1) {
                        acc = acc + a[i * 4 + k] * b[k * 4 + j];
                    }
                    c[i * 4 + j] = acc;
                }
            }
            for (i = 0; i < 16; i = i + 1) print_int(c[i]);
            return 0;
        }
        "#,
        &[],
    );
}

#[test]
fn diff_recursive_quicksort_on_heap_array() {
    check_differential(
        r#"
        void qsort_ints(int *a, int lo, int hi) {
            int p; int i; int j; int t;
            if (lo >= hi) return;
            p = a[(lo + hi) / 2];
            i = lo; j = hi;
            while (i <= j) {
                while (a[i] < p) i = i + 1;
                while (a[j] > p) j = j - 1;
                if (i <= j) {
                    t = a[i]; a[i] = a[j]; a[j] = t;
                    i = i + 1; j = j - 1;
                }
            }
            qsort_ints(a, lo, j);
            qsort_ints(a, i, hi);
        }
        int main() {
            int *a;
            int i; int seed;
            a = (int*)malloc(100 * sizeof(int));
            seed = 12345;
            for (i = 0; i < 100; i = i + 1) {
                seed = seed * 1103515245 + 12345;
                a[i] = (seed >> 16) % 1000;
            }
            qsort_ints(a, 0, 99);
            for (i = 0; i < 100; i = i + 10) print_int(a[i]);
            for (i = 1; i < 100; i = i + 1) {
                if (a[i - 1] > a[i]) { print_str("UNSORTED\n"); return 1; }
            }
            free((char*)a);
            return 0;
        }
        "#,
        &[],
    );
}

#[test]
fn diff_static_counters_and_args() {
    check_differential(
        r#"
        int visit() { static int n; n = n + 1; return n; }
        int main() {
            int i;
            for (i = 0; i < arg(0); i = i + 1) visit();
            print_int(visit());
            return arg(1);
        }
        "#,
        &[7, 3],
    );
}

#[test]
fn diff_realloc_growth_pattern() {
    check_differential(
        r#"
        int main() {
            int *v;
            int cap; int len; int i; int sum;
            cap = 4; len = 0;
            v = (int*)malloc(cap * sizeof(int));
            for (i = 0; i < 100; i = i + 1) {
                if (len == cap) {
                    cap = cap * 2;
                    v = (int*)realloc((char*)v, cap * sizeof(int));
                }
                v[len] = i * i;
                len = len + 1;
            }
            sum = 0;
            for (i = 0; i < len; i = i + 1) sum = sum + v[i];
            print_int(sum);
            print_int(cap);
            free((char*)v);
            return 0;
        }
        "#,
        &[],
    );
}

#[test]
fn diff_char_int_mixing_and_shifts() {
    check_differential(
        r#"
        int main() {
            char c;
            int i;
            int h;
            h = 0;
            for (i = 0; i < 26; i = i + 1) {
                c = 'a' + i;
                h = ((h << 5) - h + c) % 1000003;
                if (h < 0) h = h + 1000003;
            }
            print_int(h);
            return 0;
        }
        "#,
        &[],
    );
}

#[test]
fn diff_pointer_to_pointer_and_addressing() {
    check_differential(
        r#"
        int main() {
            int x; int y;
            int *p;
            int **pp;
            x = 10; y = 20;
            p = &x;
            pp = &p;
            **pp = 99;
            print_int(x);
            *pp = &y;
            **pp = 77;
            print_int(y);
            print_int(*&x);
            return 0;
        }
        "#,
        &[],
    );
}

#[test]
fn diff_eight_puzzle_style_search_step() {
    // A miniature of the BPS workload's inner loop: grid moves + scoring.
    check_differential(
        r#"
        int grid[9];
        int dist(int pos, int val) {
            int r1; int c1; int r2; int c2; int d;
            if (val == 0) return 0;
            r1 = pos / 3; c1 = pos % 3;
            r2 = (val - 1) / 3; c2 = (val - 1) % 3;
            d = r1 - r2; if (d < 0) d = -d;
            r1 = c1 - c2; if (r1 < 0) r1 = -r1;
            return d + r1;
        }
        int score() {
            int i; int s;
            s = 0;
            for (i = 0; i < 9; i = i + 1) s = s + dist(i, grid[i]);
            return s;
        }
        int main() {
            int i; int t; int best;
            for (i = 0; i < 9; i = i + 1) grid[i] = (i * 7 + 3) % 9;
            best = score();
            for (i = 0; i < 8; i = i + 1) {
                t = grid[i]; grid[i] = grid[i + 1]; grid[i + 1] = t;
                if (score() < best) best = score();
            }
            print_int(best);
            return 0;
        }
        "#,
        &[],
    );
}
