//! Code-generation boundary conditions: immediate ranges, frame sizes,
//! temporary-register pressure, deep control nesting, and far globals.

use databp_machine::{Machine, NoHooks, StopReason};
use databp_tinyc::{compile, interpret, lower, Options};

fn run(src: &str, args: &[i32]) -> (Vec<u8>, i32) {
    let compiled = compile(src, &Options::codepatch()).expect("compiles");
    let mut m = Machine::new();
    m.load(&compiled.program);
    m.set_args(args.to_vec());
    assert_eq!(
        m.run(&mut NoHooks, 200_000_000).unwrap(),
        StopReason::Halted
    );
    (m.take_output(), m.exit_code())
}

fn check_against_interp(src: &str, args: &[i32]) {
    let hir = lower(src).unwrap();
    let oracle = interpret(&hir, args, 400_000_000).unwrap();
    let (out, code) = run(src, args);
    assert_eq!(out, oracle.output);
    assert_eq!(code, oracle.exit_code);
}

#[test]
fn large_local_array_pushes_frame_offsets_past_byte_range() {
    // 6000-byte array: frame offsets exceed i8 but stay within i16.
    check_against_interp(
        r#"
        int main() {
            int big[1500];
            int i; int sum;
            for (i = 0; i < 1500; i = i + 1) big[i] = i;
            sum = 0;
            for (i = 0; i < 1500; i = i + 1) sum = sum + big[i];
            print_int(sum);
            return 0;
        }
        "#,
        &[],
    );
}

#[test]
fn global_beyond_64k_uses_wide_addressing() {
    // A 70 000-byte global pushes later globals past the 16-bit offset
    // range from DATA_BASE; lui/ori addressing must cope.
    check_against_interp(
        r#"
        int pad[17500];
        int far_global;
        int main() {
            pad[17499] = 123;
            far_global = pad[17499] * 2;
            print_int(far_global);
            return 0;
        }
        "#,
        &[],
    );
}

#[test]
fn expression_near_temp_register_limit() {
    // A right-leaning chain keeps depth low, a left-leaning parenthesized
    // tower pushes it up; 12 nested levels stay within the 16 temps.
    check_against_interp(
        r#"
        int main() {
            int r;
            r = (1 + (2 + (3 + (4 + (5 + (6 + (7 + (8 + (9 + (10 + (11 + 12)))))))))));
            print_int(r);
            r = ((((((((((1 + 2) * 3) - 4) + 5) * 6) - 7) + 8) * 9) - 10) + 11);
            print_int(r);
            return 0;
        }
        "#,
        &[],
    );
}

#[test]
#[should_panic(expected = "expression too deep")]
fn pathological_expression_depth_is_a_clean_panic() {
    // Calls force each argument to occupy a temp while siblings evaluate;
    // nesting calls 20 deep exceeds the evaluation stack. The compiler
    // must fail loudly, not generate wrong code.
    let mut inner = "1".to_string();
    for _ in 0..20 {
        inner = format!("f(1 + f(1 + {inner}))");
    }
    let src = format!(
        "int f(int x) {{ return x; }} int main() {{ return {inner} + f(2) + f(3) + f(4); }}"
    );
    let _ = compile(&src, &Options::plain());
}

#[test]
fn deep_statement_nesting() {
    let mut body = "acc = acc + 1;".to_string();
    for d in 0..40 {
        body = format!("if (acc >= {d}) {{ {body} }}");
    }
    let src = format!("int main() {{ int acc; acc = 0; {body} print_int(acc); return 0; }}");
    check_against_interp(&src, &[]);
}

#[test]
fn nested_loops_with_breaks_target_correct_levels() {
    check_against_interp(
        r#"
        int main() {
            int i; int j; int k; int count;
            count = 0;
            for (i = 0; i < 5; i = i + 1) {
                for (j = 0; j < 5; j = j + 1) {
                    if (j == 3) break;
                    for (k = 0; k < 5; k = k + 1) {
                        if (k == i) continue;
                        if (k == 4) break;
                        count = count + 1;
                    }
                }
            }
            print_int(count);
            return 0;
        }
        "#,
        &[],
    );
}

#[test]
fn i16_immediate_boundaries_in_constants() {
    check_against_interp(
        r#"
        int main() {
            print_int(32767);
            print_int(-32768);
            print_int(32768);
            print_int(-32769);
            print_int(65536);
            print_int(-2147483647 - 1);
            return 0;
        }
        "#,
        &[],
    );
}

#[test]
fn recursion_to_moderate_depth_with_frame_churn() {
    check_against_interp(
        r#"
        int down(int n, int acc) {
            int local[8];
            local[n % 8] = acc;
            if (n == 0) return acc + local[0];
            return down(n - 1, acc + n);
        }
        int main() {
            print_int(down(200, 0));
            return 0;
        }
        "#,
        &[],
    );
}

#[test]
fn chk_instrumentation_counts_match_stores() {
    let src = r#"
        int g;
        int main() {
            int i;
            for (i = 0; i < 3; i = i + 1) g = g + i;
            return g;
        }
    "#;
    let plain = compile(src, &Options::plain()).unwrap();
    let cp = compile(src, &Options::codepatch()).unwrap();
    let pad = compile(src, &Options::nop_padding()).unwrap();
    // Instrumented image grows by exactly one word per traced store.
    assert_eq!(
        cp.program.len() - plain.program.len(),
        plain.debug.traced_store_count as usize
    );
    assert_eq!(
        pad.program.len() - plain.program.len(),
        plain.debug.traced_store_count as usize
    );
    assert_eq!(
        pad.debug.pad_pcs.len(),
        plain.debug.traced_store_count as usize
    );
    // Pad pcs each precede a store.
    for &pc in &pad.debug.pad_pcs {
        let idx = ((pc - databp_machine::CODE_BASE) / 4) as usize;
        assert!(pad.program.code[idx + 1].is_store());
    }
}

#[test]
fn arguments_pass_through_registers_correctly() {
    check_against_interp(
        r#"
        int combine(int a, int b, int c, int d) {
            return a * 1000 + b * 100 + c * 10 + d;
        }
        int main() {
            print_int(combine(1, 2, 3, 4));
            print_int(combine(combine(1, 1, 1, 1), 0, 0, 1));
            return 0;
        }
        "#,
        &[],
    );
}
