//! Property test: randomly generated integer expressions produce the same
//! value under compiled execution and the reference interpreter.

use databp_machine::{Machine, NoHooks};
use databp_tinyc::{compile, interpret, lower, Options};
use proptest::prelude::*;

/// A random expression AST rendered to source text. Division and modulo
/// guard against zero divisors by construction (`| 1`).
#[derive(Debug, Clone)]
enum E {
    K(i32),
    Var(u8),
    Un(&'static str, Box<E>),
    Bin(&'static str, Box<E>, Box<E>),
    DivSafe(Box<E>, Box<E>, bool),
}

impl E {
    fn render(&self, out: &mut String) {
        match self {
            E::K(v) => out.push_str(&format!("({v})")),
            E::Var(i) => out.push_str(&format!("v{}", i % 4)),
            E::Un(op, a) => {
                out.push('(');
                out.push_str(op);
                a.render(out);
                out.push(')');
            }
            E::Bin(op, a, b) => {
                out.push('(');
                a.render(out);
                out.push_str(op);
                b.render(out);
                out.push(')');
            }
            E::DivSafe(a, b, modulo) => {
                out.push('(');
                a.render(out);
                out.push_str(if *modulo { "%" } else { "/" });
                out.push_str("((");
                b.render(out);
                out.push_str(")|1)");
                out.push(')');
            }
        }
    }
}

fn arb_expr() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![(-1000i32..1000).prop_map(E::K), (0u8..4).prop_map(E::Var)];
    leaf.prop_recursive(5, 64, 4, |inner| {
        prop_oneof![
            (prop_oneof![Just("-"), Just("~"), Just("!")], inner.clone())
                .prop_map(|(op, a)| E::Un(op, Box::new(a))),
            (
                prop_oneof![
                    Just("+"),
                    Just("-"),
                    Just("*"),
                    Just("&"),
                    Just("|"),
                    Just("^"),
                    Just("<"),
                    Just("<="),
                    Just(">"),
                    Just(">="),
                    Just("=="),
                    Just("!="),
                    Just("&&"),
                    Just("||"),
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, a, b)| E::Bin(op, Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), any::<bool>()).prop_map(|(a, b, m)| E::DivSafe(
                Box::new(a),
                Box::new(b),
                m
            )),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn compiled_matches_interpreted(e in arb_expr(), vals in prop::array::uniform4(-100i32..100)) {
        let mut body = String::new();
        e.render(&mut body);
        let src = format!(
            "int main() {{ int v0; int v1; int v2; int v3; \
             v0 = {}; v1 = {}; v2 = {}; v3 = {}; \
             print_int({body}); return 0; }}",
            vals[0], vals[1], vals[2], vals[3]
        );
        let hir = lower(&src).expect("fuzz source must compile");
        let oracle = interpret(&hir, &[], 10_000_000).expect("interp");
        let compiled = compile(&src, &Options::codepatch()).unwrap();
        let mut m = Machine::new();
        m.load(&compiled.program);
        m.run(&mut NoHooks, 10_000_000).expect("machine");
        prop_assert_eq!(m.output(), &oracle.output[..]);
    }
}
