//! The resolved type system and layout rules.

use std::fmt;

/// A resolved type. Struct types reference the HIR struct table by index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Type {
    /// 32-bit signed integer.
    Int,
    /// 8-bit signed integer.
    Char,
    /// No value (function returns only).
    Void,
    /// Pointer to `T` (32-bit).
    Ptr(Box<Type>),
    /// `T[n]`.
    Array(Box<Type>, u32),
    /// `struct` by index into [`Hir::structs`](crate::hir::Hir::structs).
    Struct(usize),
}

impl Type {
    /// Size in bytes. Struct sizes come from `struct_sizes[i]`.
    ///
    /// # Panics
    ///
    /// Panics on `Void` (no object has type void).
    pub fn size(&self, struct_sizes: &[u32]) -> u32 {
        match self {
            Type::Int | Type::Ptr(_) => 4,
            Type::Char => 1,
            Type::Array(elem, n) => elem.size(struct_sizes) * n,
            Type::Struct(i) => struct_sizes[*i],
            Type::Void => panic!("void has no size"),
        }
    }

    /// Alignment in bytes.
    #[allow(clippy::only_used_in_recursion)] // kept parallel to `size`
    pub fn align(&self, struct_sizes: &[u32]) -> u32 {
        match self {
            Type::Char => 1,
            Type::Array(elem, _) => elem.align(struct_sizes),
            _ => 4,
        }
        .max(match self {
            // Structs align to a word: they always contain word-aligned
            // layout padding in our rules.
            Type::Struct(_) => 4,
            _ => 1,
        })
    }

    /// True for types storable in a register: int, char, pointer.
    pub fn is_scalar(&self) -> bool {
        matches!(self, Type::Int | Type::Char | Type::Ptr(_))
    }

    /// True for pointer types.
    pub fn is_ptr(&self) -> bool {
        matches!(self, Type::Ptr(_))
    }

    /// Width of a load/store of this scalar type (1 or 4).
    ///
    /// # Panics
    ///
    /// Panics for non-scalar types.
    pub fn access_width(&self) -> u32 {
        match self {
            Type::Char => 1,
            Type::Int | Type::Ptr(_) => 4,
            other => panic!("no access width for {other:?}"),
        }
    }

    /// The type `*self` yields, when `self` is a pointer or array.
    pub fn pointee(&self) -> Option<&Type> {
        match self {
            Type::Ptr(t) => Some(t),
            Type::Array(t, _) => Some(t),
            _ => None,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Int => write!(f, "int"),
            Type::Char => write!(f, "char"),
            Type::Void => write!(f, "void"),
            Type::Ptr(t) => write!(f, "{t}*"),
            Type::Array(t, n) => write!(f, "{t}[{n}]"),
            Type::Struct(i) => write!(f, "struct#{i}"),
        }
    }
}

/// Rounds `off` up to a multiple of `align`.
pub fn align_up(off: u32, align: u32) -> u32 {
    debug_assert!(align.is_power_of_two() || align == 1);
    off.div_ceil(align) * align
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_sizes() {
        let none: &[u32] = &[];
        assert_eq!(Type::Int.size(none), 4);
        assert_eq!(Type::Char.size(none), 1);
        assert_eq!(Type::Ptr(Box::new(Type::Char)).size(none), 4);
    }

    #[test]
    fn array_and_struct_sizes() {
        let sizes = &[12u32];
        assert_eq!(Type::Array(Box::new(Type::Int), 10).size(sizes), 40);
        assert_eq!(Type::Array(Box::new(Type::Char), 5).size(sizes), 5);
        assert_eq!(Type::Struct(0).size(sizes), 12);
        assert_eq!(Type::Array(Box::new(Type::Struct(0)), 3).size(sizes), 36);
    }

    #[test]
    fn alignment_rules() {
        let sizes = &[8u32];
        assert_eq!(Type::Char.align(sizes), 1);
        assert_eq!(Type::Int.align(sizes), 4);
        assert_eq!(Type::Array(Box::new(Type::Char), 7).align(sizes), 1);
        assert_eq!(Type::Struct(0).align(sizes), 4);
    }

    #[test]
    fn access_width() {
        assert_eq!(Type::Char.access_width(), 1);
        assert_eq!(Type::Int.access_width(), 4);
        assert_eq!(Type::Ptr(Box::new(Type::Int)).access_width(), 4);
    }

    #[test]
    #[should_panic(expected = "void has no size")]
    fn void_has_no_size() {
        Type::Void.size(&[]);
    }

    #[test]
    fn align_up_rounds() {
        assert_eq!(align_up(0, 4), 0);
        assert_eq!(align_up(1, 4), 4);
        assert_eq!(align_up(4, 4), 4);
        assert_eq!(align_up(5, 1), 5);
    }

    #[test]
    fn display_renders() {
        assert_eq!(Type::Ptr(Box::new(Type::Int)).to_string(), "int*");
        assert_eq!(Type::Array(Box::new(Type::Char), 3).to_string(), "char[3]");
    }
}
