//! Recursive-descent parser.

use crate::ast::*;
use crate::error::CompileError;
use crate::lexer::{Kw, Tok, Token};

struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
}

type PResult<T> = Result<T, CompileError>;

impl<'a> Parser<'a> {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].kind
    }

    fn peek_at(&self, n: usize) -> &Tok {
        let i = (self.pos + n).min(self.toks.len() - 1);
        &self.toks[i].kind
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].line
    }

    fn bump(&mut self) -> &Tok {
        let t = &self.toks[self.pos].kind;
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> PResult<T> {
        Err(CompileError::new(self.line(), msg))
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Tok::Punct(q) if *q == p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> PResult<()> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            self.err(format!("expected '{p}', found {:?}", self.peek()))
        }
    }

    fn eat_kw(&mut self, k: Kw) -> bool {
        if matches!(self.peek(), Tok::Kw(q) if *q == k) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> PResult<String> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other:?}")),
        }
    }

    /// True when the upcoming tokens start a type (`int`, `char`, `void`,
    /// `struct Name`).
    fn at_type(&self) -> bool {
        matches!(
            self.peek(),
            Tok::Kw(Kw::Int) | Tok::Kw(Kw::Char) | Tok::Kw(Kw::Void) | Tok::Kw(Kw::Struct)
        )
    }

    /// Parses a base type plus pointer stars.
    fn parse_type(&mut self) -> PResult<TypeExpr> {
        let base = if self.eat_kw(Kw::Int) {
            TypeExpr::Int
        } else if self.eat_kw(Kw::Char) {
            TypeExpr::Char
        } else if self.eat_kw(Kw::Void) {
            TypeExpr::Void
        } else if self.eat_kw(Kw::Struct) {
            TypeExpr::Struct(self.expect_ident()?)
        } else {
            return self.err(format!("expected type, found {:?}", self.peek()));
        };
        let mut ty = base;
        while self.eat_punct("*") {
            ty = TypeExpr::Ptr(Box::new(ty));
        }
        Ok(ty)
    }

    fn parse_declarator(&mut self) -> PResult<Declarator> {
        let line = self.line();
        let name = self.expect_ident()?;
        let array = if self.eat_punct("[") {
            let n = match self.peek() {
                Tok::Int(v) if *v > 0 => *v as u32,
                _ => return self.err("array length must be a positive integer literal"),
            };
            self.bump();
            self.expect_punct("]")?;
            Some(n)
        } else {
            None
        };
        Ok(Declarator { name, array, line })
    }

    // ---- items ----

    fn parse_program(&mut self) -> PResult<Vec<Item>> {
        let mut items = Vec::new();
        while !matches!(self.peek(), Tok::Eof) {
            items.push(self.parse_item()?);
        }
        Ok(items)
    }

    fn parse_item(&mut self) -> PResult<Item> {
        // struct definition: "struct Name {" — otherwise it is a type use.
        if matches!(self.peek(), Tok::Kw(Kw::Struct))
            && matches!(self.peek_at(1), Tok::Ident(_))
            && matches!(self.peek_at(2), Tok::Punct("{"))
        {
            return Ok(Item::Struct(self.parse_struct()?));
        }
        let ty = self.parse_type()?;
        let line = self.line();
        let name = self.expect_ident()?;
        if self.eat_punct("(") {
            // function definition
            let mut params = Vec::new();
            if !self.eat_punct(")") {
                loop {
                    let pty = self.parse_type()?;
                    let pname = self.expect_ident()?;
                    params.push((pty, pname));
                    if !self.eat_punct(",") {
                        break;
                    }
                }
                self.expect_punct(")")?;
            }
            if !matches!(self.peek(), Tok::Punct("{")) {
                return self.err("expected function body (declarations are not supported)");
            }
            let body = match self.parse_stmt()? {
                Stmt::Block(b) => b,
                _ => unreachable!("parse_stmt at '{{' returns a block"),
            };
            Ok(Item::Func(FuncDecl {
                ret: ty,
                name,
                params,
                body,
                line,
            }))
        } else {
            // global variable
            let array = if self.eat_punct("[") {
                let n = match self.peek() {
                    Tok::Int(v) if *v > 0 => *v as u32,
                    _ => return self.err("array length must be a positive integer literal"),
                };
                self.bump();
                self.expect_punct("]")?;
                Some(n)
            } else {
                None
            };
            let init = if self.eat_punct("=") {
                Some(self.parse_expr()?)
            } else {
                None
            };
            self.expect_punct(";")?;
            Ok(Item::Global(GlobalDecl {
                ty,
                decl: Declarator { name, array, line },
                init,
            }))
        }
    }

    fn parse_struct(&mut self) -> PResult<StructDef> {
        let line = self.line();
        self.bump(); // struct
        let name = self.expect_ident()?;
        self.expect_punct("{")?;
        let mut members = Vec::new();
        while !self.eat_punct("}") {
            let ty = self.parse_type()?;
            let d = self.parse_declarator()?;
            self.expect_punct(";")?;
            members.push((ty, d));
        }
        self.expect_punct(";")?;
        Ok(StructDef {
            name,
            members,
            line,
        })
    }

    // ---- statements ----

    fn parse_stmt(&mut self) -> PResult<Stmt> {
        let line = self.line();
        if self.eat_punct("{") {
            let mut stmts = Vec::new();
            while !self.eat_punct("}") {
                if matches!(self.peek(), Tok::Eof) {
                    return self.err("unterminated block");
                }
                stmts.push(self.parse_stmt()?);
            }
            return Ok(Stmt::Block(stmts));
        }
        if self.eat_punct(";") {
            return Ok(Stmt::Empty);
        }
        if self.eat_kw(Kw::If) {
            self.expect_punct("(")?;
            let cond = self.parse_expr()?;
            self.expect_punct(")")?;
            let then = Box::new(self.parse_stmt()?);
            let els = if self.eat_kw(Kw::Else) {
                Some(Box::new(self.parse_stmt()?))
            } else {
                None
            };
            return Ok(Stmt::If(cond, then, els));
        }
        if self.eat_kw(Kw::While) {
            self.expect_punct("(")?;
            let cond = self.parse_expr()?;
            self.expect_punct(")")?;
            return Ok(Stmt::While(cond, Box::new(self.parse_stmt()?)));
        }
        if self.eat_kw(Kw::For) {
            self.expect_punct("(")?;
            let init = if matches!(self.peek(), Tok::Punct(";")) {
                None
            } else {
                Some(self.parse_expr()?)
            };
            self.expect_punct(";")?;
            let cond = if matches!(self.peek(), Tok::Punct(";")) {
                None
            } else {
                Some(self.parse_expr()?)
            };
            self.expect_punct(";")?;
            let step = if matches!(self.peek(), Tok::Punct(")")) {
                None
            } else {
                Some(self.parse_expr()?)
            };
            self.expect_punct(")")?;
            return Ok(Stmt::For(init, cond, step, Box::new(self.parse_stmt()?)));
        }
        if self.eat_kw(Kw::Return) {
            let value = if matches!(self.peek(), Tok::Punct(";")) {
                None
            } else {
                Some(self.parse_expr()?)
            };
            self.expect_punct(";")?;
            return Ok(Stmt::Return(value, line));
        }
        if self.eat_kw(Kw::Break) {
            self.expect_punct(";")?;
            return Ok(Stmt::Break(line));
        }
        if self.eat_kw(Kw::Continue) {
            self.expect_punct(";")?;
            return Ok(Stmt::Continue(line));
        }
        let is_static = self.eat_kw(Kw::Static);
        if is_static || self.at_type() {
            let ty = self.parse_type()?;
            let decl = self.parse_declarator()?;
            let init = if self.eat_punct("=") {
                Some(self.parse_expr()?)
            } else {
                None
            };
            self.expect_punct(";")?;
            return Ok(Stmt::Decl {
                is_static,
                ty,
                decl,
                init,
            });
        }
        let e = self.parse_expr()?;
        self.expect_punct(";")?;
        Ok(Stmt::Expr(e))
    }

    // ---- expressions (precedence climbing) ----

    fn parse_expr(&mut self) -> PResult<Expr> {
        self.parse_assign()
    }

    fn parse_assign(&mut self) -> PResult<Expr> {
        let lhs = self.parse_logor()?;
        if self.eat_punct("=") {
            let line = lhs.line;
            let rhs = self.parse_assign()?;
            return Ok(Expr {
                kind: ExprKind::Assign(Box::new(lhs), Box::new(rhs)),
                line,
            });
        }
        Ok(lhs)
    }

    fn binary_level(
        &mut self,
        ops: &[(&str, BinOp)],
        next: fn(&mut Self) -> PResult<Expr>,
    ) -> PResult<Expr> {
        let mut lhs = next(self)?;
        'outer: loop {
            for (p, op) in ops {
                if matches!(self.peek(), Tok::Punct(q) if q == p) {
                    let line = self.line();
                    self.bump();
                    let rhs = next(self)?;
                    lhs = Expr {
                        kind: ExprKind::Binary(*op, Box::new(lhs), Box::new(rhs)),
                        line,
                    };
                    continue 'outer;
                }
            }
            return Ok(lhs);
        }
    }

    fn parse_logor(&mut self) -> PResult<Expr> {
        self.binary_level(&[("||", BinOp::LogOr)], Self::parse_logand)
    }

    fn parse_logand(&mut self) -> PResult<Expr> {
        self.binary_level(&[("&&", BinOp::LogAnd)], Self::parse_bitor)
    }

    fn parse_bitor(&mut self) -> PResult<Expr> {
        self.binary_level(&[("|", BinOp::BitOr)], Self::parse_bitxor)
    }

    fn parse_bitxor(&mut self) -> PResult<Expr> {
        self.binary_level(&[("^", BinOp::BitXor)], Self::parse_bitand)
    }

    fn parse_bitand(&mut self) -> PResult<Expr> {
        self.binary_level(&[("&", BinOp::BitAnd)], Self::parse_equality)
    }

    fn parse_equality(&mut self) -> PResult<Expr> {
        self.binary_level(
            &[("==", BinOp::Eq), ("!=", BinOp::Ne)],
            Self::parse_relational,
        )
    }

    fn parse_relational(&mut self) -> PResult<Expr> {
        self.binary_level(
            &[
                ("<=", BinOp::Le),
                (">=", BinOp::Ge),
                ("<", BinOp::Lt),
                (">", BinOp::Gt),
            ],
            Self::parse_shift,
        )
    }

    fn parse_shift(&mut self) -> PResult<Expr> {
        self.binary_level(
            &[("<<", BinOp::Shl), (">>", BinOp::Shr)],
            Self::parse_additive,
        )
    }

    fn parse_additive(&mut self) -> PResult<Expr> {
        self.binary_level(
            &[("+", BinOp::Add), ("-", BinOp::Sub)],
            Self::parse_multiplicative,
        )
    }

    fn parse_multiplicative(&mut self) -> PResult<Expr> {
        self.binary_level(
            &[("*", BinOp::Mul), ("/", BinOp::Div), ("%", BinOp::Rem)],
            Self::parse_unary,
        )
    }

    fn parse_unary(&mut self) -> PResult<Expr> {
        let line = self.line();
        if self.eat_punct("-") {
            let e = self.parse_unary()?;
            return Ok(Expr {
                kind: ExprKind::Unary(UnOp::Neg, Box::new(e)),
                line,
            });
        }
        if self.eat_punct("!") {
            let e = self.parse_unary()?;
            return Ok(Expr {
                kind: ExprKind::Unary(UnOp::Not, Box::new(e)),
                line,
            });
        }
        if self.eat_punct("~") {
            let e = self.parse_unary()?;
            return Ok(Expr {
                kind: ExprKind::Unary(UnOp::BitNot, Box::new(e)),
                line,
            });
        }
        if self.eat_punct("*") {
            let e = self.parse_unary()?;
            return Ok(Expr {
                kind: ExprKind::Deref(Box::new(e)),
                line,
            });
        }
        if self.eat_punct("&") {
            let e = self.parse_unary()?;
            return Ok(Expr {
                kind: ExprKind::AddrOf(Box::new(e)),
                line,
            });
        }
        // Cast: '(' type … ')'
        if matches!(self.peek(), Tok::Punct("("))
            && matches!(
                self.peek_at(1),
                Tok::Kw(Kw::Int) | Tok::Kw(Kw::Char) | Tok::Kw(Kw::Void) | Tok::Kw(Kw::Struct)
            )
        {
            self.bump();
            let ty = self.parse_type()?;
            self.expect_punct(")")?;
            let e = self.parse_unary()?;
            return Ok(Expr {
                kind: ExprKind::Cast(ty, Box::new(e)),
                line,
            });
        }
        self.parse_postfix()
    }

    fn parse_postfix(&mut self) -> PResult<Expr> {
        let mut e = self.parse_primary()?;
        loop {
            let line = self.line();
            if self.eat_punct("[") {
                let idx = self.parse_expr()?;
                self.expect_punct("]")?;
                e = Expr {
                    kind: ExprKind::Index(Box::new(e), Box::new(idx)),
                    line,
                };
            } else if self.eat_punct(".") {
                let m = self.expect_ident()?;
                e = Expr {
                    kind: ExprKind::Member(Box::new(e), m),
                    line,
                };
            } else if self.eat_punct("->") {
                let m = self.expect_ident()?;
                e = Expr {
                    kind: ExprKind::Arrow(Box::new(e), m),
                    line,
                };
            } else if matches!(self.peek(), Tok::Punct("(")) {
                // Call: only valid directly after an identifier.
                let name = match &e.kind {
                    ExprKind::Ident(n) => n.clone(),
                    _ => return self.err("only named functions can be called"),
                };
                self.bump();
                let mut args = Vec::new();
                if !self.eat_punct(")") {
                    loop {
                        args.push(self.parse_expr()?);
                        if !self.eat_punct(",") {
                            break;
                        }
                    }
                    self.expect_punct(")")?;
                }
                e = Expr {
                    kind: ExprKind::Call(name, args),
                    line: e.line,
                };
            } else {
                return Ok(e);
            }
        }
    }

    fn parse_primary(&mut self) -> PResult<Expr> {
        let line = self.line();
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(Expr {
                    kind: ExprKind::Int(v),
                    line,
                })
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Expr {
                    kind: ExprKind::Str(s),
                    line,
                })
            }
            Tok::Ident(name) => {
                self.bump();
                Ok(Expr {
                    kind: ExprKind::Ident(name),
                    line,
                })
            }
            Tok::Kw(Kw::Sizeof) => {
                self.bump();
                self.expect_punct("(")?;
                let ty = self.parse_type()?;
                self.expect_punct(")")?;
                Ok(Expr {
                    kind: ExprKind::Sizeof(ty),
                    line,
                })
            }
            Tok::Punct("(") => {
                self.bump();
                let e = self.parse_expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            other => self.err(format!("expected expression, found {other:?}")),
        }
    }
}

/// Parses a token stream into top-level items.
///
/// # Errors
///
/// Syntax errors with the offending line.
pub fn parse(tokens: &[Token]) -> Result<Vec<Item>, CompileError> {
    assert!(
        matches!(tokens.last().map(|t| &t.kind), Some(Tok::Eof)),
        "token stream must end with Eof"
    );
    Parser {
        toks: tokens,
        pos: 0,
    }
    .parse_program()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Result<Vec<Item>, CompileError> {
        parse(&lex(src).unwrap())
    }

    #[test]
    fn parses_struct_global_func() {
        let items = parse_src(
            r#"
            struct Node { int val; struct Node *next; };
            int counter = 3;
            int arr[10];
            struct Node *head;
            int main() { return 0; }
            "#,
        )
        .unwrap();
        assert_eq!(items.len(), 5);
        assert!(matches!(items[0], Item::Struct(_)));
        assert!(matches!(items[1], Item::Global(_)));
        assert!(matches!(items[4], Item::Func(_)));
    }

    #[test]
    fn parses_statements() {
        let items = parse_src(
            r#"
            int f(int n) {
                int i;
                static int cache = 0;
                for (i = 0; i < n; i = i + 1) {
                    if (i % 2 == 0) continue;
                    if (i > 100) break;
                }
                while (n) n = n - 1;
                return n;
            }
            "#,
        )
        .unwrap();
        let Item::Func(f) = &items[0] else {
            panic!("expected func")
        };
        assert_eq!(f.name, "f");
        assert_eq!(f.params.len(), 1);
        assert_eq!(f.body.len(), 5);
    }

    #[test]
    fn precedence_binds_correctly() {
        let items = parse_src("int main() { return 1 + 2 * 3 == 7 && 1; }").unwrap();
        let Item::Func(f) = &items[0] else { panic!() };
        let Stmt::Return(Some(e), _) = &f.body[0] else {
            panic!()
        };
        // top node must be &&
        assert!(matches!(e.kind, ExprKind::Binary(BinOp::LogAnd, _, _)));
    }

    #[test]
    fn postfix_chains() {
        let items = parse_src("int main() { return p->next->data[i + 1]; }").unwrap();
        let Item::Func(f) = &items[0] else { panic!() };
        let Stmt::Return(Some(e), _) = &f.body[0] else {
            panic!()
        };
        assert!(matches!(e.kind, ExprKind::Index(..)));
    }

    #[test]
    fn cast_vs_paren() {
        let items =
            parse_src("int main() { int x; x = (int)1; x = (x); return (struct T*)0 == 0; }")
                .unwrap();
        assert_eq!(items.len(), 1);
    }

    #[test]
    fn assignment_is_right_associative() {
        let items = parse_src("int main() { a = b = 1; return 0; }").unwrap();
        let Item::Func(f) = &items[0] else { panic!() };
        let Stmt::Expr(e) = &f.body[0] else { panic!() };
        let ExprKind::Assign(_, rhs) = &e.kind else {
            panic!()
        };
        assert!(matches!(rhs.kind, ExprKind::Assign(..)));
    }

    #[test]
    fn error_cases() {
        assert!(parse_src("int main() { return 1 }").is_err()); // missing ;
        assert!(parse_src("int f();").is_err()); // declarations unsupported
        assert!(parse_src("int a[0];").is_err()); // zero-length array
        assert!(parse_src("int main() { (1)(2); }").is_err()); // call on non-ident
        assert!(parse_src("int main() { {").is_err()); // unterminated block
        assert!(parse_src("struct S { int x; }").is_err()); // missing ;
    }

    #[test]
    fn sizeof_parses() {
        let items = parse_src("int main() { return sizeof(struct Node) + sizeof(int*); }");
        assert!(items.is_ok());
    }
}
