//! Semantic analysis: name resolution, type checking, layout, and
//! lowering to [`Hir`].

use crate::ast::{self, BinOp, Declarator, ExprKind as Ast, Item, TypeExpr, UnOp};
use crate::error::CompileError;
use crate::hir::{
    Builtin, Expr, ExprKind, FuncDef, GlobalDef, Hir, LocalDef, MemberLayout, Stmt, StructLayout,
};
use crate::types::{align_up, Type};
use databp_machine::DATA_BASE;
use std::collections::HashMap;

type SResult<T> = Result<T, CompileError>;

/// Maximum parameters per function (all pass in registers `a0..a3`).
const MAX_PARAMS: usize = 4;

struct Checker {
    struct_ids: HashMap<String, usize>,
    structs: Vec<StructLayout>,
    struct_sizes: Vec<u32>,
    globals: Vec<GlobalDef>,
    global_by_name: HashMap<String, u32>,
    data_cursor: u32,
    func_sigs: Vec<(String, Type, Vec<Type>)>,
    func_ids: HashMap<String, u16>,
    literal_cache: HashMap<Vec<u8>, u32>,
}

/// Per-function state.
struct FuncCx {
    fid: u16,
    ret: Type,
    locals: Vec<LocalDef>,
    /// Frame cursor: bytes below fp in use (starts at 8 for saved ra/fp).
    cursor: u32,
    /// Scope stack: name -> binding.
    scopes: Vec<HashMap<String, Binding>>,
    loop_depth: u32,
}

#[derive(Clone, Copy)]
enum Binding {
    Local(u16),
    Global(u32),
}

/// Checks and lowers a parsed program.
///
/// # Errors
///
/// Any semantic fault (unknown names, type mismatches, bad lvalues,
/// missing `main`, …) with its source line.
pub fn check(items: &[Item]) -> SResult<Hir> {
    let mut cx = Checker {
        struct_ids: HashMap::new(),
        structs: Vec::new(),
        struct_sizes: Vec::new(),
        globals: Vec::new(),
        global_by_name: HashMap::new(),
        data_cursor: 0,
        func_sigs: Vec::new(),
        func_ids: HashMap::new(),
        literal_cache: HashMap::new(),
    };

    // Pass 1: struct names get ids in order of appearance.
    for item in items {
        if let Item::Struct(s) = item {
            if cx
                .struct_ids
                .insert(s.name.clone(), cx.struct_ids.len())
                .is_some()
            {
                return Err(CompileError::new(
                    s.line,
                    format!("duplicate struct '{}'", s.name),
                ));
            }
        }
    }
    cx.structs = Vec::with_capacity(cx.struct_ids.len());

    // Pass 2: struct layouts, in order (value members must already be laid
    // out; pointer members may reference any struct, including forward).
    for item in items {
        if let Item::Struct(s) = item {
            let layout = cx.layout_struct(s)?;
            cx.struct_sizes.push(layout.size);
            cx.structs.push(layout);
        }
    }

    // Pass 3: function signatures.
    for item in items {
        if let Item::Func(f) = item {
            if cx.func_ids.contains_key(&f.name) {
                return Err(CompileError::new(
                    f.line,
                    format!("duplicate function '{}'", f.name),
                ));
            }
            if builtin_of(&f.name).is_some() {
                return Err(CompileError::new(
                    f.line,
                    format!("'{}' is a builtin and cannot be redefined", f.name),
                ));
            }
            if f.params.len() > MAX_PARAMS {
                return Err(CompileError::new(
                    f.line,
                    format!("at most {MAX_PARAMS} parameters are supported"),
                ));
            }
            let ret = cx.resolve_type(&f.ret, f.line)?;
            let mut ptys = Vec::new();
            for (pt, _) in &f.params {
                let t = cx.resolve_type(pt, f.line)?;
                if !t.is_scalar() {
                    return Err(CompileError::new(f.line, "parameters must be scalar"));
                }
                ptys.push(t);
            }
            let fid = cx.func_sigs.len() as u16;
            cx.func_ids.insert(f.name.clone(), fid);
            cx.func_sigs.push((f.name.clone(), ret, ptys));
        }
    }

    // Pass 4: globals.
    for item in items {
        if let Item::Global(g) = item {
            cx.define_global(g)?;
        }
    }

    // Pass 5: function bodies.
    let mut funcs = Vec::new();
    for item in items {
        if let Item::Func(f) = item {
            funcs.push(cx.check_func(f)?);
        }
    }

    let main = *cx
        .func_ids
        .get("main")
        .ok_or_else(|| CompileError::new(0, "no 'main' function"))?;

    Ok(Hir {
        structs: cx.structs,
        globals: cx.globals,
        funcs,
        data_size: cx.data_cursor,
        main,
    })
}

fn builtin_of(name: &str) -> Option<Builtin> {
    Some(match name {
        "malloc" => Builtin::Malloc,
        "free" => Builtin::Free,
        "realloc" => Builtin::Realloc,
        "print_int" => Builtin::PrintInt,
        "print_char" => Builtin::PrintChar,
        "print_str" => Builtin::PrintStr,
        "arg" => Builtin::Arg,
        "exit" => Builtin::Exit,
        _ => return None,
    })
}

impl Checker {
    fn resolve_type(&self, t: &TypeExpr, line: u32) -> SResult<Type> {
        Ok(match t {
            TypeExpr::Int => Type::Int,
            TypeExpr::Char => Type::Char,
            TypeExpr::Void => Type::Void,
            TypeExpr::Struct(name) => {
                let id = self
                    .struct_ids
                    .get(name)
                    .ok_or_else(|| CompileError::new(line, format!("unknown struct '{name}'")))?;
                Type::Struct(*id)
            }
            TypeExpr::Ptr(inner) => Type::Ptr(Box::new(self.resolve_type(inner, line)?)),
        })
    }

    fn layout_struct(&mut self, s: &ast::StructDef) -> SResult<StructLayout> {
        let my_id = self.struct_ids[&s.name];
        let mut members = Vec::new();
        let mut off = 0u32;
        for (te, d) in &s.members {
            let base = self.resolve_type(te, d.line)?;
            let ty = match d.array {
                Some(n) => Type::Array(Box::new(base), n),
                None => base,
            };
            if ty == Type::Void {
                return Err(CompileError::new(d.line, "void member"));
            }
            // Value members must be already laid out (no forward/self
            // value members; pointers are fine).
            let value_struct = match &ty {
                Type::Struct(j) => Some(*j),
                Type::Array(elem, _) => match elem.as_ref() {
                    Type::Struct(j) => Some(*j),
                    _ => None,
                },
                _ => None,
            };
            if let Some(j) = value_struct {
                if j >= my_id || j >= self.struct_sizes.len() {
                    return Err(CompileError::new(
                        d.line,
                        "struct value members must be defined earlier (use a pointer)",
                    ));
                }
            }
            if members.iter().any(|m: &MemberLayout| m.name == d.name) {
                return Err(CompileError::new(
                    d.line,
                    format!("duplicate member '{}'", d.name),
                ));
            }
            let align = ty.align(&self.struct_sizes);
            off = align_up(off, align);
            members.push(MemberLayout {
                name: d.name.clone(),
                ty: ty.clone(),
                offset: off,
            });
            off += ty.size(&self.struct_sizes);
        }
        Ok(StructLayout {
            name: s.name.clone(),
            members,
            size: align_up(off.max(1), 4),
        })
    }

    fn alloc_global(
        &mut self,
        name: String,
        ty: Type,
        init: Vec<u8>,
        owner: Option<u16>,
        is_literal: bool,
    ) -> u32 {
        let size = ty.size(&self.struct_sizes);
        let align = ty.align(&self.struct_sizes).max(4);
        self.data_cursor = align_up(self.data_cursor, align);
        let id = self.globals.len() as u32;
        let mut bytes = init;
        bytes.resize(size as usize, 0);
        self.globals.push(GlobalDef {
            name,
            ty,
            offset: self.data_cursor,
            size,
            init: bytes,
            owner,
            is_literal,
        });
        self.data_cursor += size;
        id
    }

    fn intern_literal(&mut self, bytes: &[u8]) -> u32 {
        if let Some(&id) = self.literal_cache.get(bytes) {
            return id;
        }
        let mut stored = bytes.to_vec();
        stored.push(0);
        let n = stored.len() as u32;
        let id = self.alloc_global(
            format!("@str{}", self.literal_cache.len()),
            Type::Array(Box::new(Type::Char), n),
            stored.clone(),
            None,
            true,
        );
        self.literal_cache.insert(bytes.to_vec(), id);
        id
    }

    fn define_global(&mut self, g: &ast::GlobalDecl) -> SResult<()> {
        let line = g.decl.line;
        if self.global_by_name.contains_key(&g.decl.name) {
            return Err(CompileError::new(
                line,
                format!("duplicate global '{}'", g.decl.name),
            ));
        }
        let base = self.resolve_type(&g.ty, line)?;
        let ty = match g.decl.array {
            Some(n) => Type::Array(Box::new(base), n),
            None => base,
        };
        if ty == Type::Void {
            return Err(CompileError::new(line, "void variable"));
        }
        let init = match &g.init {
            None => Vec::new(),
            Some(e) => self.const_init_bytes(e, &ty)?,
        };
        let id = self.alloc_global(g.decl.name.clone(), ty, init, None, false);
        self.global_by_name.insert(g.decl.name.clone(), id);
        Ok(())
    }

    /// Initial bytes for a constant initializer.
    fn const_init_bytes(&mut self, e: &ast::Expr, ty: &Type) -> SResult<Vec<u8>> {
        if let Ast::Str(s) = &e.kind {
            if !ty.is_ptr() {
                return Err(CompileError::new(
                    e.line,
                    "string initializer needs a pointer type",
                ));
            }
            let id = self.intern_literal(s);
            let addr = DATA_BASE + self.globals[id as usize].offset;
            return Ok(addr.to_le_bytes().to_vec());
        }
        let v = self.const_eval(e)?;
        Ok(match ty {
            Type::Char => vec![v as u8],
            Type::Int | Type::Ptr(_) => (v as u32).to_le_bytes().to_vec(),
            _ => {
                return Err(CompileError::new(
                    e.line,
                    "only scalar variables can have initializers",
                ))
            }
        })
    }

    fn const_eval(&self, e: &ast::Expr) -> SResult<i32> {
        let err = || CompileError::new(e.line, "initializer must be a constant expression");
        Ok(match &e.kind {
            Ast::Int(v) => *v,
            Ast::Sizeof(t) => self.resolve_type(t, e.line)?.size(&self.struct_sizes) as i32,
            Ast::Unary(UnOp::Neg, x) => self.const_eval(x)?.wrapping_neg(),
            Ast::Unary(UnOp::BitNot, x) => !self.const_eval(x)?,
            Ast::Unary(UnOp::Not, x) => (self.const_eval(x)? == 0) as i32,
            Ast::Binary(op, a, b) => {
                let (a, b) = (self.const_eval(a)?, self.const_eval(b)?);
                match op {
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    BinOp::Mul => a.wrapping_mul(b),
                    BinOp::Div if b != 0 => a.wrapping_div(b),
                    BinOp::Rem if b != 0 => a.wrapping_rem(b),
                    BinOp::Shl => a.wrapping_shl(b as u32),
                    BinOp::Shr => a.wrapping_shr(b as u32),
                    BinOp::BitAnd => a & b,
                    BinOp::BitOr => a | b,
                    BinOp::BitXor => a ^ b,
                    _ => return Err(err()),
                }
            }
            Ast::Cast(_, x) => self.const_eval(x)?,
            _ => return Err(err()),
        })
    }

    fn check_func(&mut self, f: &ast::FuncDecl) -> SResult<FuncDef> {
        let fid = self.func_ids[&f.name];
        let (_, ret, ptys) = self.func_sigs[fid as usize].clone();
        let mut fx = FuncCx {
            fid,
            ret: ret.clone(),
            locals: Vec::new(),
            cursor: 8,
            scopes: vec![HashMap::new()],
            loop_depth: 0,
        };
        for ((_, pname), pty) in f.params.iter().zip(&ptys) {
            self.alloc_local(&mut fx, pname.clone(), pty.clone(), true, f.line)?;
        }
        let body = self.lower_block(&mut fx, &f.body)?;
        Ok(FuncDef {
            name: f.name.clone(),
            ret,
            params: f.params.len() as u16,
            locals: fx.locals,
            frame_size: fx.cursor,
            body,
        })
    }

    fn alloc_local(
        &mut self,
        fx: &mut FuncCx,
        name: String,
        ty: Type,
        is_param: bool,
        line: u32,
    ) -> SResult<u16> {
        if ty == Type::Void {
            return Err(CompileError::new(line, "void variable"));
        }
        let size = ty.size(&self.struct_sizes);
        fx.cursor = align_up(fx.cursor + size, 4);
        let idx = fx.locals.len();
        if idx > u16::MAX as usize {
            return Err(CompileError::new(line, "too many locals"));
        }
        let idx = idx as u16;
        fx.locals.push(LocalDef {
            name: name.clone(),
            ty,
            offset: -(fx.cursor as i32),
            size,
            is_param,
        });
        let scope = fx.scopes.last_mut().expect("scope stack never empty");
        if scope.insert(name.clone(), Binding::Local(idx)).is_some() {
            return Err(CompileError::new(
                line,
                format!("duplicate variable '{name}'"),
            ));
        }
        Ok(idx)
    }

    fn lookup(&self, fx: &FuncCx, name: &str) -> Option<Binding> {
        for scope in fx.scopes.iter().rev() {
            if let Some(b) = scope.get(name) {
                return Some(*b);
            }
        }
        self.global_by_name.get(name).map(|&g| Binding::Global(g))
    }

    fn lower_block(&mut self, fx: &mut FuncCx, stmts: &[ast::Stmt]) -> SResult<Vec<Stmt>> {
        fx.scopes.push(HashMap::new());
        let mut out = Vec::new();
        for s in stmts {
            self.lower_stmt(fx, s, &mut out)?;
        }
        fx.scopes.pop();
        Ok(out)
    }

    fn lower_stmt(&mut self, fx: &mut FuncCx, s: &ast::Stmt, out: &mut Vec<Stmt>) -> SResult<()> {
        match s {
            ast::Stmt::Empty => {}
            ast::Stmt::Decl {
                is_static,
                ty,
                decl,
                init,
            } => {
                self.lower_decl(fx, *is_static, ty, decl, init.as_ref(), out)?;
            }
            ast::Stmt::Expr(e) => {
                let e = self.rvalue_or_void(fx, e)?;
                out.push(Stmt::Expr(e));
            }
            ast::Stmt::If(cond, then, els) => {
                let c = self.condition(fx, cond)?;
                let t = self.lower_substmt(fx, then)?;
                let e = match els {
                    Some(s) => self.lower_substmt(fx, s)?,
                    None => Vec::new(),
                };
                out.push(Stmt::If(c, t, e));
            }
            ast::Stmt::While(cond, body) => {
                let c = self.condition(fx, cond)?;
                fx.loop_depth += 1;
                let b = self.lower_substmt(fx, body)?;
                fx.loop_depth -= 1;
                out.push(Stmt::While(c, b));
            }
            ast::Stmt::For(init, cond, step, body) => {
                let i = init
                    .as_ref()
                    .map(|e| self.rvalue_or_void(fx, e))
                    .transpose()?;
                let c = cond.as_ref().map(|e| self.condition(fx, e)).transpose()?;
                let st = step
                    .as_ref()
                    .map(|e| self.rvalue_or_void(fx, e))
                    .transpose()?;
                fx.loop_depth += 1;
                let b = self.lower_substmt(fx, body)?;
                fx.loop_depth -= 1;
                out.push(Stmt::For(i, c, st, b));
            }
            ast::Stmt::Return(value, line) => {
                let ret_ty = fx.ret.clone();
                let e = match (value, ret_ty) {
                    (None, Type::Void) => None,
                    (None, _) => {
                        return Err(CompileError::new(
                            *line,
                            "non-void function must return a value",
                        ))
                    }
                    (Some(_), Type::Void) => {
                        return Err(CompileError::new(
                            *line,
                            "void function cannot return a value",
                        ))
                    }
                    (Some(v), ret) => {
                        let e = self.rvalue(fx, v)?;
                        self.check_assignable(&e.ty, &ret, *line)?;
                        Some(e)
                    }
                };
                out.push(Stmt::Return(e));
            }
            ast::Stmt::Break(line) => {
                if fx.loop_depth == 0 {
                    return Err(CompileError::new(*line, "break outside a loop"));
                }
                out.push(Stmt::Break);
            }
            ast::Stmt::Continue(line) => {
                if fx.loop_depth == 0 {
                    return Err(CompileError::new(*line, "continue outside a loop"));
                }
                out.push(Stmt::Continue);
            }
            ast::Stmt::Block(stmts) => {
                let inner = self.lower_block(fx, stmts)?;
                out.extend(inner);
            }
        }
        Ok(())
    }

    fn lower_substmt(&mut self, fx: &mut FuncCx, s: &ast::Stmt) -> SResult<Vec<Stmt>> {
        match s {
            ast::Stmt::Block(stmts) => self.lower_block(fx, stmts),
            other => {
                fx.scopes.push(HashMap::new());
                let mut out = Vec::new();
                self.lower_stmt(fx, other, &mut out)?;
                fx.scopes.pop();
                Ok(out)
            }
        }
    }

    fn lower_decl(
        &mut self,
        fx: &mut FuncCx,
        is_static: bool,
        te: &TypeExpr,
        decl: &Declarator,
        init: Option<&ast::Expr>,
        out: &mut Vec<Stmt>,
    ) -> SResult<()> {
        let line = decl.line;
        let base = self.resolve_type(te, line)?;
        let ty = match decl.array {
            Some(n) => Type::Array(Box::new(base), n),
            None => base,
        };
        if is_static {
            let bytes = match init {
                Some(e) => self.const_init_bytes(e, &ty)?,
                None => Vec::new(),
            };
            let gid = self.alloc_global(
                format!("{}::{}", self.func_sigs[fx.fid as usize].0, decl.name),
                ty,
                bytes,
                Some(fx.fid),
                false,
            );
            let scope = fx.scopes.last_mut().expect("scope stack never empty");
            if scope
                .insert(decl.name.clone(), Binding::Global(gid))
                .is_some()
            {
                return Err(CompileError::new(
                    line,
                    format!("duplicate variable '{}'", decl.name),
                ));
            }
            return Ok(());
        }
        let idx = self.alloc_local(fx, decl.name.clone(), ty.clone(), false, line)?;
        if let Some(e) = init {
            if !ty.is_scalar() {
                return Err(CompileError::new(
                    line,
                    "only scalar locals can have initializers",
                ));
            }
            let value = self.rvalue(fx, e)?;
            self.check_assignable(&value.ty, &ty, line)?;
            let addr = Expr {
                ty: Type::Ptr(Box::new(ty.clone())),
                kind: ExprKind::AddrLocal(idx),
            };
            let value = coerce_store_value(value, &ty);
            out.push(Stmt::Expr(Expr {
                ty,
                kind: ExprKind::Assign {
                    addr: Box::new(addr),
                    value: Box::new(value),
                },
            }));
        }
        Ok(())
    }

    fn condition(&mut self, fx: &mut FuncCx, e: &ast::Expr) -> SResult<Expr> {
        let c = self.rvalue(fx, e)?;
        if !c.ty.is_scalar() {
            return Err(CompileError::new(e.line, "condition must be scalar"));
        }
        Ok(c)
    }

    fn rvalue_or_void(&mut self, fx: &mut FuncCx, e: &ast::Expr) -> SResult<Expr> {
        // Calls to void functions are legal expression statements.
        self.lower_expr(fx, e, true)
    }

    fn rvalue(&mut self, fx: &mut FuncCx, e: &ast::Expr) -> SResult<Expr> {
        let r = self.lower_expr(fx, e, false)?;
        Ok(r)
    }

    fn check_assignable(&self, from: &Type, to: &Type, line: u32) -> SResult<()> {
        let ok = match (from, to) {
            (a, b) if a == b => true,
            // Int-family conversions.
            (Type::Int | Type::Char, Type::Int | Type::Char) => true,
            // Old-C pointer laxity: any pointer to any pointer; int<->ptr.
            (Type::Ptr(_), Type::Ptr(_)) => true,
            (Type::Int, Type::Ptr(_)) | (Type::Ptr(_), Type::Int) => true,
            _ => false,
        };
        if ok {
            Ok(())
        } else {
            Err(CompileError::new(
                line,
                format!("cannot convert {from} to {to}"),
            ))
        }
    }

    /// Lowers an lvalue to `(address-expression, object type)`.
    fn lvalue(&mut self, fx: &mut FuncCx, e: &ast::Expr) -> SResult<(Expr, Type)> {
        let line = e.line;
        match &e.kind {
            Ast::Ident(name) => match self.lookup(fx, name) {
                Some(Binding::Local(i)) => {
                    let ty = fx.locals[i as usize].ty.clone();
                    Ok((
                        Expr {
                            ty: Type::Ptr(Box::new(ty.clone())),
                            kind: ExprKind::AddrLocal(i),
                        },
                        ty,
                    ))
                }
                Some(Binding::Global(g)) => {
                    let ty = self.globals[g as usize].ty.clone();
                    Ok((
                        Expr {
                            ty: Type::Ptr(Box::new(ty.clone())),
                            kind: ExprKind::AddrGlobal(g),
                        },
                        ty,
                    ))
                }
                None => Err(CompileError::new(
                    line,
                    format!("unknown variable '{name}'"),
                )),
            },
            Ast::Deref(p) => {
                let pe = self.rvalue(fx, p)?;
                match pe.ty.clone() {
                    Type::Ptr(t) => Ok((pe, (*t).clone())),
                    other => Err(CompileError::new(
                        line,
                        format!("cannot dereference {other}"),
                    )),
                }
            }
            Ast::Index(base, idx) => {
                let b = self.rvalue(fx, base)?;
                let elem = match b.ty.pointee() {
                    Some(t) => t.clone(),
                    None => return Err(CompileError::new(line, format!("cannot index {}", b.ty))),
                };
                let i = self.rvalue(fx, idx)?;
                if !matches!(i.ty, Type::Int | Type::Char) {
                    return Err(CompileError::new(line, "index must be an integer"));
                }
                let scaled = scale(i, elem.size(&self.struct_sizes));
                let addr = Expr {
                    ty: Type::Ptr(Box::new(elem.clone())),
                    kind: ExprKind::Binary(BinOp::Add, Box::new(b), Box::new(scaled)),
                };
                Ok((addr, elem))
            }
            Ast::Member(inner, m) => {
                let (iaddr, ity) = self.lvalue(fx, inner)?;
                let Type::Struct(sid) = ity else {
                    return Err(CompileError::new(line, format!("'.' on non-struct {ity}")));
                };
                let ml = self.member(sid, m, line)?;
                Ok((offset_addr(iaddr, ml.offset, ml.ty.clone()), ml.ty))
            }
            Ast::Arrow(inner, m) => {
                let p = self.rvalue(fx, inner)?;
                let sid = match &p.ty {
                    Type::Ptr(b) => match b.as_ref() {
                        Type::Struct(s) => *s,
                        other => {
                            return Err(CompileError::new(
                                line,
                                format!("'->' on pointer to non-struct {other}"),
                            ))
                        }
                    },
                    other => {
                        return Err(CompileError::new(
                            line,
                            format!("'->' on non-pointer {other}"),
                        ))
                    }
                };
                let ml = self.member(sid, m, line)?;
                Ok((offset_addr(p, ml.offset, ml.ty.clone()), ml.ty))
            }
            _ => Err(CompileError::new(line, "expression is not an lvalue")),
        }
    }

    fn member(&self, sid: usize, name: &str, line: u32) -> SResult<MemberLayout> {
        self.structs[sid]
            .members
            .iter()
            .find(|m| m.name == name)
            .cloned()
            .ok_or_else(|| {
                CompileError::new(
                    line,
                    format!("struct '{}' has no member '{name}'", self.structs[sid].name),
                )
            })
    }

    fn lower_expr(&mut self, fx: &mut FuncCx, e: &ast::Expr, allow_void: bool) -> SResult<Expr> {
        let line = e.line;
        match &e.kind {
            Ast::Int(v) => Ok(Expr::konst(*v)),
            Ast::Str(s) => {
                let id = self.intern_literal(s);
                Ok(Expr {
                    ty: Type::Ptr(Box::new(Type::Char)),
                    kind: ExprKind::AddrGlobal(id),
                })
            }
            Ast::Sizeof(t) => {
                let ty = self.resolve_type(t, line)?;
                Ok(Expr::konst(ty.size(&self.struct_sizes) as i32))
            }
            Ast::AddrOf(inner) => {
                let (addr, ty) = self.lvalue(fx, inner)?;
                Ok(Expr {
                    ty: Type::Ptr(Box::new(ty)),
                    kind: addr.kind,
                })
            }
            Ast::Cast(t, inner) => {
                let target = self.resolve_type(t, line)?;
                let v = self.rvalue(fx, inner)?;
                if !v.ty.is_scalar() {
                    return Err(CompileError::new(line, "cast of non-scalar value"));
                }
                match target {
                    Type::Char => Ok(Expr {
                        ty: Type::Char,
                        kind: ExprKind::CastChar(Box::new(v)),
                    }),
                    t if t.is_scalar() => Ok(Expr {
                        ty: t,
                        kind: v.kind,
                    }),
                    other => Err(CompileError::new(line, format!("cannot cast to {other}"))),
                }
            }
            Ast::Unary(op, inner) => {
                let v = self.rvalue(fx, inner)?;
                if !v.ty.is_scalar() {
                    return Err(CompileError::new(line, "unary operand must be scalar"));
                }
                Ok(Expr {
                    ty: Type::Int,
                    kind: ExprKind::Unary(*op, Box::new(v)),
                })
            }
            Ast::Assign(lhs, rhs) => {
                let (addr, ty) = self.lvalue(fx, lhs)?;
                if !ty.is_scalar() {
                    return Err(CompileError::new(line, format!("cannot assign to {ty}")));
                }
                let value = self.rvalue(fx, rhs)?;
                self.check_assignable(&value.ty, &ty, line)?;
                let value = coerce_store_value(value, &ty);
                Ok(Expr {
                    ty,
                    kind: ExprKind::Assign {
                        addr: Box::new(addr),
                        value: Box::new(value),
                    },
                })
            }
            Ast::Binary(op, a, b) => self.lower_binary(fx, *op, a, b, line),
            Ast::Call(name, args) => self.lower_call(fx, name, args, line, allow_void),
            // Reads of lvalue-shaped expressions.
            Ast::Ident(_) | Ast::Deref(_) | Ast::Index(..) | Ast::Member(..) | Ast::Arrow(..) => {
                let (addr, ty) = self.lvalue(fx, e)?;
                match ty {
                    Type::Array(elem, _) => {
                        // Array decay: the value of an array is its address.
                        Ok(Expr {
                            ty: Type::Ptr(elem),
                            kind: addr.kind,
                        })
                    }
                    Type::Struct(_) => Err(CompileError::new(
                        line,
                        "struct values cannot be used directly",
                    )),
                    ty => Ok(Expr {
                        ty,
                        kind: ExprKind::Load(Box::new(addr)),
                    }),
                }
            }
        }
    }

    fn lower_binary(
        &mut self,
        fx: &mut FuncCx,
        op: BinOp,
        a: &ast::Expr,
        b: &ast::Expr,
        line: u32,
    ) -> SResult<Expr> {
        if matches!(op, BinOp::LogAnd | BinOp::LogOr) {
            let l = self.condition(fx, a)?;
            let r = self.condition(fx, b)?;
            let kind = if op == BinOp::LogAnd {
                ExprKind::LogAnd(Box::new(l), Box::new(r))
            } else {
                ExprKind::LogOr(Box::new(l), Box::new(r))
            };
            return Ok(Expr {
                ty: Type::Int,
                kind,
            });
        }
        let l = self.rvalue(fx, a)?;
        let r = self.rvalue(fx, b)?;
        if !l.ty.is_scalar() || !r.ty.is_scalar() {
            return Err(CompileError::new(line, "operands must be scalar"));
        }
        match op {
            BinOp::Add | BinOp::Sub => match (l.ty.is_ptr(), r.ty.is_ptr()) {
                (true, false) => {
                    let elem = l.ty.pointee().expect("pointer has pointee").clone();
                    let ty = l.ty.clone();
                    let scaled = scale(r, elem.size(&self.struct_sizes));
                    Ok(Expr {
                        ty,
                        kind: ExprKind::Binary(op, Box::new(l), Box::new(scaled)),
                    })
                }
                (false, true) => {
                    if op == BinOp::Sub {
                        return Err(CompileError::new(line, "cannot subtract pointer from int"));
                    }
                    let elem = r.ty.pointee().expect("pointer has pointee").clone();
                    let ty = r.ty.clone();
                    let scaled = scale(l, elem.size(&self.struct_sizes));
                    Ok(Expr {
                        ty,
                        kind: ExprKind::Binary(op, Box::new(scaled), Box::new(r)),
                    })
                }
                (true, true) => {
                    if op != BinOp::Sub {
                        return Err(CompileError::new(line, "cannot add two pointers"));
                    }
                    let elem = l.ty.pointee().expect("pointer has pointee").clone();
                    let size = elem.size(&self.struct_sizes).max(1);
                    let diff = Expr {
                        ty: Type::Int,
                        kind: ExprKind::Binary(BinOp::Sub, Box::new(l), Box::new(r)),
                    };
                    Ok(Expr {
                        ty: Type::Int,
                        kind: ExprKind::Binary(
                            BinOp::Div,
                            Box::new(diff),
                            Box::new(Expr::konst(size as i32)),
                        ),
                    })
                }
                (false, false) => Ok(Expr {
                    ty: Type::Int,
                    kind: ExprKind::Binary(op, Box::new(l), Box::new(r)),
                }),
            },
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne => Ok(Expr {
                ty: Type::Int,
                kind: ExprKind::Binary(op, Box::new(l), Box::new(r)),
            }),
            _ => {
                if l.ty.is_ptr() || r.ty.is_ptr() {
                    return Err(CompileError::new(line, "pointer operand not allowed here"));
                }
                Ok(Expr {
                    ty: Type::Int,
                    kind: ExprKind::Binary(op, Box::new(l), Box::new(r)),
                })
            }
        }
    }

    fn lower_call(
        &mut self,
        fx: &mut FuncCx,
        name: &str,
        args: &[ast::Expr],
        line: u32,
        allow_void: bool,
    ) -> SResult<Expr> {
        let mut largs = Vec::new();
        for a in args {
            let v = self.rvalue(fx, a)?;
            if !v.ty.is_scalar() {
                return Err(CompileError::new(line, "arguments must be scalar"));
            }
            largs.push(v);
        }
        if let Some(b) = builtin_of(name) {
            let (argc, ret) = match b {
                Builtin::Malloc => (1, Type::Ptr(Box::new(Type::Char))),
                Builtin::Free => (1, Type::Void),
                Builtin::Realloc => (2, Type::Ptr(Box::new(Type::Char))),
                Builtin::PrintInt | Builtin::PrintChar | Builtin::PrintStr | Builtin::Exit => {
                    (1, Type::Void)
                }
                Builtin::Arg => (1, Type::Int),
            };
            if largs.len() != argc {
                return Err(CompileError::new(
                    line,
                    format!("'{name}' expects {argc} argument(s), got {}", largs.len()),
                ));
            }
            if ret == Type::Void && !allow_void {
                return Err(CompileError::new(
                    line,
                    format!("'{name}' returns no value"),
                ));
            }
            return Ok(Expr {
                ty: ret,
                kind: ExprKind::Builtin(b, largs),
            });
        }
        let fid = *self
            .func_ids
            .get(name)
            .ok_or_else(|| CompileError::new(line, format!("unknown function '{name}'")))?;
        let (_, ret, ptys) = self.func_sigs[fid as usize].clone();
        if largs.len() != ptys.len() {
            return Err(CompileError::new(
                line,
                format!(
                    "'{name}' expects {} argument(s), got {}",
                    ptys.len(),
                    largs.len()
                ),
            ));
        }
        for (v, p) in largs.iter().zip(&ptys) {
            self.check_assignable(&v.ty, p, line)?;
        }
        if ret == Type::Void && !allow_void {
            return Err(CompileError::new(
                line,
                format!("'{name}' returns no value"),
            ));
        }
        Ok(Expr {
            ty: ret,
            kind: ExprKind::Call(fid, largs),
        })
    }
}

/// Multiplies an index expression by an element size (constant-folding the
/// common literal case).
fn scale(e: Expr, size: u32) -> Expr {
    if size == 1 {
        return e;
    }
    if let ExprKind::Const(v) = e.kind {
        return Expr::konst(v.wrapping_mul(size as i32));
    }
    Expr {
        ty: Type::Int,
        kind: ExprKind::Binary(BinOp::Mul, Box::new(e), Box::new(Expr::konst(size as i32))),
    }
}

fn offset_addr(base: Expr, offset: u32, member_ty: Type) -> Expr {
    let ty = Type::Ptr(Box::new(member_ty));
    if offset == 0 {
        return Expr {
            ty,
            kind: base.kind,
        };
    }
    Expr {
        ty,
        kind: ExprKind::Binary(
            BinOp::Add,
            Box::new(base),
            Box::new(Expr::konst(offset as i32)),
        ),
    }
}

/// Wraps a value for storage into a `ty`-typed slot (chars truncate).
fn coerce_store_value(value: Expr, ty: &Type) -> Expr {
    if *ty == Type::Char && value.ty != Type::Char {
        Expr {
            ty: Type::Char,
            kind: ExprKind::CastChar(Box::new(value)),
        }
    } else {
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn lower_src(src: &str) -> SResult<Hir> {
        check(&parse(&lex(src).unwrap()).unwrap())
    }

    #[test]
    fn minimal_program() {
        let hir = lower_src("int main() { return 0; }").unwrap();
        assert_eq!(hir.funcs.len(), 1);
        assert_eq!(hir.main, 0);
        assert_eq!(hir.funcs[0].name, "main");
    }

    #[test]
    fn missing_main_rejected() {
        assert!(lower_src("int f() { return 0; }").is_err());
    }

    #[test]
    fn struct_layout_offsets() {
        let hir = lower_src(
            r#"
            struct S { char c; int x; char buf[5]; int y; };
            int main() { return sizeof(struct S); }
            "#,
        )
        .unwrap();
        let s = &hir.structs[0];
        assert_eq!(s.members[0].offset, 0); // c
        assert_eq!(s.members[1].offset, 4); // x (aligned)
        assert_eq!(s.members[2].offset, 8); // buf
        assert_eq!(s.members[3].offset, 16); // y (13 -> 16)
        assert_eq!(s.size, 20);
    }

    #[test]
    fn self_referential_struct_via_pointer() {
        assert!(lower_src("struct N { int v; struct N *next; }; int main() { return 0; }").is_ok());
        // Value self-member rejected.
        assert!(lower_src("struct N { struct N inner; }; int main() { return 0; }").is_err());
    }

    #[test]
    fn globals_laid_out_in_order() {
        let hir = lower_src(
            r#"
            int a;
            char b;
            int c[10];
            int main() { return 0; }
            "#,
        )
        .unwrap();
        assert_eq!(hir.globals[0].offset, 0);
        assert_eq!(hir.globals[1].offset, 4);
        assert_eq!(hir.globals[2].offset, 8); // aligned past the char
        assert_eq!(hir.globals[2].size, 40);
        assert_eq!(hir.data_size, 48);
    }

    #[test]
    fn global_initializers_const_evaled() {
        let hir = lower_src(
            r#"
            int a = 3 + 4 * 2;
            int b = -5;
            int c = sizeof(int) * 3;
            char d = 'A';
            int main() { return 0; }
            "#,
        )
        .unwrap();
        assert_eq!(hir.globals[0].init, 11i32.to_le_bytes());
        assert_eq!(hir.globals[1].init, (-5i32).to_le_bytes());
        assert_eq!(hir.globals[2].init, 12i32.to_le_bytes());
        assert_eq!(hir.globals[3].init, vec![65]);
    }

    #[test]
    fn non_constant_global_init_rejected() {
        assert!(lower_src("int a = b; int main() { return 0; }").is_err());
    }

    #[test]
    fn statics_become_owned_globals() {
        let hir = lower_src(
            r#"
            int f() { static int count = 7; count = count + 1; return count; }
            int main() { return f(); }
            "#,
        )
        .unwrap();
        let st = hir.globals.iter().find(|g| g.owner.is_some()).unwrap();
        assert_eq!(st.owner, Some(0));
        assert_eq!(st.init, 7i32.to_le_bytes());
        assert!(st.name.contains("count"));
        // The static is NOT a frame local.
        assert!(hir.funcs[0].locals.is_empty());
    }

    #[test]
    fn frame_layout_params_then_locals() {
        let hir = lower_src(
            r#"
            int f(int a, int b) { int x; char buf[6]; int y; x = a; y = b; return x + y; }
            int main() { return f(1, 2); }
            "#,
        )
        .unwrap();
        let f = &hir.funcs[0];
        assert_eq!(f.params, 2);
        let offs: Vec<i32> = f.locals.iter().map(|l| l.offset).collect();
        // a at -12, b at -16, x at -20, buf at -28 (6 rounded within
        // cursor), y follows.
        assert_eq!(offs[0], -12);
        assert_eq!(offs[1], -16);
        assert_eq!(offs[2], -20);
        assert!(f.locals[3].name == "buf" && f.locals[3].size == 6);
        for l in &f.locals {
            assert!(l.offset < 0);
            assert_eq!((l.offset.unsigned_abs()) % 4, 0, "word-aligned slots");
        }
        assert!(f.frame_size >= 8 + 4 * 3 + 6);
    }

    #[test]
    fn shadowing_creates_distinct_locals() {
        let hir = lower_src(
            r#"
            int main() { int x; x = 1; { int x; x = 2; } return x; }
            "#,
        )
        .unwrap();
        assert_eq!(hir.funcs[0].locals.len(), 2);
        assert_ne!(hir.funcs[0].locals[0].offset, hir.funcs[0].locals[1].offset);
    }

    #[test]
    fn pointer_arithmetic_scaled() {
        let hir = lower_src(
            r#"
            int main() { int a[10]; int *p; p = a; p = p + 3; return *p; }
            "#,
        )
        .unwrap();
        // Find the Assign whose value is Binary(Add, _, Const(12)).
        let found = format!("{:?}", hir.funcs[0].body);
        assert!(
            found.contains("Const(12)"),
            "expected scaled offset 12 in {found}"
        );
    }

    #[test]
    fn string_literals_interned() {
        let hir = lower_src(
            r#"
            int main() { print_str("hi"); print_str("hi"); print_str("ho"); return 0; }
            "#,
        )
        .unwrap();
        let lits = hir.globals.iter().filter(|g| g.is_literal).count();
        assert_eq!(lits, 2);
    }

    #[test]
    fn type_errors_rejected() {
        // assignment to rvalue
        assert!(lower_src("int main() { 1 = 2; return 0; }").is_err());
        // struct assignment
        assert!(lower_src(
            "struct S { int x; }; struct S a; struct S b; int main() { a = b; return 0; }"
        )
        .is_err());
        // indexing an int
        assert!(lower_src("int main() { int x; return x[0]; }").is_err());
        // '->' on non-pointer
        assert!(lower_src("struct S { int x; }; struct S s; int main() { return s->x; }").is_err());
        // unknown member
        assert!(lower_src("struct S { int x; }; struct S s; int main() { return s.y; }").is_err());
        // unknown variable / function
        assert!(lower_src("int main() { return nosuch; }").is_err());
        assert!(lower_src("int main() { return nosuch(); }").is_err());
        // arg count
        assert!(lower_src("int f(int a) { return a; } int main() { return f(); }").is_err());
        // break outside loop
        assert!(lower_src("int main() { break; return 0; }").is_err());
        // void misuse
        assert!(lower_src("void f() { return; } int main() { return f(); }").is_err());
        // adding two pointers
        assert!(lower_src("int main() { int *p; int *q; return (int)(p + q); }").is_err());
        // redefinition of a builtin
        assert!(lower_src("int malloc(int n) { return n; } int main() { return 0; }").is_err());
    }

    #[test]
    fn pointer_difference_is_element_count() {
        let hir = lower_src("int main() { int a[4]; return (&a[3]) - (&a[0]); }").unwrap();
        let dump = format!("{:?}", hir.funcs[0].body);
        assert!(
            dump.contains("Div"),
            "pointer difference divides by elem size: {dump}"
        );
    }

    #[test]
    fn char_assignment_truncates_via_cast() {
        let hir = lower_src("int main() { char c; c = 300; return c; }").unwrap();
        let dump = format!("{:?}", hir.funcs[0].body);
        assert!(dump.contains("CastChar"), "{dump}");
    }

    #[test]
    fn array_decay_in_calls() {
        assert!(lower_src(
            "int f(int *p) { return p[0]; } int main() { int a[3]; a[0] = 9; return f(a); }"
        )
        .is_ok());
    }

    #[test]
    fn all_heap_builtins_typecheck() {
        assert!(lower_src(
            r#"
            int main() {
                int *p;
                p = (int*)malloc(40);
                p[0] = 1;
                p = (int*)realloc((char*)p, 80);
                free((char*)p);
                print_int(0); print_char('x'); print_str("s");
                exit(arg(0));
                return 0;
            }
            "#,
        )
        .is_ok());
    }
}
