//! A reference AST (HIR) interpreter — the differential-testing oracle
//! for the code generator.
//!
//! The interpreter executes the same [`Hir`] the code generator consumes,
//! over a byte memory with the *identical* address-space layout (globals
//! at `DATA_BASE`, frames laid out exactly like generated prologues, the
//! same host-side heap allocator). Consequently a correct compiler and a
//! correct interpreter must produce byte-identical output, equal exit
//! codes, and equal pointer values — a strong oracle exercised by the
//! crate's differential tests.

use crate::hir::{BinOp, Builtin, Expr, ExprKind, FuncDef, Hir, Stmt, UnOp};
use crate::types::{align_up, Type};
use databp_machine::{HeapAlloc, MachineError, DATA_BASE, MEM_SIZE, STACK_LIMIT, STACK_TOP};

/// Outcome of an interpreted run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterpResult {
    /// Bytes written by the print builtins.
    pub output: Vec<u8>,
    /// Exit code (from `exit(n)` or `main`'s return value).
    pub exit_code: i32,
    /// Expression/statement evaluations performed (fuel consumed).
    pub steps: u64,
}

/// Observes the interpreter's externally visible memory events, in the
/// same order the machine's trace hooks would see them for the compiled
/// program: frame entry (before parameter spills), every explicit store
/// (assignments and parameter spills — the stores the code generator
/// instruments), heap lifetime events, and frame exit.
///
/// This makes the interpreter usable as a *semantic oracle for monitors
/// and predicates*, not just for program output: a consumer can rebuild
/// the program event trace from these callbacks and compare
/// notification/query results against the executable strategies.
pub trait InterpObserver {
    /// Control entered `func`; its frame pointer is `fp` (locals live at
    /// `fp`-relative offsets, exactly like generated prologues). Fires
    /// before parameter spill stores, matching the machine's
    /// `mark_enter` placement.
    fn enter(&mut self, func: u16, fp: u32) {
        let _ = (func, fp);
    }

    /// Control is leaving `func` normally (not via `exit()`), matching
    /// the machine's `mark_exit` placement. `exit()` unwinds are not
    /// reported — mirror the tracer and unwind outstanding frames at
    /// the end of the run.
    fn exit(&mut self, func: u16, fp: u32) {
        let _ = (func, fp);
    }

    /// An explicit source-level store committed `value` over `old` at
    /// `[addr, addr + len)`. Both values are masked to the store width
    /// (`len` is 1 or 4), matching the machine's `StoreEvent`.
    fn store(&mut self, addr: u32, len: u32, value: u32, old: u32) {
        let _ = (addr, len, value, old);
    }

    /// Heap object `seq` allocated at `[ba, ea)`.
    fn heap_alloc(&mut self, seq: u32, ba: u32, ea: u32) {
        let _ = (seq, ba, ea);
    }

    /// Heap object `seq` at `[ba, ea)` freed.
    fn heap_free(&mut self, seq: u32, ba: u32, ea: u32) {
        let _ = (seq, ba, ea);
    }

    /// Heap object `seq` moved from `old` to `new` by `realloc`.
    fn heap_realloc(&mut self, seq: u32, old: (u32, u32), new: (u32, u32)) {
        let _ = (seq, old, new);
    }
}

/// The default no-op observer; [`interpret`] uses it.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoObserver;

impl InterpObserver for NoObserver {}

enum Flow {
    Normal,
    Break,
    Continue,
    Return(u32),
    Exit(i32),
}

struct Interp<'a, O: InterpObserver> {
    hir: &'a Hir,
    mem: Vec<u8>,
    heap: HeapAlloc,
    sp: u32,
    output: Vec<u8>,
    args: Vec<i32>,
    steps: u64,
    max_steps: u64,
    obs: &'a mut O,
}

/// Interprets a checked program.
///
/// # Errors
///
/// Shares [`MachineError`] with the machine: divide-by-zero, unmapped or
/// misaligned accesses, heap faults, stack overflow, and
/// [`MachineError::StepLimitExceeded`] when `max_steps` evaluations are
/// exhausted.
pub fn interpret(hir: &Hir, args: &[i32], max_steps: u64) -> Result<InterpResult, MachineError> {
    interpret_observed(hir, args, max_steps, &mut NoObserver)
}

/// [`interpret`], reporting memory events to `obs` as they happen.
///
/// # Errors
///
/// Same as [`interpret`].
pub fn interpret_observed<O: InterpObserver>(
    hir: &Hir,
    args: &[i32],
    max_steps: u64,
    obs: &mut O,
) -> Result<InterpResult, MachineError> {
    let mut it = Interp {
        hir,
        mem: vec![0; MEM_SIZE as usize],
        heap: HeapAlloc::new(),
        sp: STACK_TOP,
        output: Vec::new(),
        args: args.to_vec(),
        steps: 0,
        max_steps,
        obs,
    };
    for g in &hir.globals {
        let base = (DATA_BASE + g.offset) as usize;
        it.mem[base..base + g.init.len()].copy_from_slice(&g.init);
    }
    let exit_code = match it.call(hir.main, &[])? {
        Flow::Exit(code) => code,
        Flow::Return(v) => v as i32,
        _ => 0,
    };
    Ok(InterpResult {
        output: it.output,
        exit_code,
        steps: it.steps,
    })
}

impl<'a, O: InterpObserver> Interp<'a, O> {
    fn tick(&mut self) -> Result<(), MachineError> {
        self.steps += 1;
        if self.steps > self.max_steps {
            return Err(MachineError::StepLimitExceeded {
                limit: self.max_steps,
            });
        }
        Ok(())
    }

    fn load(&self, addr: u32, width: u32) -> Result<u32, MachineError> {
        if addr as u64 + width as u64 > self.mem.len() as u64 {
            return Err(MachineError::UnmappedAddress { addr, pc: 0 });
        }
        Ok(match width {
            1 => self.mem[addr as usize] as i8 as i32 as u32,
            4 => {
                if !addr.is_multiple_of(4) {
                    return Err(MachineError::Misaligned { addr, pc: 0 });
                }
                let i = addr as usize;
                u32::from_le_bytes([
                    self.mem[i],
                    self.mem[i + 1],
                    self.mem[i + 2],
                    self.mem[i + 3],
                ])
            }
            _ => unreachable!("width is 1 or 4"),
        })
    }

    fn store(&mut self, addr: u32, width: u32, value: u32) -> Result<(), MachineError> {
        if addr as u64 + width as u64 > self.mem.len() as u64 {
            return Err(MachineError::UnmappedAddress { addr, pc: 0 });
        }
        match width {
            1 => {
                let old = u32::from(self.mem[addr as usize]);
                self.mem[addr as usize] = value as u8;
                self.obs.store(addr, 1, value & 0xff, old);
            }
            4 => {
                if !addr.is_multiple_of(4) {
                    return Err(MachineError::Misaligned { addr, pc: 0 });
                }
                let i = addr as usize;
                let old = u32::from_le_bytes([
                    self.mem[i],
                    self.mem[i + 1],
                    self.mem[i + 2],
                    self.mem[i + 3],
                ]);
                self.mem[i..i + 4].copy_from_slice(&value.to_le_bytes());
                self.obs.store(addr, 4, value, old);
            }
            _ => unreachable!("width is 1 or 4"),
        }
        Ok(())
    }

    fn call(&mut self, fid: u16, args: &[u32]) -> Result<Flow, MachineError> {
        let f: &FuncDef = &self.hir.funcs[fid as usize];
        let total = align_up(f.frame_size, 8);
        let fp = self.sp;
        let new_sp = fp.wrapping_sub(total);
        if new_sp < STACK_LIMIT {
            return Err(MachineError::StackOverflow { sp: new_sp, pc: 0 });
        }
        let saved_sp = self.sp;
        self.sp = new_sp;
        self.obs.enter(fid, fp);
        // Parameters spill into their frame slots, like generated code.
        for (k, &v) in args.iter().enumerate() {
            let l = &f.locals[k];
            let addr = fp.wrapping_add(l.offset as u32);
            let v = if l.ty == Type::Char {
                (v as u8 as i8 as i32) as u32
            } else {
                v
            };
            self.store(addr, l.ty.access_width(), v)?;
        }
        let flow = self.stmts(f, fp, &f.body)?;
        self.sp = saved_sp;
        Ok(match flow {
            Flow::Exit(c) => Flow::Exit(c),
            Flow::Return(v) => {
                self.obs.exit(fid, fp);
                Flow::Return(v)
            }
            _ => {
                self.obs.exit(fid, fp);
                Flow::Return(0)
            }
        })
    }

    fn stmts(&mut self, f: &'a FuncDef, fp: u32, body: &'a [Stmt]) -> Result<Flow, MachineError> {
        for s in body {
            match self.stmt(f, fp, s)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn stmt(&mut self, f: &'a FuncDef, fp: u32, s: &'a Stmt) -> Result<Flow, MachineError> {
        self.tick()?;
        match s {
            Stmt::Expr(e) => match self.expr(f, fp, e)? {
                Ok(_) => Ok(Flow::Normal),
                Err(exit) => Ok(Flow::Exit(exit)),
            },
            Stmt::If(c, t, e) => {
                let cond = self.value(f, fp, c)?;
                if let Err(code) = cond {
                    return Ok(Flow::Exit(code));
                }
                if cond.unwrap_or(0) != 0 {
                    self.stmts(f, fp, t)
                } else {
                    self.stmts(f, fp, e)
                }
            }
            Stmt::While(c, body) => loop {
                match self.value(f, fp, c)? {
                    Err(code) => return Ok(Flow::Exit(code)),
                    Ok(0) => return Ok(Flow::Normal),
                    Ok(_) => {}
                }
                match self.stmts(f, fp, body)? {
                    Flow::Normal | Flow::Continue => {}
                    Flow::Break => return Ok(Flow::Normal),
                    other => return Ok(other),
                }
                self.tick()?;
            },
            Stmt::For(init, cond, step, body) => {
                if let Some(i) = init {
                    if let Err(code) = self.expr(f, fp, i)? {
                        return Ok(Flow::Exit(code));
                    }
                }
                loop {
                    if let Some(c) = cond {
                        match self.value(f, fp, c)? {
                            Err(code) => return Ok(Flow::Exit(code)),
                            Ok(0) => return Ok(Flow::Normal),
                            Ok(_) => {}
                        }
                    }
                    match self.stmts(f, fp, body)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => return Ok(Flow::Normal),
                        other => return Ok(other),
                    }
                    if let Some(st) = step {
                        if let Err(code) = self.expr(f, fp, st)? {
                            return Ok(Flow::Exit(code));
                        }
                    }
                    self.tick()?;
                }
            }
            Stmt::Return(v) => match v {
                Some(e) => match self.value(f, fp, e)? {
                    Err(code) => Ok(Flow::Exit(code)),
                    Ok(v) => Ok(Flow::Return(v)),
                },
                None => Ok(Flow::Return(0)),
            },
            Stmt::Break => Ok(Flow::Break),
            Stmt::Continue => Ok(Flow::Continue),
        }
    }

    /// Evaluates to a value, collapsing `exit()` into the error arm of the
    /// inner result.
    fn value(
        &mut self,
        f: &'a FuncDef,
        fp: u32,
        e: &'a Expr,
    ) -> Result<Result<u32, i32>, MachineError> {
        self.expr(f, fp, e)
    }

    /// Inner result: `Ok(value)` or `Err(exit_code)` when `exit()` ran.
    fn expr(
        &mut self,
        f: &'a FuncDef,
        fp: u32,
        e: &'a Expr,
    ) -> Result<Result<u32, i32>, MachineError> {
        self.tick()?;
        macro_rules! eval {
            ($e:expr) => {
                match self.expr(f, fp, $e)? {
                    Ok(v) => v,
                    Err(code) => return Ok(Err(code)),
                }
            };
        }
        let v: u32 = match &e.kind {
            ExprKind::Const(v) => *v as u32,
            ExprKind::AddrLocal(i) => fp.wrapping_add(f.locals[*i as usize].offset as u32),
            ExprKind::AddrGlobal(g) => DATA_BASE + self.hir.globals[*g as usize].offset,
            ExprKind::Load(addr) => {
                let a = eval!(addr);
                self.load(a, e.ty.access_width())?
            }
            ExprKind::Unary(op, inner) => {
                let v = eval!(inner);
                match op {
                    UnOp::Neg => (v as i32).wrapping_neg() as u32,
                    UnOp::Not => (v == 0) as u32,
                    UnOp::BitNot => !v,
                }
            }
            ExprKind::CastChar(inner) => {
                let v = eval!(inner);
                v as u8 as i8 as i32 as u32
            }
            ExprKind::Binary(op, a, b) => {
                let x = eval!(a);
                let y = eval!(b);
                match op {
                    BinOp::Add => x.wrapping_add(y),
                    BinOp::Sub => x.wrapping_sub(y),
                    BinOp::Mul => x.wrapping_mul(y),
                    BinOp::Div => {
                        if y == 0 {
                            return Err(MachineError::DivideByZero { pc: 0 });
                        }
                        (x as i32).wrapping_div(y as i32) as u32
                    }
                    BinOp::Rem => {
                        if y == 0 {
                            return Err(MachineError::DivideByZero { pc: 0 });
                        }
                        (x as i32).wrapping_rem(y as i32) as u32
                    }
                    BinOp::Shl => x.wrapping_shl(y & 31),
                    BinOp::Shr => ((x as i32).wrapping_shr(y & 31)) as u32,
                    BinOp::BitAnd => x & y,
                    BinOp::BitOr => x | y,
                    BinOp::BitXor => x ^ y,
                    BinOp::Lt => ((x as i32) < (y as i32)) as u32,
                    BinOp::Le => ((x as i32) <= (y as i32)) as u32,
                    BinOp::Gt => ((x as i32) > (y as i32)) as u32,
                    BinOp::Ge => ((x as i32) >= (y as i32)) as u32,
                    BinOp::Eq => (x == y) as u32,
                    BinOp::Ne => (x != y) as u32,
                    BinOp::LogAnd | BinOp::LogOr => unreachable!("lowered to LogAnd/LogOr"),
                }
            }
            ExprKind::LogAnd(a, b) => {
                let x = eval!(a);
                if x == 0 {
                    0
                } else {
                    (eval!(b) != 0) as u32
                }
            }
            ExprKind::LogOr(a, b) => {
                let x = eval!(a);
                if x != 0 {
                    1
                } else {
                    (eval!(b) != 0) as u32
                }
            }
            ExprKind::Assign { addr, value } => {
                let v = eval!(value);
                let a = eval!(addr);
                let width = e.ty.access_width();
                self.store(a, width, v)?;
                v
            }
            ExprKind::Call(fid, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(eval!(a));
                }
                match self.call(*fid, &vals)? {
                    Flow::Exit(code) => return Ok(Err(code)),
                    Flow::Return(v) => v,
                    _ => 0,
                }
            }
            ExprKind::Builtin(b, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(eval!(a));
                }
                match b {
                    Builtin::Malloc => {
                        let (addr, seq) = self.heap.alloc(vals[0])?;
                        let (size, _) = self.heap.live_block(addr).expect("just allocated");
                        self.obs.heap_alloc(seq, addr, addr + size);
                        addr
                    }
                    Builtin::Free => {
                        let (size, seq) = self.heap.free(vals[0])?;
                        self.obs.heap_free(seq, vals[0], vals[0] + size);
                        0
                    }
                    Builtin::Realloc => {
                        let (old_size, seq) = self
                            .heap
                            .live_block(vals[0])
                            .ok_or(MachineError::BadFree { addr: vals[0] })?;
                        let saved: Vec<u8> =
                            self.mem[vals[0] as usize..(vals[0] + old_size) as usize].to_vec();
                        self.heap.free(vals[0])?;
                        let new_addr = self.heap.alloc_with_seq(vals[1], seq)?;
                        let (new_size, _) = self.heap.live_block(new_addr).expect("just allocated");
                        let keep = old_size.min(new_size) as usize;
                        self.mem[new_addr as usize..new_addr as usize + keep]
                            .copy_from_slice(&saved[..keep]);
                        self.heap.note_realloc();
                        self.obs.heap_realloc(
                            seq,
                            (vals[0], vals[0] + old_size),
                            (new_addr, new_addr + new_size),
                        );
                        new_addr
                    }
                    Builtin::PrintInt => {
                        self.output
                            .extend_from_slice(format!("{}\n", vals[0] as i32).as_bytes());
                        0
                    }
                    Builtin::PrintChar => {
                        self.output.push(vals[0] as u8);
                        0
                    }
                    Builtin::PrintStr => {
                        let start = vals[0];
                        for a in start..start.saturating_add(65536) {
                            let b = self.load(a, 1)? as u8;
                            if b == 0 {
                                break;
                            }
                            self.output.push(b);
                        }
                        0
                    }
                    Builtin::Arg => self.args.get(vals[0] as usize).copied().unwrap_or(0) as u32,
                    Builtin::Exit => return Ok(Err(vals[0] as i32)),
                }
            }
        };
        Ok(Ok(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower;

    fn run(src: &str, args: &[i32]) -> InterpResult {
        interpret(&lower(src).unwrap(), args, 10_000_000).unwrap()
    }

    #[test]
    fn basic_output_and_exit() {
        let r = run("int main() { print_int(7); return 3; }", &[]);
        assert_eq!(r.output, b"7\n");
        assert_eq!(r.exit_code, 3);
    }

    #[test]
    fn exit_unwinds_nested_calls() {
        let r = run(
            r#"
            int deep(int n) { if (n == 0) exit(55); return deep(n - 1); }
            int main() { deep(10); print_int(1); return 0; }
            "#,
            &[],
        );
        assert_eq!(r.exit_code, 55);
        assert!(r.output.is_empty());
    }

    #[test]
    fn step_limit_stops_infinite_loop() {
        let hir = lower("int main() { while (1) {} return 0; }").unwrap();
        assert!(matches!(
            interpret(&hir, &[], 10_000),
            Err(MachineError::StepLimitExceeded { .. })
        ));
    }

    #[test]
    fn divide_by_zero_detected() {
        let hir = lower("int main() { int z; z = 0; return 1 / z; }").unwrap();
        assert!(matches!(
            interpret(&hir, &[], 1000),
            Err(MachineError::DivideByZero { .. })
        ));
    }

    #[test]
    fn stack_overflow_detected() {
        let hir = lower(
            "int f(int n) { int pad[2000]; pad[0] = n; return f(n + 1); } int main() { return f(0); }",
        )
        .unwrap();
        assert!(matches!(
            interpret(&hir, &[], 100_000_000),
            Err(MachineError::StackOverflow { .. })
        ));
    }

    #[test]
    fn heap_misuse_detected() {
        let hir = lower("int main() { free((char*)123456); return 0; }").unwrap();
        assert!(matches!(
            interpret(&hir, &[], 1000),
            Err(MachineError::BadFree { .. })
        ));
    }

    #[derive(Default)]
    struct Log {
        events: Vec<String>,
    }

    impl InterpObserver for Log {
        fn enter(&mut self, func: u16, _fp: u32) {
            self.events.push(format!("enter {func}"));
        }
        fn exit(&mut self, func: u16, _fp: u32) {
            self.events.push(format!("exit {func}"));
        }
        fn store(&mut self, _addr: u32, len: u32, value: u32, old: u32) {
            self.events.push(format!("store{len} {value}<-{old}"));
        }
        fn heap_alloc(&mut self, seq: u32, ba: u32, ea: u32) {
            self.events.push(format!("alloc {seq} {}b", ea - ba));
        }
        fn heap_free(&mut self, seq: u32, _ba: u32, _ea: u32) {
            self.events.push(format!("free {seq}"));
        }
    }

    #[test]
    fn observer_sees_stores_in_machine_order() {
        let hir = lower(
            r#"
            int g;
            int put(int k) { g = k; return 0; }
            int main() { g = 5; put(9); return g; }
            "#,
        )
        .unwrap();
        let mut log = Log::default();
        let r = interpret_observed(&hir, &[], 10_000, &mut log).unwrap();
        assert_eq!(r.exit_code, 9);
        assert_eq!(
            log.events,
            vec![
                "enter 1", // main
                "store4 5<-0",
                "enter 0",     // put
                "store4 9<-0", // the k parameter spill
                "store4 9<-5", // g = k, old value visible
                "exit 0",
                "exit 1",
            ]
        );
    }

    #[test]
    fn observer_sees_heap_lifetimes_and_exit_skips_unwind() {
        let hir = lower(
            r#"
            int main() {
                char *p;
                p = malloc(10);
                free(p);
                exit(3);
                return 0;
            }
            "#,
        )
        .unwrap();
        let mut log = Log::default();
        let r = interpret_observed(&hir, &[], 10_000, &mut log).unwrap();
        assert_eq!(r.exit_code, 3);
        // malloc rounds to 8-byte granules; exit() unwinds without an
        // exit event (the consumer unwinds, like Tracer::finish).
        let no_stores: Vec<&String> = log
            .events
            .iter()
            .filter(|e| !e.starts_with("store"))
            .collect();
        assert_eq!(no_stores, ["enter 0", "alloc 0 16b", "free 0"]);
    }

    #[test]
    fn byte_stores_report_masked_values() {
        let hir = lower(
            r#"
            char c;
            int main() { c = 300; c = 1; return 0; }
            "#,
        )
        .unwrap();
        let mut log = Log::default();
        interpret_observed(&hir, &[], 10_000, &mut log).unwrap();
        let stores: Vec<&String> = log
            .events
            .iter()
            .filter(|e| e.starts_with("store1"))
            .collect();
        assert_eq!(stores, ["store1 44<-0", "store1 1<-44"]);
    }

    #[test]
    fn args_reach_program() {
        let r = run(
            "int main() { print_int(arg(0) + arg(1)); return 0; }",
            &[40, 2],
        );
        assert_eq!(r.output, b"42\n");
    }
}
